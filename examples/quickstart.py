#!/usr/bin/env python3
"""Quickstart: compare the three inference strategies on one model pair.

Runs Dolphin-70B with a TinyLlama draft (the paper's headline pair) on an
8-node slice of cluster C and prints the paper's four metrics for
iterative, speculative, and PipeInfer inference.

    python examples/quickstart.py
"""

from repro import (
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    cluster_c,
    get_pair,
    run_engine,
)
from repro.util.tables import format_table
from repro.workloads.prompts import make_prompt


def main() -> None:
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    prompt = make_prompt("wikitext", length=128, vocab=pair.target_arch.vocab)
    job = GenerationJob(prompt=prompt, n_generate=256)

    rows = []
    outputs = {}
    for engine in (IterativeEngine, SpeculativeEngine, PipeInferEngine):
        backend = OracleBackend(pair, head_node=cluster.nodes[0])
        report = run_engine(engine, backend, cluster, job)
        outputs[engine.name] = report.tokens
        rows.append([
            engine.name,
            f"{report.generation_speed:.2f}",
            f"{report.ttft:.3f}",
            f"{report.itl:.3f}",
            f"{report.acceptance_rate:.1%}" if report.stats.draft_tokens_checked else "-",
            f"{report.utilization:.1%}",
        ])

    print(format_table(
        ["strategy", "tokens/s", "TTFT (s)", "ITL (s)", "acceptance", "utilization"],
        rows,
        title=f"{pair.label} on cluster C ({cluster.size} nodes), 256 tokens",
    ))

    identical = len({tuple(t) for t in outputs.values()}) == 1
    print(f"\nAll strategies produced identical output: {identical}")
    speedup = float(rows[2][1]) / float(rows[1][1])
    print(f"PipeInfer over speculative inference: {speedup:.2f}x")


if __name__ == "__main__":
    main()
