#!/usr/bin/env python3
"""Scenario: proving lossless acceleration with a real transformer.

PipeInfer's central correctness claim (paper Section IV-E) is that all
the machinery — asynchronous speculation, KV multibuffering, early
cancellation — never changes the model's output.  This example runs a
*real* NumPy transformer (tiny, but computing genuine attention over the
llama.cpp-style KV cache) under all four strategies and diffs the greedy
outputs, then flips the ablation switches to show cancellation is a pure
optimization.

    python examples/functional_correctness.py
"""

from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    IterativeEngine,
    PipeInferEngine,
    SingleNodeEngine,
    SpeculativeEngine,
    TinyTransformer,
    TransformerConfig,
    cluster_c,
    run_engine,
)
from repro.models.tokenizer import ToyTokenizer
from repro.models.transformer import perturbed_copy
from repro.spec.draft import DraftParams


def main() -> None:
    target = TinyTransformer(
        TransformerConfig(vocab=512, d_model=48, n_layers=6, n_heads=6,
                          n_kv_heads=2, d_ff=96, seed=2024)
    )
    # A draft model derived by perturbing the target's weights: mostly
    # agrees, sometimes diverges — both verification paths exercise.
    draft = perturbed_copy(target, noise=0.2, seed=7)

    tok = ToyTokenizer(vocab=512)
    prompt = tuple(tok.encode("In a distant cluster of commodity machines"))
    job = GenerationJob(prompt=prompt, n_generate=40)
    cfg = EngineConfig(
        draft=DraftParams(max_tokens=4, cutoff=0.01),
        cutoff_recovery=0.005, cutoff_decay=0.005,
    )

    def run(engine, cluster, config=cfg):
        backend = FunctionalBackend(target, draft, n_cells=1024)
        return run_engine(engine, backend, cluster, job, config)

    truth = run(SingleNodeEngine, cluster_c(1))
    print(f"single-node ground truth ({len(truth.tokens)} tokens):")
    print(" ", truth.tokens)

    for engine, nodes in (
        (IterativeEngine, 4),
        (SpeculativeEngine, 4),
        (PipeInferEngine, 4),
    ):
        r = run(engine, cluster_c(nodes))
        ok = "IDENTICAL" if r.tokens == truth.tokens else "DIVERGED!"
        extra = ""
        if r.stats.draft_tokens_checked:
            extra = f", acceptance {r.acceptance_rate:.0%}"
        print(f"{engine.name:>12} on {nodes} nodes: {ok}{extra}")

    # Early cancellation is a pure optimization: same tokens either way.
    with_c = run(PipeInferEngine, cluster_c(4))
    without = run(PipeInferEngine, cluster_c(4),
                  cfg.ablated(enable_cancellation=False))
    assert with_c.tokens == without.tokens == truth.tokens
    print(f"\ncancellation on/off outputs identical; with cancellation the "
          f"workers skipped {with_c.stats.worker_layer_evals_skipped} layer "
          f"evaluations of invalidated runs.")


if __name__ == "__main__":
    main()
