#!/usr/bin/env python3
"""Serving demo: a Poisson request stream through two engines.

Admits the same 12-request Poisson arrival trace (mixed prompt classes)
into one long-lived pipeline twice — once under PipeInfer's multiplexed
asynchronous speculation, once under the synchronous speculative baseline
(FCFS, one request at a time) — and prints the aggregate ServingReport
of each: throughput, TTFT/ITL/queue-wait percentiles, utilization.

    python examples/serving_traffic.py
"""

from repro import (
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    Workload,
    cluster_c,
    get_pair,
    run_serving,
)
from repro.util.tables import format_table
from repro.workloads import make_prompt, poisson_arrivals

N_REQUESTS = 12
RATE = 1.0  # requests per second
KINDS = ("wikitext", "code", "explain", "paper", "roleplay", "story")


def main() -> None:
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(
                KINDS[i % len(KINDS)], length=64, vocab=pair.target_arch.vocab
            ),
            n_generate=64,
        )
        for i in range(N_REQUESTS)
    )
    workload = Workload(
        jobs=jobs, arrivals=poisson_arrivals(RATE, N_REQUESTS, seed=21)
    )

    rows = []
    reports = {}
    for engine in (SpeculativeEngine, PipeInferEngine):
        backend = OracleBackend(pair, head_node=cluster.nodes[0])
        rep = run_serving(engine, backend, cluster, workload)
        reports[engine.name] = rep
        rows.append([
            engine.name,
            f"{rep.throughput:.2f}",
            f"{rep.ttft_p50:.2f}",
            f"{rep.ttft_p95:.2f}",
            f"{rep.itl_p50:.3f}",
            f"{rep.itl_p95:.3f}",
            f"{rep.queue_wait_p95:.2f}",
            f"{rep.makespan:.1f}",
            f"{rep.utilization:.1%}",
        ])

    print(format_table(
        ["strategy", "tok/s", "TTFT p50", "TTFT p95", "ITL p50",
         "ITL p95", "queue p95", "makespan", "util"],
        rows,
        title=(
            f"{pair.label}, cluster C ({cluster.size} nodes) — "
            f"{N_REQUESTS} requests, Poisson {RATE:.1f} req/s"
        ),
    ))

    pipe, spec = reports["pipeinfer"], reports["speculative"]
    identical = pipe.outputs() == spec.outputs()
    print(f"\nBoth engines produced identical per-request output: {identical}")
    print(
        "PipeInfer over the speculative baseline: "
        f"{pipe.throughput / spec.throughput:.2f}x stream throughput, "
        f"{spec.ttft_p95 / pipe.ttft_p95:.2f}x lower p95 TTFT"
    )


if __name__ == "__main__":
    main()
