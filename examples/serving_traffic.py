#!/usr/bin/env python3
"""Serving demo: a Poisson request stream through two engines.

Admits the same 12-request Poisson arrival trace (mixed prompt classes)
into one long-lived pipeline twice — once under PipeInfer's multiplexed
asynchronous speculation, once under the synchronous speculative baseline
(FCFS, one request at a time) — and prints the aggregate ServingReport
of each: throughput, TTFT/ITL/queue-wait percentiles, utilization.

    python examples/serving_traffic.py

With ``--prefix-share F`` the workload switches to shared-system-prompt
traffic where fraction ``F`` of requests reuse a common prefix, and the
demo instead compares PipeInfer with the cross-request KV prefix cache
off vs on — same tokens out, hit-rate and TTFT split printed:

    python examples/serving_traffic.py --prefix-share 0.75

With ``--faulty`` the demo moves to a cloud-edge pipeline (Xeon cloud
stages + Optiplex edge stages over a lossy metro WAN) and serves the same
stream twice — fault-free and under a seeded fault plan with WAN loss,
jitter, and a mid-stream edge-worker crash — showing that every request
still completes with identical tokens and what recovery cost:

    python examples/serving_traffic.py --faulty

With ``--replicas K`` the demo serves a multi-turn conversation stream
through a K-replica EngineCluster under each routing policy and prints
the cluster ServingReport per policy — same tokens out every time, but
prefix-affinity routing keeps a session's turns on the replica that
already holds their KV prefix, which shows up as a higher cluster-wide
prefix hit rate and a lower mean TTFT:

    python examples/serving_traffic.py --replicas 4

With ``--stream`` the demo switches to the streaming front-end: N async
client coroutines over a 2-replica cluster, arrivals following a diurnal
(day/night) modulated trace, every request tagged with TTFT/ITL SLOs.
``--disconnect-rate R`` makes a seeded fraction of clients hang up after
a few tokens, cancelling their requests mid-flight; the report prints
goodput and SLO attainment next to raw throughput:

    python examples/serving_traffic.py --stream --disconnect-rate 0.25
"""

import argparse

from repro import (
    ClusterConfig,
    EngineConfig,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    Workload,
    cluster_c,
    get_pair,
    run_cluster,
    run_serving,
)
from repro.util.tables import format_table
from repro.workloads import (
    MultiTurnTemplate,
    SharedPrefixTemplate,
    cloud_edge_arrivals,
    cloud_edge_cluster,
    cloud_edge_fault_plan,
    cloud_edge_prompts,
    diurnal_arrivals,
    make_prompt,
    multiturn_arrivals,
    poisson_arrivals,
)

N_REQUESTS = 12
RATE = 1.0  # requests per second
KINDS = ("wikitext", "code", "explain", "paper", "roleplay", "story")


def main_engines() -> None:
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(
                KINDS[i % len(KINDS)], length=64, vocab=pair.target_arch.vocab
            ),
            n_generate=64,
        )
        for i in range(N_REQUESTS)
    )
    workload = Workload(
        jobs=jobs, arrivals=poisson_arrivals(RATE, N_REQUESTS, seed=21)
    )

    rows = []
    reports = {}
    for engine in (SpeculativeEngine, PipeInferEngine):
        backend = OracleBackend(pair, head_node=cluster.nodes[0])
        rep = run_serving(engine, backend, cluster, workload)
        reports[engine.name] = rep
        rows.append([
            engine.name,
            f"{rep.throughput:.2f}",
            f"{rep.ttft_p50:.2f}",
            f"{rep.ttft_p95:.2f}",
            f"{rep.itl_p50:.3f}",
            f"{rep.itl_p95:.3f}",
            f"{rep.queue_wait_p95:.2f}",
            f"{rep.makespan:.1f}",
            f"{rep.utilization:.1%}",
        ])

    print(format_table(
        ["strategy", "tok/s", "TTFT p50", "TTFT p95", "ITL p50",
         "ITL p95", "queue p95", "makespan", "util"],
        rows,
        title=(
            f"{pair.label}, cluster C ({cluster.size} nodes) — "
            f"{N_REQUESTS} requests, Poisson {RATE:.1f} req/s"
        ),
    ))

    pipe, spec = reports["pipeinfer"], reports["speculative"]
    identical = pipe.outputs() == spec.outputs()
    print(f"\nBoth engines produced identical per-request output: {identical}")
    print(
        "PipeInfer over the speculative baseline: "
        f"{pipe.throughput / spec.throughput:.2f}x stream throughput, "
        f"{spec.ttft_p95 / pipe.ttft_p95:.2f}x lower p95 TTFT"
    )


def main_prefix_share(share: float) -> None:
    """Prefix-cache demo: same workload, cache off vs on."""
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    template = SharedPrefixTemplate(
        shared_len=96, unique_len=24, share_fraction=share, seed=5
    )
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=32)
        for p in template.prompts(N_REQUESTS, pair.target_arch.vocab)
    )
    workload = Workload(jobs=jobs, max_active=2)

    rows = []
    reports = {}
    for label, prefix_on in (("cache off", False), ("cache on", True)):
        backend = OracleBackend(pair, head_node=cluster.nodes[0])
        cfg = EngineConfig(n_seq_partitions=24, prefix_cache=prefix_on)
        rep = run_serving(PipeInferEngine, backend, cluster, workload, cfg)
        reports[label] = rep
        hit = [r for r in rep.requests if r.cached_tokens > 0]
        miss = [r for r in rep.requests if r.cached_tokens == 0]
        rows.append([
            label,
            f"{rep.throughput:.2f}",
            f"{rep.ttft_mean:.2f}",
            f"{rep.ttft_mean_hit:.2f}" if hit else "-",
            f"{rep.ttft_mean_miss:.2f}" if miss else "-",
            f"{rep.prefix_hit_rate:.1%}",
            f"{rep.makespan:.1f}",
        ])

    print(format_table(
        ["prefix cache", "tok/s", "TTFT mean", "TTFT hit", "TTFT miss",
         "hit rate", "makespan"],
        rows,
        title=(
            f"{pair.label}, cluster C ({cluster.size} nodes) — "
            f"{N_REQUESTS} requests, {share:.0%} shared system prompt"
        ),
    ))

    off, on = reports["cache off"], reports["cache on"]
    print(f"\nIdentical per-request output: {on.outputs() == off.outputs()}")
    print(f"Cache lifecycle: {on.prefix_cache_stats}")
    print(
        f"Prefix cache: {1 - on.ttft_mean / off.ttft_mean:.0%} lower mean "
        f"TTFT, {on.throughput / off.throughput:.2f}x stream throughput"
    )


def main_faulty() -> None:
    """Cloud-edge chaos demo: the same stream, fault-free vs faulty."""
    pair = get_pair("dolphin+tinyllama")
    n_cloud, n_edge = 3, 2
    n_req = 8
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=48)
        for p in cloud_edge_prompts(n_req, pair.target_arch.vocab)
    )
    workload = Workload(jobs=jobs, arrivals=cloud_edge_arrivals(n_req, seed=21))
    plan = cloud_edge_fault_plan(
        seed=7, n_cloud=n_cloud, n_edge=n_edge,
        loss_rate=0.05, crash_rank=n_cloud, crash_at=2.0,
    )

    rows = []
    reports = {}
    for label, fault_plan in (("fault-free", None), ("faulty", plan)):
        backend = OracleBackend(pair, head_node=cloud_edge_cluster().nodes[0])
        rep = run_serving(
            PipeInferEngine,
            backend,
            cloud_edge_cluster(n_cloud, n_edge),
            workload,
            fault_plan=fault_plan,
        )
        reports[label] = rep
        s = rep.stats
        rows.append([
            label,
            f"{rep.throughput:.2f}",
            f"{rep.ttft_p95:.2f}",
            f"{rep.itl_p95:.3f}",
            f"{rep.makespan:.1f}",
            str(s.retransmits),
            str(s.worker_restarts),
            str(s.reprefilled_tokens),
            str(s.degraded_windows),
        ])

    print(format_table(
        ["run", "tok/s", "TTFT p95", "ITL p95", "makespan",
         "retx", "restarts", "re-prefill", "degraded"],
        rows,
        title=(
            f"{pair.label}, cloud-edge ({n_cloud} cloud + {n_edge} edge, "
            f"lossy WAN) — {n_req} requests, 5% loss + jitter + 1 crash"
        ),
    ))

    free, faulty = reports["fault-free"], reports["faulty"]
    print(
        "\nIdentical per-request output under faults: "
        f"{faulty.outputs() == free.outputs()}"
    )
    print(
        "Recovery slowdown: "
        f"{faulty.makespan / free.makespan:.2f}x makespan, "
        f"{free.throughput / faulty.throughput:.2f}x stream throughput lost"
    )


def main_cluster(k: int) -> None:
    """Cluster demo: one conversation stream, K replicas, every policy."""
    pair = get_pair("dolphin+tinyllama")
    n_sessions, n_turns = 8, 4
    template = MultiTurnTemplate(n_turns=n_turns, seed=5)
    workload = Workload(
        jobs=tuple(
            GenerationJob(prompt=p, n_generate=16)
            for p in template.prompts(n_sessions, pair.target_arch.vocab)
        ),
        arrivals=multiturn_arrivals(
            n_sessions, n_turns, turn_gap=45.0, session_rate=0.5, seed=9
        ),
        sessions=template.sessions(n_sessions),
    )
    cfg = EngineConfig(n_seq_partitions=24, prefix_cache=True)

    policies = (
        ("random", "none"),
        ("round_robin", "none"),
        ("least_loaded", "none"),
        ("prefix_affinity", "session"),
    )
    rows = []
    reports = {}
    for routing, affinity in policies:
        clusters = [cluster_c(4) for _ in range(k)]
        backends = [
            OracleBackend(pair, head_node=c.nodes[0]) for c in clusters
        ]
        rep = run_cluster(
            PipeInferEngine, backends, clusters, workload,
            cluster_config=ClusterConfig(
                n_replicas=k, routing=routing, affinity=affinity
            ),
            config=cfg,
        )
        reports[routing] = rep
        rows.append([
            routing,
            f"{rep.throughput:.2f}",
            f"{rep.ttft_mean:.2f}",
            f"{rep.prefix_hit_rate:.1%}",
            "/".join(str(n) for n in rep.routed),
            str(rep.spills),
            str(rep.session_affinity_hits),
            f"{rep.makespan:.1f}",
        ])

    print(format_table(
        ["routing", "tok/s", "TTFT mean", "prefix hits", "per-replica",
         "spills", "affinity hits", "makespan"],
        rows,
        title=(
            f"{pair.label}, {k}x cluster C (4 nodes each) — "
            f"{n_sessions} sessions x {n_turns} turns"
        ),
    ))

    rand, aff = reports["random"], reports["prefix_affinity"]
    identical = all(
        rep.outputs() == rand.outputs() for rep in reports.values()
    )
    print(f"\nIdentical per-request output under every policy: {identical}")
    print(
        "Prefix-affinity over random placement: "
        f"{aff.prefix_hit_rate:.1%} vs {rand.prefix_hit_rate:.1%} cluster "
        f"hit rate, {rand.ttft_mean / aff.ttft_mean:.2f}x lower mean TTFT"
    )


def main_stream(disconnect_rate: float) -> None:
    """Streaming demo: async clients over one cluster, some disconnecting.

    A diurnal (day/night modulated) arrival trace drives N async client
    coroutines through an :class:`repro.api.AsyncFrontend`; each client
    iterates its tokens as verification accepts them, and a seeded
    fraction disconnects after a few tokens — cancelling the request
    mid-flight (speculation invalidated, KV released, verified prefix
    donated).  The final report shows goodput against the per-request
    TTFT/ITL SLO tags next to raw throughput.
    """
    import asyncio

    from repro.api import AsyncFrontend
    from repro.serve import EngineCluster
    from repro.util.rng import hash_tokens, unit_float

    pair = get_pair("dolphin+tinyllama")
    n_requests = N_REQUESTS
    arrivals = diurnal_arrivals(RATE, n_requests, period=30.0,
                                amplitude=0.8, seed=4)
    jobs = [
        GenerationJob(
            prompt=make_prompt(KINDS[i % len(KINDS)], length=32 + 8 * i,
                               vocab=pair.target_arch.vocab),
            n_generate=16,
        )
        for i in range(n_requests)
    ]
    drops = {
        i for i in range(n_requests)
        if unit_float(hash_tokens(4, (i,), salt=17)) < disconnect_rate
    }

    clusters = [cluster_c(4) for _ in range(2)]
    backends = [OracleBackend(pair, head_node=c.nodes[0]) for c in clusters]
    frontend = AsyncFrontend(EngineCluster(
        PipeInferEngine, backends, clusters,
        cluster_config=ClusterConfig(n_replicas=2, routing="least_loaded"),
    ))

    async def client(i: int) -> tuple:
        got = []
        async for tok in frontend.stream(
            jobs[i], arrival=arrivals[i], ttft_slo=60.0, itl_slo=2.5
        ):
            got.append(tok)
            if i in drops and len(got) >= 4:
                break  # client walks away mid-generation
        return i, got

    async def scenario():
        return await asyncio.gather(*(client(i) for i in range(n_requests)))

    outs = dict(asyncio.run(scenario()))
    report = frontend.report()
    by_id = {r.req_id: r for r in report.merged.requests}
    rows = []
    for i in range(n_requests):
        rec = by_id[i]
        rows.append([
            str(i),
            f"{arrivals[i]:.1f}",
            str(len(outs[i])),
            "yes" if rec.cancelled else "",
            f"{rec.ttft:.1f}" if rec.n_tokens else "-",
            f"{rec.slo_attainment:.0%}" if rec.n_tokens else "-",
        ])
    print(format_table(
        ["req", "arrival", "streamed", "dropped", "TTFT", "SLO ok"],
        rows,
        title=(
            f"{pair.label}, 2-replica cluster — {n_requests} streaming "
            f"clients, diurnal arrivals, disconnect rate {disconnect_rate:.0%}"
        ),
    ))
    merged = report.merged
    print(
        f"\nthroughput {merged.throughput:.2f} tok/s | goodput "
        f"{merged.goodput:.2f} tok/s | SLO attainment "
        f"{merged.slo_attainment:.1%} (p95 floor "
        f"{merged.slo_attainment_p95:.1%}) | cancelled "
        f"{merged.n_cancelled}/{n_requests}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--prefix-share", type=float, default=None, metavar="F",
        help="run the shared-prefix demo with fraction F of requests "
             "sharing a system prompt (prefix cache off vs on)",
    )
    parser.add_argument(
        "--faulty", action="store_true",
        help="run the cloud-edge chaos demo (lossy WAN, straggling edge, "
             "mid-stream worker crash) fault-free vs faulty",
    )
    parser.add_argument(
        "--replicas", type=int, default=None, metavar="K",
        help="run the cluster demo: a multi-turn stream through K "
             "replicas under each routing policy",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="run the streaming demo: async clients over a 2-replica "
             "cluster with diurnal arrivals and SLO-tagged requests",
    )
    parser.add_argument(
        "--disconnect-rate", type=float, default=0.0, metavar="R",
        help="with --stream: fraction of clients that disconnect after "
             "a few tokens (seeded, deterministic)",
    )
    args = parser.parse_args()
    if args.stream:
        main_stream(args.disconnect_rate)
    elif args.replicas is not None:
        main_cluster(args.replicas)
    elif args.faulty:
        main_faulty()
    elif args.prefix_share is None:
        main_engines()
    else:
        main_prefix_share(args.prefix_share)


if __name__ == "__main__":
    main()
