#!/usr/bin/env python3
"""Scenario: serving a 120B model on a heterogeneous Beowulf cluster.

The paper's motivating deployment: commodity hardware, Gigabit Ethernet,
five old Dell Optiplexes bolted onto eight Xeon nodes (cluster B).  This
example grows the pipeline from the 8 homogeneous Xeons to the full 13
heterogeneous nodes and shows how each strategy tolerates the slow
interconnect and the slow nodes — PipeInfer's resilience is the paper's
Figure 7c.

    python examples/beowulf_cluster.py
"""

from repro import (
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    cluster_b,
    get_pair,
    run_engine,
)
from repro.util.tables import format_series
from repro.workloads.prompts import make_prompt


def main() -> None:
    pair = get_pair("goliath+xwin7b")  # the poorly-aligned 120B pair
    prompt = make_prompt("story", length=128, vocab=pair.target_arch.vocab)
    job = GenerationJob(prompt=prompt, n_generate=160)

    node_counts = (4, 8, 13)
    series = {"Iter.": [], "Spec.": [], "Pipe.": []}
    for n in node_counts:
        cluster = cluster_b(n)
        for engine, label in (
            (IterativeEngine, "Iter."),
            (SpeculativeEngine, "Spec."),
            (PipeInferEngine, "Pipe."),
        ):
            backend = OracleBackend(pair, head_node=cluster.nodes[0])
            report = run_engine(engine, backend, cluster, job)
            series[label].append(report.generation_speed)

    print(format_series(
        "nodes", list(node_counts), series,
        title=f"{pair.label} on the Beowulf cluster (GigE; 13 nodes adds "
              "five old Optiplexes)",
        unit="tokens/s",
    ))
    ratio8 = series["Pipe."][1] / series["Spec."][1]
    print(f"\nAt 8 nodes PipeInfer delivers {ratio8:.2f}x the speculative "
          "baseline despite the 52% acceptance rate — early cancellation "
          "flushes the rejected runs before the slow nodes waste time on "
          "them.")


if __name__ == "__main__":
    main()
