#!/usr/bin/env python3
"""Scenario: picking a draft model for a mixed-vendor GPU cluster.

The paper's GPU study (Section VI) runs seven target/draft pairs on four
heterogeneous GPUs (MI60, P40, Titan V, RTX 3090) over InfiniBand QDR.
This example sweeps the pairs, reports PipeInfer vs the speculative
baseline, and shows the prompt-class sensitivity of each (Figure 10).

    python examples/gpu_serving.py
"""

from repro import (
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    gpu_testbed,
    run_engine,
)
from repro.models.zoo import GPU_PAIRS
from repro.util.tables import format_table
from repro.workloads.prompts import PROMPT_CLASSES, make_prompt


def main() -> None:
    cluster = gpu_testbed()
    rows = []
    for pair in GPU_PAIRS.values():
        prompt = make_prompt("explain", 128, pair.target_arch.vocab)
        job = GenerationJob(prompt=prompt, n_generate=192)
        speeds = {}
        for engine in (PipeInferEngine, SpeculativeEngine):
            backend = OracleBackend(pair, head_node=cluster.nodes[0])
            speeds[engine.name] = run_engine(engine, backend, cluster, job)
        ratio = (speeds["pipeinfer"].generation_speed
                 / speeds["speculative"].generation_speed)
        rows.append([
            pair.label,
            f"{speeds['pipeinfer'].generation_speed:.2f}",
            f"{speeds['speculative'].generation_speed:.2f}",
            f"{ratio:.2f}x",
        ])
    print(format_table(
        ["pair", "PipeInfer tok/s", "Speculative tok/s", "ratio"],
        rows, title="4-GPU cluster (Table IV testbed)",
    ))

    # Prompt sensitivity for the Senku pair, as in Figure 10.
    pair = GPU_PAIRS["senku+tinyllama"]
    print("\nPrompt-class sensitivity (Senku 70B + TinyLlama):")
    for kind in ("explain", "paper", "roleplay", "code"):
        cls = PROMPT_CLASSES[kind]
        backend = OracleBackend(
            pair, head_node=cluster.nodes[0],
            acceptance_override=min(max(pair.acceptance + cls.acceptance_delta, 0.01), 0.99),
        )
        job = GenerationJob(make_prompt(kind, 128, pair.target_arch.vocab), 160)
        r = run_engine(PipeInferEngine, backend, cluster, job)
        print(f"  {cls.description:<42} {r.generation_speed:6.2f} tok/s "
              f"(acceptance {r.acceptance_rate:.0%})")


if __name__ == "__main__":
    main()
