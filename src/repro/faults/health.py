"""Per-stage health tracking with hysteresis, gating speculation depth.

Every fault signal (a retransmission timeout toward a rank, a worker
crash) bumps that rank's exponentially-decayed fault score; straggler
windows force their rank degraded outright.  A rank whose score crosses
``hi`` is *degraded*; it only recovers once the score decays below ``lo``
— the hysteresis gap is the "stable window" graceful degradation requires
before speculation resumes.  The serving head polls :meth:`degraded` each
scheduling round and gates speculative drafting to depth 0 while any rank
is unhealthy (speculative work is disposable, so shedding it first is the
cheapest way to stop feeding a flapping link).

All state advances on simulated time only (``math.exp`` of sim-time
deltas), so the monitor is exactly as deterministic as the kernel.
"""

from __future__ import annotations

import math
from typing import Dict, Set


class HealthMonitor:
    """Exponentially-decayed per-rank fault scores with hysteresis."""

    def __init__(
        self,
        kernel,
        stats,
        tau: float = 0.25,
        hi: float = 3.0,
        lo: float = 0.5,
    ) -> None:
        self.kernel = kernel
        self.stats = stats
        self.tau = tau
        self.hi = hi
        self.lo = lo
        self._value: Dict[int, float] = {}
        self._last: Dict[int, float] = {}
        self._hot: Set[int] = set()
        #: Ranks inside a forced-degraded window (straggler injection),
        #: reference counted so overlapping windows compose.
        self._forced: Dict[int, int] = {}
        self._was_degraded = False

    # -- signal inputs -------------------------------------------------------

    def record_fault(self, now: float, rank: int, weight: float = 1.0) -> None:
        """A fault event (timeout, crash) attributed to ``rank``."""
        v = self._decayed(rank, now) + weight
        self._value[rank] = v
        self._last[rank] = now
        if v >= self.hi:
            self._hot.add(rank)

    def force(self, rank: int, active: bool) -> None:
        """Enter/leave a forced-degraded window for ``rank``."""
        count = self._forced.get(rank, 0) + (1 if active else -1)
        if count > 0:
            self._forced[rank] = count
        else:
            self._forced.pop(rank, None)

    # -- queries -------------------------------------------------------------

    def degraded(self, now: float) -> bool:
        """True while any rank is unhealthy; counts degraded windows.

        Healthy-to-degraded transitions increment
        ``stats.degraded_windows`` — one count per continuous window, as
        observed by the polling serving head.
        """
        if self._forced:
            result = True
        else:
            for rank in [r for r in self._hot if self._decayed(r, now) <= self.lo]:
                self._hot.discard(rank)
            result = bool(self._hot)
        if result and not self._was_degraded:
            self.stats.degraded_windows += 1
        self._was_degraded = result
        return result

    def _decayed(self, rank: int, now: float) -> float:
        v = self._value.get(rank, 0.0)
        if v == 0.0:
            return 0.0
        return v * math.exp(-(now - self._last[rank]) / self.tau)
