"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a frozen description of every fault a simulation
will experience — link-level loss/jitter/outage windows, stage straggler
windows, and worker crash/restart events — plus the recovery tuning (the
retransmission timeout and backoff cap, and the health monitor's EWMA
parameters).  Plans are pure data: all randomness they imply is drawn
deterministically from ``plan.seed`` through :mod:`repro.util.rng` at
injection time, never from wall-clock state, so a faulty run replays
byte-identically (the determinism contract of ``docs/engine-internals.md``
extends to faults — see ``docs/fault-tolerance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

_INF = float("inf")


@dataclass(frozen=True)
class LinkFault:
    """Fault behaviour on one directed link, active inside a time window.

    Several entries may target the same ``(src, dst)`` pair; their windows
    compose (loss draws are evaluated per entry, jitters add).

    Attributes:
        src, dst: the directed link the fault applies to.
        loss_rate: probability each transmission on the link is dropped.
        jitter: maximum extra latency (seconds) added per message, drawn
            uniformly from ``[0, jitter)``.
        outage: while active, drop *every* bulk-lane message (the cable is
            saturated/black-holed); eager-lane control markers still pass
            unless ``outage_all_lanes`` is set.
        outage_all_lanes: extend an outage to the eager lane too.
        start, end: active window in simulated seconds (``end`` exclusive).
    """

    src: int
    dst: int
    loss_rate: float = 0.0
    jitter: float = 0.0
    outage: bool = False
    outage_all_lanes: bool = False
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("loopback links cannot fault")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        if self.end <= self.start:
            raise ValueError(f"empty fault window [{self.start}, {self.end})")


@dataclass(frozen=True)
class StragglerSpec:
    """One stage computing slower by ``factor`` inside a time window."""

    rank: int
    factor: float
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"straggler factor must be >= 1, got {self.factor}")
        if self.end <= self.start:
            raise ValueError(f"empty straggler window [{self.start}, {self.end})")


@dataclass(frozen=True)
class CrashSpec:
    """One worker process dying at ``at`` and restarting after a delay.

    The crash loses the worker's in-memory KV shard and every message
    queued at its endpoint; the restarted process comes back empty and the
    serving head re-prefills each live request's verified tokens.
    """

    rank: int
    at: float
    restart_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError(f"crash time must be non-negative, got {self.at}")
        if self.restart_delay <= 0.0:
            raise ValueError(
                f"restart_delay must be positive, got {self.restart_delay}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one simulation, plus recovery tuning.

    Attributes:
        seed: root of every deterministic fault draw (loss, jitter).
        link_faults / stragglers / crashes: the scheduled faults.
        rto: initial retransmission timeout (seconds); doubles per retry.
        max_retries: retransmissions per message before the simulation is
            declared unrecoverable (raises ``SimError``).
        health_tau: exponential-decay time constant (seconds) of the
            per-stage fault EWMA.
        health_hi: EWMA value at which a stage is declared degraded
            (speculation depth gates to 0).
        health_lo: EWMA value below which a degraded stage is healthy
            again — the hysteresis gap forms the "stable window".
    """

    seed: int = 0
    link_faults: Tuple[LinkFault, ...] = field(default=())
    stragglers: Tuple[StragglerSpec, ...] = field(default=())
    crashes: Tuple[CrashSpec, ...] = field(default=())
    rto: float = 0.02
    max_retries: int = 12
    health_tau: float = 0.25
    health_hi: float = 3.0
    health_lo: float = 0.5

    def __post_init__(self) -> None:
        if self.rto <= 0.0:
            raise ValueError(f"rto must be positive, got {self.rto}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be positive, got {self.max_retries}")
        if self.health_tau <= 0.0:
            raise ValueError(f"health_tau must be positive, got {self.health_tau}")
        if not 0.0 < self.health_lo < self.health_hi:
            raise ValueError(
                f"need 0 < health_lo < health_hi, got "
                f"{self.health_lo} / {self.health_hi}"
            )

    def is_empty(self) -> bool:
        """True when the plan schedules no faults at all."""
        return not (self.link_faults or self.stragglers or self.crashes)

    def needs_reliable(self) -> bool:
        """True when messages can be lost and acks/retransmits are needed."""
        return bool(self.link_faults or self.crashes)

    def validate_for(self, n_ranks: int, head_rank: int | None = None) -> None:
        """Check every fault target exists in an ``n_ranks`` simulation.

        The head-crash check runs only when ``head_rank`` is known (the
        injector re-validates once the engine is attached).
        """
        for f in self.link_faults:
            for r in (f.src, f.dst):
                if not 0 <= r < n_ranks:
                    raise ValueError(f"link fault rank {r} outside 0..{n_ranks - 1}")
        for s in self.stragglers:
            if not 0 <= s.rank < n_ranks:
                raise ValueError(f"straggler rank {s.rank} outside 0..{n_ranks - 1}")
        for c in self.crashes:
            if not 0 <= c.rank < n_ranks:
                raise ValueError(f"crash rank {c.rank} outside 0..{n_ranks - 1}")
            if head_rank is not None and c.rank == head_rank:
                raise ValueError(
                    f"rank {c.rank} is the head; only pipeline workers may crash"
                )
