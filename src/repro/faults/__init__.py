"""Deterministic fault injection and failure recovery.

See ``docs/fault-tolerance.md`` for the failure model, the detection /
retransmit / re-prefill recovery flow, and how the determinism contract
extends to faulty runs.
"""

from repro.faults.health import HealthMonitor
from repro.faults.inject import FaultInjector, FaultyLink
from repro.faults.plan import CrashSpec, FaultPlan, LinkFault, StragglerSpec

__all__ = [
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultyLink",
    "HealthMonitor",
    "LinkFault",
    "StragglerSpec",
]
