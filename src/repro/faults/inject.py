"""Fault injection: faulty links and the injector orchestrating a plan.

:class:`FaultyLink` replaces :class:`~repro.cluster.interconnect.Link` on
pairs a plan targets: the timing model is identical, but each transmission
additionally draws (deterministically, from the plan seed and a per-link
transmission counter) whether it is lost, how much jitter it suffers, and
whether an outage window swallows it.  A dropped bulk message still
occupies the wire — loss happens past the sender's serializer — but its
delivery callback never fires.

:class:`FaultInjector` wires a :class:`~repro.faults.plan.FaultPlan` into a
fresh simulation: the link factory, the ack/retransmit reliability layer
(:mod:`repro.comm.reliable`), the per-stage :class:`HealthMonitor`,
straggler slowdown windows, and worker crash/restart events.  Fault-free
runs never construct an injector, and every hot-path hook is a single
``is None``/falsy check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.interconnect import Link, LinkSpec
from repro.cluster.kernel import SimKernel
from repro.comm.reliable import ReliableTransport
from repro.faults.health import HealthMonitor
from repro.faults.plan import CrashSpec, FaultPlan, LinkFault, StragglerSpec
from repro.util.rng import hash_tokens, unit_float

#: Domain separators for the deterministic fault draws.
_LOSS_SALT = 211
_JITTER_SALT = 223


class FaultyLink(Link):
    """A link whose transmissions may be dropped, jittered, or blacked out."""

    def __init__(
        self,
        kernel: SimKernel,
        spec: LinkSpec,
        faults: Tuple[LinkFault, ...],
        seed: int,
        src: int,
        dst: int,
    ) -> None:
        super().__init__(kernel, spec)
        self._faults = faults
        self._seed = seed
        self._src = src
        self._dst = dst
        #: Per-link transmission counter feeding the deterministic draws —
        #: retransmissions get fresh draws, identical replays get identical
        #: ones.
        self._n_tx = 0
        #: Messages swallowed by loss draws or outage windows.
        self.n_lost = 0

    def transmit(self, nbytes: float, on_delivered, eager_hint: bool = False) -> float:
        # Timing replicates Link.transmit exactly: a lost bulk message has
        # already crossed the sender's serializer, so it occupies the wire
        # (advances the bulk lane) even though it never arrives.
        now = self._kernel.now
        self.n_messages += 1
        spec = self.spec
        infinite = spec.bandwidth == float("inf")
        wire_time = 0.0 if infinite else nbytes / spec.bandwidth
        eager = eager_hint or infinite or nbytes <= spec.eager_threshold
        if eager:
            arrival = now + spec.latency + wire_time
            self.eager_bytes += nbytes
            if eager_hint:
                self.n_eager_hinted += 1
                self.hinted_bytes += nbytes
        else:
            start = max(now, self._bulk_free_at)
            self._bulk_free_at = start + wire_time
            arrival = self._bulk_free_at + spec.latency
            self.bulk_bytes += nbytes

        self._n_tx += 1
        key = (self._src, self._dst, self._n_tx)
        extra = 0.0
        for f in self._faults:
            if not f.start <= now < f.end:
                continue
            if f.outage and (not eager or f.outage_all_lanes):
                self.n_lost += 1
                return arrival
            if f.loss_rate > 0.0 and (
                unit_float(hash_tokens(self._seed, key, salt=_LOSS_SALT))
                < f.loss_rate
            ):
                self.n_lost += 1
                return arrival
            if f.jitter > 0.0:
                extra += f.jitter * unit_float(
                    hash_tokens(self._seed, key, salt=_JITTER_SALT)
                )

        arrival += extra
        pending = self._pending.get(arrival)
        if pending is None:
            self._pending[arrival] = [on_delivered]
            self._kernel.call_at(arrival, self._drain)
        else:
            pending.append(on_delivered)
        return arrival


class FaultInjector:
    """Wires one :class:`FaultPlan` into one simulation."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.kernel: Optional[SimKernel] = None
        self.net = None
        self.stats = None
        self.health: Optional[HealthMonitor] = None
        self.engine = None
        self._stragglers_by_rank: Dict[int, List[StragglerSpec]] = {}
        for s in plan.stragglers:
            self._stragglers_by_rank.setdefault(s.rank, []).append(s)

    # -- wiring --------------------------------------------------------------

    def install(self, kernel: SimKernel, network, metrics) -> None:
        """Attach to a freshly built network (before the engine spawns)."""
        plan = self.plan
        plan.validate_for(network.size)
        self.kernel = kernel
        self.net = network
        self.stats = metrics.stats
        self.health = HealthMonitor(
            kernel,
            metrics.stats,
            tau=plan.health_tau,
            hi=plan.health_hi,
            lo=plan.health_lo,
        )
        if plan.link_faults:
            by_pair: Dict[Tuple[int, int], List[LinkFault]] = {}
            for f in plan.link_faults:
                by_pair.setdefault((f.src, f.dst), []).append(f)

            def factory(k: SimKernel, spec: LinkSpec, src: int, dst: int) -> Link:
                faults = by_pair.get((src, dst))
                if faults:
                    return FaultyLink(k, spec, tuple(faults), plan.seed, src, dst)
                return Link(k, spec)

            network.cluster._link_factory = factory
        if plan.needs_reliable():
            network._reliable = ReliableTransport(
                kernel,
                network,
                rto=plan.rto,
                max_retries=plan.max_retries,
                stats=metrics.stats,
                health=self.health,
            )
        for s in plan.stragglers:
            kernel.call_at(s.start, lambda r=s.rank: self.health.force(r, True))
            if s.end != float("inf"):
                kernel.call_at(s.end, lambda r=s.rank: self.health.force(r, False))

    def attach_engine(self, engine, head_rank: Optional[int] = None) -> None:
        """Learn the engine (after spawn) and schedule crash events."""
        self.engine = engine
        engine.injector = self
        self.plan.validate_for(
            self.net.size,
            head_rank=engine.head_rank() if head_rank is None else head_rank,
        )
        for c in self.plan.crashes:
            self.kernel.call_at(c.at, lambda c=c: self._crash(c))

    # -- hooks queried by the engine layers ----------------------------------

    def stage_time_factor(self, rank: int) -> float:
        """Combined straggler multiplier active for ``rank`` right now."""
        specs = self._stragglers_by_rank.get(rank)
        if not specs:
            return 1.0
        now = self.kernel.now
        factor = 1.0
        for s in specs:
            if s.start <= now < s.end:
                factor *= s.factor
        return factor

    def links_lost(self) -> int:
        """Messages swallowed across every faulty link (introspection)."""
        return sum(
            link.n_lost
            for link in self.net.cluster._links.values()
            if isinstance(link, FaultyLink)
        )

    # -- crash / restart ------------------------------------------------------

    def _crash(self, spec: CrashSpec) -> None:
        engine = self.engine
        proc = engine._worker_procs.get(spec.rank)
        if proc is not None and proc.alive:
            proc.alive = False
            proc.gen.close()
        # The endpoint forgets everything queued or parked; its expected
        # sequence numbers jump to the sender counters so in-flight
        # pre-crash traffic arrives stale and is dropped + re-acked.
        self.net.endpoints[spec.rank].reset_after_crash()
        self.health.record_fault(self.kernel.now, spec.rank, weight=self.plan.health_hi)
        self.kernel.call_after(spec.restart_delay, lambda: self._restart(spec.rank))

    def _restart(self, rank: int) -> None:
        self.engine.respawn_worker(rank)
        self.stats.worker_restarts += 1
        # The serving head polls this list and runs KV recovery
        # (cancel in-flight runs, re-prefill verified tokens).
        self.engine._fault_events.append(("worker_restart", rank))
