"""Metric collection during a simulated (or functional) generation run."""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional


@dataclass
class RunStats:
    """Pipeline-run bookkeeping aggregated over one generation."""

    dispatched: int = 0
    speculative: int = 0
    canonical: int = 0
    completed: int = 0
    cancelled_invalid: int = 0
    cancelled_superfluous: int = 0
    draft_tokens_proposed: int = 0
    draft_tokens_accepted: int = 0
    draft_tokens_checked: int = 0
    cancel_signals_sent: int = 0
    worker_layer_evals_skipped: int = 0
    #: Prompt tokens served from the cross-request prefix cache instead
    #: of being prefilled (aggregated over requests in serving reports).
    cached_prompt_tokens: int = 0
    #: Fused stage windows that batched >1 run.  A fused window is
    #: recorded *once* with its run count (``fused_runs`` accumulates the
    #: widths) — never once per member run — and its busy time is charged
    #: once for the whole batch, so per-stage utilization reports stay
    #: comparable to pre-fusion runs.
    fused_batches: int = 0
    fused_runs: int = 0
    #: Fault-tolerance counters (zero on fault-free runs).  A ``timeout``
    #: is one retransmission watchdog firing without an ack; each fires a
    #: ``retransmit`` of the unacknowledged message.  ``reprefilled_tokens``
    #: counts verified tokens re-prefilled to rebuild KV after a worker
    #: restart; ``degraded_windows`` counts healthy-to-degraded transitions
    #: of the speculation-gating health monitor.
    retransmits: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    reprefilled_tokens: int = 0
    degraded_windows: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Per-token acceptance over draft tokens the target examined.

        The paper's Section V-B rates (79%, 66%, ...) are per-token:
        tokens past a rejection were never checked and do not count.
        """
        if self.draft_tokens_checked == 0:
            return 0.0
        return self.draft_tokens_accepted / self.draft_tokens_checked

    @property
    def dispatch_efficiency(self) -> float:
        """Fraction of *dispatched* draft tokens eventually accepted.

        Lower than the acceptance rate under continuous speculation: deep
        chained drafts are often invalidated before verification.
        """
        if self.draft_tokens_proposed == 0:
            return 0.0
        return self.draft_tokens_accepted / self.draft_tokens_proposed

    def merge(self, other: "RunStats") -> None:
        """Accumulate another collection's counters (serving aggregation)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @classmethod
    def merged(cls, parts) -> "RunStats":
        """Sum per-request stats into one aggregate."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total


class MetricsCollector:
    """Accumulates the timeline of one generation run.

    The head node drives it: marks prompt-processing completion, records
    each accepted token's simulated timestamp, and registers per-node busy
    time reported by workers.
    """

    def __init__(self) -> None:
        self.prefill_end: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Timestamp per accepted token (excludes the prompt-end sample).
        self.token_times: List[float] = []
        self.stats = RunStats()
        #: rank -> accumulated busy seconds.
        self.busy_time: Dict[int, float] = {}
        #: rank -> modeled resident memory in bytes.
        self.node_memory: Dict[int, float] = {}
        #: Raw samples behind the width histograms.  The hot path only
        #: appends; binning into dicts is deferred to the read-side
        #: properties, which run once per report rather than per window.
        self._fusion_raw: List[tuple] = []
        self._draft_raw: List[int] = []

    # -- timeline -----------------------------------------------------------

    def mark_prefill_end(self, t: float) -> None:
        self.prefill_end = t

    def record_tokens(self, t: float, n: int) -> None:
        """Record ``n`` tokens accepted at simulated time ``t``."""
        self.token_times.extend([t] * n)

    def mark_finish(self, t: float) -> None:
        self.finish_time = t

    def add_busy(self, rank: int, seconds: float) -> None:
        self.busy_time[rank] = self.busy_time.get(rank, 0.0) + seconds

    def record_fusion(self, rank: int, width: int) -> None:
        """Record one stage window that evaluated ``width`` live runs."""
        self._fusion_raw.append((rank, width))

    def record_draft_batch(self, width: int) -> None:
        """Record one head draft pass that proposed for ``width`` chains."""
        self._draft_raw.append(width)

    @property
    def fusion_width(self) -> Dict[int, Dict[int, int]]:
        """rank -> {fusion width -> window count}: how many runs each
        stage's fusion windows batched together (width 1 = no fusion).
        Binned on demand from the raw append-only samples."""
        out: Dict[int, Dict[int, int]] = {}
        for rank, width in self._fusion_raw:
            hist = out.setdefault(rank, {})
            hist[width] = hist.get(width, 0) + 1
        return out

    @property
    def draft_batch_width(self) -> Dict[int, int]:
        """{batch width -> pass count}: how many request chains each of
        the head's draft passes proposed for (width 1 = no batching).
        Binned on demand from the raw append-only samples."""
        out: Dict[int, int] = {}
        for width in self._draft_raw:
            out[width] = out.get(width, 0) + 1
        return out

    def fusion_width_hist(self) -> Dict[int, int]:
        """Width -> window count aggregated over every stage."""
        total: Dict[int, int] = {}
        for _rank, width in self._fusion_raw:
            total[width] = total.get(width, 0) + 1
        return total

    def set_node_memory(self, rank: int, nbytes: float) -> None:
        self.node_memory[rank] = nbytes

    # -- derived metrics ------------------------------------------------------

    @property
    def n_tokens(self) -> int:
        return len(self.token_times)

    def generation_speed(self) -> float:
        """Accepted tokens per second, prompt processing excluded."""
        if self.prefill_end is None or not self.token_times:
            return 0.0
        end = self.finish_time if self.finish_time is not None else self.token_times[-1]
        elapsed = end - self.prefill_end
        if elapsed <= 0:
            return 0.0
        return self.n_tokens / elapsed

    def ttft(self) -> float:
        """Seconds from prompt-processing completion to first acceptance."""
        if self.prefill_end is None or not self.token_times:
            return float("inf")
        return self.token_times[0] - self.prefill_end

    def itl(self) -> float:
        """Mean inter-token gap over accepted tokens."""
        if len(self.token_times) < 2:
            return float("inf")
        first, last = self.token_times[0], self.token_times[-1]
        return (last - first) / (len(self.token_times) - 1)

    def itl_samples(self) -> List[float]:
        """Individual inter-token gaps (for percentile aggregation).

        A verification batch that accepts several tokens at once records
        them at the same timestamp, contributing zero-width gaps — the
        burstiness is part of the latency profile, not an artifact.
        """
        return [
            b - a for a, b in zip(self.token_times, self.token_times[1:])
        ]

    def utilization(self, total_time: Optional[float] = None) -> float:
        """Mean busy fraction across nodes that reported busy time."""
        if not self.busy_time:
            return 0.0
        if total_time is None:
            if self.prefill_end is None or self.finish_time is None:
                return 0.0
            total_time = self.finish_time - self.prefill_end
        if total_time <= 0:
            return 0.0
        vals = [min(b / total_time, 1.0) for b in self.busy_time.values()]
        return sum(vals) / len(vals)

    def mean_node_memory(self) -> float:
        if not self.node_memory:
            return 0.0
        return sum(self.node_memory.values()) / len(self.node_memory)

    def max_node_memory(self) -> float:
        if not self.node_memory:
            return 0.0
        return max(self.node_memory.values())
