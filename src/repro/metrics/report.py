"""Per-run reports, repetition aggregation, and serving-level reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.metrics.collectors import MetricsCollector, RunStats
from repro.metrics.percentiles import p50, p95, p99


@dataclass
class EngineReport:
    """One generation run's headline numbers."""

    strategy: str
    n_nodes: int
    tokens: List[int]
    generation_speed: float
    ttft: float
    itl: float
    acceptance_rate: float
    utilization: float
    mean_node_memory: float
    max_node_memory: float
    stats: RunStats
    #: Fusion-width histogram (width -> stage-window count, all ranks).
    fusion_width: Dict[int, int] = field(default_factory=dict)
    #: Draft-batch-width histogram (chains per head draft pass -> count).
    draft_batch_width: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_collector(
        cls,
        strategy: str,
        n_nodes: int,
        tokens: Sequence[int],
        metrics: MetricsCollector,
    ) -> "EngineReport":
        return cls(
            strategy=strategy,
            n_nodes=n_nodes,
            tokens=list(tokens),
            generation_speed=metrics.generation_speed(),
            ttft=metrics.ttft(),
            itl=metrics.itl(),
            acceptance_rate=metrics.stats.acceptance_rate,
            utilization=metrics.utilization(),
            mean_node_memory=metrics.mean_node_memory(),
            max_node_memory=metrics.max_node_memory(),
            stats=metrics.stats,
            fusion_width=metrics.fusion_width_hist(),
            draft_batch_width=dict(metrics.draft_batch_width),
        )

    def speed_per_gb(self) -> float:
        """Figure 7a's memory-efficiency metric: tokens/s per mean GB."""
        gb = self.mean_node_memory / 1e9
        return self.generation_speed / gb if gb > 0 else 0.0


@dataclass
class RequestReport:
    """One served request's timeline and output.

    Times are absolute simulated timestamps; latencies derive from them:

    - ``queue_wait`` — arrival to admission (prefill dispatch);
    - ``ttft`` — arrival to the first output token (sampled when the
      prompt's prefill logits return), the serving-level definition that
      *includes* queue wait;
    - ``itl_samples`` — individual gaps between accepted tokens.

    ``cached_tokens`` counts prompt tokens materialized from the
    cross-request prefix cache (metadata copies) instead of prefilled;
    ``prompt_tokens`` is the full prompt length, so
    ``cached_tokens / prompt_tokens`` is the request's prefix hit rate.

    SLO tags ride along from the :class:`~repro.serve.scheduler.Request`:
    ``ttft_slo`` judges the first token, ``itl_slo`` judges each
    inter-token gap; ``good_tokens`` counts tokens delivered within their
    deadline (all of them when no SLO is set).  ``cancelled`` marks a
    mid-flight client disconnect — ``tokens`` holds whatever was verified
    before the cancel (empty when it never left the queue).
    """

    req_id: int
    tokens: List[int]
    arrival: float
    admitted_at: float
    prefill_end: float
    finish_time: float
    itl_samples: List[float]
    stats: RunStats
    prompt_tokens: int = 0
    cached_tokens: int = 0
    priority: int = 0
    ttft_slo: Optional[float] = None
    itl_slo: Optional[float] = None
    cancelled: bool = False

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)

    @property
    def queue_wait(self) -> float:
        return self.admitted_at - self.arrival

    @property
    def ttft(self) -> float:
        return self.prefill_end - self.arrival

    @property
    def itl(self) -> float:
        if not self.itl_samples:
            return float("inf")
        return sum(self.itl_samples) / len(self.itl_samples)

    @property
    def good_tokens(self) -> int:
        """Tokens delivered within their SLO (the goodput numerator).

        The first output token is judged against ``ttft_slo``; each
        later token against ``itl_slo`` via its inter-token gap.  Unset
        SLOs always pass.  The hop from the prefill-sampled first token
        to the first verified token is not a recorded gap, so one token
        per request can lack a gap sample — it passes (benefit of the
        doubt, deterministic either way).
        """
        n = len(self.tokens)
        if n == 0:
            return 0
        good = 1 if (self.ttft_slo is None or self.ttft <= self.ttft_slo) else 0
        rest = n - 1
        if self.itl_slo is None:
            return good + rest
        gaps = self.itl_samples[:rest]
        good += sum(1 for g in gaps if g <= self.itl_slo)
        return good + (rest - len(gaps))

    @property
    def slo_attainment(self) -> float:
        """Fraction of delivered tokens within SLO (0.0 if none delivered)."""
        n = len(self.tokens)
        return self.good_tokens / n if n else 0.0


@dataclass
class ServingReport:
    """Aggregate metrics over a served request stream.

    Percentiles are computed over the request population (TTFT,
    queue-wait) or over every inter-token gap of every request (ITL).
    Throughput counts generated tokens only, over the makespan from the
    first arrival to the last completion.
    """

    strategy: str
    n_nodes: int
    requests: List[RequestReport]
    makespan: float
    throughput: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    itl_p50: float
    itl_p95: float
    itl_p99: float
    queue_wait_p50: float
    queue_wait_p95: float
    queue_wait_p99: float
    utilization: float
    stats: RunStats
    #: Fusion-width histogram (width -> stage-window count, all ranks).
    fusion_width: Dict[int, int] = field(default_factory=dict)
    #: Draft-batch-width histogram (chains per head draft pass -> count).
    draft_batch_width: Dict[int, int] = field(default_factory=dict)
    #: Prompt tokens served from the cross-request prefix cache.
    prefix_hit_tokens: int = 0
    #: ``prefix_hit_tokens`` over the stream's total prompt tokens.
    prefix_hit_rate: float = 0.0
    #: Mean TTFT over all requests, and split by prefix-cache outcome
    #: (0.0 when the corresponding population is empty) — the cache's
    #: TTFT effect read directly off one report.
    ttft_mean: float = 0.0
    ttft_mean_hit: float = 0.0
    ttft_mean_miss: float = 0.0
    #: Prefix-cache lifecycle counters (hits, donations, evictions,
    #: retained cells) from the serving head's manager; empty when off.
    prefix_cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Event-core efficiency counters: generator resumes executed by the
    #: kernel vs messages made available to receivers over the run.  The
    #: batched inbox hand-off drives ``n_resumes / n_delivered`` toward
    #: one resume per delivery *event* (well below one per message).
    n_resumes: int = 0
    n_delivered: int = 0
    #: Goodput: tokens delivered within their SLO over the makespan.
    #: Equals ``throughput`` when no request carries an SLO tag.
    goodput: float = 0.0
    #: Aggregate SLO attainment: good tokens over delivered tokens
    #: (1.0 when nothing was delivered — vacuously attained).
    slo_attainment: float = 1.0
    #: Per-request SLO-attainment floors over requests that delivered at
    #: least one token (1.0 when none did): ``slo_attainment_p95`` is the
    #: attainment that 95% of requests meet or beat — the lower tail,
    #: since high attainment is good.
    slo_attainment_p50: float = 1.0
    slo_attainment_p95: float = 1.0
    slo_attainment_p99: float = 1.0
    #: Requests cancelled mid-flight (client disconnects).
    n_cancelled: int = 0

    @property
    def resumes_per_message(self) -> float:
        """Process resumes per delivered message (lower is better)."""
        if self.n_delivered <= 0:
            return 0.0
        return self.n_resumes / self.n_delivered

    @classmethod
    def from_requests(
        cls,
        strategy: str,
        n_nodes: int,
        requests: Sequence[RequestReport],
        utilization: float = 0.0,
        extra_stats: Optional[RunStats] = None,
    ) -> "ServingReport":
        if not requests:
            raise ValueError("serving report needs at least one request")
        reqs = sorted(requests, key=lambda r: r.req_id)
        start = min(r.arrival for r in reqs)
        end = max(r.finish_time for r in reqs)
        makespan = max(end - start, 0.0)
        n_tokens = sum(r.n_tokens for r in reqs)
        # Latency percentiles describe served traffic: requests cancelled
        # before delivering anything carry synthetic timestamps (stamped
        # at cancel processing) and are excluded — unless the whole
        # stream was cancelled, in which case they are all we have.
        served = [r for r in reqs if not (r.cancelled and r.n_tokens == 0)]
        if not served:
            served = list(reqs)
        ttfts = [r.ttft for r in served]
        waits = [r.queue_wait for r in served]
        gaps = [g for r in reqs for g in r.itl_samples]
        if not gaps:
            gaps = [float("inf")]
        stats = RunStats.merged(
            [r.stats for r in reqs] + ([extra_stats] if extra_stats else [])
        )
        hit_tokens = sum(r.cached_tokens for r in reqs)
        prompt_tokens = sum(r.prompt_tokens for r in reqs)
        hit = [r.ttft for r in served if r.cached_tokens > 0]
        miss = [r.ttft for r in served if r.cached_tokens == 0]
        good_tokens = sum(r.good_tokens for r in reqs)
        attainments = [r.slo_attainment for r in reqs if r.n_tokens > 0]
        if not attainments:
            attainments = [1.0]
        return cls(
            strategy=strategy,
            n_nodes=n_nodes,
            requests=list(reqs),
            makespan=makespan,
            throughput=n_tokens / makespan if makespan > 0 else 0.0,
            ttft_p50=p50(ttfts),
            ttft_p95=p95(ttfts),
            ttft_p99=p99(ttfts),
            itl_p50=p50(gaps),
            itl_p95=p95(gaps),
            itl_p99=p99(gaps),
            queue_wait_p50=p50(waits),
            queue_wait_p95=p95(waits),
            queue_wait_p99=p99(waits),
            utilization=utilization,
            stats=stats,
            prefix_hit_tokens=hit_tokens,
            prefix_hit_rate=hit_tokens / prompt_tokens if prompt_tokens else 0.0,
            ttft_mean=mean(ttfts),
            ttft_mean_hit=mean(hit) if hit else 0.0,
            ttft_mean_miss=mean(miss) if miss else 0.0,
            goodput=good_tokens / makespan if makespan > 0 else 0.0,
            slo_attainment=good_tokens / n_tokens if n_tokens else 1.0,
            # Negate to read the lower tail off upper-tail percentile
            # helpers; the leading 0.0 normalizes -0.0 back to 0.0.
            slo_attainment_p50=0.0 - p50([-a for a in attainments]),
            slo_attainment_p95=0.0 - p95([-a for a in attainments]),
            slo_attainment_p99=0.0 - p99([-a for a in attainments]),
            n_cancelled=sum(1 for r in reqs if r.cancelled),
        )

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    def token_counts(self) -> Dict[int, int]:
        """Generated-token count per request id."""
        return {r.req_id: r.n_tokens for r in self.requests}

    def outputs(self) -> Dict[int, List[int]]:
        """Generated tokens per request id."""
        return {r.req_id: list(r.tokens) for r in self.requests}


@dataclass
class ClusterReport:
    """Aggregate view of one :class:`repro.serve.EngineCluster` run.

    ``merged`` treats the whole cluster as a single serving system: its
    percentiles, throughput, and ``prefix_hit_rate`` are computed over
    the union of every replica's requests on the shared absolute
    timeline (so cluster throughput reflects wall-clock overlap, not a
    sum of per-replica rates).  ``per_replica`` keeps each replica's own
    :class:`ServingReport` for breakdowns — ``None`` for replicas the
    router never sent a request to.

    The routing counters record what the router actually did:
    ``assignments`` maps every req_id to the replica that served it,
    ``spills`` counts backpressure diversions off the policy's first
    choice, ``migrations`` counts queued requests stolen to a cooler
    replica, and ``session_affinity_hits`` counts follow-up turns that
    landed on their session's pinned replica.
    """

    merged: ServingReport
    per_replica: List[Optional[ServingReport]]
    routing: str
    affinity: str
    n_replicas: int
    #: req_id -> replica index that finally served it.
    assignments: Dict[int, int] = field(default_factory=dict)
    #: Requests routed to each replica (post-spill, post-migration).
    routed: List[int] = field(default_factory=list)
    spills: int = 0
    migrations: int = 0
    session_affinity_hits: int = 0

    @property
    def throughput(self) -> float:
        return self.merged.throughput

    @property
    def goodput(self) -> float:
        return self.merged.goodput

    @property
    def slo_attainment(self) -> float:
        return self.merged.slo_attainment

    @property
    def n_cancelled(self) -> int:
        return self.merged.n_cancelled

    @property
    def prefix_hit_rate(self) -> float:
        return self.merged.prefix_hit_rate

    @property
    def ttft_mean(self) -> float:
        return self.merged.ttft_mean

    @property
    def makespan(self) -> float:
        return self.merged.makespan

    @property
    def n_requests(self) -> int:
        return self.merged.n_requests

    def outputs(self) -> Dict[int, List[int]]:
        """Generated tokens per request id, cluster-wide."""
        return self.merged.outputs()

    def token_counts(self) -> Dict[int, int]:
        """Generated-token count per request id, cluster-wide."""
        return self.merged.token_counts()

    def replica_throughputs(self) -> List[float]:
        """Per-replica throughput (0.0 for replicas that served nothing)."""
        return [r.throughput if r is not None else 0.0 for r in self.per_replica]


def aggregate(reports: Sequence[EngineReport]) -> EngineReport:
    """Average repeated runs of the same configuration (paper: 10 reps)."""
    if not reports:
        raise ValueError("nothing to aggregate")
    first = reports[0]
    if any(r.strategy != first.strategy or r.n_nodes != first.n_nodes for r in reports):
        raise ValueError("aggregate() expects runs of one configuration")
    return EngineReport(
        strategy=first.strategy,
        n_nodes=first.n_nodes,
        tokens=first.tokens,
        generation_speed=mean(r.generation_speed for r in reports),
        ttft=mean(r.ttft for r in reports),
        itl=mean(r.itl for r in reports),
        acceptance_rate=mean(r.acceptance_rate for r in reports),
        utilization=mean(r.utilization for r in reports),
        mean_node_memory=mean(r.mean_node_memory for r in reports),
        max_node_memory=mean(r.max_node_memory for r in reports),
        stats=first.stats,
    )
