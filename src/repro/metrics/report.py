"""Per-run reports and repetition aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import List, Sequence

from repro.metrics.collectors import MetricsCollector, RunStats


@dataclass
class EngineReport:
    """One generation run's headline numbers."""

    strategy: str
    n_nodes: int
    tokens: List[int]
    generation_speed: float
    ttft: float
    itl: float
    acceptance_rate: float
    utilization: float
    mean_node_memory: float
    max_node_memory: float
    stats: RunStats

    @classmethod
    def from_collector(
        cls,
        strategy: str,
        n_nodes: int,
        tokens: Sequence[int],
        metrics: MetricsCollector,
    ) -> "EngineReport":
        return cls(
            strategy=strategy,
            n_nodes=n_nodes,
            tokens=list(tokens),
            generation_speed=metrics.generation_speed(),
            ttft=metrics.ttft(),
            itl=metrics.itl(),
            acceptance_rate=metrics.stats.acceptance_rate,
            utilization=metrics.utilization(),
            mean_node_memory=metrics.mean_node_memory(),
            max_node_memory=metrics.max_node_memory(),
            stats=metrics.stats,
        )

    def speed_per_gb(self) -> float:
        """Figure 7a's memory-efficiency metric: tokens/s per mean GB."""
        gb = self.mean_node_memory / 1e9
        return self.generation_speed / gb if gb > 0 else 0.0


def aggregate(reports: Sequence[EngineReport]) -> EngineReport:
    """Average repeated runs of the same configuration (paper: 10 reps)."""
    if not reports:
        raise ValueError("nothing to aggregate")
    first = reports[0]
    if any(r.strategy != first.strategy or r.n_nodes != first.n_nodes for r in reports):
        raise ValueError("aggregate() expects runs of one configuration")
    return EngineReport(
        strategy=first.strategy,
        n_nodes=first.n_nodes,
        tokens=first.tokens,
        generation_speed=mean(r.generation_speed for r in reports),
        ttft=mean(r.ttft for r in reports),
        itl=mean(r.itl for r in reports),
        acceptance_rate=mean(r.acceptance_rate for r in reports),
        utilization=mean(r.utilization for r in reports),
        mean_node_memory=mean(r.mean_node_memory for r in reports),
        max_node_memory=mean(r.max_node_memory for r in reports),
        stats=first.stats,
    )
