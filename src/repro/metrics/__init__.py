"""Measurement: the paper's four evaluation metrics plus utilization.

- generation speed (tokens/s, prompt processing excluded),
- time-to-first-token (TTFT, from prompt-processing completion to the
  first *accepted* token, excluding the token sampled from the prompt),
- inter-token latency (ITL, mean gap between accepted tokens),
- per-node memory consumption,
- node busy-time utilization (Section I claims ~2x utilization).

Serving mode adds population-level metrics: per-request
:class:`RequestReport` timelines and the aggregate :class:`ServingReport`
with TTFT/ITL/queue-wait percentiles and stream throughput.
"""

from repro.metrics.collectors import MetricsCollector, RunStats
from repro.metrics.percentiles import p50, p95, p99, percentile
from repro.metrics.report import (
    ClusterReport,
    EngineReport,
    RequestReport,
    ServingReport,
    aggregate,
)

__all__ = [
    "MetricsCollector",
    "RunStats",
    "ClusterReport",
    "EngineReport",
    "RequestReport",
    "ServingReport",
    "aggregate",
    "percentile",
    "p50",
    "p95",
    "p99",
]
