"""Measurement: the paper's four evaluation metrics plus utilization.

- generation speed (tokens/s, prompt processing excluded),
- time-to-first-token (TTFT, from prompt-processing completion to the
  first *accepted* token, excluding the token sampled from the prompt),
- inter-token latency (ITL, mean gap between accepted tokens),
- per-node memory consumption,
- node busy-time utilization (Section I claims ~2x utilization).
"""

from repro.metrics.collectors import MetricsCollector, RunStats
from repro.metrics.report import EngineReport, aggregate

__all__ = ["MetricsCollector", "RunStats", "EngineReport", "aggregate"]
