"""Percentile helpers for latency distributions.

Serving workloads are judged by tail latency, not means: the paper's
single-request metrics (TTFT, mean ITL) generalize to p50/p95/p99 over a
request population.  The implementation is the linear-interpolation
definition (numpy's default) so values match ``np.percentile`` without
requiring an array round-trip for small samples.
"""

from __future__ import annotations

from typing import List, Sequence


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile of ``values`` with linear interpolation.

    Args:
        values: sample (need not be sorted; not modified).
        p: percentile rank in [0, 100].

    Raises:
        ValueError: on an empty sample or ``p`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {p}")
    ordered: List[float] = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def p50(values: Sequence[float]) -> float:
    """Median."""
    return percentile(values, 50.0)


def p95(values: Sequence[float]) -> float:
    """95th percentile."""
    return percentile(values, 95.0)


def p99(values: Sequence[float]) -> float:
    """99th percentile."""
    return percentile(values, 99.0)
