"""The paper's testbeds, reconstructed from Tables II and IV.

========= ========= ==================================== =====================
Cluster   Max nodes Nodes                                Interconnect
========= ========= ==================================== =====================
A         8         2x Xeon E5-2650, 128GB DDR3-1600     Gigabit Ethernet
B         13        5 Optiplexes (2nd/4th-gen i5/i7,     Gigabit Ethernet
                    8GB DDR3) + 8 Xeon E5-2650 nodes
C         32        2x Xeon Gold 6140, 384GB DDR4-2666   InfiniBand EDR
GPU       4         2x Xeon E5-2640v3 hosts w/ MI60,     InfiniBand QDR
                    P40, Titan V, RTX 3090
========= ========= ==================================== =====================
"""

from __future__ import annotations

from repro.cluster.hardware import (
    AMD_MI60,
    NVIDIA_P40,
    NVIDIA_RTX_3090,
    NVIDIA_TITAN_V,
    OPTIPLEX_I5_GEN2,
    OPTIPLEX_I7_GEN4,
    XEON_E5_2650,
    XEON_GOLD_6140,
)
from repro.cluster.interconnect import (
    GIGABIT_ETHERNET,
    INFINIBAND_EDR,
    INFINIBAND_QDR,
)
from repro.cluster.topology import Cluster


def cluster_a(n_nodes: int = 8) -> Cluster:
    """Cluster A: up to 8 dual-socket Xeon E5-2650 nodes on Gigabit Ethernet."""
    if not 1 <= n_nodes <= 8:
        raise ValueError("cluster A has at most 8 nodes")
    return Cluster("A", [XEON_E5_2650] * n_nodes, GIGABIT_ETHERNET)


def cluster_b(n_nodes: int = 13) -> Cluster:
    """Cluster B: 13 heterogeneous nodes on Gigabit Ethernet.

    Eight Xeon E5-2650 nodes followed by five old Dell Optiplexes (three
    2nd-gen i5, two 4th-gen i7 — the paper says "second- and fourth-
    generation Intel Core i5 and i7", without exact counts).  Node order
    puts the fast Xeons first so that small subsets are the homogeneous
    prefix, matching how the paper grows the heterogeneous pipeline.
    """
    if not 1 <= n_nodes <= 13:
        raise ValueError("cluster B has at most 13 nodes")
    nodes = [XEON_E5_2650] * 8 + [
        OPTIPLEX_I7_GEN4,
        OPTIPLEX_I5_GEN2,
        OPTIPLEX_I7_GEN4,
        OPTIPLEX_I5_GEN2,
        OPTIPLEX_I5_GEN2,
    ]
    return Cluster("B", nodes[:n_nodes], GIGABIT_ETHERNET)


def cluster_c(n_nodes: int = 32) -> Cluster:
    """Cluster C: up to 32 dual-socket Xeon Gold 6140 nodes on IB EDR."""
    if not 1 <= n_nodes <= 32:
        raise ValueError("cluster C has at most 32 nodes")
    return Cluster("C", [XEON_GOLD_6140] * n_nodes, INFINIBAND_EDR)


def gpu_testbed() -> Cluster:
    """The 4-node heterogeneous GPU testbed (Table IV) on IB QDR.

    One GPU per node: MI60, P40, Titan V, RTX 3090.  The GPU spec stands in
    for the node since inference runs out of VRAM bandwidth.
    """
    return Cluster(
        "gpu",
        [AMD_MI60, NVIDIA_P40, NVIDIA_TITAN_V, NVIDIA_RTX_3090],
        INFINIBAND_QDR,
    )


def make_testbed(name: str, n_nodes: int | None = None) -> Cluster:
    """Factory by name: ``"A"``, ``"B"``, ``"C"`` or ``"gpu"``."""
    key = name.strip().lower()
    if key == "a":
        return cluster_a(n_nodes if n_nodes is not None else 8)
    if key == "b":
        return cluster_b(n_nodes if n_nodes is not None else 13)
    if key == "c":
        return cluster_c(n_nodes if n_nodes is not None else 32)
    if key == "gpu":
        if n_nodes not in (None, 4):
            raise ValueError("GPU testbed is fixed at 4 nodes")
        return gpu_testbed()
    raise KeyError(f"unknown testbed {name!r}")
