"""Cluster topology: a set of nodes plus the links between them.

All of the paper's testbeds are switched fabrics (Ethernet switch or an
InfiniBand switch), so any node can message any other; contention is
modeled at the *sender egress* and *receiver ingress* ports, which is where
switched fabrics actually serialize.  A ``Cluster`` therefore materializes
one egress :class:`~repro.cluster.interconnect.Link` per ordered node pair,
lazily.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.hardware import NodeSpec
from repro.cluster.interconnect import Link, LinkSpec, LOOPBACK
from repro.cluster.kernel import SimKernel


class Cluster:
    """A simulated cluster: node specs wired by a uniform link spec.

    Attributes:
        name: testbed name (``"A"``, ``"B"``, ``"C"``, ``"gpu"`` ...).
        nodes: node specifications, index == rank.
        link_spec: interconnect used between distinct nodes.
        link_overrides: optional per-ordered-pair link specs — lets a
            heterogeneous topology (e.g. a cloud-edge WAN hop between two
            otherwise LAN-connected stages) override the uniform spec.
    """

    def __init__(
        self,
        name: str,
        nodes: Sequence[NodeSpec],
        link_spec: LinkSpec,
        link_overrides: Optional[Dict[Tuple[int, int], LinkSpec]] = None,
    ) -> None:
        if not nodes:
            raise ValueError("cluster needs at least one node")
        self.name = name
        self.nodes: List[NodeSpec] = list(nodes)
        self.link_spec = link_spec
        self.link_overrides: Dict[Tuple[int, int], LinkSpec] = dict(link_overrides or {})
        self._kernel: SimKernel | None = None
        self._links: Dict[Tuple[int, int], Link] = {}
        #: Optional hook replacing plain Link construction — the fault
        #: injector installs one to wrap faulty pairs.  Reset on every
        #: ``bind`` so a cluster reused across simulations starts clean.
        self._link_factory: Optional[Callable[[SimKernel, LinkSpec, int, int], Link]] = None

    @property
    def size(self) -> int:
        return len(self.nodes)

    def bind(self, kernel: SimKernel) -> "Cluster":
        """Attach this topology to a simulation kernel (fresh link state)."""
        self._kernel = kernel
        self._links = {}
        self._link_factory = None
        return self

    def link(self, src: int, dst: int) -> Link:
        """The egress link from rank ``src`` toward rank ``dst``.

        Messages a rank sends to itself use a zero-cost loopback link.
        """
        if self._kernel is None:
            raise RuntimeError("cluster not bound to a kernel; call bind() first")
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            if src == dst:
                spec = LOOPBACK
            else:
                spec = self.link_overrides.get(key, self.link_spec)
            factory = self._link_factory
            if factory is None:
                found = Link(self._kernel, spec)
            else:
                found = factory(self._kernel, spec, src, dst)
            self._links[key] = found
        return found

    def subset(self, n: int) -> "Cluster":
        """A cluster using only the first ``n`` nodes (paper's node sweeps)."""
        if not 1 <= n <= self.size:
            raise ValueError(f"cannot take {n} nodes from cluster of {self.size}")
        overrides = {
            pair: spec
            for pair, spec in self.link_overrides.items()
            if pair[0] < n and pair[1] < n
        }
        return Cluster(f"{self.name}[{n}]", self.nodes[:n], self.link_spec, overrides)

    def total_ram(self) -> float:
        """Aggregate RAM across nodes, bytes."""
        return sum(node.ram for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.name!r}, n={self.size}, link={self.link_spec.name!r})"
