"""Cluster topology: a set of nodes plus the links between them.

All of the paper's testbeds are switched fabrics (Ethernet switch or an
InfiniBand switch), so any node can message any other; contention is
modeled at the *sender egress* and *receiver ingress* ports, which is where
switched fabrics actually serialize.  A ``Cluster`` therefore materializes
one egress :class:`~repro.cluster.interconnect.Link` per ordered node pair,
lazily.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster.hardware import NodeSpec
from repro.cluster.interconnect import Link, LinkSpec, LOOPBACK
from repro.cluster.kernel import SimKernel


class Cluster:
    """A simulated cluster: node specs wired by a uniform link spec.

    Attributes:
        name: testbed name (``"A"``, ``"B"``, ``"C"``, ``"gpu"`` ...).
        nodes: node specifications, index == rank.
        link_spec: interconnect used between distinct nodes.
    """

    def __init__(self, name: str, nodes: Sequence[NodeSpec], link_spec: LinkSpec) -> None:
        if not nodes:
            raise ValueError("cluster needs at least one node")
        self.name = name
        self.nodes: List[NodeSpec] = list(nodes)
        self.link_spec = link_spec
        self._kernel: SimKernel | None = None
        self._links: Dict[Tuple[int, int], Link] = {}

    @property
    def size(self) -> int:
        return len(self.nodes)

    def bind(self, kernel: SimKernel) -> "Cluster":
        """Attach this topology to a simulation kernel (fresh link state)."""
        self._kernel = kernel
        self._links = {}
        return self

    def link(self, src: int, dst: int) -> Link:
        """The egress link from rank ``src`` toward rank ``dst``.

        Messages a rank sends to itself use a zero-cost loopback link.
        """
        if self._kernel is None:
            raise RuntimeError("cluster not bound to a kernel; call bind() first")
        key = (src, dst)
        found = self._links.get(key)
        if found is None:
            spec = LOOPBACK if src == dst else self.link_spec
            found = Link(self._kernel, spec)
            self._links[key] = found
        return found

    def subset(self, n: int) -> "Cluster":
        """A cluster using only the first ``n`` nodes (paper's node sweeps)."""
        if not 1 <= n <= self.size:
            raise ValueError(f"cannot take {n} nodes from cluster of {self.size}")
        return Cluster(f"{self.name}[{n}]", self.nodes[:n], self.link_spec)

    def total_ram(self) -> float:
        """Aggregate RAM across nodes, bytes."""
        return sum(node.ram for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster({self.name!r}, n={self.size}, link={self.link_spec.name!r})"
