"""Compute-node hardware models.

Reconstructs the node types of the paper's testbeds (Tables II and IV) from
their public specifications.  Small-batch LLM inference is memory-bandwidth
bound (Section II), so the dominant figure per node is *effective memory
bandwidth*: theoretical channel bandwidth derated by a sustained-traffic
efficiency, times the number of NUMA sockets with a NUMA scaling factor
(the paper distributes weights across NUMA nodes to use independent
channels).  Peak FLOP throughput is retained for the compute-bound branch
of the roofline used at larger batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, GiB


@dataclass(frozen=True)
class NodeSpec:
    """A compute node (CPU host or GPU) in a testbed.

    Attributes:
        name: human-readable identifier used in reports.
        mem_bw: theoretical memory bandwidth per socket/device, bytes/s.
        flops: peak arithmetic throughput per socket/device, FLOP/s.
        ram: memory capacity in bytes (RAM or VRAM).
        sockets: number of NUMA sockets (1 for GPUs).
        bw_efficiency: fraction of theoretical bandwidth sustained on
            streaming weight reads (STREAM-like derate).
        numa_efficiency: multiplicative derate applied per extra socket when
            aggregating bandwidth across NUMA domains.
        is_gpu: marks accelerator nodes (affects kernel-launch overhead).
    """

    name: str
    mem_bw: float
    flops: float
    ram: float
    sockets: int = 1
    bw_efficiency: float = 0.72
    numa_efficiency: float = 0.90
    is_gpu: bool = False

    @property
    def effective_mem_bw(self) -> float:
        """Aggregate sustained memory bandwidth across sockets, bytes/s."""
        if self.sockets == 1:
            return self.mem_bw * self.bw_efficiency
        scale = 1.0 + (self.sockets - 1) * self.numa_efficiency
        return self.mem_bw * self.bw_efficiency * scale

    @property
    def effective_flops(self) -> float:
        """Aggregate sustained FLOP/s across sockets."""
        return self.flops * self.sockets * 0.80

    @property
    def compute_overhead(self) -> float:
        """Fixed per-decode dispatch overhead in seconds.

        Each decode call on a node pays graph construction, buffer setup
        and threadpool synchronization (llama.cpp-style runtimes) — a few
        milliseconds on CPU hosts; GPUs amortize via captured graphs but
        still pay kernel-launch and synchronization latency.  This
        overhead, multiplied by pipeline depth, is what makes running a
        *small* model across a long pipeline so expensive — the effect
        PipeInfer exploits by dedicating a node to the draft model.
        """
        return 2e-3 if self.is_gpu else 3e-3


# ---------------------------------------------------------------------------
# CPU catalog (Table II).
# ---------------------------------------------------------------------------

#: 2x Intel Xeon E5-2650 (Sandy Bridge-EP, 8c/2.0GHz), DDR3-1600 x4 channels
#: per socket = 51.2 GB/s/socket.  Clusters A and part of B.
XEON_E5_2650 = NodeSpec(
    name="2x Xeon E5-2650",
    mem_bw=51.2 * GB,
    flops=128e9,  # 8 cores x 2.0 GHz x 8 DP FLOP/cycle (AVX)
    ram=128 * GiB,
    sockets=2,
)

#: 2x Intel Xeon Gold 6140 (Skylake-SP, 18c/2.3GHz), DDR4-2666 x6 channels
#: per socket = 128 GB/s/socket.  Cluster C.
XEON_GOLD_6140 = NodeSpec(
    name="2x Xeon Gold 6140",
    mem_bw=128.0 * GB,
    flops=1324e9,  # 18 cores x 2.3 GHz x 32 DP FLOP/cycle (AVX-512)
    ram=384 * GiB,
    sockets=2,
)

#: Dell Optiplex, 2nd-gen Core i5 (Sandy Bridge, e.g. i5-2400), dual-channel
#: DDR3-1333 = 21.3 GB/s.  Cluster B heterogeneous members.
OPTIPLEX_I5_GEN2 = NodeSpec(
    name="Optiplex i5 (2nd gen)",
    mem_bw=21.3 * GB,
    flops=99e9,  # 4 cores x 3.1 GHz x 8
    ram=8 * GiB,
    sockets=1,
)

#: Dell Optiplex, 4th-gen Core i7 (Haswell, e.g. i7-4770), dual-channel
#: DDR3-1600 = 25.6 GB/s.  Cluster B heterogeneous members.
OPTIPLEX_I7_GEN4 = NodeSpec(
    name="Optiplex i7 (4th gen)",
    mem_bw=25.6 * GB,
    flops=218e9,  # 4 cores x 3.4 GHz x 16 (AVX2+FMA)
    ram=8 * GiB,
    sockets=1,
)

#: 2x Intel Xeon E5-2640 v3 (Haswell-EP, 8c/2.6GHz), DDR4-1866 x4 channels
#: per socket = 59.7 GB/s/socket.  GPU testbed hosts (Table IV).
XEON_E5_2640_V3 = NodeSpec(
    name="2x Xeon E5-2640 v3",
    mem_bw=59.7 * GB,
    flops=333e9,
    ram=128 * GiB,
    sockets=2,
)

CPU_CATALOG = {
    "xeon-e5-2650": XEON_E5_2650,
    "xeon-gold-6140": XEON_GOLD_6140,
    "optiplex-i5-gen2": OPTIPLEX_I5_GEN2,
    "optiplex-i7-gen4": OPTIPLEX_I7_GEN4,
    "xeon-e5-2640v3": XEON_E5_2640_V3,
}

# ---------------------------------------------------------------------------
# GPU catalog (Table IV).  Bandwidth figures are the published VRAM specs.
# ---------------------------------------------------------------------------

AMD_MI60 = NodeSpec(
    name="AMD Instinct MI60",
    mem_bw=1024 * GB,
    flops=29.5e12,  # fp16
    ram=32 * GiB,
    bw_efficiency=0.80,
    is_gpu=True,
)

NVIDIA_P40 = NodeSpec(
    name="Nvidia Tesla P40",
    mem_bw=346 * GB,
    flops=11.8e12,  # fp32 (no fast fp16 path on GP102)
    ram=24 * GiB,
    bw_efficiency=0.78,
    is_gpu=True,
)

NVIDIA_TITAN_V = NodeSpec(
    name="Nvidia Titan V",
    mem_bw=653 * GB,
    flops=29.8e12,  # fp16
    ram=12 * GiB,
    bw_efficiency=0.80,
    is_gpu=True,
)

NVIDIA_RTX_3090 = NodeSpec(
    name="Nvidia RTX 3090",
    mem_bw=936 * GB,
    flops=35.6e12,
    ram=24 * GiB,
    bw_efficiency=0.82,
    is_gpu=True,
)

GPU_CATALOG = {
    "mi60": AMD_MI60,
    "p40": NVIDIA_P40,
    "titan-v": NVIDIA_TITAN_V,
    "rtx-3090": NVIDIA_RTX_3090,
}
