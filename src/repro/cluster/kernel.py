"""Process-interaction discrete-event simulation kernel.

Simulated entities (cluster nodes, links) are Python generator coroutines.
A process advances simulated time by yielding:

- :class:`Delay` — resume this process after a fixed simulated duration
  (models compute occupancy: evaluating transformer layers, serializing a
  buffer);
- :class:`Future` — park until another process resolves the future (models
  blocking receives, link availability).

The kernel owns a single event heap keyed by ``(time, tiebreak)``.  Time is
float seconds.  Determinism: ties are broken by a monotonically increasing
sequence number, so identical programs replay identically — a property the
output-equivalence tests rely on.

This is deliberately a small, purpose-built kernel rather than a general
framework: the engines only need delays, futures, and a notion of "now".
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Type of the generator coroutines driven by the kernel.  Processes yield
#: Delay or Future instances and receive the future's value at resume.
ProcessGen = Generator[Any, Any, Any]


class SimError(RuntimeError):
    """Raised for kernel misuse (bad yields, double resolution, deadlock)."""


class Delay:
    """Yielded by a process to advance its local time by ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.duration!r})"


class Future:
    """A one-shot value container a process can park on.

    A process yields a Future to suspend; another process (or a kernel
    timer) calls :meth:`resolve` to schedule the waiter's resumption at the
    current simulated time.  Resolving before anyone waits is fine — the
    value is stored and a subsequent yield returns immediately.
    """

    __slots__ = ("_kernel", "resolved", "value", "_waiter", "label")

    def __init__(self, kernel: "SimKernel", label: str = "") -> None:
        self._kernel = kernel
        self.resolved = False
        self.value: Any = None
        self._waiter: Optional["Process"] = None
        self.label = label

    def resolve(self, value: Any = None) -> None:
        """Resolve with ``value``; wakes the waiter (if any) at sim-now."""
        if self.resolved:
            raise SimError(f"future {self.label!r} resolved twice")
        self.resolved = True
        self.value = value
        if self._waiter is not None:
            self._kernel._schedule_resume(self._waiter, value)
            self._waiter = None

    def _park(self, process: "Process") -> bool:
        """Attach ``process`` as the waiter.  Returns True if already resolved."""
        if self.resolved:
            return True
        if self._waiter is not None:
            raise SimError(f"future {self.label!r} already has a waiter")
        self._waiter = process
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.resolved else "pending"
        return f"Future({self.label!r}, {state})"


class Process:
    """A running generator coroutine inside the kernel."""

    __slots__ = (
        "gen", "name", "alive", "result", "_kernel", "exception", "_resume_plain"
    )

    def __init__(self, kernel: "SimKernel", gen: ProcessGen, name: str) -> None:
        self.gen = gen
        self.name = name
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._kernel = kernel
        #: Cached value-less resume callback.  Delay resumes — the most
        #: frequent event by far (every compute chunk and link hop is one)
        #: — reuse it instead of allocating a fresh closure per event.
        self._resume_plain: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, alive={self.alive})"


class SimKernel:
    """The event loop: an event heap plus process bookkeeping."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self._processes: list[Process] = []
        self._n_events = 0

    # -- process management -------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process and schedule its first step now."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self._schedule_resume(proc, None, first=True)
        return proc

    def future(self, label: str = "") -> Future:
        """Create a fresh future bound to this kernel."""
        return Future(self, label)

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback at an absolute simulated time."""
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        self._push(time, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback ``delay`` seconds from now."""
        self.call_at(self.now + delay, fn)

    # -- event loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap.

        Args:
            until: stop once simulated time would exceed this value.
            max_events: safety valve against runaway simulations.

        The loop ends when no events remain; parked processes that were
        never woken are simply abandoned (engines use a completion future to
        detect success, and tests assert on process liveness).
        """
        while self._heap:
            time, _, fn = heapq.heappop(self._heap)
            if until is not None and time > until:
                # Leave the event popped; the simulation horizon was reached.
                self.now = until
                return
            self.now = time
            self._n_events += 1
            if max_events is not None and self._n_events > max_events:
                raise SimError(f"exceeded max_events={max_events}")
            fn()

    @property
    def n_events(self) -> int:
        """Number of events executed so far (profiling / regression aid)."""
        return self._n_events

    def alive_processes(self) -> list[Process]:
        """Processes that have not finished (parked or runnable)."""
        return [p for p in self._processes if p.alive]

    # -- internals -----------------------------------------------------------

    def _push(self, time: float, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def _schedule_resume(self, proc: Process, value: Any, first: bool = False) -> None:
        self._push(self.now, lambda: self._step(proc, value, first))

    def _step(self, proc: Process, value: Any, first: bool = False) -> None:
        """Advance ``proc`` one yield, interpreting what it yielded."""
        if not proc.alive:
            return
        try:
            yielded = proc.gen.send(None if first else value)
        except StopIteration as stop:
            proc.alive = False
            proc.result = stop.value
            return
        except BaseException as exc:
            proc.alive = False
            proc.exception = exc
            raise
        self._dispatch_yield(proc, yielded)

    def _dispatch_yield(self, proc: Process, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            cb = proc._resume_plain
            if cb is None:
                cb = proc._resume_plain = lambda: self._step(proc, None)
            self._push(self.now + yielded.duration, cb)
        elif isinstance(yielded, Future):
            if yielded._park(proc):
                # Already resolved: resume immediately with the stored value.
                self._schedule_resume(proc, yielded.value)
        else:
            proc.alive = False
            raise SimError(
                f"process {proc.name!r} yielded {yielded!r}; expected Delay or Future"
            )


def run_to_completion(kernel: SimKernel, procs: Iterable[Process], max_events: int = 50_000_000) -> None:
    """Run the kernel and assert the given processes all finished.

    Raises:
        SimError: if any of ``procs`` is still alive when the heap drains —
            the signature of a deadlock (e.g. a receive no send matches).
    """
    kernel.run(max_events=max_events)
    stuck = [p.name for p in procs if p.alive]
    if stuck:
        raise SimError(f"deadlock: processes never completed: {stuck}")
