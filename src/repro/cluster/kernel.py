"""Process-interaction discrete-event simulation kernel.

Simulated entities (cluster nodes, links) are Python generator coroutines.
A process advances simulated time by yielding:

- :class:`Delay` — resume this process after a fixed simulated duration
  (models compute occupancy: evaluating transformer layers, serializing a
  buffer);
- :class:`Future` — park until another process resolves the future (models
  blocking receives, link availability).

Events are totally ordered by ``(time, tiebreak)``.  Time is float seconds.
Determinism: ties are broken by a monotonically increasing sequence number,
so identical programs replay identically — a property the output-equivalence
tests rely on (see ``docs/engine-internals.md``).

Two structures implement that order far cheaper than a single binary heap:

- an **at-now FIFO** (a deque) for the dominant "resume at the current
  instant" events — future resolutions, zero-delays, spawns.  These are
  appended and popped in O(1) with no key comparison at all: every at-now
  event is by construction newer (larger sequence number) than anything
  already queued for the current instant.
- a **calendar queue** (:class:`_CalendarQueue`) for timed events: a dict of
  coarse time buckets plus a small heap of occupied bucket ids.  The
  pipeline's event-time distribution is near-monotone (delays cluster around
  the per-layer compute times and link latencies), so pushes are O(1)
  appends and pops are an index increment over a sorted per-bucket run.

Events are plain tuples — ``(seq, target, value)`` in the FIFO,
``(time, seq, target, value)`` in the calendar — where ``target`` is either
a :class:`Process` to resume with ``value`` or a zero-arg callable.  This
kills the per-event closure allocation the previous heap kernel paid.

The previous single-``heapq`` kernel is retained verbatim as
:class:`ReferenceSimKernel`: the differential ordering property test replays
random event storms on both kernels and asserts identical execution traces,
and the kernel micro-benchmark uses it as the speedup baseline.

This is deliberately a small, purpose-built kernel rather than a general
framework: the engines only need delays, futures, and a notion of "now".
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

#: Type of the generator coroutines driven by the kernel.  Processes yield
#: Delay or Future instances and receive the future's value at resume.
ProcessGen = Generator[Any, Any, Any]


class SimError(RuntimeError):
    """Raised for kernel misuse (bad yields, double resolution, deadlock)."""


class StuckSimulationError(SimError):
    """Raised when the event queues drain while processes are still parked.

    Subclasses :class:`SimError` so existing ``except SimError`` handlers and
    tests keep working; the message names each blocked process and what it
    is waiting on (the parked future's label, plus the receive's source/tag
    when the communication layer attached that detail).
    """

    def __init__(self, stuck: list) -> None:
        self.stuck = stuck
        lines = []
        for proc in stuck:
            fut = getattr(proc, "waiting_on", None)
            if fut is None:
                what = "unknown (never parked on a future)"
            else:
                what = fut.detail or f"future {fut.label!r}"
            lines.append(f"{proc.name!r} waiting on {what}")
        super().__init__(
            "deadlock: processes never completed: "
            + "; ".join(lines)
        )


class Delay:
    """Yielded by a process to advance its local time by ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative delay: {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Delay({self.duration!r})"


class Future:
    """A one-shot value container a process can park on.

    A process yields a Future to suspend; another process (or a kernel
    timer) calls :meth:`resolve` to schedule the waiter's resumption at the
    current simulated time.  Resolving before anyone waits is fine — the
    value is stored and a subsequent yield returns immediately.
    """

    __slots__ = (
        "_kernel", "resolved", "value", "_waiter", "_callback", "label", "detail"
    )

    def __init__(self, kernel: "SimKernel", label: str = "") -> None:
        self._kernel = kernel
        self.resolved = False
        self.value: Any = None
        self._waiter: Optional["Process"] = None
        #: Event-context waiter: invoked with the value at resolve time,
        #: in place of (or in addition to) waking a parked process.  Set
        #: via :meth:`set_callback` by state machines that wait on kernel
        #: events without suspending a generator.
        self._callback = None
        self.label = label
        #: Optional human-readable description of what resolving this future
        #: means (e.g. ``"recv(source=0, tag=5)"``) — surfaced by
        #: :class:`StuckSimulationError` when a deadlock is diagnosed.
        self.detail: Optional[str] = None

    def resolve(self, value: Any = None) -> None:
        """Resolve with ``value``; wakes the waiter (if any) at sim-now."""
        if self.resolved:
            raise SimError(f"future {self.label!r} resolved twice")
        self.resolved = True
        self.value = value
        if self._waiter is not None:
            self._kernel._schedule_resume(self._waiter, value)
            self._waiter = None
        if self._callback is not None:
            cb, self._callback = self._callback, None
            cb(value)

    def set_callback(self, fn) -> None:
        """Register ``fn(value)`` to run when this future resolves.

        The callback fires synchronously inside ``resolve()`` — callers
        that may be resolved mid-event (e.g. arrival watchers firing
        during a delivery batch) should defer their real work with
        ``kernel.call_at(kernel.now, ...)`` so it runs after the current
        event completes.  If the future is already resolved, ``fn`` runs
        immediately.
        """
        if self.resolved:
            fn(self.value)
        else:
            self._callback = fn

    def _park(self, process: "Process") -> bool:
        """Attach ``process`` as the waiter.  Returns True if already resolved."""
        if self.resolved:
            return True
        if self._waiter is not None:
            raise SimError(f"future {self.label!r} already has a waiter")
        self._waiter = process
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.resolved else "pending"
        return f"Future({self.label!r}, {state})"


class Process:
    """A running generator coroutine inside the kernel."""

    __slots__ = (
        "gen", "send", "name", "alive", "result", "exception",
        "_resume_plain", "waiting_on",
    )

    def __init__(self, gen: ProcessGen, name: str) -> None:
        self.gen = gen
        #: The generator's bound ``send`` — the single hottest call in the
        #: simulation.  Cached once at spawn so every resume skips the
        #: ``proc.gen.send`` double attribute walk (a generator's method
        #: lookup is not cached by the interpreter the way a plain
        #: function's would be).
        self.send = gen.send
        self.name = name
        self.alive = True
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        #: The last unresolved Future this process parked on.  Only written
        #: on the park path (never per-Delay), so the hot loop is untouched;
        #: at deadlock-diagnosis time an alive process with drained queues
        #: is necessarily parked on its most recent future.
        self.waiting_on: Optional[Future] = None
        #: Cached value-less resume closure — used only by
        #: :class:`ReferenceSimKernel` (the calendar kernel schedules tuple
        #: events and needs no closures).
        self._resume_plain: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, alive={self.alive})"


class _CalendarQueue:
    """Bucketed priority queue over ``(time, seq, target, value)`` entries.

    Entries hash into coarse time buckets (``int(time / width)``); a small
    heap tracks which bucket ids are occupied.  The minimum bucket is sorted
    once into an *active run* consumed by an index pointer, so a pop is an
    index increment.  A push into a bucket at or before the active run is a
    ``bisect.insort`` into the unconsumed tail of the run (correct because
    event times never precede the kernel's ``now``, so such an entry still
    sorts after everything already consumed); any later bucket is a plain
    list append.

    The bucket width adapts to the observed event-time distribution: runs
    larger than ``_MAX_RUN`` trigger a finer width (keeps insorts and sorts
    small), and a probe window of mostly-single-entry runs triggers a
    coarser width (keeps the bucket heap small).  Rescaling redistributes
    only *pending* entries, so the ``(time, seq)`` pop order — the kernel's
    determinism contract — is unaffected.
    """

    __slots__ = (
        "_width", "_inv_width", "_buckets", "_bucket_heap", "_run", "_ri",
        "_run_id", "_n", "_probe_advances", "_probe_events",
    )

    _MAX_RUN = 512        # shrink width when one bucket holds more than this
    _PROBE_WINDOW = 64    # advances per width-growth probe
    _SCALE = 8.0          # width multiplier per rescale step
    _MIN_WIDTH = 1e-9
    _MAX_WIDTH = 1e3

    def __init__(self, width: float = 1e-4) -> None:
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: dict[int, list] = {}
        self._bucket_heap: list[int] = []
        self._run: list = []
        self._ri = 0
        self._run_id: Optional[int] = None
        self._n = 0
        self._probe_advances = 0
        self._probe_events = 0

    def __len__(self) -> int:
        return self._n

    def push(self, entry: tuple) -> None:
        self._n += 1
        b = int(entry[0] * self._inv_width)
        run_id = self._run_id
        if run_id is not None and b <= run_id:
            # At or before the active bucket: insert into the unconsumed
            # tail of the run so it pops in (time, seq) order.
            insort(self._run, entry, lo=self._ri)
            return
        bucket = self._buckets.get(b)
        if bucket is None:
            self._buckets[b] = [entry]
            heapq.heappush(self._bucket_heap, b)
        else:
            bucket.append(entry)

    def peek(self) -> Optional[tuple]:
        """The minimum entry without removing it, or None when empty."""
        if self._ri < len(self._run):
            return self._run[self._ri]
        if self._n:
            self._advance()
            return self._run[self._ri]
        return None

    def pop(self) -> tuple:
        i = self._ri
        if i >= len(self._run):
            if not self._n:
                raise IndexError("pop from empty calendar queue")
            self._advance()
            i = self._ri
        entry = self._run[i]
        self._ri = i + 1
        self._n -= 1
        return entry

    def take_at(self, time: float) -> list:
        """Pop and return every entry stamped exactly ``time``, in order.

        The active run is sorted, so the same-instant entries form a
        contiguous prefix — one slice instead of a peek+pop call pair per
        entry.  Entries scheduled *while the returned batch executes* can
        never land at ``time`` (the kernel routes at-now events to its
        FIFO), so the slice stays complete and the ``(time, seq)`` order
        is preserved.
        """
        i = self._ri
        run = self._run
        if i >= len(run):
            if not self._n:
                return []
            self._advance()
            i = self._ri
            run = self._run
        if run[i][0] != time:
            return []
        j = i + 1
        end = len(run)
        while j < end and run[j][0] == time:
            j += 1
        self._ri = j
        self._n -= j - i
        return run[i:j]

    # -- internals ---------------------------------------------------------

    def _advance(self) -> None:
        """Load the next occupied bucket as the active run (sorted)."""
        # Width-growth probe: if recent runs averaged fewer than two entries
        # the buckets are too fine — the bucket heap is doing all the work.
        self._probe_advances += 1
        if self._probe_advances >= self._PROBE_WINDOW:
            if (
                self._probe_events < 2 * self._PROBE_WINDOW
                and self._width < self._MAX_WIDTH
            ):
                self._rescale(self._width * self._SCALE)
            self._probe_advances = 0
            self._probe_events = 0
        b = heapq.heappop(self._bucket_heap)
        entries = self._buckets.pop(b)
        if len(entries) > self._MAX_RUN and self._width > self._MIN_WIDTH:
            # Bucket too coarse: rescale finer (once) and re-select.
            self._buckets[b] = entries
            heapq.heappush(self._bucket_heap, b)
            self._rescale(self._width / self._SCALE)
            b = heapq.heappop(self._bucket_heap)
            entries = self._buckets.pop(b)
        entries.sort()
        self._run = entries
        self._ri = 0
        self._run_id = b
        self._probe_events += len(entries)

    def _rescale(self, width: float) -> None:
        """Re-bucket all pending entries under a new width."""
        pending = self._run[self._ri:]
        for bucket in self._buckets.values():
            pending.extend(bucket)
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets = {}
        self._bucket_heap = []
        self._run = []
        self._ri = 0
        self._run_id = None
        n = self._n
        for entry in pending:
            self.push(entry)
        self._n = n


class SimKernel:
    """The event loop: an at-now FIFO, a calendar queue, process bookkeeping.

    Execution order is exactly ascending ``(time, seq)`` — byte-identical to
    :class:`ReferenceSimKernel`.  The split into FIFO and calendar relies on
    two invariants the scheduling paths maintain:

    - events scheduled *at* the current instant always enter the FIFO (never
      the calendar), so they carry larger sequence numbers than any calendar
      entry stamped with the current time;
    - simulated time only advances when the FIFO is empty, so every FIFO
      entry was scheduled at (and runs at) the current ``now``.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._fifo: deque = deque()
        self._queue = _CalendarQueue()
        self._processes: list[Process] = []
        self._n_events = 0
        #: Process resumes executed (``gen.send`` calls).  The batched-inbox
        #: work drives resumes-per-delivered-message toward the
        #: one-per-delivery-event floor; the serving benchmark reads this
        #: counter (against ``Network.n_delivered``) for its gate.
        self.n_resumes = 0

    # -- process management -------------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Register a generator as a process and schedule its first step now."""
        proc = Process(gen, name)
        self._processes.append(proc)
        self._seq += 1
        self._fifo.append((self._seq, proc, None))
        return proc

    def future(self, label: str = "") -> Future:
        """Create a fresh future bound to this kernel."""
        return Future(self, label)

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback at an absolute simulated time."""
        now = self.now
        if time < now:
            raise SimError(f"cannot schedule in the past ({time} < {now})")
        self._seq += 1
        if time == now:
            self._fifo.append((self._seq, fn, None))
        else:
            self._queue.push((time, self._seq, fn, None))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule a plain callback ``delay`` seconds from now."""
        self.call_at(self.now + delay, fn)

    # -- event loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queues.

        Args:
            until: stop once simulated time would exceed this value.  The
                first event past the horizon stays queued, so a later
                ``run()`` resumes exactly where this one stopped.
            max_events: safety valve against runaway simulations; counts
                cumulatively across ``run`` calls on this kernel.

        The loop ends when no events remain; parked processes that were
        never woken are simply abandoned (engines use a completion future to
        detect success, and tests assert on process liveness).
        """
        fifo = self._fifo
        queue = self._queue
        step = self._step
        take_at = queue.take_at
        popleft = fifo.popleft
        limit = float("inf") if max_events is None else max_events
        n = self._n_events
        try:
            while True:
                # 1. Same-instant calendar entries run before anything in
                #    the FIFO: they were scheduled before `now` was reached,
                #    so they carry strictly smaller sequence numbers.  The
                #    batch is taken in one call; executing it cannot add
                #    same-instant calendar entries (those go to the FIFO),
                #    but it can resolve futures into earlier FIFO slots —
                #    which still run after the batch, in seq order, because
                #    every batch entry predates `now` being reached.
                while True:
                    batch = take_at(self.now)
                    if not batch:
                        break
                    for entry in batch:
                        n += 1
                        if n > limit:
                            raise SimError(f"exceeded max_events={max_events}")
                        target = entry[2]
                        if target.__class__ is Process:
                            step(target, entry[3])
                        else:
                            target()
                # 2. Drain the at-now FIFO.  Events it spawns at the current
                #    instant land in the FIFO (never the calendar), so no
                #    calendar re-peek is needed per pop.
                while fifo:
                    n += 1
                    if n > limit:
                        raise SimError(f"exceeded max_events={max_events}")
                    _, target, value = popleft()
                    if target.__class__ is Process:
                        step(target, value)
                    else:
                        target()
                # 3. Advance time to the next calendar event.
                entry = queue.peek()
                if entry is None:
                    return
                time = entry[0]
                if until is not None and time > until:
                    # Horizon reached: leave the event queued for the next
                    # run() call (the pre-calendar kernel dropped it here).
                    self.now = until
                    return
                queue.pop()
                self.now = time
                n += 1
                if n > limit:
                    raise SimError(f"exceeded max_events={max_events}")
                target = entry[2]
                if target.__class__ is Process:
                    step(target, entry[3])
                else:
                    target()
        finally:
            self._n_events = n

    @property
    def n_events(self) -> int:
        """Number of events executed so far (profiling / regression aid)."""
        return self._n_events

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or None when drained.

        At-now FIFO entries report the current instant.  Pure peek — used
        by incremental drivers (:class:`repro.api.session.ServingSession`)
        to advance a simulation one timestamp batch at a time.
        """
        if self._fifo:
            return self.now
        entry = self._queue.peek()
        return None if entry is None else entry[0]

    def alive_processes(self) -> list[Process]:
        """Processes that have not finished (parked or runnable)."""
        return [p for p in self._processes if p.alive]

    # -- internals -----------------------------------------------------------

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        """Queue ``proc`` to resume with ``value`` at the current instant."""
        self._seq += 1
        self._fifo.append((self._seq, proc, value))

    def _step(self, proc: Process, value: Any) -> None:
        """Advance ``proc`` one yield, interpreting what it yielded.

        Yields dispatch on exact type: processes must yield :class:`Delay`
        or :class:`Future` instances themselves, not subclasses.  The
        dominant yield — a positive :class:`Delay` — is fast-pathed before
        the dispatch chain: one cached bound-method call, one class check,
        one tuple push.
        """
        if not proc.alive:
            return
        self.n_resumes += 1
        try:
            yielded = proc.send(value)
        except StopIteration as stop:
            proc.alive = False
            proc.result = stop.value
            return
        except BaseException as exc:
            proc.alive = False
            proc.exception = exc
            raise
        if yielded.__class__ is Delay:
            time = self.now + yielded.duration
            self._seq += 1
            if time > self.now:
                self._queue.push((time, self._seq, proc, None))
            else:
                # Zero (or underflowing) delay: at-now events take the FIFO
                # so they stay ordered after every queued same-time event.
                self._fifo.append((self._seq, proc, None))
        elif yielded.__class__ is Future:
            if yielded._park(proc):
                # Already resolved: resume immediately with the stored value.
                self._seq += 1
                self._fifo.append((self._seq, proc, yielded.value))
            else:
                proc.waiting_on = yielded
        else:
            proc.alive = False
            raise SimError(
                f"process {proc.name!r} yielded {yielded!r}; expected Delay or Future"
            )


class ReferenceSimKernel:
    """The pre-calendar heap kernel, retained as the ordering reference.

    One binary heap keyed by ``(time, seq)``, one closure per scheduled
    resume.  The differential property test replays random event storms on
    this kernel and :class:`SimKernel` and asserts identical traces; the
    kernel micro-benchmark in ``benchmarks/bench_hotpath.py`` uses it as
    the speedup baseline.  Not used by the engines.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self._processes: list[Process] = []
        self._n_events = 0

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        proc = Process(gen, name)
        self._processes.append(proc)
        self._schedule_resume(proc, None)
        return proc

    def future(self, label: str = "") -> Future:
        return Future(self, label)  # type: ignore[arg-type]

    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        self._push(time, fn)

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        self.call_at(self.now + delay, fn)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            time, _, fn = heapq.heappop(self._heap)
            self.now = time
            self._n_events += 1
            if max_events is not None and self._n_events > max_events:
                raise SimError(f"exceeded max_events={max_events}")
            fn()

    @property
    def n_events(self) -> int:
        return self._n_events

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or None when drained."""
        return self._heap[0][0] if self._heap else None

    def alive_processes(self) -> list[Process]:
        return [p for p in self._processes if p.alive]

    def _push(self, time: float, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._push(self.now, lambda: self._step(proc, value))

    def _step(self, proc: Process, value: Any) -> None:
        if not proc.alive:
            return
        try:
            yielded = proc.gen.send(value)
        except StopIteration as stop:
            proc.alive = False
            proc.result = stop.value
            return
        except BaseException as exc:
            proc.alive = False
            proc.exception = exc
            raise
        self._dispatch_yield(proc, yielded)

    def _dispatch_yield(self, proc: Process, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            cb = proc._resume_plain
            if cb is None:
                cb = proc._resume_plain = lambda: self._step(proc, None)
            self._push(self.now + yielded.duration, cb)
        elif isinstance(yielded, Future):
            if yielded._park(proc):
                self._schedule_resume(proc, yielded.value)
            else:
                proc.waiting_on = yielded
        else:
            proc.alive = False
            raise SimError(
                f"process {proc.name!r} yielded {yielded!r}; expected Delay or Future"
            )


def run_to_completion(kernel: SimKernel, procs: Iterable[Process], max_events: int = 50_000_000) -> None:
    """Run the kernel and assert the given processes all finished.

    Raises:
        StuckSimulationError: if any of ``procs`` is still alive when the
            queues drain — the signature of a deadlock (e.g. a receive no
            send matches).  The message names each blocked process and what
            it is waiting on (parked-future label, receive source/tag).
    """
    kernel.run(max_events=max_events)
    stuck = [p for p in procs if p.alive]
    if stuck:
        raise StuckSimulationError(stuck)
