"""Discrete-event cluster simulator.

This package is the substitute for the paper's physical testbeds (Table II
and Table IV).  It provides:

- :mod:`repro.cluster.kernel` — a process-interaction discrete-event kernel
  (generator coroutines over an event heap);
- :mod:`repro.cluster.hardware` — node specifications with a
  memory-bandwidth-dominated compute cost model;
- :mod:`repro.cluster.interconnect` — link models (Gigabit Ethernet,
  InfiniBand EDR/QDR) with latency, bandwidth serialization, and an eager
  lane for small control messages;
- :mod:`repro.cluster.topology` — a cluster wiring nodes with links;
- :mod:`repro.cluster.testbed` — the paper's clusters A, B, C and the GPU
  testbed, reconstructed from their published specs.
"""

from repro.cluster.kernel import Delay, Future, Process, SimKernel
from repro.cluster.hardware import NodeSpec, CPU_CATALOG, GPU_CATALOG
from repro.cluster.interconnect import LinkSpec, GIGABIT_ETHERNET, INFINIBAND_EDR, INFINIBAND_QDR
from repro.cluster.topology import Cluster
from repro.cluster.testbed import (
    cluster_a,
    cluster_b,
    cluster_c,
    gpu_testbed,
    make_testbed,
)

__all__ = [
    "Delay",
    "Future",
    "Process",
    "SimKernel",
    "NodeSpec",
    "CPU_CATALOG",
    "GPU_CATALOG",
    "LinkSpec",
    "GIGABIT_ETHERNET",
    "INFINIBAND_EDR",
    "INFINIBAND_QDR",
    "Cluster",
    "cluster_a",
    "cluster_b",
    "cluster_c",
    "gpu_testbed",
    "make_testbed",
]
