"""Interconnect link models.

A directed link between two nodes transmits messages with:

``arrival = departure + latency + bytes / bandwidth``

subject to *serialization*: a link carries one bulk message at a time, so
back-to-back sends queue (this is what creates the interconnect bandwidth
pressure the paper observes on Gigabit Ethernet).

MPI implementations send small messages *eagerly* — they are buffered at
the sender and do not wait behind an in-progress rendezvous transfer of a
large tensor.  PipeInfer's cancellation signals are single-integer messages
whose usefulness depends on racing ahead of bulk activation traffic, so the
link model provides an **eager lane**: payloads below ``eager_threshold``
bypass the bulk serialization queue (paying latency plus their own
serialization only).  Ordering within one (source, destination, tag) stream
is still enforced by the MPI layer on top (non-overtaking), matching the
MPI standard's guarantee.

Delivery is *coalesced*: all messages on one link that arrive at the same
simulated instant (a FUSED burst's pieces, a transaction's START marker plus
its payload) are drained by a single kernel event instead of one ``call_at``
per message.  Within one instant and one link, callbacks fire in transmit
order — the same order the per-message events fired in — so per-stream
delivery order is unchanged.

Under the batched inbox hand-off (``EngineConfig.batched_inbox``, default
on) a pending entry is an ``(endpoint, message)`` pair instead of a
per-message closure: the drain groups maximal runs of message entries and
hands each run to the destination endpoint in one
:meth:`~repro.comm.mpi_sim.Endpoint._deliver_batch` call.  Raw callback
entries (reliability-layer acks, retransmits, benchmarks) interleave with
those runs in transmit order, so nothing is reordered — a batch is flushed
before any callback queued after it fires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.kernel import SimKernel
from repro.util.units import Gbps, KiB, us


@dataclass(frozen=True)
class LinkSpec:
    """Static description of an interconnect technology.

    Attributes:
        name: catalog name used in reports.
        latency: one-way small-message latency in seconds, including the
            software (MPI + transport) overhead measured on such fabrics.
        bandwidth: sustained point-to-point bandwidth, bytes/s.
        eager_threshold: messages at or below this size (bytes) use the
            eager lane and skip the bulk serialization queue.
    """

    name: str
    latency: float
    bandwidth: float
    eager_threshold: float = 32 * KiB


#: Gigabit Ethernet with TCP-based MPI: ~60us end-to-end small-message
#: latency, 125 MB/s line rate.  Clusters A and B.
GIGABIT_ETHERNET = LinkSpec("Gigabit Ethernet", latency=60 * us, bandwidth=Gbps(1))

#: InfiniBand EDR (100 Gb/s), verbs MPI: ~1.5us latency.  Cluster C.
INFINIBAND_EDR = LinkSpec("InfiniBand EDR 100Gb/s", latency=1.5 * us, bandwidth=Gbps(100))

#: InfiniBand QDR (40 Gb/s): ~2us latency.  GPU testbed.
INFINIBAND_QDR = LinkSpec("InfiniBand QDR 40Gb/s", latency=2.0 * us, bandwidth=Gbps(40))

#: Zero-cost link used by single-node execution and unit tests.
LOOPBACK = LinkSpec("loopback", latency=0.0, bandwidth=float("inf"), eager_threshold=float("inf"))


class Link:
    """A directed transmission channel with bandwidth serialization.

    One ``Link`` instance models the sender-side egress of a node toward one
    neighbor.  Bulk messages serialize FIFO; eager messages bypass the bulk
    queue.  Delivery is signalled by invoking a callback at arrival time —
    the MPI layer uses this to enqueue the message at the receiver.

    Statistics separate the three ways a message can take the eager lane:
    size (at or below ``eager_threshold``), an explicit ``eager_hint``
    (control markers — counted in ``n_eager_hinted``/``hinted_bytes``), or
    an infinite-bandwidth link, where the bulk lane cannot serialize and
    every message is effectively eager (previously such traffic inflated
    ``bulk_bytes`` while ``busy_until`` never advanced).
    ``n_delivery_events`` counts kernel events fired for the coalesced
    delivery path; ``n_messages - n_delivery_events`` messages rode along
    on another message's event.
    """

    def __init__(self, kernel: SimKernel, spec: LinkSpec) -> None:
        self._kernel = kernel
        self.spec = spec
        #: Simulated time at which the bulk lane becomes free.
        self._bulk_free_at = 0.0
        #: Pending delivery callbacks, keyed by arrival instant.  Each key
        #: has exactly one kernel event scheduled to drain it.
        self._pending: dict[float, list] = {}
        #: Statistics: bytes carried, per lane.
        self.bulk_bytes = 0.0
        self.eager_bytes = 0.0
        self.hinted_bytes = 0.0
        self.n_messages = 0
        self.n_eager_hinted = 0
        self.n_delivery_events = 0

    def transmit(self, nbytes: float, on_delivered, eager_hint: bool = False) -> float:
        """Schedule delivery of a message of ``nbytes``.

        Args:
            nbytes: serialized payload size.
            on_delivered: zero-arg callback invoked at arrival time, or an
                ``(endpoint, message)`` pair — same-instant runs of pairs to
                one endpoint are handed over in a single
                ``endpoint._deliver_batch(...)`` call.
            eager_hint: force the eager lane regardless of size (used for
                zero-byte control markers).

        Returns:
            The simulated arrival time.
        """
        now = self._kernel.now
        self.n_messages += 1
        spec = self.spec
        infinite = spec.bandwidth == float("inf")
        wire_time = 0.0 if infinite else nbytes / spec.bandwidth
        if eager_hint or infinite or nbytes <= spec.eager_threshold:
            # Eager lane: latency + own serialization, no queueing behind
            # bulk.  Infinite-bandwidth links cannot serialize, so all their
            # traffic is eager by construction.
            arrival = now + spec.latency + wire_time
            self.eager_bytes += nbytes
            if eager_hint:
                self.n_eager_hinted += 1
                self.hinted_bytes += nbytes
        else:
            # Bulk lane: wait for the lane, then serialize.
            start = max(now, self._bulk_free_at)
            self._bulk_free_at = start + wire_time
            arrival = self._bulk_free_at + spec.latency
            self.bulk_bytes += nbytes
        pending = self._pending.get(arrival)
        if pending is None:
            self._pending[arrival] = [on_delivered]
            self._kernel.call_at(arrival, self._drain)
        else:
            pending.append(on_delivered)
        return arrival

    def _drain(self) -> None:
        """Deliver every message that arrives at the current instant.

        Entries fire in transmit order.  Maximal runs of ``(endpoint, msg)``
        pairs destined for the same endpoint are grouped into one
        ``_deliver_batch`` call; a plain callback (ack, retransmit) flushes
        the run before it fires, so callbacks never overtake data queued
        ahead of them on this link.
        """
        entries = self._pending.pop(self._kernel.now)
        self.n_delivery_events += 1
        batch_ep = None
        batch: list = []
        for entry in entries:
            if entry.__class__ is tuple:
                ep = entry[0]
                if ep is not batch_ep:
                    if batch:
                        batch_ep._deliver_batch(batch)
                        batch = []
                    batch_ep = ep
                batch.append(entry[1])
            else:
                if batch:
                    batch_ep._deliver_batch(batch)
                    batch = []
                    batch_ep = None
                entry()
        if batch:
            batch_ep._deliver_batch(batch)

    @property
    def busy_until(self) -> float:
        """Time at which the bulk lane next becomes idle."""
        return self._bulk_free_at
