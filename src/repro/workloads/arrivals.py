"""Deterministic, seeded request-arrival processes for serving workloads.

Serving benchmarks sweep over traffic shapes: open-loop Poisson arrivals
(the standard serving-benchmark assumption), bursty arrivals (batches of
requests landing together, as from an upstream batcher or traffic spike),
and closed-loop arrivals (every request present at t=0; concurrency is
bounded by the scheduler's admission cap instead of the trace).

All processes are pure functions of their arguments — the same seed gives
the same trace across runs and platforms, matching the repository's
zero-deviation reproducibility discipline (hash-based draws, no stateful
RNG).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.util.rng import hash_tokens, unit_float

#: Domain separator for arrival draws within the hash-RNG keyspace.
_ARRIVAL_SALT = 101


def poisson_arrivals(rate: float, n: int, seed: int = 0) -> Tuple[float, ...]:
    """Open-loop Poisson arrivals: exponential inter-arrival gaps.

    Args:
        rate: mean request rate in requests per simulated second.
        n: number of arrivals.
        seed: trace seed; different seeds give independent traces.

    Returns:
        ``n`` non-decreasing arrival timestamps starting after t=0.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    times = []
    t = 0.0
    for i in range(n):
        u = unit_float(hash_tokens(seed, (i,), salt=_ARRIVAL_SALT))
        # Inverse-CDF draw; clamp away from u=1 to keep gaps finite.
        gap = -math.log(max(1.0 - u, 1e-12)) / rate
        t += gap
        times.append(t)
    return tuple(times)


def bursty_arrivals(
    n: int,
    burst_size: int,
    burst_gap: float,
    seed: int = 0,
    jitter: float = 0.0,
) -> Tuple[float, ...]:
    """Bursts of ``burst_size`` simultaneous requests every ``burst_gap`` s.

    Args:
        n: total number of arrivals.
        burst_size: requests per burst (the last burst may be smaller).
        burst_gap: seconds between burst starts.
        seed: used only when ``jitter > 0``.
        jitter: uniform per-request offset in [0, jitter) within a burst.

    Returns:
        ``n`` non-decreasing arrival timestamps.
    """
    if burst_size < 1:
        raise ValueError(f"burst_size must be positive, got {burst_size}")
    if burst_gap < 0:
        raise ValueError(f"burst_gap must be non-negative, got {burst_gap}")
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    times = []
    for i in range(n):
        base = (i // burst_size) * burst_gap
        if jitter > 0:
            base += jitter * unit_float(
                hash_tokens(seed, (i,), salt=_ARRIVAL_SALT + 1)
            )
        times.append(base)
    return tuple(sorted(times))


def diurnal_arrivals(
    rate_mean: float,
    n: int,
    period: float,
    amplitude: float = 0.8,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Diurnal traffic: Poisson arrivals with sinusoidal rate modulation.

    The instantaneous rate is ``rate_mean * (1 + amplitude * sin(2*pi*t /
    period))`` — a day/night cycle compressed to ``period`` seconds.
    Implemented by Lewis-Shedler thinning of a homogeneous Poisson
    process at the peak rate: candidate gaps are drawn at
    ``rate_mean * (1 + amplitude)`` and each candidate is accepted with
    probability ``rate(t) / rate_max``.  Both draw streams are
    hash-derived (separate salts), so the trace is a pure function of the
    arguments.

    Args:
        rate_mean: cycle-average request rate (requests per second).
        n: number of arrivals.
        period: seconds per modulation cycle.
        amplitude: modulation depth in [0, 1); 0 degenerates to a plain
            Poisson trace at ``rate_mean``.
        seed: trace seed.

    Returns:
        ``n`` non-decreasing arrival timestamps starting after t=0.
    """
    if rate_mean <= 0:
        raise ValueError(f"rate_mean must be positive, got {rate_mean}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    rate_max = rate_mean * (1.0 + amplitude)
    times = []
    t = 0.0
    i = 0
    while len(times) < n:
        u = unit_float(hash_tokens(seed, (i,), salt=_ARRIVAL_SALT + 2))
        t += -math.log(max(1.0 - u, 1e-12)) / rate_max
        a = unit_float(hash_tokens(seed, (i,), salt=_ARRIVAL_SALT + 3))
        i += 1
        rate_t = rate_mean * (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        )
        if a * rate_max <= rate_t:
            times.append(t)
    return tuple(times)


def closed_loop_arrivals(n: int) -> Tuple[float, ...]:
    """Closed-loop trace: every request queued at t=0.

    Effective concurrency comes from the scheduler's ``max_active`` cap —
    completing a request admits the next, the closed-loop discipline.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return (0.0,) * n


def multiturn_arrivals(
    n_sessions: int,
    n_turns: int,
    turn_gap: float,
    session_rate: float = 1.0,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Multi-turn chat arrivals, session-major, for shared-prefix serving.

    Session starts follow a Poisson process at ``session_rate``; within a
    session, turn ``t`` arrives ``t * turn_gap`` after the session start —
    the user's think-plus-generation time between turns.  The returned
    trace is *session-major* (session 0's turns, then session 1's, ...)
    to align index-for-index with
    :meth:`repro.workloads.prompts.MultiTurnTemplate.prompts`; the
    scheduler re-sorts by arrival time for FCFS admission, interleaving
    sessions naturally.

    Args:
        n_sessions: number of chat sessions.
        n_turns: turns per session.
        turn_gap: seconds between a session's consecutive turns.
        session_rate: mean session starts per second.
        seed: trace seed.
    """
    if n_turns < 1:
        raise ValueError(f"n_turns must be positive, got {n_turns}")
    if turn_gap < 0:
        raise ValueError(f"turn_gap must be non-negative, got {turn_gap}")
    starts = poisson_arrivals(session_rate, n_sessions, seed=seed)
    return tuple(
        start + t * turn_gap for start in starts for t in range(n_turns)
    )
