"""Cloud-edge serving scenario: a pipeline stretched over a lossy WAN hop.

PipeSD-style deployments split a pipelined model between well-provisioned
cloud stages and cheap edge boxes, with a metro WAN in between.  This
module builds the three pieces such a scenario needs, all deterministic:

* a heterogeneous :class:`~repro.cluster.topology.Cluster` whose cloud
  ranks are Xeon Gold nodes on InfiniBand and whose edge ranks are old
  Optiplexes, with every cloud<->edge link overridden to a WAN spec
  (high latency, megabit-class bandwidth);
* a :class:`~repro.faults.plan.FaultPlan` putting loss and jitter on the
  WAN hops the ring pipeline actually traverses, plus an optional
  mid-stream edge-worker crash;
* a prompt/arrival generator for the request stream.

Everything is a pure function of its arguments (seeded draws only), so a
cloud-edge run replays byte-identically like every other workload here.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cluster.hardware import (
    OPTIPLEX_I5_GEN2,
    OPTIPLEX_I7_GEN4,
    XEON_GOLD_6140,
)
from repro.cluster.interconnect import INFINIBAND_EDR, LinkSpec
from repro.cluster.topology import Cluster
from repro.faults.plan import CrashSpec, FaultPlan, LinkFault
from repro.util.units import Mbps, ms
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.prompts import make_prompt

#: Metro-area WAN between the cloud and the edge site: ~12ms one-way
#: latency, 200 Mb/s sustained.  Three orders of magnitude slower than the
#: cloud-internal InfiniBand — the hop that dominates cloud-edge ITL.
WAN_LINK = LinkSpec("metro WAN 200Mb/s", latency=12 * ms, bandwidth=Mbps(200))

#: Prompt classes cycled across the request stream.
_KINDS = ("wikitext", "explain", "code", "story")


def cloud_edge_cluster(
    n_cloud: int = 3,
    n_edge: int = 2,
    wan: LinkSpec = WAN_LINK,
) -> Cluster:
    """A cloud-edge pipeline cluster: Xeons in the cloud, Optiplexes at the edge.

    Ranks ``0..n_cloud-1`` are dual-socket Xeon Gold 6140 cloud nodes on
    InfiniBand EDR; ranks ``n_cloud..n_cloud+n_edge-1`` are edge Optiplexes
    (alternating 4th-gen i7 / 2nd-gen i5).  Every directed link crossing
    the cloud/edge boundary is overridden to ``wan``; links within either
    site keep the uniform InfiniBand spec (the edge LAN is never the
    bottleneck next to the WAN, so one uniform intra-site spec suffices).
    """
    if n_cloud < 1 or n_edge < 1:
        raise ValueError("need at least one cloud and one edge node")
    edge_cycle = (OPTIPLEX_I7_GEN4, OPTIPLEX_I5_GEN2)
    nodes = [XEON_GOLD_6140] * n_cloud + [
        edge_cycle[i % len(edge_cycle)] for i in range(n_edge)
    ]
    n = n_cloud + n_edge
    overrides = {
        (src, dst): wan
        for src in range(n)
        for dst in range(n)
        if src != dst and (src < n_cloud) != (dst < n_cloud)
    }
    return Cluster(
        f"cloud-edge[{n_cloud}+{n_edge}]",
        nodes,
        INFINIBAND_EDR,
        link_overrides=overrides,
    )


def wan_hops(n_cloud: int = 3, n_edge: int = 2) -> Tuple[Tuple[int, int], ...]:
    """The directed WAN hops a ring pipeline traverses on this topology.

    The pipeline runs ranks in order with the head at rank 0, so exactly
    two data paths cross the boundary: the forward relay from the last
    cloud stage into the first edge stage, and the logits return from the
    last edge stage back to the head.  Their reverse directions carry the
    transport's acks, so all four directed pairs are listed.
    """
    last_cloud, first_edge, last_edge = n_cloud - 1, n_cloud, n_cloud + n_edge - 1
    return (
        (last_cloud, first_edge),
        (first_edge, last_cloud),
        (last_edge, 0),
        (0, last_edge),
    )


def cloud_edge_fault_plan(
    seed: int = 0,
    n_cloud: int = 3,
    n_edge: int = 2,
    loss_rate: float = 0.02,
    jitter: float = 3 * ms,
    crash_rank: Optional[int] = None,
    crash_at: float = 2.0,
    restart_delay: float = 0.1,
    rto: float = 0.1,
) -> FaultPlan:
    """A PipeSD-style fault plan: lossy, jittery WAN plus an optional crash.

    Loss and jitter apply to every directed WAN hop from :func:`wan_hops`
    (data paths and their ack return paths alike — a congested metro link
    drops both ways).  When ``crash_rank`` is given, that worker dies at
    ``crash_at`` and restarts after ``restart_delay``, exercising the
    mid-stream re-prefill recovery path.  The default ``rto`` sits well
    above the WAN round trip plus a bulk tensor's serialization, so
    retransmissions mean loss, not an impatient watchdog.
    """
    link_faults = tuple(
        LinkFault(src, dst, loss_rate=loss_rate, jitter=jitter)
        for src, dst in wan_hops(n_cloud, n_edge)
    )
    crashes: Tuple[CrashSpec, ...] = ()
    if crash_rank is not None:
        crashes = (CrashSpec(crash_rank, at=crash_at, restart_delay=restart_delay),)
    return FaultPlan(seed=seed, link_faults=link_faults, crashes=crashes, rto=rto)


def cloud_edge_prompts(
    n: int, vocab: int, length: int = 64
) -> Tuple[Tuple[int, ...], ...]:
    """``n`` mixed-class prompts for the cloud-edge request stream.

    Classes cycle and lengths stagger a little so consecutive requests
    are distinct (``make_prompt`` is deterministic per class+length).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return tuple(
        make_prompt(
            _KINDS[i % len(_KINDS)],
            length=length + (i // len(_KINDS)) % 8,
            vocab=vocab,
        )
        for i in range(n)
    )


def cloud_edge_arrivals(
    n: int, rate: float = 1.5, seed: int = 0
) -> Tuple[float, ...]:
    """Open-loop Poisson arrivals for the cloud-edge stream."""
    return poisson_arrivals(rate, n, seed=seed)
