"""Workloads: the paper's prompt scenarios as synthetic token streams."""

from repro.workloads.prompts import PROMPT_CLASSES, PromptClass, make_prompt

__all__ = ["PROMPT_CLASSES", "PromptClass", "make_prompt"]
