"""Workloads: prompt scenarios and request-arrival traces."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    closed_loop_arrivals,
    diurnal_arrivals,
    multiturn_arrivals,
    poisson_arrivals,
)
from repro.workloads.cloudedge import (
    WAN_LINK,
    cloud_edge_arrivals,
    cloud_edge_cluster,
    cloud_edge_fault_plan,
    cloud_edge_prompts,
    wan_hops,
)
from repro.workloads.prompts import (
    PROMPT_CLASSES,
    MultiTurnTemplate,
    PromptClass,
    SharedPrefixTemplate,
    make_prompt,
)

__all__ = [
    "PROMPT_CLASSES",
    "PromptClass",
    "SharedPrefixTemplate",
    "MultiTurnTemplate",
    "make_prompt",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "closed_loop_arrivals",
    "multiturn_arrivals",
    "WAN_LINK",
    "cloud_edge_arrivals",
    "cloud_edge_cluster",
    "cloud_edge_fault_plan",
    "cloud_edge_prompts",
    "wan_hops",
]
