"""Workloads: prompt scenarios and request-arrival traces."""

from repro.workloads.arrivals import (
    bursty_arrivals,
    closed_loop_arrivals,
    poisson_arrivals,
)
from repro.workloads.prompts import PROMPT_CLASSES, PromptClass, make_prompt

__all__ = [
    "PROMPT_CLASSES",
    "PromptClass",
    "make_prompt",
    "poisson_arrivals",
    "bursty_arrivals",
    "closed_loop_arrivals",
]
