"""Synthetic prompt corpus.

The paper evaluates with 128-token prompts from several task classes
(code generation, creative writing, a Wikitext-2 excerpt; the GPU study
adds technical explanation and roleplay — Figure 10).  For the timing
experiments only two prompt properties matter: the token length, and the
draft/target *alignment* the task induces — speculation accepts more on
formulaic code than on free-form prose.  Each class therefore carries an
``acceptance_delta`` applied to the pair's base acceptance rate, with
values chosen to reproduce Figure 10's spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.rng import hash_tokens


@dataclass(frozen=True)
class PromptClass:
    """One evaluation prompt scenario.

    Attributes:
        key: identifier used by harnesses.
        description: the paper's wording for the scenario.
        acceptance_delta: additive shift of the pair's acceptance rate for
            this task (formulaic tasks speculate better).
        seed: prompt-content seed.
    """

    key: str
    description: str
    acceptance_delta: float
    seed: int


#: Figure 10's four prompts plus the CPU study's Wikitext excerpt.
PROMPT_CLASSES: Dict[str, PromptClass] = {
    "explain": PromptClass(
        "explain", "Prompt 1 (Explain a technical concept)", +0.02, 11
    ),
    "paper": PromptClass("paper", "Prompt 2 (Write a paper)", -0.04, 12),
    "roleplay": PromptClass("roleplay", "Prompt 3 (Roleplay)", -0.10, 13),
    "code": PromptClass("code", "Prompt 4 (Code generation)", +0.06, 14),
    "story": PromptClass("story", "Fictional tale about Goliath", -0.02, 15),
    "wikitext": PromptClass("wikitext", "Randomized Wikitext-2 excerpt", 0.00, 16),
}


def make_prompt(kind: str = "wikitext", length: int = 128, vocab: int = 32000) -> Tuple[int, ...]:
    """A deterministic ``length``-token prompt for the given class.

    Token ids avoid the reserved low range, mirroring real tokenizers.
    """
    cls = PROMPT_CLASSES[kind]
    tokens = []
    h = cls.seed
    for i in range(length):
        h = hash_tokens(cls.seed, (i, h & 0xFFFF), salt=7)
        tokens.append(16 + h % (vocab - 16))
    return tuple(tokens)
