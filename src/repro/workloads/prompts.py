"""Synthetic prompt corpus.

The paper evaluates with 128-token prompts from several task classes
(code generation, creative writing, a Wikitext-2 excerpt; the GPU study
adds technical explanation and roleplay — Figure 10).  For the timing
experiments only two prompt properties matter: the token length, and the
draft/target *alignment* the task induces — speculation accepts more on
formulaic code than on free-form prose.  Each class therefore carries an
``acceptance_delta`` applied to the pair's base acceptance rate, with
values chosen to reproduce Figure 10's spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.rng import hash_tokens, unit_float


@dataclass(frozen=True)
class PromptClass:
    """One evaluation prompt scenario.

    Attributes:
        key: identifier used by harnesses.
        description: the paper's wording for the scenario.
        acceptance_delta: additive shift of the pair's acceptance rate for
            this task (formulaic tasks speculate better).
        seed: prompt-content seed.
    """

    key: str
    description: str
    acceptance_delta: float
    seed: int


#: Figure 10's four prompts plus the CPU study's Wikitext excerpt.
PROMPT_CLASSES: Dict[str, PromptClass] = {
    "explain": PromptClass(
        "explain", "Prompt 1 (Explain a technical concept)", +0.02, 11
    ),
    "paper": PromptClass("paper", "Prompt 2 (Write a paper)", -0.04, 12),
    "roleplay": PromptClass("roleplay", "Prompt 3 (Roleplay)", -0.10, 13),
    "code": PromptClass("code", "Prompt 4 (Code generation)", +0.06, 14),
    "story": PromptClass("story", "Fictional tale about Goliath", -0.02, 15),
    "wikitext": PromptClass("wikitext", "Randomized Wikitext-2 excerpt", 0.00, 16),
}


def make_prompt(kind: str = "wikitext", length: int = 128, vocab: int = 32000) -> Tuple[int, ...]:
    """A deterministic ``length``-token prompt for the given class.

    Token ids avoid the reserved low range, mirroring real tokenizers.
    """
    cls = PROMPT_CLASSES[kind]
    tokens = []
    h = cls.seed
    for i in range(length):
        h = hash_tokens(cls.seed, (i, h & 0xFFFF), salt=7)
        tokens.append(16 + h % (vocab - 16))
    return tuple(tokens)


def _span(seed: int, tag: int, length: int, vocab: int) -> Tuple[int, ...]:
    """A deterministic token span keyed by (seed, tag); ids avoid the
    reserved low range like :func:`make_prompt`."""
    tokens = []
    h = seed
    for i in range(length):
        h = hash_tokens(seed, (tag, i, h & 0xFFFF), salt=23)
        tokens.append(16 + h % (vocab - 16))
    return tuple(tokens)


#: Domain separator for template share/group draws.
_TEMPLATE_SALT = 29


@dataclass(frozen=True)
class SharedPrefixTemplate:
    """Shared-system-prompt traffic: templated agent calls, RAG headers.

    Each request's prompt is ``group prefix + unique suffix``.  A
    ``share_fraction`` of requests (hash-selected, deterministic) draw
    their prefix from one of ``n_groups`` shared system prompts — the
    radix prefix cache's bread-and-butter hit pattern — while the rest
    get fully unique prompts (guaranteed misses, so hit/miss TTFT splits
    have both populations).

    Attributes:
        shared_len: tokens in each group's shared prefix.
        unique_len: per-request unique suffix length.
        n_groups: distinct shared system prompts (round-robin over the
            sharing requests).
        share_fraction: fraction of requests using a shared prefix.
        seed: content seed; same seed, same prompts, any platform.
    """

    shared_len: int = 96
    unique_len: int = 32
    n_groups: int = 1
    share_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shared_len < 1 or self.unique_len < 1:
            raise ValueError("shared_len and unique_len must be positive")
        if self.n_groups < 1:
            raise ValueError(f"n_groups must be positive, got {self.n_groups}")
        if not 0.0 <= self.share_fraction <= 1.0:
            raise ValueError(
                f"share_fraction must be in [0, 1], got {self.share_fraction}"
            )

    def is_shared(self, index: int) -> bool:
        """Whether request ``index`` draws a shared prefix (deterministic)."""
        u = unit_float(hash_tokens(self.seed, (index,), salt=_TEMPLATE_SALT))
        return u < self.share_fraction

    def prompts(self, n: int, vocab: int) -> Tuple[Tuple[int, ...], ...]:
        """``n`` prompts in request order."""
        groups = [
            _span(self.seed, 1000 + g, self.shared_len, vocab)
            for g in range(self.n_groups)
        ]
        out = []
        n_sharing = 0
        for i in range(n):
            if self.is_shared(i):
                # Round-robin over the sharing requests, not the global
                # index — every configured group gets traffic even when
                # is_shared() lands on a skewed index pattern.
                prefix = groups[n_sharing % self.n_groups]
                n_sharing += 1
            else:
                # Unique-prefix request: a miss by construction.
                prefix = _span(self.seed, 2000 + i, self.shared_len, vocab)
            out.append(prefix + _span(self.seed, 3000 + i, self.unique_len, vocab))
        return tuple(out)


@dataclass(frozen=True)
class MultiTurnTemplate:
    """Multi-turn chat sessions: every turn's prompt extends the last.

    Session-major ordering (session 0 turns 0..T-1, then session 1, ...)
    matching :func:`repro.workloads.arrivals.multiturn_arrivals`.  Turn
    ``t`` of a session prompts with ``system + context[: (t+1) * turn_len]``
    where ``context`` is the session's deterministic conversation stand-in
    — so turn ``t``'s prompt is a strict extension of turn ``t-1``'s, the
    donate-then-rematch pattern that grows one radix path per session.

    Attributes:
        system_len: shared system prompt length (shared across sessions).
        turn_len: tokens added per turn.
        n_turns: turns per session.
        seed: content seed.
    """

    system_len: int = 48
    turn_len: int = 24
    n_turns: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.system_len < 1 or self.turn_len < 1:
            raise ValueError("system_len and turn_len must be positive")
        if self.n_turns < 1:
            raise ValueError(f"n_turns must be positive, got {self.n_turns}")

    def prompts(self, n_sessions: int, vocab: int) -> Tuple[Tuple[int, ...], ...]:
        """``n_sessions * n_turns`` prompts, session-major."""
        system = _span(self.seed, 0, self.system_len, vocab)
        out = []
        for s in range(n_sessions):
            context = _span(
                self.seed, 4000 + s, self.n_turns * self.turn_len, vocab
            )
            out.extend(
                system + context[: (t + 1) * self.turn_len]
                for t in range(self.n_turns)
            )
        return tuple(out)

    def sessions(self, n_sessions: int) -> Tuple[int, ...]:
        """Per-request session tags aligned with :meth:`prompts`.

        Session-major like the prompts: ``(0,) * n_turns + (1,) * ...``.
        Feed into :class:`repro.serve.Workload` ``sessions=`` so the
        cluster router's session affinity can pin a conversation's turns
        to the replica whose radix tree holds its earlier turns.
        """
        return tuple(
            s for s in range(n_sessions) for _ in range(self.n_turns)
        )
