"""Deterministic hash-based pseudo-randomness.

The oracle language models (``repro.models.oracle``) need a *function* from
token prefixes to pseudo-random draws: the same prefix must always produce
the same next-token and the same draft/target agreement decision, across
processes and runs, so that greedy decoding is reproducible and strategies
can be compared token-for-token (the paper verifies zero output deviation
across inference strategies).  Stateful generators cannot provide that, so
we use the SplitMix64 finalizer as a keyed hash.
"""

from __future__ import annotations

from typing import Iterable, Sequence

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One round of the SplitMix64 mixing function.

    A high-quality 64-bit finalizer: consecutive integers map to
    statistically independent outputs.  Used as the core of all
    deterministic pseudo-random decisions in the simulator.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_tokens(seed: int, tokens: Sequence[int] | Iterable[int], salt: int = 0) -> int:
    """Hash a token sequence into a 64-bit value.

    Args:
        seed: model identity; different seeds give independent oracles.
        tokens: the token-id prefix to hash.
        salt: extra domain separator, e.g. to derive independent streams
            (next-token vs. agreement vs. confidence) from the same prefix.

    Returns:
        A 64-bit integer hash, deterministic in all arguments.
    """
    h = splitmix64(seed ^ (salt * 0x9E3779B97F4A7C15 & _MASK64))
    for t in tokens:
        h = splitmix64(h ^ (t & _MASK64))
    return h


def unit_float(h: int) -> float:
    """Map a 64-bit hash to a float uniform in [0, 1)."""
    return (h >> 11) * (1.0 / (1 << 53))
