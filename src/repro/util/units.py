"""Unit helpers.

All simulator times are in **seconds** (float) and all sizes in **bytes**
(int/float).  These constants keep hardware catalogs readable: a DDR4-2666
channel is ``21.3 * GB`` per second, Gigabit Ethernet is ``Gbps(1)`` bytes
per second, an MPI software latency is ``30 * us`` seconds.
"""

from __future__ import annotations

#: SI bytes.
KB = 1e3
MB = 1e6
GB = 1e9

#: Binary bytes.
KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3

#: Seconds.
us = 1e-6
ms = 1e-3


def Gbps(x: float) -> float:
    """Convert gigabits-per-second to bytes-per-second."""
    return x * 1e9 / 8.0


def Mbps(x: float) -> float:
    """Convert megabits-per-second to bytes-per-second."""
    return x * 1e6 / 8.0
