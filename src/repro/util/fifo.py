"""FIFO primitives used throughout PipeInfer's run tracking and KV partitioning.

The paper allocates KV-cache sequence ranges and tracks in-flight inference
runs with FIFO discipline (Section IV-A1, IV-C).  These containers are small
wrappers over :class:`collections.deque` that add the handful of invariants
the engine relies on (uniqueness in the sequence pool, peek semantics).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, Iterator, TypeVar

T = TypeVar("T")


class FifoQueue(Generic[T]):
    """A first-in first-out queue with peek, used for run tracking.

    PipeInfer places a record in a FIFO when a pipeline run starts and pops
    it when the run's logits arrive; MPI non-overtaking guarantees arrival
    order matches dispatch order, so a plain FIFO suffices.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: Deque[T] = deque(items)

    def push(self, item: T) -> None:
        """Append ``item`` to the tail of the queue."""
        self._items.append(item)

    def pop(self) -> T:
        """Remove and return the head of the queue.

        Raises:
            IndexError: if the queue is empty.
        """
        return self._items.popleft()

    def peek(self) -> T:
        """Return the head of the queue without removing it."""
        return self._items[0]

    def remove(self, item: T) -> None:
        """Remove the first occurrence of ``item`` (identity-agnostic)."""
        self._items.remove(item)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FifoQueue({list(self._items)!r})"


class SequencePool:
    """FIFO allocator for KV-cache sequence identifiers.

    Implements the free-sequence queue from Section IV-C: speculative runs
    draw a sequence id from the pool and return it once their partition has
    been swapped into the canonical sequence (or the run is discarded).
    Sequence id 0 is the *canonical* sequence and is never pooled.
    """

    CANONICAL = 0

    def __init__(self, n_sequences: int) -> None:
        """Create a pool managing ids ``1..n_sequences`` inclusive.

        Args:
            n_sequences: number of speculative sequence partitions.  The
                canonical sequence 0 is implicit and not part of the pool.
        """
        if n_sequences < 1:
            raise ValueError("need at least one speculative sequence partition")
        self._capacity = n_sequences
        self._free: Deque[int] = deque(range(1, n_sequences + 1))
        self._allocated: set[int] = set()

    @property
    def capacity(self) -> int:
        """Total number of speculative sequence ids managed."""
        return self._capacity

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        return len(self._allocated)

    def available(self) -> bool:
        """True when at least one sequence id can be allocated."""
        return bool(self._free)

    def allocate(self) -> int:
        """Pop the next free sequence id (FIFO order).

        Raises:
            RuntimeError: when the pool is exhausted; callers are expected to
                check :meth:`available` first (the engine throttles
                speculation when no partition is free).
        """
        if not self._free:
            raise RuntimeError("sequence pool exhausted")
        seq = self._free.popleft()
        self._allocated.add(seq)
        return seq

    def release(self, seq: int) -> None:
        """Return ``seq`` to the tail of the free queue.

        Raises:
            ValueError: if ``seq`` is the canonical sequence, out of range,
                or not currently allocated (double free).
        """
        if seq == self.CANONICAL:
            raise ValueError("canonical sequence 0 is never pooled")
        if seq not in self._allocated:
            raise ValueError(f"sequence {seq} is not allocated")
        self._allocated.remove(seq)
        self._free.append(seq)

    def allocated(self) -> frozenset[int]:
        """Snapshot of currently allocated sequence ids."""
        return frozenset(self._allocated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SequencePool(capacity={self._capacity}, free={list(self._free)!r},"
            f" allocated={sorted(self._allocated)!r})"
        )
