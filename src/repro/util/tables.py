"""Plain-text table and series rendering for experiment harnesses.

Each experiment module prints the same rows/series the paper's figures plot.
Rendering is deliberately dependency-free (no matplotlib offline) — a figure
becomes an aligned text table with one column per x-value and one row per
series, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    lines.extend(
        " | ".join(c.ljust(w) for c, w in zip(row, widths))
        for row in cells[1:]
    )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a figure as one row per series, one column per x value.

    Matches the layout of the paper's grouped bar charts: ``series`` maps a
    legend entry (e.g. ``"Pipe. (TinyLlama)"``) to its per-x measurements.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = [
        [name] + [_fmt(v) for v in values]
        for name, values in series.items()
    ]
    out = format_table(headers, rows, title=title)
    if unit:
        out += f"\n(values in {unit})"
    return out


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100:
            return f"{v:.1f}"
        if abs(v) >= 1:
            return f"{v:.3f}"
        return f"{v:.4f}"
    return str(v)
