"""Shared utilities: deterministic hashing, FIFO pools, unit conversions."""

from repro.util.fifo import FifoQueue, SequencePool
from repro.util.rng import splitmix64, hash_tokens, unit_float
from repro.util.units import GB, GiB, MB, KiB, Gbps, us, ms

__all__ = [
    "FifoQueue",
    "SequencePool",
    "splitmix64",
    "hash_tokens",
    "unit_float",
    "GB",
    "GiB",
    "MB",
    "KiB",
    "Gbps",
    "us",
    "ms",
]
