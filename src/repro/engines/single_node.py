"""Normal single-node inference: the paper's first baseline.

The whole target model lives on one node; tokens are generated one at a
time with no communication.  This is the ground-truth strategy for output
equivalence and the memory-floor reference in the efficiency analysis.
"""

from __future__ import annotations

from typing import Generator, List

from repro.cluster.kernel import Delay
from repro.comm.payloads import DecodeMeta, TokenSlot
from repro.engines.base import BaseEngine, GenerationJob
from repro.models.sampler import argmax_token


class SingleNodeEngine(BaseEngine):
    """Iterative decoding on a single node."""

    name = "single-node"

    def target_ranks(self) -> List[int]:
        return [0]

    def partition(self):
        return [(0, self.backend.n_target_layers)]

    def _generate(self, job: GenerationJob) -> Generator:
        be = self.backend
        metrics = self.metrics
        node = self.cluster.nodes[0]
        ws = self._worker_states[0]
        chain = be.new_chain(job.prompt)
        accepted: List[int] = list(job.prompt)

        def decode(slots, states):
            """Local full-model pass; returns logits for want slots."""
            rid = self.new_run_id()
            meta = DecodeMeta(rid, slots, False, oracle_states=states)
            for chunk in be.stage_chunks(node, ws.layer_range, len(slots)):
                yield Delay(chunk)
                metrics.add_busy(0, chunk)
            hidden = be.compute_stage(ws, meta, None)
            n_want = sum(1 for s in slots if s.want_logits)
            t = be.logits_time(node, n_want)
            yield Delay(t)
            metrics.add_busy(0, t)
            return be.finalize_logits(ws, meta, hidden)

        # Prompt prefill.
        slots = [
            TokenSlot(t, i, (0,), want_logits=(i == len(job.prompt) - 1))
            for i, t in enumerate(job.prompt)
        ]
        states = be.slot_states(chain, 0, len(job.prompt))
        logits = yield from decode(slots, states)
        first = argmax_token(logits[0])
        accepted.append(first)
        chain.append(first)
        metrics.mark_prefill_end(self.net.kernel.now)

        while len(accepted) - len(job.prompt) < job.n_generate:
            tip_pos = len(accepted) - 1
            slots = [TokenSlot(accepted[tip_pos], tip_pos, (0,), True)]
            states = be.slot_states(chain, tip_pos, 1)
            logits = yield from decode(slots, states)
            nxt = argmax_token(logits[0])
            accepted.append(nxt)
            chain.append(nxt)
            self.metrics.record_tokens(self.net.kernel.now, 1)
            self.metrics.stats.completed += 1
            self.metrics.stats.dispatched += 1

        return accepted

    def _head(self, job: GenerationJob) -> Generator:
        accepted = yield from self._generate(job)
        self.finish(job, accepted)
