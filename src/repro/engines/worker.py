"""The pipeline worker process, shared by every distributed engine.

A worker rank loops on its mailbox:

- transaction **starts** from its upstream neighbor dispatch to the typed
  handler (decode, cache op, shutdown) — strictly in arrival order, which
  MPI non-overtaking makes deterministic (paper Fig. 2);
- **cancellation signals** (their own tag, eager lane) are recorded
  whenever they arrive and are also *probed between compute chunks* — the
  paper's "thread synchronization points" — letting a node abandon a
  speculative run mid-evaluation (Section IV-D2);
- cancelled runs still forward an **empty activation record** downstream
  so message ordering and per-node state stay intact (IV-D2), and the last
  rank still returns a cancelled logits record so the head can pop its
  run FIFO.

Non-speculative runs are never skipped, even when cancelled: KV
multibuffering's early cache-entry sharing relies on canonical runs
completing (IV-D3); only their final sampling is skipped at the head.
"""

from __future__ import annotations

from typing import Generator, Optional, Set

from repro.cluster.hardware import NodeSpec
from repro.cluster.kernel import Delay
from repro.comm.message import ANY_SOURCE, Tag
from repro.comm.mpi_sim import Network
from repro.comm.payloads import Activations, CacheOp, LogitsPayload
from repro.comm.transactions import TransactionType, recv_piece
from repro.engines.backend import (
    Backend,
    EMPTY_ACTIVATION_NBYTES,
    WorkerState,
    apply_cache_op,
)
from repro.metrics.collectors import MetricsCollector

#: Wire size of a cancelled logits record.
CANCELLED_LOGITS_NBYTES = 24.0


def pipeline_worker(
    net: Network,
    rank: int,
    upstream: int,
    downstream: Optional[int],
    head_rank: int,
    backend: Backend,
    ws: WorkerState,
    node: NodeSpec,
    metrics: MetricsCollector,
) -> Generator:
    """Worker process for one pipeline rank.

    Args:
        net: the simulation network.
        rank: this worker's rank.
        upstream: rank that feeds this stage (head for the first stage).
        downstream: next stage, or None for the last stage (which returns
            logits to ``head_rank`` instead).
        backend: model behaviour (compute, sizes, timing).
        ws: this rank's worker state (layer range + KV shard).
    """
    ep = net.endpoint(rank)
    cancelled: Set[int] = set()

    def busy(seconds: float) -> None:
        metrics.add_busy(rank, seconds)

    def record_cancel(run_id: int) -> None:
        if run_id in cancelled:
            return
        cancelled.add(run_id)
        # Back-propagate toward earlier stages (IV-D2).  The first target
        # stage's upstream is the head, which originated the signal.
        if upstream != head_rank:
            ep.send(
                CancelForward(run_id), upstream, Tag.CANCEL, nbytes=16.0, eager=True
            )

    while True:
        # Receiver discipline: the main loop only accepts transaction
        # starts and out-of-band cancels; typed payload pieces are pulled
        # by the transaction handlers on their own tags.
        msg = yield from ep.recv(ANY_SOURCE, (Tag.START, Tag.CANCEL))
        if msg.tag == Tag.CANCEL:
            record_cancel(msg.payload.run_id)
            continue
        if msg.tag != Tag.START:
            raise RuntimeError(f"worker {rank}: unexpected message {msg!r}")
        ttype = TransactionType(msg.payload)

        if ttype == TransactionType.SHUTDOWN:
            yield from recv_piece(ep, msg.src, ttype)
            if downstream is not None:
                from repro.comm.transactions import send_transaction
                from repro.comm.payloads import ShutdownMsg

                send_transaction(
                    ep, downstream, TransactionType.SHUTDOWN,
                    [(ShutdownMsg(), 8.0)], eager=True,
                )
            return

        if ttype == TransactionType.CACHE_OP:
            batch = yield from recv_piece(ep, msg.src, ttype)
            for op in batch:
                apply_cache_op(ws.cache, op)
            yield Delay(2e-6 * len(batch))
            if downstream is not None:
                from repro.comm.transactions import send_transaction

                send_transaction(
                    ep, downstream, TransactionType.CACHE_OP,
                    [(batch, 32.0 * len(batch))], eager=True,
                )
            continue

        if ttype != TransactionType.DECODE:
            raise RuntimeError(f"worker {rank}: unknown transaction {ttype}")

        meta = yield from recv_piece(ep, msg.src, ttype)
        act: Activations = yield from recv_piece(ep, msg.src, ttype)

        # Drain any cancellation signals that raced ahead of this decode.
        while ep.iprobe(ANY_SOURCE, Tag.CANCEL):
            cmsg = yield from ep.recv(ANY_SOURCE, Tag.CANCEL)
            record_cancel(cmsg.payload.run_id)

        lo, hi = ws.layer_range
        skip = act.cancelled or (meta.is_speculative and meta.run_id in cancelled)
        hidden = None
        if skip:
            metrics.stats.worker_layer_evals_skipped += hi - lo
        else:
            chunks = backend.stage_chunks(node, ws.layer_range, meta.n_tokens)
            aborted = False
            done_frac = 0
            for i, chunk in enumerate(chunks):
                yield Delay(chunk)
                busy(chunk)
                # Thread-synchronization-point probe: react to cancels that
                # arrive while this run is being evaluated.
                while ep.iprobe(ANY_SOURCE, Tag.CANCEL):
                    cmsg = yield from ep.recv(ANY_SOURCE, Tag.CANCEL)
                    record_cancel(cmsg.payload.run_id)
                if meta.is_speculative and meta.run_id in cancelled:
                    aborted = True
                    remaining = len(chunks) - (i + 1)
                    metrics.stats.worker_layer_evals_skipped += max(
                        0, (hi - lo) * remaining // max(len(chunks), 1)
                    )
                    break
            if aborted:
                skip = True
            else:
                hidden = backend.compute_stage(ws, meta, act.hidden)

        if ws.is_last_stage:
            if skip:
                payload = LogitsPayload(
                    meta.run_id, [], nbytes=CANCELLED_LOGITS_NBYTES, cancelled=True
                )
            else:
                n_want = sum(1 for s in meta.slots if s.want_logits)
                t = backend.logits_time(node, n_want)
                yield Delay(t)
                busy(t)
                logits = backend.finalize_logits(ws, meta, hidden)
                payload = LogitsPayload(
                    meta.run_id, logits, nbytes=backend.logits_nbytes(n_want)
                )
            ep.send(payload, head_rank, Tag.LOGITS, nbytes=payload.nbytes)
        else:
            from repro.comm.transactions import send_transaction

            out = (
                Activations(meta.run_id, EMPTY_ACTIVATION_NBYTES, None, cancelled=True)
                if skip
                else Activations(
                    meta.run_id, backend.activation_nbytes(meta.n_tokens), hidden
                )
            )
            send_transaction(
                ep, downstream, TransactionType.DECODE,
                [(meta, meta.nbytes), (out, out.nbytes)],
            )


class CancelForward:
    """Cancellation signal payload relayed between workers."""

    __slots__ = ("run_id", "nbytes")

    def __init__(self, run_id: int) -> None:
        self.run_id = run_id
        self.nbytes = 16.0
