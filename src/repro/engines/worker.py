"""The pipeline worker process, shared by every distributed engine.

A worker rank loops on its mailbox:

- transaction **starts** from its upstream neighbor dispatch to the typed
  handler (decode, cache op, shutdown) — strictly in arrival order, which
  MPI non-overtaking makes deterministic (paper Fig. 2);
- **cancellation signals** (their own tag, eager lane) are recorded
  whenever they arrive and are also *probed between compute chunks* — the
  paper's "thread synchronization points" — letting a node abandon a
  speculative run mid-evaluation (Section IV-D2);
- cancelled runs still forward an **empty activation record** downstream
  so message ordering and per-node state stay intact (IV-D2), and the last
  rank still returns a cancelled logits record so the head can pop its
  run FIFO.

Non-speculative runs are never skipped, even when cancelled: KV
multibuffering's early cache-entry sharing relies on canonical runs
completing (IV-D3); only their final sampling is skipped at the head.

**Fusion window** (multi-run batching): instead of evaluating each run's
1–4-token micro-batch as its own stage pass, a worker drains *every*
transaction already waiting in its mailbox — decode runs of several
concurrent speculative/canonical runs (and, in serving mode, of several
requests), with any cache-op batches interleaved between them — and
evaluates the live runs as **one fused cross-run batch**: a single stage
delay charged for the concatenated token count, one masked attention pass
per layer, then per-run activation records forwarded downstream as a
single FUSED transaction that preserves the original dispatch order.
Cancellation stays live inside a window: a cancel that lands between
compute chunks removes the run from the fused computation, and its empty
record still goes out in its original slot.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set

from repro.cluster.hardware import NodeSpec
from repro.comm.message import ANY_SOURCE, Tag
from repro.comm.mpi_sim import Network
from repro.comm.payloads import (
    Activations,
    FusedBatch,
    FusedRun,
    ShutdownMsg,
)
from repro.comm.pool import TransactionPool
from repro.comm.transactions import TransactionType, recv_piece, send_transaction
from repro.engines.backend import (
    Backend,
    EMPTY_ACTIVATION_NBYTES,
    StageRun,
    WorkerState,
)
from repro.metrics.collectors import MetricsCollector

#: Wire size of a cancelled logits record.
CANCELLED_LOGITS_NBYTES = 24.0

#: Simulated time to apply one pipelined cache-op command.
CACHE_OP_APPLY_TIME = 2e-6

#: Default cap on decode runs fused into one stage window.
DEFAULT_MAX_FUSED_RUNS = 8


def pipeline_worker(
    net: Network,
    rank: int,
    upstream: int,
    downstream: Optional[int],
    head_rank: int,
    backend: Backend,
    ws: WorkerState,
    node: NodeSpec,
    metrics: MetricsCollector,
    max_fuse: int = DEFAULT_MAX_FUSED_RUNS,
    pool: Optional[TransactionPool] = None,
    injector=None,
) -> Generator:
    """Worker process for one pipeline rank.

    Args:
        net: the simulation network.
        rank: this worker's rank.
        upstream: rank that feeds this stage (head for the first stage).
        downstream: next stage, or None for the last stage (which returns
            logits to ``head_rank`` instead).
        backend: model behaviour (compute, sizes, timing).
        ws: this rank's worker state (layer range + KV shard).
        max_fuse: cap on decode runs drained into one fusion window
            (1 disables cross-run fusion; windows still absorb cache-op
            transactions between a run and its predecessor).
        pool: the engine's shared :class:`TransactionPool`; payload records
            this stage unpacks are released into it and outbound records
            are acquired from it.
        injector: optional :class:`repro.faults.FaultInjector`; when set,
            stage compute times are scaled by any active straggler window
            for this rank.  ``None`` on fault-free runs (zero overhead).
    """
    ep = net.endpoint(rank)
    kernel = net.kernel
    cancelled: Set[int] = set()
    if pool is None:
        pool = TransactionPool()
    #: Flipped when this generator is closed (shutdown or crash): any
    #: window sync-point callbacks still scheduled on the kernel become
    #: no-ops, so a crashed worker stops computing and sending mid-window
    #: exactly as the historical in-generator chunk loop did.
    dead = [False]

    def busy(seconds: float) -> None:
        metrics.add_busy(rank, seconds)

    def record_cancel(run_id: int) -> None:
        if run_id in cancelled:
            return
        cancelled.add(run_id)
        # Back-propagate toward earlier stages (IV-D2).  The first target
        # stage's upstream is the head, which originated the signal.
        if upstream != head_rank:
            ep.send(
                CancelForward(run_id), upstream, Tag.CANCEL, nbytes=16.0, eager=True
            )

    def drain_cancels() -> None:
        for cmsg in ep.recv_ready(ANY_SOURCE, Tag.CANCEL):
            record_cancel(cmsg.payload.run_id)

    # Receiver discipline: wake on payload *pieces* (or out-of-band
    # cancels), not on Tag.START.  The 16-byte start marker outruns its
    # payload pieces on the eager lane, so a worker parked on the piece
    # tags finds both the start and its first piece already in the mailbox
    # when it resumes — one park per transaction instead of one per
    # message.  The start marker still sequences dispatch: it is always
    # consumed first, oldest first.
    wake_tags = (Tag.CANCEL, Tag.DECODE, Tag.CACHE_OP, Tag.FUSED, Tag.CONTROL)
    piece_tags = (Tag.DECODE, Tag.CACHE_OP, Tag.FUSED, Tag.CONTROL)

    try:
        yield from _worker_loop(
            ep, kernel, wake_tags, piece_tags, drain_cancels,
            net, rank, upstream, downstream, head_rank, backend, ws, node,
            metrics, max_fuse, pool, injector, cancelled, busy, dead,
        )
    finally:
        dead[0] = True


def _worker_loop(
    ep, kernel, wake_tags, piece_tags, drain_cancels,
    net, rank, upstream, downstream, head_rank, backend, ws, node,
    metrics, max_fuse, pool, injector, cancelled, busy, dead,
) -> Generator:
    """Main receive/evaluate loop (split out so the crash flag wraps it)."""
    #: True while a fusion window's boundary events are in flight.
    in_flight = [False]
    #: ``(future, need_msg)`` the worker parked on mid-window.  Resolved
    #: at window completion if input is already waiting (or
    #: unconditionally for the shutdown flush, ``need_msg=False``);
    #: otherwise re-parked as an arrival watcher, so the worker wakes
    #: exactly once per window, at max(window end, next arrival).
    gate_box = [None]

    def on_window_done() -> None:
        in_flight[0] = False
        parked = gate_box[0]
        if parked is None:
            return
        gate, need_msg = parked
        gate_box[0] = None
        if not need_msg or ep.iprobe(ANY_SOURCE, wake_tags):
            gate.resolve(None)
        else:
            ep.post_probe(ANY_SOURCE, wake_tags, gate)

    while True:
        if in_flight[0]:
            gate = kernel.future(f"window-gate@{rank}")
            gate_box[0] = (gate, True)
            yield gate
        elif not ep.iprobe(ANY_SOURCE, wake_tags):
            yield from ep.probe(ANY_SOURCE, wake_tags)
        drain_cancels()
        if not ep.iprobe(ANY_SOURCE, Tag.START):
            if not ep.iprobe(ANY_SOURCE, piece_tags):
                continue  # pure-cancel wake: recorded above, nothing else
            # A piece outran its start marker (the 8-byte shutdown frame,
            # or fault jitter): park for the start itself.
        msg = yield from ep.recv(ANY_SOURCE, Tag.START)
        src = msg.src
        ttype = TransactionType(msg.payload)

        # ---- fusion window: drain this transaction plus everything already
        # waiting from the same sender, in arrival order --------------------
        window: List = []  # FusedRun | List[CacheOp], dispatch order
        n_runs = 0
        shutdown = False
        while True:
            if ttype == TransactionType.SHUTDOWN:
                yield from recv_piece(ep, src, ttype)
                shutdown = True
                break
            if ttype == TransactionType.DECODE:
                meta = yield from recv_piece(ep, src, ttype)
                act: Activations = yield from recv_piece(ep, src, ttype)
                window.append(pool.acquire_fused_run(meta, act))
                n_runs += 1
            elif ttype == TransactionType.CACHE_OP:
                batch = yield from recv_piece(ep, src, ttype)
                window.append(batch)
            elif ttype == TransactionType.FUSED:
                fb: FusedBatch = yield from recv_piece(ep, src, ttype)
                for item in fb.items:
                    window.append(item)
                    if isinstance(item, FusedRun):
                        n_runs += 1
                # The batch container is dead once unpacked (its items are
                # now owned by the window); recycle it.
                pool.release_fused_batch(fb)
            else:  # pragma: no cover - exhaustive enum
                raise RuntimeError(f"worker {rank}: unknown transaction {ttype}")
            if n_runs >= max_fuse or not ep.iprobe(src, Tag.START):
                break
            msg = yield from ep.recv(src, Tag.START)
            ttype = TransactionType(msg.payload)

        if window:
            # The window's chunk-boundary sync points run as kernel events;
            # the worker parks (next loop iteration) until the final
            # boundary fires ``on_window_done`` at the exact instant the
            # historical chunk loop finished.
            in_flight[0] = True
            _schedule_window(
                kernel, ep, window, backend, ws, node, metrics,
                rank, downstream, head_rank, cancelled, busy, drain_cancels,
                pool, injector, dead, on_window_done,
            )

        if shutdown:
            if in_flight[0]:
                # Flush: forward the shutdown only once the in-flight
                # window has completed and sent its records.
                gate = kernel.future(f"flush-gate@{rank}")
                gate_box[0] = (gate, False)
                yield gate
            if downstream is not None:
                send_transaction(
                    ep, downstream, TransactionType.SHUTDOWN,
                    [(ShutdownMsg(), 8.0)], eager=True,
                )
            return


def _schedule_window(
    kernel, ep, window, backend, ws, node, metrics,
    rank, downstream, head_rank, cancelled, busy, drain_cancels,
    pool, injector, dead, on_done,
) -> None:
    """Schedule one fusion window's evaluation as kernel events.

    The window's timeline is laid out up front: one callback per
    compute-chunk boundary runs the cancellation sync-point probe (the
    between-chunk ``drain_cancels`` + skip update the paper calls thread
    synchronization points), and the final boundary performs the stage
    compute and forwards the records — all at exactly the simulated
    instants the historical in-generator chunk loop hit.  ``on_done``
    fires at the completion instant (synchronously when there is nothing
    to evaluate and no cache-op apply time); the worker process parks
    once per window instead of resuming at every chunk.

    Every callback is guarded by the worker's ``dead`` flag so a crash
    mid-window abandons the remaining chunks, the compute, and the
    forwards, matching generator close semantics.
    """
    lo, hi = ws.layer_range

    # Drain any cancellation signals that raced ahead of these decodes.
    drain_cancels()

    # Build the compute window, marking runs the stage will not evaluate.
    # The inbound per-run records are dead once unpacked into StageRuns
    # (the hidden tensor is extracted, the meta travels on by reference):
    # recycle them through the engine's shared pool.
    items: List = []          # StageRun | List[CacheOp], dispatch order
    stage_runs: List[StageRun] = []
    n_ops = 0
    for it in window:
        if isinstance(it, FusedRun):
            skip = it.act.cancelled or (
                it.meta.is_speculative and it.meta.run_id in cancelled
            )
            if skip:
                metrics.stats.worker_layer_evals_skipped += hi - lo
            sr = StageRun(it.meta, it.act.hidden, skip=skip)
            items.append(sr)
            stage_runs.append(sr)
            pool.release_activations(it.act)
            pool.release_fused_run(it)
        else:
            items.append(it)
            n_ops += len(it)

    op_delay = CACHE_OP_APPLY_TIME * n_ops if n_ops else 0.0
    live = [sr for sr in stage_runs if not sr.skip]

    def send_records(busy_acc: float) -> None:
        """Emit this window's outbound records (at the current instant)."""
        if ws.is_last_stage:
            outs = window_state[0]
            for sr, hidden in zip(stage_runs, outs):
                if sr.skip:
                    payload = pool.acquire_logits(
                        sr.meta.run_id, [], nbytes=CANCELLED_LOGITS_NBYTES,
                        cancelled=True,
                    )
                else:
                    logits = backend.finalize_logits(ws, sr.meta, hidden)
                    payload = pool.acquire_logits(
                        sr.meta.run_id, logits,
                        nbytes=backend.logits_nbytes(len(logits)),
                    )
                ep.send(payload, head_rank, Tag.LOGITS, nbytes=payload.nbytes)
        elif downstream is not None:
            outs = window_state[0]
            fb = pool.acquire_fused_batch()
            out_items = fb.items
            nbytes = 0.0
            oi = 0
            for it in items:
                if isinstance(it, StageRun):
                    if it.skip:
                        out = pool.acquire_activations(
                            it.meta.run_id, EMPTY_ACTIVATION_NBYTES, None,
                            cancelled=True,
                        )
                    else:
                        out = pool.acquire_activations(
                            it.meta.run_id,
                            backend.activation_nbytes(it.meta.n_tokens),
                            outs[oi],
                        )
                    out_items.append(pool.acquire_fused_run(it.meta, out))
                    nbytes += it.meta.nbytes + out.nbytes
                    oi += 1
                else:
                    out_items.append(it)
                    nbytes += 32.0 * len(it)
            fb.nbytes = nbytes
            send_transaction(
                ep, downstream, TransactionType.FUSED, [(fb, fb.nbytes)]
            )
        # One metrics call per window: busy seconds accumulated across
        # chunk and logits delays instead of per-delay calls.
        if busy_acc:
            busy(busy_acc)
        on_done()

    #: ``window_state[0]`` holds the stage outputs between the compute
    #: boundary and the (possibly later) logits-emit boundary.
    window_state: List = [None]

    def finish(busy_acc: float) -> None:
        """End-of-chunks boundary: run the stage compute, then emit."""
        window_state[0] = backend.compute_stage_multi(ws, items)
        if ws.is_last_stage and any(not sr.skip for sr in stage_runs):
            n_want = sum(
                sum(1 for s in sr.meta.slots if s.want_logits)
                for sr in stage_runs if not sr.skip
            )
            t = backend.logits_time(node, n_want)

            def emit() -> None:
                if not dead[0]:
                    send_records(busy_acc + t)

            kernel.call_at(kernel.now + t, emit)
        else:
            send_records(busy_acc)

    if live:
        width = len(live)
        metrics.record_fusion(rank, width)
        if width > 1:
            metrics.stats.fused_batches += 1
            metrics.stats.fused_runs += width
        # One fused stage time for the concatenated batch — weights are
        # streamed once across the window, not once per run.
        chunks = backend.stage_chunks_multi(
            node, ws.layer_range, [sr.meta.n_tokens for sr in live]
        )
        if injector is not None:
            factor = injector.stage_time_factor(rank)
            if factor != 1.0:
                chunks = [c * factor for c in chunks]
        if not any(sr.meta.is_speculative for sr in live):
            # No speculative run in the window: cancellation cannot touch
            # it (cancels only ever skip speculative runs), so the
            # between-chunk sync points are no-ops.  Charge the whole
            # window (plus any cache-op apply time) as one boundary.
            total = sum(chunks)

            def whole_window() -> None:
                if not dead[0]:
                    finish(total)

            kernel.call_at(kernel.now + total + op_delay, whole_window)
            return
        # Cache-op apply time rides the first chunk (no observable event
        # sits between them); each boundary probes for cancels that landed
        # while the chunk evaluated.  A cancel mid-fusion splits the batch
        # logically: the run drops out of the computation but keeps its
        # slot in the forwarded record order.
        n_chunks = len(chunks)
        done = [False]
        t = kernel.now + op_delay
        elapsed = 0.0
        for i, chunk in enumerate(chunks):
            t += chunk
            elapsed += chunk

            def boundary(
                remaining: int = n_chunks - (i + 1), elapsed: float = elapsed
            ) -> None:
                if done[0] or dead[0]:
                    return
                drain_cancels()
                for sr in stage_runs:
                    if (
                        not sr.skip
                        and sr.meta.is_speculative
                        and sr.meta.run_id in cancelled
                    ):
                        sr.skip = True
                        metrics.stats.worker_layer_evals_skipped += max(
                            0, (hi - lo) * remaining // max(n_chunks, 1)
                        )
                if remaining == 0 or not any(
                    not sr.skip for sr in stage_runs
                ):
                    # Last chunk done, or whole window cancelled: abandon
                    # any remaining chunks and finish now.
                    done[0] = True
                    finish(elapsed)

            kernel.call_at(t, boundary)
        return

    if op_delay:

        def ops_applied() -> None:
            if not dead[0]:
                finish(0.0)

        kernel.call_at(kernel.now + op_delay, ops_applied)
        return

    finish(0.0)


class CancelForward:
    """Cancellation signal payload relayed between workers."""

    __slots__ = ("run_id", "nbytes")

    def __init__(self, run_id: int) -> None:
        self.run_id = run_id
        self.nbytes = 16.0
