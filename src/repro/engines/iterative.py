"""Pipeline-parallel iterative inference: the paper's distributed baseline.

Every node holds a contiguous slice of the target model; the head (rank 0)
embeds a single token, evaluates its own slice, forwards activations down
the chain, and blocks until the last rank returns logits.  One token per
full pipeline traversal — the design whose bubbles PipeInfer fills.
"""

from __future__ import annotations

from typing import Generator, List

from repro.cluster.kernel import Delay
from repro.comm.message import Tag
from repro.comm.payloads import Activations, DecodeMeta, TokenSlot
from repro.engines.base import BaseEngine, GenerationJob
from repro.models.sampler import argmax_token


class PipelinedHeadMixin:
    """Shared head-side plumbing for engines whose rank 0 is also stage 0."""

    def run_batch(self, slots, states, is_spec, pre_ops=()):
        """Dispatch one batch through the pipeline; returns its logits.

        The head evaluates its own stage first (applying any cache ops to
        its local shard), forwards downstream, then blocks on the returned
        logits — the synchronous pattern both baselines share.
        """
        from repro.engines.backend import apply_cache_op

        be = self.backend
        ranks = self.target_ranks()
        node = self.cluster.nodes[0]
        ws = self._worker_states[0]
        rid = self.new_run_id()
        meta = DecodeMeta(rid, list(slots), is_spec, oracle_states=states)
        meta.nbytes = be.meta_nbytes(meta.n_tokens)

        for op in pre_ops:
            apply_cache_op(ws.cache, op)
        if len(ranks) > 1 and pre_ops:
            self.send_cache_ops(ranks[1], list(pre_ops))

        for chunk in be.stage_chunks(node, ws.layer_range, meta.n_tokens):
            yield Delay(chunk)
            self.metrics.add_busy(0, chunk)
        hidden = be.compute_stage(ws, meta, None)
        self.metrics.stats.dispatched += 1

        if len(ranks) == 1:
            n_want = sum(1 for s in meta.slots if s.want_logits)
            t = be.logits_time(node, n_want)
            yield Delay(t)
            self.metrics.add_busy(0, t)
            self.metrics.stats.completed += 1
            return be.finalize_logits(ws, meta, hidden)

        act = Activations(rid, be.activation_nbytes(meta.n_tokens), hidden)
        self.send_decode(ranks[1], meta, act)
        msg = yield from self.ep().recv(ranks[-1], Tag.LOGITS)
        self.metrics.stats.completed += 1
        return msg.payload.logits

    def prefill(self, job: GenerationJob, chain):
        """Process the prompt; returns the first sampled token."""
        slots = [
            TokenSlot(t, i, (0,), want_logits=(i == len(job.prompt) - 1))
            for i, t in enumerate(job.prompt)
        ]
        states = self.backend.slot_states(chain, 0, len(job.prompt))
        logits = yield from self.run_batch(slots, states, is_spec=False)
        first = argmax_token(logits[0])
        self.metrics.mark_prefill_end(self.net.kernel.now)
        return first


class IterativeEngine(PipelinedHeadMixin, BaseEngine):
    """Naive pipeline-parallel decoding, one token per traversal."""

    name = "iterative"

    def _generate(self, job: GenerationJob) -> Generator:
        be = self.backend
        chain = be.new_chain(job.prompt)
        accepted: List[int] = list(job.prompt)

        first = yield from self.prefill(job, chain)
        accepted.append(first)
        chain.append(first)

        while len(accepted) - len(job.prompt) < job.n_generate:
            tip_pos = len(accepted) - 1
            slots = [TokenSlot(accepted[tip_pos], tip_pos, (0,), True)]
            states = be.slot_states(chain, tip_pos, 1)
            logits = yield from self.run_batch(slots, states, is_spec=False)
            nxt = argmax_token(logits[0])
            accepted.append(nxt)
            chain.append(nxt)
            self.metrics.record_tokens(self.net.kernel.now, 1)

        return accepted

    def _head(self, job: GenerationJob) -> Generator:
        accepted = yield from self._generate(job)
        self.finish(job, accepted)
