"""Shared engine machinery: configuration, wiring, dispatch helpers.

An *engine* is one inference strategy.  Engines share the pipeline worker
(:mod:`repro.engines.worker`) and differ in their head-node process.  A
:class:`BaseEngine` handles the common wiring: rank layout, layer
partitioning, worker state, transaction dispatch, prompt prefill, and
shutdown.  :func:`run_engine` builds a fresh simulation, runs one
generation job to completion, and returns an :class:`EngineReport`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Generator, List, Optional, Sequence, Tuple

from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.topology import Cluster
from repro.comm.mpi_sim import Endpoint, Network
from repro.comm.payloads import (
    Activations,
    CacheOp,
    DecodeMeta,
    FusedRun,
    ShutdownMsg,
)
from repro.comm.pool import TransactionPool
from repro.comm.transactions import TransactionType, send_transaction
from repro.engines.backend import Backend
from repro.metrics.collectors import MetricsCollector
from repro.metrics.report import EngineReport
from repro.pipeline.partition import partition_for
from repro.spec.draft import DraftParams

#: Wire size of a cache-op command.
CACHE_OP_NBYTES = 32.0


@dataclass(frozen=True)
class EngineConfig:
    """Algorithm knobs shared by all engines.

    PipeInfer-specific fields (Section IV): micro-batch size, the number
    of KV sequence partitions, the reactive-cutoff factors, and the
    ablation switches for Figure 8.
    """

    draft: DraftParams = field(default_factory=DraftParams)
    #: KV-cache sequence partitions available to speculative runs (IV-C).
    n_seq_partitions: int = 8
    #: Continuous-speculation micro-batch size, 1-4 in the paper (IV-B1).
    microbatch_size: int = 4
    #: Maximum drafted-but-unverified chain length before drafting pauses.
    lookahead_cap: int = 16
    #: Confidence-cutoff recovery factor (IV-B2): added per successful
    #: continuous-speculation iteration, reset on run acceptance.
    cutoff_recovery: float = 0.06
    #: Confidence-cutoff decay factor (IV-B2): subtracted when speculation
    #: halts and no logits are waiting.
    cutoff_decay: float = 0.03
    #: Figure 8 ablation switches.
    enable_cancellation: bool = True
    enable_continuous: bool = True
    #: Head-node idle poll interval when drafting is paused.
    idle_poll: float = 2e-4
    #: KV cells per worker shard (functional mode sizing).
    n_cells: int = 2048
    #: Cap on decode runs a pipeline stage fuses into one cross-run batch
    #: (1 disables multi-run batching; ablation / differential testing).
    max_fused_runs: int = 8
    #: Cap on request chains the serving head drafts per batched draft
    #: round (1 restores sequential one-request-at-a-time drafting; the
    #: differential suite pins both to identical served tokens).
    max_draft_batch: int = 8
    #: Coalesce the head's run dispatches (cache ops + decodes) into one
    #: FUSED transaction burst per hop so worker fusion windows see a
    #: whole round at once.  False restores singleton CACHE_OP + DECODE
    #: transactions per run (ablation / differential testing).
    burst_dispatch: bool = True
    #: Serving admission policy: when True, admit against the workers'
    #: *live* cells-in-use (``KVCache.n_used``, O(1)) instead of the sum
    #: of every active request's static worst-case demand.  Optimistic:
    #: admits far earlier once requests have released or not yet grown
    #: into their worst case, at the cost of the hard no-overflow
    #: guarantee (see :meth:`repro.core.multibuffer.CellBudget.fits_live`).
    admission_live_cells: bool = False
    #: Cross-request KV prefix caching (serving mode): completed requests
    #: donate their verified prompt KV into a radix tree of retained pool
    #: sequences; later requests materialize matching prefixes by
    #: pipelined ``seq_cp``/``seq_broadcast`` transactions and prefill
    #: only the unmatched tail (see :mod:`repro.cache.prefix`).
    prefix_cache: bool = False
    #: Retained-cell budget for the prefix cache; LRU leaf eviction keeps
    #: the tree at or below it (and always yields to admission pressure).
    prefix_cache_cells: int = 1024
    #: Shortest prefix match (and donated span) worth a cache-op
    #: transaction; shorter matches prefill from scratch.
    min_match_tokens: int = 8
    #: Second-hit promotion: donate a prompt's span into the radix tree
    #: only after the same full prompt has been *seen twice*, keeping the
    #: tree lean under one-shot traffic.  Off by default; turning it on
    #: never changes served tokens (donation affects timing/placement
    #: only — greedy decoding is cache-invariant).
    prefix_promote_on_second_hit: bool = False
    #: Batched inbox hand-off: coalesced link drains hand each same-instant
    #: delivery run to the destination endpoint in one call, scheduling at
    #: most one resume per parked receiver.  False restores per-message
    #: delivery closures (the ablation baseline); per-message acceptance
    #: semantics are identical in both modes.
    batched_inbox: bool = True

    def __post_init__(self) -> None:
        if self.microbatch_size < 1:
            raise ValueError(
                f"microbatch_size must be positive, got {self.microbatch_size}"
            )
        if self.n_seq_partitions < 1:
            raise ValueError(
                f"n_seq_partitions must be positive, got {self.n_seq_partitions}"
            )
        if self.lookahead_cap < 1:
            raise ValueError(
                f"lookahead_cap must be positive, got {self.lookahead_cap}"
            )
        if self.cutoff_recovery < 0:
            raise ValueError(
                f"cutoff_recovery must be non-negative, got {self.cutoff_recovery}"
            )
        if self.cutoff_decay < 0:
            raise ValueError(
                f"cutoff_decay must be non-negative, got {self.cutoff_decay}"
            )
        if self.idle_poll <= 0:
            raise ValueError(f"idle_poll must be positive, got {self.idle_poll}")
        if self.n_cells < 1:
            raise ValueError(f"n_cells must be positive, got {self.n_cells}")
        if self.max_fused_runs < 1:
            raise ValueError(
                f"max_fused_runs must be positive, got {self.max_fused_runs}"
            )
        if self.max_draft_batch < 1:
            raise ValueError(
                f"max_draft_batch must be positive, got {self.max_draft_batch}"
            )
        if self.prefix_cache_cells < 1:
            raise ValueError(
                f"prefix_cache_cells must be positive, got {self.prefix_cache_cells}"
            )
        if self.min_match_tokens < 1:
            raise ValueError(
                f"min_match_tokens must be positive, got {self.min_match_tokens}"
            )

    def ablated(self, **changes) -> "EngineConfig":
        """A copy with the given fields replaced (ablation studies)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class GenerationJob:
    """One generation request."""

    prompt: Tuple[int, ...]
    n_generate: int = 256

    def __post_init__(self) -> None:
        if not self.prompt:
            raise ValueError("prompt must not be empty")
        if self.n_generate < 1:
            raise ValueError("must generate at least one token")


class BaseEngine(ABC):
    """Common wiring for pipeline engines."""

    name = "base"

    def __init__(
        self,
        backend: Backend,
        network: Network,
        config: EngineConfig,
        metrics: MetricsCollector,
    ) -> None:
        self.backend = backend
        self.net = network
        self.cluster = network.cluster
        self.config = config
        network.batched_inbox = config.batched_inbox
        self.metrics = metrics
        self.generated_tokens: List[int] = []
        #: Per-request reports, populated by the serving heads.
        self.request_reports: List = []
        self._next_run_id = 0
        #: Fault plumbing — populated only by :mod:`repro.faults` runs.
        #: ``injector`` stays None on fault-free simulations; the serving
        #: head polls ``_fault_events`` (worker restarts awaiting recovery)
        #: with a single falsy check per loop iteration.
        self.injector = None
        self._fault_events: List[Tuple[str, int]] = []
        #: Mid-flight cancellation inbox: request ids whose clients
        #: disconnected.  The serving head drains it each step; unknown
        #: ids are ignored, so a cluster front-end may broadcast a cancel
        #: to every replica without tracking placement.
        self._cancel_requests: List[int] = []
        #: Streaming hook — a :class:`repro.api.stream.StreamHub` when a
        #: front-end wants per-request token streams, else None.  A pure
        #: observer: the simulation never reads it.
        self.stream_hub = None
        self._worker_procs: dict = {}
        self._procs: List = []
        #: Free lists for the transaction plane's per-message records,
        #: shared by the head and every worker of this engine (payloads
        #: travel by reference, so one host-level pool is correct).
        self.pool = TransactionPool()

    # -- rank layout (overridden by PipeInfer) --------------------------------

    def target_ranks(self) -> List[int]:
        """Ranks evaluating target-model layers, pipeline order."""
        return list(range(self.cluster.size))

    def head_rank(self) -> int:
        return 0

    def hosts_draft(self) -> bool:
        """Whether the head node holds the draft model."""
        return False

    def partition(self) -> List[Tuple[int, int]]:
        """Layer ranges per target rank (bandwidth-weighted)."""
        ranks = self.target_ranks()
        nodes = [self.cluster.nodes[r] for r in ranks]
        return partition_for(self.backend.n_target_layers, nodes)

    def layer_range_of(self, rank: int) -> Optional[Tuple[int, int]]:
        ranks = self.target_ranks()
        if rank not in ranks:
            return None
        return self.partition()[ranks.index(rank)]

    # -- spawn -------------------------------------------------------------------

    def _spawn_workers(self, kernel: SimKernel):
        """Spawn the pipeline worker processes (everything but the head)."""
        ranks = self.target_ranks()
        parts = self.partition()
        procs = []
        self._kernel = kernel
        self._worker_states = {}
        self._worker_procs = {}
        for i, rank in enumerate(ranks):
            first = i == 0
            last = i == len(ranks) - 1
            ws = self.backend.make_worker_state(rank, parts[i], first, last)
            self._worker_states[rank] = ws
            if rank == self.head_rank():
                continue  # the head drives its own stage inline
            proc = self._spawn_worker_proc(kernel, i, rank, ws)
            self._worker_procs[rank] = proc
            procs.append(proc)
        return procs

    def _spawn_worker_proc(self, kernel: SimKernel, i: int, rank: int, ws):
        """Spawn one pipeline-worker process for stage index ``i``."""
        from repro.engines.worker import pipeline_worker  # cycle avoidance

        ranks = self.target_ranks()
        upstream = ranks[i - 1] if i > 0 else self.head_rank()
        downstream = ranks[i + 1] if i + 1 < len(ranks) else None
        return kernel.spawn(
            pipeline_worker(
                net=self.net,
                rank=rank,
                upstream=upstream,
                downstream=downstream,
                head_rank=self.head_rank(),
                backend=self.backend,
                ws=ws,
                node=self.cluster.nodes[rank],
                metrics=self.metrics,
                max_fuse=self.config.max_fused_runs,
                pool=self.pool,
                injector=self.injector,
            ),
            name=f"worker-{rank}",
        )

    def respawn_worker(self, rank: int):
        """Bring a crashed worker back with a fresh process and empty KV.

        The stage's worker state is rebuilt from scratch (the crash lost the
        in-memory KV shard), the replacement process joins the liveness set
        tracked by ``run_to_completion``, and the serving head is expected
        to re-prefill every live request's verified tokens afterwards.
        """
        ranks = self.target_ranks()
        i = ranks.index(rank)
        parts = self.partition()
        first = i == 0
        last = i == len(ranks) - 1
        ws = self.backend.make_worker_state(rank, parts[i], first, last)
        self._worker_states[rank] = ws
        proc = self._spawn_worker_proc(self._kernel, i, rank, ws)
        self._worker_procs[rank] = proc
        self._procs.append(proc)
        return proc

    def spawn(self, kernel: SimKernel, job: GenerationJob):
        """Spawn head and worker processes; returns them for liveness checks."""
        procs = self._spawn_workers(kernel)
        procs.append(kernel.spawn(self._head(job), name="head"))
        self._procs = procs
        self._record_memory()
        return procs

    def spawn_serving(self, kernel: SimKernel, scheduler):
        """Spawn the workers plus a long-lived request-serving head.

        ``scheduler`` is a :class:`repro.serve.scheduler.RequestScheduler`
        feeding a stream of jobs; the pipeline stays up until every request
        completes.
        """
        procs = self._spawn_workers(kernel)
        procs.append(kernel.spawn(self._serve_head(scheduler), name="serve-head"))
        self._procs = procs
        self._record_memory()
        return procs

    def _record_memory(self) -> None:
        ranks = self.target_ranks()
        parts = self.partition()
        for rank in range(self.cluster.size):
            layer_range = None
            first = last = False
            if rank in ranks:
                i = ranks.index(rank)
                layer_range = parts[i]
                first, last = i == 0, i == len(ranks) - 1
            hosts_draft = rank == self.head_rank() and self.hosts_draft()
            self.metrics.set_node_memory(
                rank,
                self.backend.node_memory(
                    layer_range, hosts_draft, self.config.n_cells, first, last
                ),
            )

    @abstractmethod
    def _head(self, job: GenerationJob) -> Generator:
        """The head node's process (single job, shuts the pipeline down)."""

    def _generate(self, job: GenerationJob) -> Generator:
        """One request's generation loop; returns the accepted stream.

        Engines implementing this (the sequential baselines) can be driven
        by the FCFS serving head, which runs many requests back-to-back on
        one long-lived pipeline.  PipeInfer overrides ``_serve_head``
        directly with a multiplexing loop instead.
        """
        raise NotImplementedError(f"{self.name} cannot serve request streams")

    def _serve_head(self, scheduler) -> Generator:
        """The head process for serving mode (default: sequential FCFS)."""
        from repro.serve.head import sequential_serving_head  # cycle avoidance

        return sequential_serving_head(self, scheduler)

    # -- dispatch helpers -----------------------------------------------------------

    def new_run_id(self) -> int:
        self._next_run_id += 1
        return self._next_run_id

    def worker_cells_used(self) -> int:
        """Largest live cells-in-use count across the worker KV shards.

        The serving head uses this as the real occupancy signal for
        live-cell admission (``EngineConfig.admission_live_cells``).
        Per shard, ``n_used`` is O(1) for the functional :class:`KVCache`
        and an O(active sequences) interval sum for the performance-mode
        :class:`RangeKVCache`; shards whose cache does not expose a usage
        count contribute nothing.
        """
        used = 0
        for ws in getattr(self, "_worker_states", {}).values():
            n = getattr(ws.cache, "n_used", None)
            if n is not None:
                used = max(used, int(n))
        return used

    def ep(self) -> Endpoint:
        return self.net.endpoint(self.head_rank())

    def cancel_request(self, req_id: int) -> None:
        """Signal a mid-flight client disconnect for ``req_id``.

        Queues the id for the serving head's next step and wakes a parked
        head.  Safe to call for requests this engine never saw (no-op) —
        front-ends broadcast cancels cluster-wide.
        """
        self._cancel_requests.append(req_id)
        self.ep()._notify_watchers()

    def send_decode(
        self, dest: int, meta: DecodeMeta, act: Activations
    ) -> None:
        meta.nbytes = self.backend.meta_nbytes(meta.n_tokens)
        send_transaction(
            self.ep(),
            dest,
            TransactionType.DECODE,
            [(meta, meta.nbytes), (act, act.nbytes)],
        )

    def send_burst(self, dest: int, items: Sequence) -> None:
        """Send one FUSED transaction coalescing several runs' dispatches.

        ``items`` is an ordered window of :class:`FusedRun` entries and
        plain ``List[CacheOp]`` batches — the same wire shape workers
        forward between stages — so a burst of a whole dispatch round
        reaches the first stage as a single transaction: its fusion
        window sees every run at once instead of one run per head-loop
        iteration.  Meta sizes are stamped here like :meth:`send_decode`.
        """
        if not items:
            return
        nbytes = 0.0
        for item in items:
            if isinstance(item, FusedRun):
                item.meta.nbytes = self.backend.meta_nbytes(item.meta.n_tokens)
                nbytes += item.meta.nbytes + item.act.nbytes
            else:
                nbytes += CACHE_OP_NBYTES * len(item)
        fb = self.pool.acquire_fused_batch()
        fb.items.extend(items)
        fb.nbytes = nbytes
        send_transaction(
            self.ep(), dest, TransactionType.FUSED, [(fb, fb.nbytes)]
        )

    def send_cache_ops(self, dest: int, ops: Sequence[CacheOp]) -> None:
        """Send one CACHE_OP transaction carrying a batch of commands.

        The batch travels as a single piece so the receiving handler
        consumes exactly one message per transaction regardless of the
        command count.
        """
        if not ops:
            return
        batch = list(ops)
        send_transaction(
            self.ep(),
            dest,
            TransactionType.CACHE_OP,
            [(batch, CACHE_OP_NBYTES * len(batch))],
            eager=True,
        )

    def send_shutdown(self, dest: int) -> None:
        send_transaction(
            self.ep(), dest, TransactionType.SHUTDOWN, [(ShutdownMsg(), 8.0)], eager=True
        )

    def finish(self, job: GenerationJob, accepted: Sequence[int]) -> None:
        """Record results and shut the pipeline down.

        A verification batch can accept several tokens at once and overshoot
        the budget; the result is clipped so every strategy reports exactly
        ``n_generate`` tokens (making outputs directly comparable).
        """
        self.generated_tokens = list(accepted[len(job.prompt):][: job.n_generate])
        self.metrics.mark_finish(self.net.kernel.now)
        self.shutdown_pipeline()

    def shutdown_pipeline(self) -> None:
        """Relay the shutdown transaction through the worker chain."""
        ranks = self.target_ranks()
        first_downstream = (
            ranks[0] if ranks and ranks[0] != self.head_rank() else
            (ranks[1] if len(ranks) > 1 else None)
        )
        if first_downstream is not None:
            self.send_shutdown(first_downstream)


def run_engine(
    engine_factory,
    backend: Backend,
    cluster: Cluster,
    job,
    config: Optional[EngineConfig] = None,
) -> EngineReport:
    """Build a fresh simulation, run one generation, return its report.

    Args:
        engine_factory: engine class (or callable) taking
            (backend, network, config, metrics).
        backend: functional or oracle backend.
        cluster: the testbed (bound to a fresh kernel here).
        job: prompt and token budget — a single :class:`GenerationJob`
            (returns an :class:`EngineReport`, the historical behaviour),
            or a :class:`repro.serve.scheduler.Workload` of many jobs
            (returns a :class:`repro.metrics.report.ServingReport`).
        config: algorithm knobs; defaults to :class:`EngineConfig`.
    """
    if not isinstance(job, GenerationJob):
        from repro.serve.run import run_serving  # cycle avoidance

        return run_serving(engine_factory, backend, cluster, job, config)
    config = config or EngineConfig()
    kernel = SimKernel()
    network = Network(kernel, cluster)
    metrics = MetricsCollector()
    engine = engine_factory(backend, network, config, metrics)
    procs = engine.spawn(kernel, GenerationJob(tuple(job.prompt), job.n_generate))
    run_to_completion(kernel, procs)
    return EngineReport.from_collector(
        engine.name, cluster.size, engine.generated_tokens, metrics
    )
