"""Inference engines: the paper's baselines.

- :mod:`repro.engines.single_node` — normal single-node inference;
- :mod:`repro.engines.iterative` — pipeline-parallel iterative inference;
- :mod:`repro.engines.speculative` — pipeline-parallel speculative
  inference (SpecInfer-style, synchronous speculate-then-verify);

plus the shared machinery they and :mod:`repro.core` (PipeInfer) build on:
backends (:mod:`repro.engines.backend`), the pipeline worker process
(:mod:`repro.engines.worker`), and run configuration/result types
(:mod:`repro.engines.base`).
"""

from repro.engines.backend import Backend, ChainState, FunctionalBackend, OracleBackend
from repro.engines.base import EngineConfig, GenerationJob, run_engine
from repro.engines.iterative import IterativeEngine
from repro.engines.single_node import SingleNodeEngine
from repro.engines.speculative import SpeculativeEngine

__all__ = [
    "Backend",
    "ChainState",
    "FunctionalBackend",
    "OracleBackend",
    "EngineConfig",
    "GenerationJob",
    "run_engine",
    "IterativeEngine",
    "SingleNodeEngine",
    "SpeculativeEngine",
]
