"""Execution backends: one engine codebase, two fidelity levels.

A :class:`Backend` supplies everything model-specific the engines need:
draft proposals (with confidences), per-stage compute (real math or
metadata-only), logits materialization at the last rank, timing, message
sizes, and memory footprints.

- :class:`FunctionalBackend` wraps two :class:`TinyTransformer` instances
  (target, draft) with near-zero fixed timings.  Used to prove output
  equivalence and KV-multibuffering correctness with real attention.
- :class:`OracleBackend` wraps an alignment-calibrated oracle pair plus
  the analytic :class:`~repro.models.cost.CostModel` of a Table I/III
  model pair on real testbed node specs.  Used for every timing figure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.hardware import NodeSpec
from repro.comm.payloads import CacheOp, CacheOpKind, DecodeMeta, TokenSlot
from repro.models.cost import CostModel
from repro.models.kv_cache import KVCache
from repro.models.layers import ScratchArena
from repro.models.oracle import OracleLM, OracleLogits, make_aligned_pair
from repro.models.range_cache import RangeKVCache
from repro.models.sampler import LogitsLike, batched_top1, softmax_probs
from repro.models.transformer import TinyTransformer
from repro.models.zoo import ModelPair

#: Modeled wire size of a cancelled/empty activation record.
EMPTY_ACTIVATION_NBYTES = 16.0

#: End bound for "remove the whole sequence" cache ops.
SEQ_END = 1 << 40


class ChainState:
    """The head node's working token chain: accepted prefix + drafted suffix.

    Tracks the oracle rolling state per position in performance mode so
    draft proposals and per-slot logits states are O(1); functional mode
    recomputes from the raw token list instead.
    """

    def __init__(self, tokens: Sequence[int], oracle: Optional[OracleLM] = None) -> None:
        self.tokens: List[int] = list(tokens)
        self._oracle = oracle
        self._states: Optional[List[int]] = None
        #: Functional-mode binding into the backend's shared draft-KV
        #: plane (the sequence id holding this chain's incremental draft
        #: context; None until first proposal, and for oracle chains).
        #: Living on the chain keeps it per-request under serving
        #: multiplexing; :meth:`Backend.release_chain` returns it.
        self.draft_seq: Optional[int] = None
        if oracle is not None:
            states = [oracle.init_state(())]
            for t in self.tokens:
                states.append(oracle.advance(states[-1], t))
            self._states = states

    def __len__(self) -> int:
        return len(self.tokens)

    def append(self, token: int) -> None:
        self.tokens.append(token)
        if self._states is not None:
            assert self._oracle is not None
            self._states.append(self._oracle.advance(self._states[-1], token))

    def state_after(self, n_tokens: int) -> int:
        """Oracle rolling state after the first ``n_tokens`` of the chain."""
        if self._states is None:
            raise RuntimeError("chain has no oracle states (functional mode)")
        return self._states[n_tokens]

    def reconcile(self, truth: Sequence[int]) -> None:
        """Reset the chain to ``truth``, keeping the common-prefix states.

        Called when verification diverges from the drafted suffix: the
        drafted tokens beyond the accepted stream are discarded.
        """
        common = 0
        limit = min(len(self.tokens), len(truth))
        while common < limit and self.tokens[common] == truth[common]:
            common += 1
        self.tokens = self.tokens[:common]
        if self._states is not None:
            self._states = self._states[: common + 1]
        for t in truth[common:]:
            self.append(t)

    def matches_prefix(self, truth: Sequence[int]) -> bool:
        """True when the chain starts with ``truth`` (no divergence)."""
        if len(self.tokens) < len(truth):
            return False
        return all(self.tokens[i] == truth[i] for i in range(len(truth)))


@dataclass
class WorkerState:
    """Per-rank execution state: the KV shard and layer assignment.

    ``arena`` holds the rank's private scratch buffers: decode windows of
    the same shape reuse the same temporaries pass after pass.  Private
    per rank because an arena must never be shared by two concurrent
    consumers — forwarded activations are copied out before the stage
    yields, so recycling is invisible to the simulation.
    """

    rank: int
    layer_range: Tuple[int, int]
    cache: Any  # KVCache (functional) or RangeKVCache (performance)
    is_first_stage: bool
    is_last_stage: bool
    arena: ScratchArena = field(default_factory=ScratchArena)


@dataclass
class StageRun:
    """One run's compute inputs inside a fused stage window.

    ``skip`` marks runs the worker will not evaluate (cancelled
    speculative runs, or runs whose upstream record was already empty);
    they keep their slot in the window so per-run outputs — and the
    records forwarded downstream — stay in dispatch order.
    """

    meta: DecodeMeta
    hidden: Optional[np.ndarray]
    skip: bool = False


def apply_cache_op(cache: Any, op: CacheOp) -> None:
    """Apply a pipelined cache command to a node's KV shard.

    Works on both cache implementations (duck-typed sequence API).
    """
    if op.kind == CacheOpKind.SEQ_CP:
        cache.seq_cp(op.seq_src, op.seq_dst, op.p0, op.p1)
    elif op.kind == CacheOpKind.SEQ_RM:
        cache.seq_rm(op.seq_src, op.p0, op.p1)
    elif op.kind == CacheOpKind.SEQ_BROADCAST:
        # Explicit multi-target form: one wire command copies a shared
        # cached prefix into several requests' partitions (the prefix
        # cache's admission-sweep fast path).  Targetless broadcast
        # ("every sequence the shard has seen") stays unsupported — the
        # engines always name their destinations.
        if not op.targets:
            raise ValueError("SEQ_BROADCAST needs explicit target sequences")
        cache.seq_broadcast(op.seq_src, op.p0, op.p1, op.targets)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown cache op {op.kind}")


class Backend(ABC):
    """Model-specific behaviour consumed by the engines."""

    vocab: int
    n_target_layers: int

    #: True when worker KV shards hold only placement metadata and token
    #: values are derived head-side (the oracle backend): a crashed worker
    #: then loses no numerics, so crash recovery may re-materialize prompt
    #: prefixes from the prefix cache.  The functional backend's shards
    #: hold real tensors, so recovery must cold re-prefill from tokens.
    kv_is_metadata = False

    # -- head side: chain and drafting ---------------------------------------

    @abstractmethod
    def new_chain(self, tokens: Sequence[int]) -> ChainState:
        """A chain state initialized with ``tokens`` (the prompt)."""

    @abstractmethod
    def propose(self, chain: ChainState) -> Tuple[int, float]:
        """The draft model's greedy continuation of the chain: (token, conf)."""

    def propose_multi(
        self, chains: Sequence[ChainState]
    ) -> List[Tuple[int, float]]:
        """Greedy continuations for several chains, one batched draft pass.

        The serving head's draft scheduler collects every request whose
        chain wants a proposal step and evaluates all their one-token
        draft decodes together.  The contract is differential: the result
        must equal ``[self.propose(c) for c in chains]`` token-for-token
        (and leave identical per-chain draft-KV state) — batching is a
        scheduling optimization, never a semantic one.  The default is
        that sequential reference; the functional backend overrides it
        with a single cross-chain ``batched_grouped_attention`` pass.
        """
        return [self.propose(chain) for chain in chains]

    def release_chain(self, chain: ChainState) -> None:
        """Drop any backend-side draft state held for ``chain``.

        Serving heads call this when a request completes so the shared
        draft-KV plane frees the chain's cells and sequence id.  Default:
        nothing to release (oracle chains carry their own states).
        """

    @abstractmethod
    def propose_alternatives(
        self, prefix: Sequence[int], n: int
    ) -> List[Tuple[int, float]]:
        """Top-``n`` draft proposals for an arbitrary prefix (tree drafting)."""

    @abstractmethod
    def draft_token_time(self) -> float:
        """Cost of one draft-model forward pass on the head node.

        Used by PipeInfer, whose dedicated speculation node hosts the
        whole draft model locally (Section II-C).
        """

    def draft_batch_time(self, n_chains: int) -> float:
        """Cost of one *batched* draft pass proposing for ``n_chains`` chains.

        A fused pass streams the draft model's weights once for the whole
        batch, so it is charged a single batched forward time rather than
        ``n_chains`` sequential passes.  Default (no batching support):
        the sequential sum.
        """
        return n_chains * self.draft_token_time()

    def draft_pipeline_token_time(self, nodes, link_latency: float) -> float:
        """Cost of one draft-model pass distributed across the pipeline.

        The speculative baseline (llama.cpp-style MPI) splits *both*
        models across the ranks, so each autoregressive draft token pays
        every node's per-decode overhead plus a link hop — the expense
        that motivates PipeInfer's dedicated speculation node.  Functional
        backends keep the local cost.
        """
        return self.draft_token_time()

    # -- worker side: compute -------------------------------------------------

    @abstractmethod
    def make_worker_state(
        self, rank: int, layer_range: Tuple[int, int], first: bool, last: bool
    ) -> WorkerState:
        """Per-rank state (KV shard) for a pipeline stage."""

    def worker_cell_capacity(self) -> Optional[int]:
        """KV cells available per worker shard, or None when unbounded.

        The serving scheduler throttles admission against this so that
        concurrent requests cannot overflow a fixed-capacity cache
        mid-flight.  Performance mode tracks ranges without a cell
        budget, hence the None default.
        """
        return None

    @abstractmethod
    def compute_stage(
        self, ws: WorkerState, meta: DecodeMeta, hidden_in: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """Evaluate the stage's layers for a batch (after timing delays).

        Allocates the batch's KV cells on this shard and returns the
        outgoing hidden states (None in performance mode).  First stages
        embed from ``meta.slots`` when ``hidden_in`` is None.
        """

    def compute_stage_multi(
        self, ws: WorkerState, window: Sequence[Any]
    ) -> List[Optional[np.ndarray]]:
        """Evaluate a fused window of runs and interleaved cache-op batches.

        ``window`` is an ordered sequence of :class:`StageRun` entries and
        plain ``List[CacheOp]`` batches, exactly as the transactions
        arrived at the worker.  The default walks the window in order —
        sequential per-run semantics — which is the reference behaviour
        fused implementations must reproduce (the functional backend
        concatenates compatible runs into one cross-run batch instead).

        Returns one output per :class:`StageRun`, in window order; skipped
        runs yield None.
        """
        outs: List[Optional[np.ndarray]] = []
        for item in window:
            if isinstance(item, StageRun):
                outs.append(
                    None if item.skip
                    else self.compute_stage(ws, item.meta, item.hidden)
                )
            else:
                for op in item:
                    apply_cache_op(ws.cache, op)
        return outs

    @abstractmethod
    def finalize_logits(
        self, ws: WorkerState, meta: DecodeMeta, hidden: Optional[np.ndarray]
    ) -> List[LogitsLike]:
        """Materialize logits for the ``want_logits`` slots at the last rank."""

    # -- timing -----------------------------------------------------------------

    @abstractmethod
    def stage_chunks(
        self, node: NodeSpec, layer_range: Tuple[int, int], n_tokens: int
    ) -> List[float]:
        """Per-chunk compute delays for a stage.

        Chunk boundaries are the worker's cancellation probe points
        ("thread synchronization points", Section IV-D2).
        """

    def stage_chunks_multi(
        self,
        node: NodeSpec,
        layer_range: Tuple[int, int],
        token_counts: Sequence[int],
    ) -> List[float]:
        """Compute delays for a *fused* window of several runs' batches.

        A fused batch streams each layer's weights once for all of its
        runs, so it is charged a single stage time for the concatenated
        token count — not the sum of the singleton stage times (which
        would each re-pay the weight stream and dispatch overhead).
        """
        return self.stage_chunks(node, layer_range, sum(token_counts))

    @abstractmethod
    def logits_time(self, node: NodeSpec, n_logits: int) -> float:
        """Output-head evaluation time at the last rank."""

    @abstractmethod
    def prefill_chunks(self, node: NodeSpec, layer_range: Tuple[int, int], n_tokens: int) -> List[float]:
        """Compute delays for prompt prefill (larger batch)."""

    # -- message sizes ------------------------------------------------------------

    @abstractmethod
    def activation_nbytes(self, n_tokens: int) -> float: ...

    @abstractmethod
    def logits_nbytes(self, n_logits: int) -> float: ...

    def meta_nbytes(self, n_tokens: int) -> float:
        """Wire size of a decode-meta record."""
        return 32.0 + 24.0 * n_tokens

    # -- memory -------------------------------------------------------------------

    @abstractmethod
    def node_memory(
        self,
        layer_range: Optional[Tuple[int, int]],
        hosts_draft: bool,
        n_cells: int,
        first: bool = False,
        last: bool = False,
    ) -> float:
        """Modeled resident bytes for a node with the given roles."""

    # -- oracle plumbing -------------------------------------------------------------

    def slot_states(self, chain: ChainState, start_index: int, n: int) -> Optional[List[int]]:
        """Per-slot oracle states for slots chain[start_index : start_index+n].

        Entry *i* is the rolling state *after* that slot's token — exactly
        what the last rank needs to produce the slot's logits.  Functional
        backends return None.
        """
        return None

    def slot_states_for_prefixes(
        self, prefixes: Sequence[Sequence[int]]
    ) -> Optional[List[int]]:
        """Oracle states for arbitrary per-slot prefixes (tree batches).

        Each prefix must *include* its slot's token; the returned state is
        the rolling state after the full prefix.  Functional backends
        return None.
        """
        return None


# ---------------------------------------------------------------------------
# Functional backend: real tiny transformers.
# ---------------------------------------------------------------------------


class _DraftPlane:
    """The head node's shared draft-model KV plane (all chains, one cache).

    PipeInfer's head hosts the whole draft model (Section II-C), so its
    drafting cost must be one forward pass per proposed token.  Every
    chain binds a private *sequence id* in one shared tensor-backed
    :class:`KVCache`; the cache holds each chain's already-evaluated
    prefix, so a proposal decodes only the suffix beyond the longest
    common prefix — O(chain), not O(chain^2) — and, because all chains
    share the cache, the suffix slots of *several* chains concatenate
    into one cross-request batch whose per-chain visibility falls out of
    the sequence metadata exactly as it does for fused verification
    windows.  The cache grows in place as serving chains lengthen.
    """

    def __init__(self, model: TinyTransformer, n_cells: int = 1024) -> None:
        self.model = model
        self.cache = model.new_cache(n_cells)
        #: Scratch buffers for the plane's draft decodes (head-side, so
        #: never shared with a pipeline stage's arena).
        self.arena = ScratchArena()
        #: seq -> tokens whose cells the cache holds (positions 0..n-1).
        self.tokens: dict = {}
        self._next_seq = 0
        self._free_seqs: List[int] = []

    def bind(self, chain: ChainState) -> int:
        """The chain's plane sequence id, assigned on first use."""
        if chain.draft_seq is None:
            if self._free_seqs:
                chain.draft_seq = self._free_seqs.pop()
            else:
                chain.draft_seq = self._next_seq
                self._next_seq += 1
            self.tokens[chain.draft_seq] = []
        return chain.draft_seq

    def release(self, chain: ChainState) -> None:
        """Free the chain's cells and return its sequence id to the pool."""
        seq = chain.draft_seq
        if seq is None:
            return
        self.cache.seq_rm(seq, 0, SEQ_END)
        self.tokens.pop(seq, None)
        self._free_seqs.append(seq)
        chain.draft_seq = None

    def suffix_slots(self, chain: ChainState) -> List[TokenSlot]:
        """Slots decoding the chain's tokens past its cached prefix.

        Trims any stale cached suffix first (the head reconciled the
        chain), and always re-decodes at least the last chain token —
        whose logits are the proposal being asked for.
        """
        seq = self.bind(chain)
        prefix = chain.tokens
        cached = self.tokens[seq]
        common = 0
        limit = min(len(cached), len(prefix) - 1)
        while common < limit and cached[common] == prefix[common]:
            common += 1
        if common < len(cached):
            self.cache.seq_rm(seq, common, SEQ_END)
        self.tokens[seq] = list(prefix)
        return [
            TokenSlot(token=prefix[i], pos=i, seq_ids=(seq,),
                      want_logits=(i == len(prefix) - 1))
            for i in range(common, len(prefix))
        ]

    def decode(
        self,
        slots: Sequence[TokenSlot],
        row_groups: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """One draft forward for a (possibly cross-chain) slot batch."""
        if self.cache.n_free < len(slots):
            need = self.cache.n_used + len(slots)
            self.cache.grow(max(2 * self.cache.n_cells, 2 * need))
        return self.model.decode(
            list(slots), self.cache, arena=self.arena, row_groups=row_groups
        )


class FunctionalBackend(Backend):
    """Real-math backend over :class:`TinyTransformer` target/draft models.

    Timing constants are fixed and small: the functional level validates
    *what* is computed, not how long it takes.
    """

    LAYER_TIME = 2e-4
    DRAFT_TIME = 1e-4
    LOGITS_TIME = 1e-4

    def __init__(
        self,
        target: TinyTransformer,
        draft: TinyTransformer,
        n_cells: int = 512,
    ) -> None:
        if target.cfg.vocab != draft.cfg.vocab:
            raise ValueError("target and draft must share a vocabulary")
        self.target = target
        self.draft = draft
        self.vocab = target.cfg.vocab
        self.n_target_layers = target.cfg.n_layers
        self.n_cells = n_cells
        #: Shared head-side draft-KV plane (built on first proposal).
        self._draft_plane: Optional[_DraftPlane] = None

    # -- drafting ----------------------------------------------------------------

    def new_chain(self, tokens: Sequence[int]) -> ChainState:
        return ChainState(tokens, oracle=None)

    def _draft_logits(self, prefix: Sequence[int]) -> np.ndarray:
        """Full (uncached) draft forward; prefix lengths stay small in tests."""
        slots = [
            TokenSlot(token=t, pos=i, seq_ids=(0,), want_logits=(i == len(prefix) - 1))
            for i, t in enumerate(prefix)
        ]
        cache = self.draft.new_cache(len(prefix))
        return self.draft.decode(slots, cache)[0]

    def _plane(self) -> _DraftPlane:
        if self._draft_plane is None:
            self._draft_plane = _DraftPlane(self.draft)
        return self._draft_plane

    def propose(self, chain: ChainState) -> Tuple[int, float]:
        return self.propose_multi([chain])[0]

    def propose_multi(
        self, chains: Sequence[ChainState]
    ) -> List[Tuple[int, float]]:
        """One draft forward proposing the next token for every chain.

        Each chain contributes the slots past its cached plane prefix
        (usually one: its newest token); the concatenated batch runs as a
        single ``batched_grouped_attention`` pass per draft layer, with
        per-chain sequence ids keeping the attention views disjoint.  The
        ``want_logits`` slots — each chain's last token, in chain order —
        yield one (token, confidence) proposal per chain.
        """
        plane = self._plane()
        slots: List[TokenSlot] = []
        counts: List[int] = []
        for chain in chains:
            chain_slots = plane.suffix_slots(chain)
            slots.extend(chain_slots)
            counts.append(len(chain_slots))
        logits = plane.decode(slots, row_groups=counts)
        # One fused top-1+confidence kernel over the whole round instead
        # of a full softmax row per chain (<= 1e-10 of the per-row path).
        tokens, confs = batched_top1(logits)
        return [(int(t), float(c)) for t, c in zip(tokens, confs)]

    def release_chain(self, chain: ChainState) -> None:
        if self._draft_plane is not None:
            self._draft_plane.release(chain)

    def propose_alternatives(self, prefix: Sequence[int], n: int) -> List[Tuple[int, float]]:
        logits = self._draft_logits(prefix)
        probs = softmax_probs(logits)
        order = np.argsort(-probs)[:n]
        return [(int(t), float(probs[t])) for t in order]

    def draft_token_time(self) -> float:
        return self.DRAFT_TIME

    def draft_batch_time(self, n_chains: int) -> float:
        # One fused pass streams the draft weights once for the batch,
        # matching the fixed per-pass constant of the singleton path.
        return self.DRAFT_TIME

    # -- worker compute -------------------------------------------------------------

    def make_worker_state(self, rank, layer_range, first, last) -> WorkerState:
        lo, hi = layer_range
        cache = self.target.new_cache(self.n_cells, layer_range)
        return WorkerState(rank, layer_range, cache, first, last)

    def worker_cell_capacity(self) -> Optional[int]:
        return self.n_cells

    def compute_stage(self, ws, meta, hidden_in):
        cache: KVCache = ws.cache
        hidden = self.target.embed(meta.slots) if hidden_in is None else hidden_in
        # One ndarray of cell indices per batch; every layer's K/V write
        # fancy-indexes with it directly (no per-layer list conversion).
        cells = np.asarray(
            cache.allocate([(s.pos, s.seq_ids) for s in meta.slots]),
            dtype=np.intp,
        )
        return self.target.forward_stage(
            hidden, meta.slots, cache, ws.layer_range, cells=cells,
            arena=ws.arena,
        )

    def compute_stage_multi(self, ws, window):
        """Fused cross-run execution with sequential-order metadata.

        Two passes keep fused results identical to per-run evaluation:

        1. **Metadata pass, strict transaction order.**  Each run's cells
           are allocated — and each cache-op batch applied — exactly where
           its transaction sat in the window, so allocation order and
           sequence metadata match the sequential execution cell for
           cell.  Each run's visibility rows are *snapshotted* at its own
           point in the order: later allocations and copies can never leak
           into an earlier run's mask.
        2. **Tensor pass, one fused batch per group.**  Compatible runs
           are concatenated (hiddens, positions, cells, stacked mask rows)
           and evaluated with a single ``forward_stage`` call — one
           block-diagonal/per-run-masked ``batched_grouped_attention``
           pass per layer — then split back into per-run activations.

        Grouping is conservative: when a run's freshly allocated cells
        intersect cells *visible to* (or owned by) runs already in the
        current group — possible only when an interleaved ``seq_rm`` freed
        a cell and this run reuses its index — the window splits, because
        the earlier runs must read the cell's old K/V before this run's
        layer-loop writes overwrite it.  Earlier groups always compute
        before later groups, which preserves exactly that order.
        """
        cache: KVCache = ws.cache
        runs = [it for it in window if isinstance(it, StageRun)]
        outs: List[Optional[np.ndarray]] = [None] * len(runs)
        #: (run_index, hidden, slots, positions, cells, visible) per live run.
        planned: List[Tuple[int, np.ndarray, list, np.ndarray, np.ndarray, np.ndarray]] = []
        groups: List[List[int]] = [[]]
        vis_union = np.zeros(cache.n_cells, dtype=bool)
        ri = -1
        for item in window:
            if not isinstance(item, StageRun):
                for op in item:
                    apply_cache_op(cache, op)
                continue
            ri += 1
            if item.skip:
                continue
            meta = item.meta
            hidden = (
                self.target.embed(meta.slots) if item.hidden is None else item.hidden
            )
            cells = np.asarray(
                cache.allocate([(s.pos, s.seq_ids) for s in meta.slots]),
                dtype=np.intp,
            )
            if vis_union[cells].any() and groups[-1]:
                groups.append([])
                vis_union[:] = False
            positions = np.array([s.pos for s in meta.slots], dtype=np.int64)
            visible = cache.visible_matrix(
                [s.seq_ids[0] for s in meta.slots], positions,
                limit=cache.high_water,
            )
            vis_union[: visible.shape[1]] |= visible.any(axis=0)
            vis_union[cells] = True
            groups[-1].append(len(planned))
            planned.append((ri, hidden, list(meta.slots), positions, cells, visible))
        for group in groups:
            if not group:
                continue
            parts = [planned[i] for i in group]
            row_groups = [len(p[2]) for p in parts]
            if len(parts) == 1:
                idx, hidden, slots, _, cells, visible = parts[0]
            else:
                idx = -1
                hidden = np.concatenate([p[1] for p in parts], axis=0)
                slots = [s for p in parts for s in p[2]]
                cells = np.concatenate([p[4] for p in parts])
                # Stack the per-run mask rows; snapshots taken before later
                # allocations may be narrower (high-water truncation) and
                # pad with False — those cells did not exist for them.
                width = max(p[5].shape[1] for p in parts)
                visible = np.zeros((len(slots), width), dtype=bool)
                off = 0
                for p in parts:
                    rows = p[5]
                    visible[off : off + rows.shape[0], : rows.shape[1]] = rows
                    off += rows.shape[0]
            fused = self.target.forward_stage(
                hidden, slots, cache, ws.layer_range, cells=cells,
                visible=visible, arena=ws.arena, row_groups=row_groups,
            )
            if len(parts) == 1:
                outs[idx] = fused
            else:
                off = 0
                for p in parts:
                    n = len(p[2])
                    outs[p[0]] = fused[off : off + n]
                    off += n
        return outs

    def finalize_logits(self, ws, meta, hidden):
        want = [i for i, s in enumerate(meta.slots) if s.want_logits]
        out = self.target.output(hidden, want, arena=ws.arena)
        return [out[i] for i in range(len(want))]

    # -- timing ---------------------------------------------------------------------

    def stage_chunks(self, node, layer_range, n_tokens):
        lo, hi = layer_range
        return [(hi - lo) * self.LAYER_TIME]

    def prefill_chunks(self, node, layer_range, n_tokens):
        return self.stage_chunks(node, layer_range, n_tokens)

    def logits_time(self, node, n_logits):
        return self.LOGITS_TIME

    # -- sizes / memory -----------------------------------------------------------------

    def activation_nbytes(self, n_tokens: int) -> float:
        return n_tokens * self.target.cfg.d_model * 4.0

    def logits_nbytes(self, n_logits: int) -> float:
        return n_logits * self.vocab * 4.0

    def node_memory(self, layer_range, hosts_draft, n_cells, first=False, last=False) -> float:
        cfg = self.target.cfg
        per_layer = 4.0 * (2 * cfg.d_model * cfg.d_model + 3 * cfg.d_model * cfg.d_ff)
        total = 0.0
        if layer_range is not None:
            total += (layer_range[1] - layer_range[0]) * per_layer
        if hosts_draft:
            dcfg = self.draft.cfg
            total += dcfg.n_layers * 4.0 * (
                2 * dcfg.d_model * dcfg.d_model + 3 * dcfg.d_model * dcfg.d_ff
            )
        return total + n_cells * cfg.kv_dim * 8.0


# ---------------------------------------------------------------------------
# Oracle backend: calibrated pairs + analytic costs.
# ---------------------------------------------------------------------------


class OracleBackend(Backend):
    """Performance backend: oracle logits, analytic per-layer timing."""

    kv_is_metadata = True

    def __init__(
        self,
        pair: ModelPair,
        head_node: NodeSpec,
        seed: int = 0,
        context: int = 640,
        probe_chunk_layers: int = 4,
        acceptance_override: Optional[float] = None,
        base_cutoff: float = 0.30,
        n_cells: Optional[int] = None,
    ) -> None:
        self.pair = pair
        #: Optional per-shard KV cell budget for serving admission.  The
        #: interval caches never overflow physically, but a bounded budget
        #: lets oracle-mode serving model real cache pressure; None keeps
        #: the historical unbounded behaviour.
        self.n_cells = n_cells
        self.target_cost = CostModel(pair.target_arch, context=context)
        self.draft_cost = CostModel(pair.draft_arch, context=context)
        self.vocab = pair.target_arch.vocab
        self.n_target_layers = pair.target_arch.n_layers
        self.head_node = head_node
        self.probe_chunk_layers = probe_chunk_layers
        acceptance = (
            pair.acceptance if acceptance_override is None else acceptance_override
        )
        # Calibrate raw agreement so acceptance *measured over tokens that
        # pass the default confidence cutoff* matches the paper's rate.
        self.oracle, self.draft_oracle = make_aligned_pair(
            acceptance, seed=seed, vocab=self.vocab, cutoff=base_cutoff
        )
        self._draft_pass_time = self.draft_cost.full_model_time(head_node, 1)

    # -- drafting -----------------------------------------------------------------

    def new_chain(self, tokens: Sequence[int]) -> ChainState:
        return ChainState(tokens, oracle=self.oracle)

    def propose(self, chain: ChainState) -> Tuple[int, float]:
        state = chain.state_after(len(chain))
        token = self.draft_oracle.next_token_from_state(state)
        conf = self.draft_oracle.confidence_from_state(state)
        return token, conf

    def propose_alternatives(self, prefix: Sequence[int], n: int) -> List[Tuple[int, float]]:
        state = self.oracle.init_state(prefix)
        token = self.draft_oracle.next_token_from_state(state)
        conf = self.draft_oracle.confidence_from_state(state)
        out = [(token, conf)]
        for k in range(1, n):
            alt = (token + 7919 * k) % self.vocab
            if alt == token:
                alt = (alt + 1) % self.vocab
            out.append((alt, conf * (0.4 ** k)))
        return out

    def draft_token_time(self) -> float:
        return self._draft_pass_time

    def draft_batch_time(self, n_chains: int) -> float:
        # A batched draft pass over n one-token decodes: the analytic
        # model charges one full-model pass at batch width n (weights
        # streamed once), not n sequential single-token passes.
        return self.draft_cost.full_model_time(self.head_node, max(n_chains, 1))

    def draft_pipeline_token_time(self, nodes, link_latency: float) -> float:
        arch = self.pair.draft_arch
        total = 0.0
        n_ranks = len(nodes)
        base = arch.n_layers // n_ranks
        extra = arch.n_layers % n_ranks
        for i, node in enumerate(nodes):
            n_layers = base + (1 if i < extra else 0)
            total += n_layers * self.draft_cost.layer_time(node, 1)
            total += node.compute_overhead
            total += link_latency
        total += self.draft_cost.output_head_time(nodes[-1], 1)
        return total

    def slot_states(self, chain: ChainState, start_index: int, n: int) -> Optional[List[int]]:
        return [chain.state_after(start_index + i + 1) for i in range(n)]

    def slot_states_for_prefixes(
        self, prefixes: Sequence[Sequence[int]]
    ) -> Optional[List[int]]:
        return [self.oracle.init_state(p) for p in prefixes]

    # -- worker compute ---------------------------------------------------------------

    def make_worker_state(self, rank, layer_range, first, last) -> WorkerState:
        return WorkerState(rank, layer_range, RangeKVCache(), first, last)

    def worker_cell_capacity(self) -> Optional[int]:
        return self.n_cells

    def compute_stage(self, ws, meta, hidden_in):
        cache: RangeKVCache = ws.cache
        for slot in meta.slots:
            for seq in slot.seq_ids:
                cache.add_tokens(seq, (slot.pos,))
        return None

    def compute_stage_multi(self, ws, window):
        """Metadata-only fused window: record every live run's cells.

        Interval metadata has no cross-run interaction, so the fused form
        is simply the in-order walk without per-run dispatch; the fused
        *timing* benefit comes from :meth:`stage_chunks_multi` charging
        the window one stage time.
        """
        cache: RangeKVCache = ws.cache
        outs: List[Optional[np.ndarray]] = []
        for item in window:
            if isinstance(item, StageRun):
                if not item.skip:
                    for slot in item.meta.slots:
                        for seq in slot.seq_ids:
                            cache.add_tokens(seq, (slot.pos,))
                outs.append(None)
            else:
                for op in item:
                    apply_cache_op(cache, op)
        return outs

    def finalize_logits(self, ws, meta, hidden):
        if meta.oracle_states is None:
            raise RuntimeError("oracle backend needs per-slot states in the meta")
        out: List[OracleLogits] = []
        for slot, state in zip(meta.slots, meta.oracle_states):
            if slot.want_logits:
                out.append(self.oracle.logits_from_state(state))
        return out

    # -- timing -------------------------------------------------------------------------

    def stage_chunks(self, node, layer_range, n_tokens):
        lo, hi = layer_range
        return self.target_cost.chunked_stage_times(
            node, hi - lo, n_tokens, self.probe_chunk_layers
        )

    def prefill_chunks(self, node, layer_range, n_tokens):
        lo, hi = layer_range
        per_layer = self.target_cost.layer_time(node, n_tokens)
        return [(hi - lo) * per_layer + node.compute_overhead]

    def logits_time(self, node, n_logits):
        return self.target_cost.output_head_time(node, n_logits)

    # -- sizes / memory ---------------------------------------------------------------------

    def activation_nbytes(self, n_tokens: int) -> float:
        return self.target_cost.activation_bytes(n_tokens)

    def logits_nbytes(self, n_logits: int) -> float:
        return self.target_cost.logits_bytes(n_logits)

    def node_memory(self, layer_range, hosts_draft, n_cells, first=False, last=False) -> float:
        total = 512e6  # runtime buffers, scratch, code
        arch = self.pair.target_arch
        if layer_range is not None:
            lo, hi = layer_range
            total += (hi - lo) * arch.bytes_per_layer
            if first:
                total += arch.vocab * arch.d_model * 2.0  # embedding table
            if last:
                total += arch.vocab * arch.d_model * 2.0  # output head
            total += self.target_cost.kv_bytes(hi - lo, n_cells)
        if hosts_draft:
            total += self.draft_cost.weights_bytes()
            total += self.draft_cost.kv_bytes(self.pair.draft_arch.n_layers, n_cells)
        return total
