"""Pipeline-parallel speculative inference: the SpecInfer-style baseline.

Synchronous speculate-then-verify (paper Section III): the head drafts a
speculation tree with the local draft model — during which the *entire
target pipeline sits idle* — then pushes one verification batch through
the pipeline and blocks on the logits.  Tree branches are isolated with
KV sequence ids; after verification the accepted path is copied to the
canonical sequence and the branch sequences are dropped.

This is the baseline whose time-to-first-token suffers from waiting on the
speculative tree, and whose throughput collapses when acceptance is low —
the behaviours Figures 4 and 5 quantify.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from repro.cluster.kernel import Delay
from repro.comm.payloads import CacheOp, CacheOpKind, TokenSlot
from repro.engines.backend import SEQ_END
from repro.engines.base import BaseEngine, GenerationJob
from repro.engines.iterative import PipelinedHeadMixin
from repro.models.sampler import argmax_token
from repro.spec.draft import draft_tree
from repro.spec.tree_attention import assign_tree_seqs
from repro.spec.verify import verify_tree


class _PrefixDrafter:
    """Adapter presenting the backend's draft model as a spec.draft.Drafter."""

    def __init__(self, backend) -> None:
        self._backend = backend

    def propose(self, prefix: Sequence[int]):
        return self._backend.propose_alternatives(prefix, 1)[0]

    def propose_alternatives(self, prefix: Sequence[int], n: int):
        return self._backend.propose_alternatives(prefix, n)


class SpeculativeEngine(PipelinedHeadMixin, BaseEngine):
    """Synchronous speculative decoding over the pipeline."""

    name = "speculative"

    def hosts_draft(self) -> bool:
        return True

    def _generate(self, job: GenerationJob) -> Generator:
        be = self.backend
        cfg = self.config
        metrics = self.metrics
        chain = be.new_chain(job.prompt)
        accepted: List[int] = list(job.prompt)
        drafter = _PrefixDrafter(be)

        first = yield from self.prefill(job, chain)
        accepted.append(first)
        chain.append(first)

        # The baseline distributes *both* models across the ranks
        # (llama.cpp MPI), so every autoregressive draft token traverses
        # the whole pipeline — per-node decode overhead plus a hop each.
        ranks = self.target_ranks()
        nodes = [self.cluster.nodes[r] for r in ranks]
        per_draft_token = be.draft_pipeline_token_time(
            nodes, self.cluster.link_spec.latency
        )

        while len(accepted) - len(job.prompt) < job.n_generate:
            tip_pos = len(accepted) - 1
            # ---- speculation phase: the pipeline is tied up drafting.
            tree = draft_tree(drafter, accepted, tip_pos, cfg.draft)
            draft_cost = max(len(tree), 1) * per_draft_token
            yield Delay(draft_cost)
            metrics.add_busy(0, draft_cost / max(len(nodes), 1))

            if len(tree) == 0:
                # Draft had no confident proposal: fall back to one
                # iterative step so progress is guaranteed.
                slots = [TokenSlot(accepted[tip_pos], tip_pos, (0,), True)]
                states = be.slot_states(chain, tip_pos, 1)
                logits = yield from self.run_batch(slots, states, is_spec=False)
                nxt = argmax_token(logits[0])
                accepted.append(nxt)
                chain.reconcile(accepted)
                metrics.record_tokens(self.net.kernel.now, 1)
                continue

            # ---- verification phase: tip token + tree in one batch.
            leaves = tree.leaves()
            branch_seqs = list(range(1, len(leaves) + 1))
            node_seqs = assign_tree_seqs(tree, branch_seqs)
            # The tip token's fresh cell must be visible to every branch:
            # it is written during this batch, after the branch cp ops ran,
            # so it carries all branch ids directly (llama.cpp assigns the
            # shared prefix token to every sequence the same way).
            slots = [
                TokenSlot(accepted[tip_pos], tip_pos, (0, *branch_seqs), True)
            ]
            for i, node in enumerate(tree.nodes):
                seqs = tuple(sorted(node_seqs[i]))
                slots.append(TokenSlot(node.token, node.pos, seqs, True))
            prefixes = [accepted[: tip_pos + 1]]
            prefixes.extend(
                accepted + tree.path_tokens(i) for i in range(len(tree))
            )
            states = be.slot_states_for_prefixes(prefixes)
            pre_ops = [
                CacheOp(CacheOpKind.SEQ_CP, 0, b, 0, tip_pos + 1)
                for b in branch_seqs
            ]
            logits = yield from self.run_batch(slots, states, True, pre_ops=pre_ops)
            metrics.stats.speculative += 1
            metrics.stats.draft_tokens_proposed += len(tree)

            outcome = verify_tree(logits[0], tree, logits[1:])
            metrics.stats.draft_tokens_accepted += outcome.n_draft_accepted
            metrics.stats.draft_tokens_checked += outcome.n_draft_checked

            # ---- cache maintenance: keep the accepted path, drop branches.
            post_ops: List[CacheOp] = []
            if outcome.matched_nodes:
                path_seq = min(node_seqs[outcome.matched_nodes[-1]])
                lo = tree.nodes[outcome.matched_nodes[0]].pos
                hi = tree.nodes[outcome.matched_nodes[-1]].pos + 1
                post_ops.append(CacheOp(CacheOpKind.SEQ_CP, path_seq, 0, lo, hi))
            post_ops.extend(
                CacheOp(CacheOpKind.SEQ_RM, b, b, 0, SEQ_END)
                for b in branch_seqs
            )
            from repro.engines.backend import apply_cache_op

            for op in post_ops:
                apply_cache_op(self._worker_states[0].cache, op)
            ranks = self.target_ranks()
            if len(ranks) > 1:
                self.send_cache_ops(ranks[1], post_ops)

            accepted.extend(outcome.new_tokens)
            chain.reconcile(accepted)
            metrics.record_tokens(self.net.kernel.now, len(outcome.new_tokens))

        return accepted

    def _head(self, job: GenerationJob) -> Generator:
        accepted = yield from self._generate(job)
        self.finish(job, accepted)
