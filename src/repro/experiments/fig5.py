"""Figure 5: time-to-first-token latencies (same grid as Figure 4).

PipeInfer reaches near-parity with iterative inference while the
speculative baseline pays for generating the tree before the first
verification completes.
"""

from repro.experiments import fig4


def run(scale=None):
    return fig4.run(metric="ttft", scale=scale)


def main() -> None:
    fig4.main(metric="ttft", unit="seconds")


if __name__ == "__main__":
    main()
