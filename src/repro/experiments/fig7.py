"""Figure 7: resource and constrained-hardware analysis.

- 7a: memory efficiency (tokens/s per GB of mean per-node memory,
  log-scale in the paper) for the three representative pairs on cluster C;
- 7b: TTFT for the three inference methods on cluster A (GigE);
- 7c: generation speed on the constrained clusters A/B at 4/8/13 nodes —
  the 13-node point brings in the heterogeneous Optiplexes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.testbed import cluster_a, cluster_b
from repro.experiments.common import (
    ExperimentScale,
    PAPER_NODE_COUNTS,
    node_sweep,
    run_cell,
)
from repro.util.tables import format_series

#: The representative pair per target family (small draft, as in Fig. 7c).
FAMILY_PAIRS = {
    "Dolphin": "dolphin+tinyllama",
    "Goliath": "goliath+xwin7b",
    "Falcon": "falcon+7b",
}


def run_7a(scale: Optional[ExperimentScale] = None) -> Dict[str, List[float]]:
    """Speed-per-GB series per strategy and family, across cluster C sizes."""
    series: Dict[str, List[float]] = {}
    for family, pair_key in FAMILY_PAIRS.items():
        grid = node_sweep(pair_key, ["iter", "spec", "pipe"], "C",
                          PAPER_NODE_COUNTS, scale)
        series[f"Iter. ({family})"] = [r.speed_per_gb() for r in grid["iter"]]
        series[f"Speculative ({family})"] = [r.speed_per_gb() for r in grid["spec"]]
        series[f"PipeInfer ({family})"] = [r.speed_per_gb() for r in grid["pipe"]]
    return series


def run_7b(scale: Optional[ExperimentScale] = None) -> Dict[str, List[float]]:
    """TTFT on cluster A (8 nodes) per family and strategy."""
    series: Dict[str, List[float]] = {"Iterative": [], "Speculative": [], "PipeInfer": []}
    for pair_key in FAMILY_PAIRS.values():
        cluster = cluster_a(8)
        series["Iterative"].append(run_cell(pair_key, "iter", cluster, scale).ttft)
        series["Speculative"].append(run_cell(pair_key, "spec", cluster, scale).ttft)
        series["PipeInfer"].append(run_cell(pair_key, "pipe", cluster, scale).ttft)
    return series


def run_7c(scale: Optional[ExperimentScale] = None) -> Dict[str, List[float]]:
    """Generation speed on the constrained clusters at 4/8/13 nodes.

    4- and 8-node points use cluster A's homogeneous Xeons; the 13-node
    point extends into cluster B's slower Optiplexes.
    """
    series: Dict[str, List[float]] = {}
    for family, pair_key in FAMILY_PAIRS.items():
        for strategy, label in (("iter", "Iter."), ("spec", "Spec."), ("pipe", "Pipe.")):
            values = []
            for n in (4, 8, 13):
                cluster = cluster_a(n) if n <= 8 else cluster_b(n)
                values.append(
                    run_cell(pair_key, strategy, cluster, scale).generation_speed
                )
            series[f"{label} ({family})"] = values
    return series


def main() -> None:
    print(format_series("nodes", list(PAPER_NODE_COUNTS), run_7a(),
                        title="Figure 7a — memory efficiency", unit="tokens/s per GB"))
    print()
    print(format_series("model", list(FAMILY_PAIRS), run_7b(),
                        title="Figure 7b — TTFT on cluster A", unit="seconds"))
    print()
    print(format_series("nodes", [4, 8, 13], run_7c(),
                        title="Figure 7c — constrained clusters", unit="tokens/s"))


if __name__ == "__main__":
    main()
