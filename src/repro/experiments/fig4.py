"""Figure 4: generation speed of model pairs across node counts.

Three subfigures on cluster C, node counts {4, 8, 15, 32}:

- (a) Dolphin-70B with TinyLlama / Orca2 drafts,
- (b) Goliath-120B with XWin-7B / XWin-13B drafts,
- (c) Falcon-180B with Falcon-7B / Falcon-40B drafts,

each comparing iterative, speculative, and PipeInfer inference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    ExperimentScale,
    PAPER_NODE_COUNTS,
    node_sweep,
)
from repro.util.tables import format_series

#: Subfigure -> [(pair key, legend suffix), ...]
SUBFIGURES: Dict[str, List[Tuple[str, str]]] = {
    "4a: Dolphin-70B": [("dolphin+tinyllama", "TinyLlama"), ("dolphin+orca2", "Orca2")],
    "4b: Goliath-120B": [("goliath+xwin7b", "XWin-7B"), ("goliath+xwin13b", "XWin-13B")],
    "4c: Falcon-180B": [("falcon+7b", "Falcon-7B"), ("falcon+40b", "Falcon-40B")],
}


def run(
    metric: str = "generation_speed",
    scale: Optional[ExperimentScale] = None,
    node_counts=PAPER_NODE_COUNTS,
) -> Dict[str, Dict[str, List[float]]]:
    """Compute every subfigure's series; shared by Figures 4, 5 and 6."""
    figures: Dict[str, Dict[str, List[float]]] = {}
    for title, pairs in SUBFIGURES.items():
        series: Dict[str, List[float]] = {}
        first_key = pairs[0][0]
        iters = node_sweep(first_key, ["iter"], "C", node_counts, scale)["iter"]
        series["Iter."] = [getattr(r, metric) for r in iters]
        for pair_key, label in pairs:
            grid = node_sweep(pair_key, ["spec", "pipe"], "C", node_counts, scale)
            series[f"Spec. ({label})"] = [getattr(r, metric) for r in grid["spec"]]
            series[f"Pipe. ({label})"] = [getattr(r, metric) for r in grid["pipe"]]
        figures[title] = series
    return figures


def main(metric: str = "generation_speed", unit: str = "tokens/s") -> None:
    figures = run(metric)
    for title, series in figures.items():
        print(format_series("nodes", list(PAPER_NODE_COUNTS), series,
                            title=f"Figure {title} — {metric}", unit=unit))
        print()


if __name__ == "__main__":
    main()
