"""Shared experiment machinery: cells, sweeps, scale control."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.testbed import make_testbed
from repro.cluster.topology import Cluster
from repro.core.engine import PipeInferEngine
from repro.engines.backend import OracleBackend
from repro.engines.base import EngineConfig, GenerationJob, run_engine
from repro.engines.iterative import IterativeEngine
from repro.engines.speculative import SpeculativeEngine
from repro.metrics.report import EngineReport, aggregate
from repro.models.zoo import get_pair
from repro.workloads.prompts import make_prompt

ENGINES = {
    "iter": IterativeEngine,
    "spec": SpeculativeEngine,
    "pipe": PipeInferEngine,
}


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run: tokens per generation and repetitions to average."""

    n_generate: int = 160
    reps: int = 3
    prompt_len: int = 128


def scale_from_env() -> ExperimentScale:
    """Scale from ``REPRO_TOKENS`` / ``REPRO_REPS`` (paper: 512 / 10)."""
    return ExperimentScale(
        n_generate=int(os.environ.get("REPRO_TOKENS", "160")),
        reps=int(os.environ.get("REPRO_REPS", "3")),
        prompt_len=int(os.environ.get("REPRO_PROMPT", "128")),
    )


def run_cell(
    pair_key: str,
    strategy: str,
    cluster: Cluster,
    scale: Optional[ExperimentScale] = None,
    config: Optional[EngineConfig] = None,
    prompt_kind: str = "wikitext",
    acceptance_delta: float = 0.0,
) -> EngineReport:
    """One experiment cell: (model pair, strategy, cluster), averaged.

    Repetitions vary the oracle seed, mimicking the paper's 10 averaged
    runs; the simulation itself is deterministic per seed.
    """
    scale = scale or scale_from_env()
    pair = get_pair(pair_key)
    engine = ENGINES[strategy]
    prompt = make_prompt(prompt_kind, scale.prompt_len, pair.target_arch.vocab)
    job = GenerationJob(prompt=prompt, n_generate=scale.n_generate)
    acceptance = min(max(pair.acceptance + acceptance_delta, 0.01), 0.99)
    reports = []
    for rep in range(scale.reps):
        backend = OracleBackend(
            pair,
            head_node=cluster.nodes[0],
            seed=rep * 1013,
            acceptance_override=acceptance,
        )
        reports.append(run_engine(engine, backend, cluster, job, config))
    return aggregate(reports)


def node_sweep(
    pair_key: str,
    strategies: Sequence[str],
    testbed: str,
    node_counts: Sequence[int],
    scale: Optional[ExperimentScale] = None,
    config: Optional[EngineConfig] = None,
) -> Dict[str, List[EngineReport]]:
    """Run a strategies x node-count grid on one testbed (Figures 4-6)."""
    out: Dict[str, List[EngineReport]] = {s: [] for s in strategies}
    for n in node_counts:
        cluster = make_testbed(testbed, n)
        for s in strategies:
            out[s].append(run_cell(pair_key, s, cluster, scale, config))
    return out


#: Node counts used by the paper's cluster-C sweeps.
PAPER_NODE_COUNTS = (4, 8, 15, 32)
