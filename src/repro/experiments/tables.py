"""Tables I-IV: model pairs and testbeds, as the paper prints them."""

from __future__ import annotations

from repro.cluster.testbed import cluster_a, cluster_b, cluster_c, gpu_testbed
from repro.models.cost import CostModel
from repro.models.zoo import CPU_PAIRS, GPU_PAIRS, MODEL_ZOO
from repro.util.tables import format_table


def table_pairs(pairs, title: str) -> str:
    rows = []
    for pair in pairs.values():
        t, d = pair.target_arch, pair.draft_arch
        rows.append([
            t.name, f"{t.total_params/1e9:.0f}B", t.quant.value,
            d.name, f"{d.total_params/1e9:.1f}B", d.quant.value,
            f"{pair.acceptance:.2%}" + ("" if pair.measured else " (est.)"),
        ])
    return format_table(
        ["Target", "Size", "Quant", "Speculative", "Size", "Quant", "Acceptance"],
        rows, title=title,
    )


def table_testbeds() -> str:
    rows = []
    for cluster in (cluster_a(), cluster_b(), cluster_c(), gpu_testbed()):
        names = sorted({n.name for n in cluster.nodes})
        rows.append([
            cluster.name, cluster.size, " + ".join(names),
            cluster.link_spec.name,
        ])
    return format_table(
        ["Cluster", "Max nodes", "Nodes", "Interconnect"],
        rows, title="Tables II & IV — hardware testbeds",
    )


def table_model_files() -> str:
    """Model footprints from the cost model (install-planning aid)."""
    rows = []
    for key, arch in MODEL_ZOO.items():
        cost = CostModel(arch)
        rows.append([
            key, arch.n_layers, arch.d_model,
            f"{arch.total_params/1e9:.1f}B", arch.quant.value,
            f"{cost.weights_bytes()/1e9:.1f} GB",
        ])
    return format_table(
        ["key", "layers", "d_model", "params", "quant", "file size"],
        rows, title="Model zoo footprints",
    )


def main() -> None:
    print(table_pairs(CPU_PAIRS, "Table I — CPU-cluster model pairs"))
    print()
    print(table_pairs(GPU_PAIRS, "Table III — GPU-cluster model pairs"))
    print()
    print(table_testbeds())
    print()
    print(table_model_files())


if __name__ == "__main__":
    main()
