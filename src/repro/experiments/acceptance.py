"""Acceptance-rate calibration check (paper Section V-B).

Runs each CPU pair through the speculative and PipeInfer engines and
compares the measured per-token acceptance against the rate the paper
reports — the oracle pairs are calibrated so these coincide.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.testbed import cluster_c
from repro.experiments.common import ExperimentScale, run_cell
from repro.models.zoo import CPU_PAIRS
from repro.util.tables import format_table


def run(scale: Optional[ExperimentScale] = None) -> List[List[object]]:
    cluster = cluster_c(8)
    rows = []
    for key, pair in CPU_PAIRS.items():
        spec = run_cell(key, "spec", cluster, scale)
        pipe = run_cell(key, "pipe", cluster, scale)
        rows.append([
            pair.label,
            f"{pair.acceptance:.2%}",
            f"{spec.acceptance_rate:.2%}",
            f"{pipe.acceptance_rate:.2%}",
        ])
    return rows


def main() -> None:
    print(format_table(
        ["pair", "paper", "measured (spec)", "measured (pipeinfer)"],
        run(), title="Acceptance-rate calibration",
    ))


if __name__ == "__main__":
    main()
