"""Figure 6: inter-token latencies (same grid as Figure 4).

The paper observes ITL tracking the inverse of generation speed,
"verifying the correctness of our results" — the same consistency check
the integration suite asserts.
"""

from repro.experiments import fig4


def run(scale=None):
    return fig4.run(metric="itl", scale=scale)


def main() -> None:
    fig4.main(metric="itl", unit="seconds")


if __name__ == "__main__":
    main()
