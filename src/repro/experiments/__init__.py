"""Experiment harnesses: one module per paper figure/table.

Each module exposes ``run()`` returning the figure's series and a
``main()`` that prints the same rows the paper plots.  Invoke as e.g.::

    python -m repro.experiments.fig4
    python -m repro.experiments.fig8

Scale knobs (environment): ``REPRO_TOKENS`` (generated tokens per run,
default 160), ``REPRO_REPS`` (repetitions averaged, default 3; the paper
used 512 tokens x 10 reps — set 512/10 to match).
"""

from repro.experiments.common import ExperimentScale, run_cell, scale_from_env

__all__ = ["ExperimentScale", "run_cell", "scale_from_env"]
