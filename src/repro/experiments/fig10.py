"""Figure 10: prompt-to-prompt variance on the GPU cluster.

Senku-70B + TinyLlama across the four prompt classes.  Task domain shifts
the draft's alignment; the synchronous baseline's speed swings with it
while PipeInfer stays comparatively level (continuous speculation and
cancellation absorb acceptance-rate changes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.testbed import gpu_testbed
from repro.experiments.common import ExperimentScale, run_cell
from repro.util.tables import format_series
from repro.workloads.prompts import PROMPT_CLASSES

FIG10_PROMPTS = ("explain", "paper", "roleplay", "code")
PAIR = "senku+tinyllama"


def run(scale: Optional[ExperimentScale] = None) -> Dict[str, List[float]]:
    cluster = gpu_testbed()
    series: Dict[str, List[float]] = {"PipeInfer": [], "Speculative": []}
    for kind in FIG10_PROMPTS:
        delta = PROMPT_CLASSES[kind].acceptance_delta
        series["PipeInfer"].append(
            run_cell(PAIR, "pipe", cluster, scale,
                     prompt_kind=kind, acceptance_delta=delta).generation_speed
        )
        series["Speculative"].append(
            run_cell(PAIR, "spec", cluster, scale,
                     prompt_kind=kind, acceptance_delta=delta).generation_speed
        )
    return series


def variance_ratio(series: Dict[str, List[float]]) -> Dict[str, float]:
    """Relative spread (max-min)/mean per strategy — the figure's message."""
    out = {}
    for name, values in series.items():
        mean = sum(values) / len(values)
        out[name] = (max(values) - min(values)) / mean if mean else 0.0
    return out


def main() -> None:
    series = run()
    labels = [PROMPT_CLASSES[k].description for k in FIG10_PROMPTS]
    print(format_series("prompt", labels, series,
                        title="Figure 10 — prompt-to-prompt variance "
                              "(Senku 70B + TinyLlama, 4 GPUs)",
                        unit="tokens/s"))
    for name, spread in variance_ratio(series).items():
        print(f"{name}: relative spread {spread:.2%}")


if __name__ == "__main__":
    main()
