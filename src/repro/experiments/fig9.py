"""Figure 9: token generation speed on the 4-GPU cluster (Table IV).

Seven model pairs, PipeInfer vs speculative inference.  The paper found
PipeInfer ahead in all but one case — the Llama-3-based Dolphin 2.9 pair,
whose unusually well-aligned 8B draft makes synchronous speculation
competitive on the short 4-node pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.testbed import gpu_testbed
from repro.experiments.common import ExperimentScale, run_cell
from repro.models.zoo import GPU_PAIRS
from repro.util.tables import format_series


def run(scale: Optional[ExperimentScale] = None) -> Dict[str, List[float]]:
    cluster = gpu_testbed()
    series: Dict[str, List[float]] = {"PipeInfer": [], "Speculative": []}
    for key in GPU_PAIRS:
        series["PipeInfer"].append(
            run_cell(key, "pipe", cluster, scale).generation_speed
        )
        series["Speculative"].append(
            run_cell(key, "spec", cluster, scale).generation_speed
        )
    return series


def main() -> None:
    labels = [GPU_PAIRS[k].label for k in GPU_PAIRS]
    print(format_series("pair", labels, run(),
                        title="Figure 9 — 4-GPU cluster generation speed",
                        unit="tokens/s"))


if __name__ == "__main__":
    main()
