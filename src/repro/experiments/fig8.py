"""Figure 8: ablation studies on an 8-node configuration of cluster C.

Three model pairs (TinyLlama, XWin-7B, Falcon-7B drafts) under:

- full PipeInfer,
- early inference cancellation ablated (signals never sent; invalid runs
  evaluate in full),
- continuous speculation ablated with the speculative batch size doubled
  as a counter-balance (single larger asynchronous run at a time).

The paper additionally ablated KV multibuffering and asynchronous
speculation, both of which produced *incorrect output* rather than a
performance point; the correctness suite demonstrates the same (disabling
partition isolation breaks output equivalence), so no numbers exist for
them here either.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.testbed import cluster_c
from repro.engines.base import EngineConfig
from repro.experiments.common import ExperimentScale, run_cell
from repro.util.tables import format_series

ABLATION_PAIRS = {
    "Dolphin": "dolphin+tinyllama",
    "Goliath": "goliath+xwin7b",
    "Falcon": "falcon+7b",
}

VARIANTS = {
    "PipeInfer": EngineConfig(),
    "No cancellation": EngineConfig().ablated(enable_cancellation=False),
    "No cont. spec.": EngineConfig().ablated(
        enable_continuous=False, microbatch_size=8
    ),
}


def run(scale: Optional[ExperimentScale] = None) -> Dict[str, Dict[str, List[float]]]:
    """metric -> series; series maps "family: variant" to a single value."""
    cluster = cluster_c(8)
    out: Dict[str, Dict[str, List[float]]] = {
        "speed": {}, "ttft": {}, "itl": {}
    }
    for family, pair_key in ABLATION_PAIRS.items():
        for variant, config in VARIANTS.items():
            r = run_cell(pair_key, "pipe", cluster, scale, config=config)
            key = f"{family}: {variant}"
            out["speed"][key] = [r.generation_speed]
            out["ttft"][key] = [r.ttft]
            out["itl"][key] = [r.itl]
    return out


def main() -> None:
    results = run()
    for metric, unit in (("speed", "tokens/s"), ("ttft", "s"), ("itl", "s")):
        print(format_series("value", [unit], results[metric],
                            title=f"Figure 8 — {metric} (8 nodes)"))
        print()


if __name__ == "__main__":
    main()
