"""PipeInfer's ordered transaction protocol (paper Fig. 2).

A *transaction* is an atomic pipeline operation: a start message on the
START tag announcing the transaction type, followed by the operation's
payload messages on the type's own tag.  Because MPI point-to-point
messages are non-overtaking per (sender, receiver, tag), and because each
receiver processes transactions serially — receive start, invoke the
type's handler, which receives exactly the payloads of that transaction —
pipeline operations execute in a deterministic order on every node.

Engines use :func:`send_transaction` to emit a whole transaction and
receive-side handlers that pull their payloads with tag-specific receives.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Sequence, Tuple

from repro.comm.message import Tag
from repro.comm.mpi_sim import Endpoint


class TransactionType(enum.IntEnum):
    """Transaction types; values double as the payload tag."""

    DECODE = Tag.DECODE
    CACHE_OP = Tag.CACHE_OP
    SHUTDOWN = Tag.CONTROL
    #: A fused window: one payload piece (a
    #: :class:`~repro.comm.payloads.FusedBatch`) carrying several decode
    #: runs and interleaved cache-op batches in dispatch order.  Heads
    #: emit them as dispatch *bursts* (a whole round of runs coalesced at
    #: the first hop — capped at ``max_fused_runs`` runs per transaction);
    #: workers fuse whatever waits in their mailbox and forward the window
    #: as one transaction so downstream stages pay one dispatch per window
    #: instead of one per run.
    FUSED = Tag.FUSED


#: Modeled wire size of a transaction-start message (type id + header).
START_NBYTES = 16.0


def send_transaction(
    ep: Endpoint,
    dest: int,
    ttype: TransactionType,
    pieces: Sequence[Tuple[Any, float]],
    eager: bool = False,
) -> None:
    """Send a start message followed by the transaction's payload pieces.

    Args:
        ep: sender endpoint.
        dest: destination rank.
        ttype: transaction type; its value is the tag for all pieces.
        pieces: (payload, nbytes) tuples sent in order on the type's tag.
        eager: route every piece through the link's eager lane (used for
            small control transactions so they are not delayed behind bulk
            activation transfers).
    """
    ep.send(ttype, dest, Tag.START, nbytes=START_NBYTES, eager=True)
    for payload, nbytes in pieces:
        ep.send(payload, dest, int(ttype), nbytes=nbytes, eager=eager)


def recv_start(ep: Endpoint, source: int) -> Generator[Any, Any, TransactionType]:
    """Receive the next transaction-start message from ``source``."""
    msg = yield from ep.recv(source, Tag.START)
    return TransactionType(msg.payload)


def recv_piece(ep: Endpoint, source: int, ttype: TransactionType) -> Generator[Any, Any, Any]:
    """Receive one payload piece of an in-progress transaction."""
    msg = yield from ep.recv(source, int(ttype))
    return msg.payload
