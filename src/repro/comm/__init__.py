"""Simulated MPI message passing.

PipeInfer's correctness argument leans on one documented MPI property:
point-to-point messages with the same (sender, receiver, tag) are
*non-overtaking* (MPI 4.1 section 3.5).  Its transaction protocol (paper
Fig. 2) serializes pipeline operations on top of that guarantee.  This
package reimplements exactly that contract over the discrete-event kernel:

- :mod:`repro.comm.message` — message record and the tag space;
- :mod:`repro.comm.mpi_sim` — :class:`Network` (one per simulation) and
  :class:`Endpoint` (one per rank) with buffered sends, blocking receives,
  probe/iprobe, and per-(src, dst, tag) in-order delivery;
- :mod:`repro.comm.payloads` — typed payload records with explicit wire
  sizes;
- :mod:`repro.comm.transactions` — PipeInfer's ordered transaction framing.
"""

from repro.comm.message import ANY_SOURCE, ANY_TAG, Message, Tag
from repro.comm.mpi_sim import Endpoint, Network
from repro.comm.transactions import TransactionType, send_transaction

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "Tag",
    "Endpoint",
    "Network",
    "TransactionType",
    "send_transaction",
]
