"""Ack + retransmit reliability layer over the simulated MPI network.

The base :class:`~repro.comm.mpi_sim.Network` assumes links never lose
messages; under a fault plan they do.  This module adds the classic
sender-side watchdog machinery on top of the existing sequence-numbered
delivery:

- every application send arms a retransmission timer (``rto`` seconds,
  doubling per retry — exponential backoff);
- the receiver acknowledges with a **cumulative watermark** (the next
  sequence number it expects for that ``(src, dst, tag)`` stream) whenever
  in-order delivery advances, and re-acks when a stale duplicate arrives;
- an un-acked send is retransmitted over the same link as the original
  (fresh loss draw on a faulty link), preserving its original sequence
  number so the receiver's non-overtaking logic either slots it in or
  drops it as a duplicate;
- acks ride the reverse link's eager lane as raw delivery callbacks — they
  are not :class:`~repro.comm.message.Message` instances, so they consume
  no sequence numbers and cannot themselves trigger retransmission.  A lost
  ack is covered by the data retransmit + stale-drop + re-ack cycle.

The layer is installed by :class:`repro.faults.FaultInjector` only when the
fault plan can lose messages (link faults or worker crashes); fault-free
simulations never construct it, keeping the hot path to a single ``is
None`` check per send and delivery.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.kernel import SimError, SimKernel

#: Modeled wire size of an acknowledgment (a header-only control frame).
ACK_NBYTES = 64.0

_StreamKey = Tuple[int, int, int]  # (src, dst, tag)


class _Entry:
    """One in-flight (un-acked) send awaiting its watchdog."""

    __slots__ = ("msg", "nbytes", "eager", "rto", "tries", "acked")

    def __init__(self, msg, nbytes: float, eager: bool, rto: float) -> None:
        self.msg = msg
        self.nbytes = nbytes
        self.eager = eager
        self.rto = rto
        self.tries = 0
        self.acked = False


class ReliableTransport:
    """Sender-side retransmit queues plus receiver-side cumulative acks."""

    def __init__(
        self,
        kernel: SimKernel,
        network,
        rto: float,
        max_retries: int,
        stats,
        health=None,
    ) -> None:
        self.kernel = kernel
        self.net = network
        self.rto = rto
        self.max_retries = max_retries
        self.stats = stats
        self.health = health
        #: Un-acked sends per stream, keyed by sequence number.
        self._unacked: Dict[_StreamKey, Dict[int, _Entry]] = {}
        #: Highest cumulative ack watermark seen per stream: every send with
        #: ``seq < watermark`` is known delivered.
        self._acked: Dict[_StreamKey, int] = {}

    # -- sender side ---------------------------------------------------------

    def on_send(self, msg, nbytes: float, eager: bool) -> None:
        """Track a fresh application send and arm its watchdog."""
        if msg.src == msg.dst:
            return  # loopback cannot lose messages
        key = (msg.src, msg.dst, msg.tag)
        entry = _Entry(msg, nbytes, eager, self.rto)
        self._unacked.setdefault(key, {})[msg.seq] = entry
        self.kernel.call_after(entry.rto, lambda: self._check(key, entry))

    def _check(self, key: _StreamKey, entry: _Entry) -> None:
        """Watchdog: retransmit if the entry is still below the watermark."""
        if entry.acked:
            return
        if self._acked.get(key, 0) > entry.msg.seq:
            entry.acked = True
            pend = self._unacked.get(key)
            if pend is not None:
                pend.pop(entry.msg.seq, None)
            return
        if entry.tries >= self.max_retries:
            raise SimError(
                f"message (src={key[0]}, dst={key[1]}, tag={key[2]}, "
                f"seq={entry.msg.seq}) unacknowledged after "
                f"{entry.tries} retransmissions"
            )
        entry.tries += 1
        self.stats.timeouts += 1
        self.stats.retransmits += 1
        if self.health is not None:
            self.health.record_fault(self.kernel.now, key[1])
        msg = entry.msg
        link = self.net.cluster.link(msg.src, msg.dst)
        link.transmit(
            entry.nbytes,
            lambda: self.net.endpoints[msg.dst]._deliver(msg),
            eager_hint=entry.eager,
        )
        entry.rto *= 2.0
        self.kernel.call_after(entry.rto, lambda: self._check(key, entry))

    # -- receiver side -------------------------------------------------------

    def on_accept(self, src: int, dst: int, tag: int, watermark: int) -> None:
        """Receiver accepted (or stale-dropped) up to ``watermark``; ack it.

        The ack travels the reverse link's eager lane as a raw callback so
        it is subject to that link's faults but never consumes a stream
        sequence number.
        """
        if src == dst:
            return
        key = (src, dst, tag)
        link = self.net.cluster.link(dst, src)
        link.transmit(
            ACK_NBYTES,
            lambda: self._on_ack(key, watermark),
            eager_hint=True,
        )

    def _on_ack(self, key: _StreamKey, watermark: int) -> None:
        cur = self._acked.get(key, 0)
        if watermark > cur:
            self._acked[key] = cur = watermark
        pend = self._unacked.get(key)
        if pend:
            done = [seq for seq in pend if seq < cur]
            for seq in done:
                pend[seq].acked = True
                del pend[seq]

    # -- introspection -------------------------------------------------------

    def n_unacked(self) -> int:
        """Total sends still awaiting acknowledgment (testing aid)."""
        return sum(len(pend) for pend in self._unacked.values())
