"""Typed message payloads exchanged by the inference engines.

Every payload carries an explicit ``nbytes`` — the modeled serialized size
used for link timing — computed by the sender from the model's cost
descriptor (activation width, vocabulary size).  The simulation passes the
Python object through unserialized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass
class TokenSlot:
    """One token position within a decode batch.

    Attributes:
        token: vocabulary id.
        pos: absolute position in the generated sequence.
        seq_ids: KV-cache sequences the token's cell belongs to (tree nodes
            shared by several branches carry every branch's id; chains carry
            one).  The first entry is the *primary* sequence used as the
            attention query's view.
        want_logits: whether the head needs logits for this slot (all slots
            in verification batches; the last slot in plain decode).
    """

    token: int
    pos: int
    seq_ids: tuple
    want_logits: bool = True

    @property
    def primary_seq(self) -> int:
        return self.seq_ids[0]


@dataclass
class DecodeMeta:
    """Run configuration sent down the pipeline before activations.

    Mirrors the paper's "configuration data ... detailing information such
    as the batch size and the array of sequences per token" (IV-A1).
    ``oracle_states`` carries the per-slot rolling prefix state in
    performance mode (O(1) wire size per slot) so the last rank can
    materialize target logits without the full prefix.
    """

    run_id: int
    slots: List[TokenSlot]
    is_speculative: bool
    nbytes: float = 64.0
    oracle_states: Optional[List[int]] = None

    @property
    def n_tokens(self) -> int:
        return len(self.slots)

    def positions(self) -> List[int]:
        return [s.pos for s in self.slots]


@dataclass
class Activations:
    """Hidden-state tensor forwarded between pipeline stages.

    ``hidden`` is populated only in functional (real-transformer) mode; in
    performance mode the array is omitted and only ``nbytes`` matters.
    Cancelled runs forward an empty activation record (``cancelled=True``,
    tiny ``nbytes``) to preserve message ordering, per Section IV-D2.
    """

    run_id: int
    nbytes: float
    hidden: Optional[Any] = None
    cancelled: bool = False


@dataclass
class LogitsPayload:
    """Per-slot output logits returned from the last stage to the head.

    ``logits`` is a list aligned with the ``want_logits`` slots of the
    run's :class:`DecodeMeta`; entries are dense arrays (functional mode)
    or :class:`~repro.models.oracle.OracleLogits` (performance mode).
    ``cancelled`` marks runs flushed by early inference cancellation — the
    head pops their record without sampling.
    """

    run_id: int
    logits: List[Any]
    nbytes: float
    cancelled: bool = False


@dataclass
class FusedRun:
    """One run's (meta, activations) pair inside a fused window.

    Workers drain every transaction waiting in their mailbox into a
    *fusion window* and evaluate the compatible decode runs as one
    cross-run batch; on the wire the window travels as a single
    :class:`FusedBatch` whose items preserve the original transaction
    order, so MPI non-overtaking semantics and run-FIFO ordering are
    exactly those of the equivalent singleton transactions.
    """

    meta: "DecodeMeta"
    act: "Activations"


@dataclass
class FusedBatch:
    """A fused multi-run transaction forwarded between pipeline workers.

    ``items`` is the ordered window: :class:`FusedRun` entries for decode
    runs and plain ``List[CacheOp]`` batches for the cache-op transactions
    that arrived between them.  Order within ``items`` is the order the
    singleton transactions were dispatched in, which every stage must
    respect (cache ops copy cells written by the decode runs preceding
    them — Section IV-C3).
    """

    items: List[Any]
    nbytes: float = 0.0


class CacheOpKind(enum.IntEnum):
    """KV-cache maintenance commands (llama.cpp sequence API)."""

    #: Copy cells of ``seq_src`` in [p0, p1) into ``seq_dst``.
    SEQ_CP = 1
    #: Remove cells of ``seq`` in [p0, p1).
    SEQ_RM = 2
    #: Copy cells of ``seq_src`` in [p0, p1) into every sequence listed in
    #: ``targets`` (acceptance propagation IV-C2; prefix-cache fan-out).
    SEQ_BROADCAST = 3


@dataclass
class CacheOp:
    """A pipelined cache operation command (Section IV-C3).

    ``targets`` is the explicit destination list of a ``SEQ_BROADCAST``
    (one wire command materializes a shared cached prefix into several
    requests' partitions at once); empty for the point ops.
    """

    kind: CacheOpKind
    seq_src: int
    seq_dst: int
    p0: int
    p1: int
    nbytes: float = 32.0
    targets: tuple = ()


@dataclass
class CancelMsg:
    """Early-inference-cancellation signal: just the run identifier."""

    run_id: int
    nbytes: float = 16.0


@dataclass
class ShutdownMsg:
    """End-of-generation control message."""

    nbytes: float = 8.0
