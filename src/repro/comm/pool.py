"""Free-list pools for the transaction plane's per-message records.

Every pipeline hop allocates a handful of small payload objects — an
:class:`~repro.comm.payloads.Activations` record per run, a
:class:`~repro.comm.payloads.FusedRun` wrapper per run, one
:class:`~repro.comm.payloads.FusedBatch` container per window, and a
:class:`~repro.comm.payloads.LogitsPayload` per completed run.  Their
lifetimes are strictly shorter than a run's: a record is dead the moment
the receiving stage has unpacked it.  :class:`TransactionPool` recycles
them through per-type free lists, turning the dominant allocation churn of
the transaction plane into attribute stores.

A single pool is shared by the head and every worker of one engine: the
simulation passes payloads by reference, so "the receiver released it"
and "the next sender may reuse it" describe the same host-level object.
Long-lived records (``DecodeMeta`` and its ``TokenSlot`` list) are *not*
pooled — they are referenced concurrently by several simulated stages and
by the head's in-flight bookkeeping.

Releasing is optional for correctness: a record that is never released is
simply garbage-collected and the pool allocates a fresh one next time.
What must never happen is releasing a record that is still reachable —
that aliases two logical messages onto one object.  Debug mode (pass
``debug=True`` or set ``REPRO_POOL_DEBUG=1``) brands every record with a
liveness flag and raises :class:`PoolError` on double-release or on a
free-list entry that is still marked live; the pool-recycling property
test runs the full engine stack in this mode.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional

from repro.comm.payloads import Activations, FusedBatch, FusedRun, LogitsPayload


class PoolError(RuntimeError):
    """A pooled record was released twice or recycled while still live."""


def _debug_default() -> bool:
    return bool(os.environ.get("REPRO_POOL_DEBUG"))


class TransactionPool:
    """Per-type free lists for transaction payload records.

    ``acquire_*`` returns a recycled record (or a fresh one when the free
    list is empty) with every field reset; ``release_*`` returns a record
    to its free list and drops the payload references it carried, so a
    recycled record never keeps tensors alive.
    """

    __slots__ = (
        "debug", "_acts", "_runs", "_batches", "_logits",
        "n_allocated", "n_reused",
    )

    def __init__(self, debug: Optional[bool] = None) -> None:
        self.debug = _debug_default() if debug is None else debug
        self._acts: List[Activations] = []
        self._runs: List[FusedRun] = []
        self._batches: List[FusedBatch] = []
        self._logits: List[LogitsPayload] = []
        #: Statistics: fresh constructions vs. free-list hits.
        self.n_allocated = 0
        self.n_reused = 0

    # -- debug invariant ----------------------------------------------------

    def _mark_live(self, record: Any) -> None:
        if getattr(record, "_pool_live", False):
            raise PoolError(
                f"pool handed out a record still marked live: {record!r}"
            )
        record._pool_live = True

    def _mark_free(self, record: Any) -> None:
        # A record constructed outside the pool (baseline engines, tests)
        # may be released into it; it has no brand yet and counts as live.
        if not getattr(record, "_pool_live", True):
            raise PoolError(f"record released twice: {record!r}")
        record._pool_live = False

    # -- Activations ---------------------------------------------------------

    def acquire_activations(
        self,
        run_id: int,
        nbytes: float,
        hidden: Any = None,
        cancelled: bool = False,
    ) -> Activations:
        free = self._acts
        if free:
            act = free.pop()
            self.n_reused += 1
            act.run_id = run_id
            act.nbytes = nbytes
            act.hidden = hidden
            act.cancelled = cancelled
        else:
            act = Activations(run_id, nbytes, hidden, cancelled)
            self.n_allocated += 1
        if self.debug:
            self._mark_live(act)
        return act

    def release_activations(self, act: Activations) -> None:
        if self.debug:
            self._mark_free(act)
        act.hidden = None
        self._acts.append(act)

    # -- FusedRun ------------------------------------------------------------

    def acquire_fused_run(self, meta: Any, act: Activations) -> FusedRun:
        free = self._runs
        if free:
            run = free.pop()
            self.n_reused += 1
            run.meta = meta
            run.act = act
        else:
            run = FusedRun(meta, act)
            self.n_allocated += 1
        if self.debug:
            self._mark_live(run)
        return run

    def release_fused_run(self, run: FusedRun) -> None:
        if self.debug:
            self._mark_free(run)
        run.meta = None
        run.act = None
        self._runs.append(run)

    # -- FusedBatch ----------------------------------------------------------

    def acquire_fused_batch(self) -> FusedBatch:
        """An empty batch container; the caller fills ``items``/``nbytes``."""
        free = self._batches
        if free:
            fb = free.pop()
            self.n_reused += 1
            fb.nbytes = 0.0
        else:
            fb = FusedBatch([], nbytes=0.0)
            self.n_allocated += 1
        if self.debug:
            self._mark_live(fb)
        return fb

    def release_fused_batch(self, fb: FusedBatch) -> None:
        """Recycle a batch container (its ``items`` list is kept and
        cleared).  The items themselves are released by their consumers."""
        if self.debug:
            self._mark_free(fb)
        fb.items.clear()
        self._batches.append(fb)

    # -- LogitsPayload -------------------------------------------------------

    def acquire_logits(
        self,
        run_id: int,
        logits: List[Any],
        nbytes: float,
        cancelled: bool = False,
    ) -> LogitsPayload:
        free = self._logits
        if free:
            payload = free.pop()
            self.n_reused += 1
            payload.run_id = run_id
            payload.logits = logits
            payload.nbytes = nbytes
            payload.cancelled = cancelled
        else:
            payload = LogitsPayload(run_id, logits, nbytes, cancelled)
            self.n_allocated += 1
        if self.debug:
            self._mark_live(payload)
        return payload

    def release_logits(self, payload: LogitsPayload) -> None:
        if self.debug:
            self._mark_free(payload)
        payload.logits = None
        self._logits.append(payload)
