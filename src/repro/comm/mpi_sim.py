"""Simulated MPI: buffered sends, blocking receives, probes.

One :class:`Network` exists per simulation; each rank interacts through its
:class:`Endpoint`.  Semantics implemented (and tested against the MPI 4.1
standard's wording):

- **Buffered send**: ``send`` returns control to the caller immediately
  (the reference implementation uses buffered MPI sends so a node can
  proceed before the receiver is ready).  Transmission timing is delegated
  to the cluster's egress :class:`~repro.cluster.interconnect.Link`.
- **Non-overtaking**: messages with the same (src, dst, tag) are received
  in send order, even when the eager lane would deliver a later small
  message earlier.  Out-of-order arrivals are stashed until their
  predecessors arrive.
- **Probe / Iprobe**: check for a matching available message without
  consuming it.
- **Wildcards**: ``ANY_SOURCE`` / ``ANY_TAG`` match the earliest available
  message.

Blocking calls are generators: engine code runs inside kernel processes and
uses ``msg = yield from endpoint.recv(...)``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.cluster.kernel import SimKernel
from repro.cluster.topology import Cluster
from repro.comm.message import ANY_SOURCE, ANY_TAG, Message


def _tag_matches(tag_filter, tag: int) -> bool:
    """True when ``tag`` satisfies a filter: ANY_TAG, an int, or a tuple."""
    if isinstance(tag_filter, (tuple, frozenset, set, list)):
        return tag in tag_filter
    return tag_filter in (ANY_TAG, tag)


class _RecvRequest:
    """A parked receive (or probe) awaiting a matching message."""

    __slots__ = ("source", "tag", "future", "consume")

    def __init__(self, source: int, tag, future, consume: bool) -> None:
        self.source = source
        self.tag = tag
        self.future = future
        self.consume = consume

    def matches(self, msg: Message) -> bool:
        return (self.source in (ANY_SOURCE, msg.src)) and _tag_matches(
            self.tag, msg.tag
        )


class Endpoint:
    """Per-rank communicator handle."""

    def __init__(self, network: "Network", rank: int) -> None:
        self._net = network
        self.rank = rank
        #: Messages available for receiving, in delivery order.
        self._available: Deque[Message] = deque()
        #: Out-of-order stash keyed by (src, tag) -> {seq: msg}.
        self._stash: Dict[Tuple[int, int], Dict[int, Message]] = {}
        #: Next expected sequence number per (src, tag).
        self._expected: Dict[Tuple[int, int], int] = {}
        #: Parked receives/probes in arrival order of the requests.
        self._pending: List[_RecvRequest] = []
        #: Futures resolved on the next delivery of *any* message.
        self._arrival_watchers: List[Any] = []
        #: Available-message count per tag: lets ``iprobe`` answer the
        #: common no-match case in O(1) instead of scanning the deque.
        #: Workers re-probe for cancels between every compute chunk and
        #: heads poll for logits between draft passes, so with fused
        #: dispatch the probe path runs far more often than it matches.
        self._n_avail: Dict[int, int] = {}

    # -- sending -------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._net.size

    def send(
        self,
        payload: Any,
        dest: int,
        tag: int,
        nbytes: float,
        eager: bool = False,
    ) -> Message:
        """Buffered send; returns immediately after local buffering.

        Args:
            payload: Python object to deliver.
            dest: destination rank.
            tag: message tag (non-overtaking is per (src, dest, tag)).
            nbytes: modeled wire size; drives link serialization time.
            eager: force the link's eager lane (control signals).
        """
        return self._net._transmit(self.rank, dest, tag, payload, nbytes, eager)

    # -- receiving -----------------------------------------------------------

    def recv(
        self, source: int = ANY_SOURCE, tag=ANY_TAG
    ) -> Generator[Any, Any, Message]:
        """Blocking receive (generator).  Use as ``msg = yield from ep.recv()``.

        ``tag`` may be ANY_TAG, a single tag, or a tuple of acceptable tags
        (the receiver-discipline equivalent of posting several receives).
        """
        msg = self._take(source, tag)
        if msg is not None:
            return msg
        fut = self._net.kernel.future(f"recv@{self.rank}")
        fut.detail = f"recv(source={source}, tag={tag}) at rank {self.rank}"
        self._pending.append(_RecvRequest(source, tag, fut, consume=True))
        msg = yield fut
        return msg

    def recv_ready(self, source: int = ANY_SOURCE, tag=ANY_TAG, limit=None):
        """Consume and return every available matching message, in order.

        Non-blocking and not a generator — callable from plain (non-process)
        code.  Returns ``[]`` when nothing matches.  This is the batch half
        of the inbox hand-off: one parked resume wakes the receiver, then a
        single ``recv_ready`` drains the whole same-instant delivery batch
        without further generator steps.
        """
        if not self._available:
            return []
        out: List[Message] = []
        keep: List[Message] = []
        n_avail = self._n_avail
        for msg in self._available:
            if (
                (limit is None or len(out) < limit)
                and (source in (ANY_SOURCE, msg.src))
                and _tag_matches(tag, msg.tag)
            ):
                out.append(msg)
                n_avail[msg.tag] -= 1
            else:
                keep.append(msg)
        if out:
            self._available = deque(keep)
            trace = self._net.trace
            if trace is not None:
                rank = self.rank
                trace.extend(
                    (rank, msg.src, msg.tag, msg.seq) for msg in out
                )
        return out

    def recv_many(
        self, source: int = ANY_SOURCE, tag=ANY_TAG
    ) -> Generator[Any, Any, List[Message]]:
        """Blocking batch receive: at least one message, plus every other
        already-available match, consumed in one generator step.

        When the receiver parks, the link's coalesced drain makes the whole
        same-instant batch available before the resume runs, so the
        post-wakeup ``recv_ready`` picks up the rest of the batch for free.
        """
        msgs = self.recv_ready(source, tag)
        if msgs:
            return msgs
        msg = yield from self.recv(source, tag)
        return [msg, *self.recv_ready(source, tag)]

    def probe(
        self, source: int = ANY_SOURCE, tag=ANY_TAG
    ) -> Generator[Any, Any, Message]:
        """Blocking probe: waits for a match, returns it *without* consuming."""
        msg = self._peek(source, tag)
        if msg is not None:
            return msg
        fut = self._net.kernel.future(f"probe@{self.rank}")
        fut.detail = f"probe(source={source}, tag={tag}) at rank {self.rank}"
        self._pending.append(_RecvRequest(source, tag, fut, consume=False))
        msg = yield fut
        return msg

    def post_probe(self, source: int, tag, fut) -> None:
        """Post a non-consuming probe resolving ``fut`` with the next
        matching delivery — the event-context counterpart of
        :meth:`probe`, for receivers parking on a future from plain
        (non-process) code such as a window-completion callback.  The
        caller must have checked :meth:`iprobe` first: an
        already-available match will not resolve the future.
        """
        self._pending.append(_RecvRequest(source, tag, fut, consume=False))

    def iprobe(self, source: int = ANY_SOURCE, tag=ANY_TAG) -> bool:
        """Non-blocking probe: True when a matching message is available.

        The empty-mailbox and no-message-with-this-tag cases — the vast
        majority of probes — answer from the per-tag counts without
        touching the deque; only a plausible match falls back to the scan.
        """
        if not self._available:
            return False
        if isinstance(tag, (tuple, frozenset, set, list)):
            if all(self._n_avail.get(t, 0) == 0 for t in tag):
                return False
        elif tag != ANY_TAG:
            if self._n_avail.get(tag, 0) == 0:
                return False
            if source == ANY_SOURCE:
                return True
        return self._peek(source, tag) is not None

    def wait_for_arrival(self, max_wait=None) -> Generator[Any, Any, bool]:
        """Park until any message is delivered to this rank, or ``max_wait``.

        Returns True if a message arrived, False on timeout.  Used by the
        head node's continuous-speculation loop to idle when the
        confidence cutoff halts drafting and no logits are waiting.
        ``max_wait=None`` waits indefinitely (no timeout event) — correct
        when in-flight pipeline work guarantees a future arrival.
        """
        if self._available:
            return True
        kernel = self._net.kernel
        fut = kernel.future(f"arrival@{self.rank}")
        fut.detail = f"wait_for_arrival at rank {self.rank}"
        self._arrival_watchers.append(fut)

        if max_wait is not None:

            def timeout() -> None:
                if not fut.resolved:
                    fut.resolve(False)

            kernel.call_after(max_wait, timeout)
        result = yield fut
        return bool(result)

    # -- internals -----------------------------------------------------------

    def _peek(self, source: int, tag) -> Optional[Message]:
        for msg in self._available:
            if (source in (ANY_SOURCE, msg.src)) and _tag_matches(tag, msg.tag):
                return msg
        return None

    def _take(self, source: int, tag) -> Optional[Message]:
        for i, msg in enumerate(self._available):
            if (source in (ANY_SOURCE, msg.src)) and _tag_matches(tag, msg.tag):
                del self._available[i]
                self._n_avail[msg.tag] -= 1
                trace = self._net.trace
                if trace is not None:
                    trace.append((self.rank, msg.src, msg.tag, msg.seq))
                return msg
        return None

    def _deliver(self, msg: Message) -> None:
        """Called by the network at arrival time: enforce ordering, match."""
        key = (msg.src, msg.tag)
        expected = self._expected.get(key, 0)
        reliable = self._net._reliable
        if msg.seq != expected:
            if msg.seq < expected:
                # Stale duplicate: a retransmit raced its original (or a
                # restarted endpoint already advanced past it).  Drop it and
                # re-ack the watermark so the sender stops retransmitting.
                if reliable is not None:
                    reliable.on_accept(msg.src, self.rank, msg.tag, expected)
                return
            # Early arrival (eager lane overtook bulk, or a predecessor was
            # lost): stash until in order.  ``setdefault`` keeps the first
            # copy if a duplicate of a stashed seq arrives.
            self._stash.setdefault(key, {}).setdefault(msg.seq, msg)
            return
        self._make_available(msg)
        # Drain any stashed successors that are now in order.
        stash = self._stash.get(key)
        while stash:
            nxt = self._expected[key]
            msg2 = stash.pop(nxt, None)
            if msg2 is None:
                break
            self._make_available(msg2)
        if reliable is not None:
            reliable.on_accept(msg.src, self.rank, msg.tag, self._expected[key])

    def _deliver_batch(self, msgs: List[Message]) -> None:
        """Accept a same-instant, same-link delivery batch in transmit order.

        Per-message semantics (ordering, stash, stale-drop, per-message
        ``on_accept`` re-acks) are exactly those of :meth:`_deliver` — the
        batch entry exists so a coalesced link drain hands the whole run
        over without allocating one closure per message, and so at most one
        parked-receiver resume is scheduled for the run (messages after the
        first land in ``_available`` and are swept by ``recv_ready``).
        """
        deliver = self._deliver
        for msg in msgs:
            deliver(msg)

    def reset_after_crash(self) -> None:
        """Forget all communication state after the owning rank crashes.

        Pending receives, stashed arrivals, and undelivered available
        messages die with the process.  The expected sequence numbers jump
        forward to the *sender-side* counters, so every pre-crash in-flight
        message (including retransmits of lost ones) arrives stale, is
        dropped, and is cumulatively re-acked — the sender's retransmit
        queue self-cleans.  Messages sent after the reset are delivered to
        the restarted process in order, as usual.
        """
        self._available.clear()
        self._stash.clear()
        self._pending.clear()
        self._arrival_watchers.clear()
        self._n_avail.clear()
        net = self._net
        for (src, dst, tag), seq in net._seq.items():
            if dst == self.rank:
                self._expected[(src, tag)] = seq

    def _make_available(self, msg: Message) -> None:
        net = self._net
        key = (msg.src, msg.tag)
        self._expected[key] = msg.seq + 1
        msg.delivered_at = net.kernel.now
        net.n_delivered += 1
        # Hand directly to the oldest matching parked request, if any.
        for i, req in enumerate(self._pending):
            if req.matches(msg):
                del self._pending[i]
                if not req.consume:
                    self._available.append(msg)
                    self._n_avail[msg.tag] = self._n_avail.get(msg.tag, 0) + 1
                elif net.trace is not None:
                    net.trace.append((self.rank, msg.src, msg.tag, msg.seq))
                req.future.resolve(msg)
                self._notify_watchers()
                return
        self._available.append(msg)
        self._n_avail[msg.tag] = self._n_avail.get(msg.tag, 0) + 1
        self._notify_watchers()

    def _notify_watchers(self) -> None:
        watchers, self._arrival_watchers = self._arrival_watchers, []
        for fut in watchers:
            if not fut.resolved:
                fut.resolve(True)


class Network:
    """All endpoints plus the cluster links; one per simulation."""

    def __init__(self, kernel: SimKernel, cluster: Cluster) -> None:
        self.kernel = kernel
        self.cluster = cluster.bind(kernel)
        self.size = cluster.size
        self.endpoints = [Endpoint(self, r) for r in range(self.size)]
        #: Sender-side sequence counters per (src, dst, tag).
        self._seq: Dict[Tuple[int, int, int], int] = {}
        #: Optional reliability layer (ack + retransmit watchdogs).  Stays
        #: ``None`` unless a fault plan installs one, so the no-fault hot
        #: path pays a single attribute check per send/delivery.
        self._reliable: Optional[Any] = None
        #: Aggregate statistics.
        self.n_sent = 0
        self.bytes_sent = 0.0
        #: Messages made available to receivers in order (stale duplicates
        #: and still-stashed arrivals excluded).  The serving benchmark
        #: divides the kernel's resume counter by this to gate the
        #: resumes-per-delivered-message ratio.
        self.n_delivered = 0
        #: Batched inbox hand-off: when True (default), link drains hand
        #: same-instant runs to ``Endpoint._deliver_batch`` as
        #: ``(endpoint, msg)`` entries; when False, every message carries a
        #: per-message delivery closure (the ablation baseline).  Both modes
        #: run the identical per-message acceptance logic.
        self.batched_inbox = True
        #: Optional consumption-order trace: when set to a list, every
        #: message an application-level receive consumes appends
        #: ``(rank, src, tag, seq)``.  Used by the batched-inbox
        #: equivalence suite to prove on/off consumption-order identity.
        self.trace: Optional[List[Tuple[int, int, int, int]]] = None

    def endpoint(self, rank: int) -> Endpoint:
        return self.endpoints[rank]

    def _transmit(
        self, src: int, dst: int, tag: int, payload: Any, nbytes: float, eager: bool
    ) -> Message:
        if not 0 <= dst < self.size:
            raise ValueError(f"invalid destination rank {dst}")
        key = (src, dst, tag)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        msg = Message(
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            seq=seq,
            sent_at=self.kernel.now,
        )
        self.n_sent += 1
        self.bytes_sent += nbytes
        link = self.cluster.link(src, dst)
        if self.batched_inbox:
            link.transmit(nbytes, (self.endpoints[dst], msg), eager_hint=eager)
        else:
            link.transmit(
                nbytes, lambda: self.endpoints[dst]._deliver(msg), eager_hint=eager
            )
        if self._reliable is not None:
            self._reliable.on_send(msg, nbytes, eager)
        return msg
