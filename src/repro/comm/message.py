"""Message records and the tag space.

Tags mirror the transaction types of the reference implementation: a
transaction-start tag plus one tag per transaction type, so that all sends
within a transaction share the type's tag and inherit MPI's non-overtaking
guarantee (paper Section IV-A2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

#: Wildcards accepted by receive and probe operations.
ANY_SOURCE = -1
ANY_TAG = -1


class Tag(enum.IntEnum):
    """MPI tag space used by all engines."""

    #: Announces a transaction; payload is the TransactionType.
    START = 1
    #: Decode transaction traffic: run metadata, then activation tensors.
    DECODE = 2
    #: Pipelined KV-cache operation commands.
    CACHE_OP = 3
    #: Early-inference-cancellation signals (back-propagated).
    CANCEL = 4
    #: Final logits returned to the head node.
    LOGITS = 5
    #: Engine control (shutdown at end of generation).
    CONTROL = 6
    #: Fused multi-run window forwarded between pipeline workers: one
    #: transaction carrying several runs' metas/activations plus any
    #: cache-op batches interleaved between them, in dispatch order.
    FUSED = 7


@dataclass
class Message:
    """A delivered point-to-point message.

    Attributes:
        src: sender rank.
        dst: receiver rank.
        tag: the :class:`Tag` value it was sent with.
        payload: arbitrary Python object (the simulation does not serialize;
            ``nbytes`` carries the modeled wire size).
        nbytes: modeled serialized size in bytes, used for link timing.
        seq: per-(src, dst, tag) sequence number assigned at send time;
            enforces non-overtaking delivery.
        sent_at: simulated send timestamp.
        delivered_at: simulated arrival timestamp (set by the network).
    """

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: float
    seq: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = Tag(self.tag).name if self.tag in Tag._value2member_map_ else self.tag
        return (
            f"Message({self.src}->{self.dst} {name} seq={self.seq}"
            f" nbytes={self.nbytes:.0f})"
        )
