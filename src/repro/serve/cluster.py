"""Multi-replica serving: K independent pipelines behind a router.

One PipeInfer pipeline saturates around a fixed token rate; serving more
traffic means running several pipelines side by side and deciding, per
request, which one gets it.  This module provides that layer:

- :class:`Replica` — one complete serving pipeline (its own
  :class:`~repro.cluster.kernel.SimKernel`, network, engine, backend,
  KV pool, prefix cache, and fault plan) with a uniform
  ``admit`` / ``advance_to`` / ``drain`` / ``report`` surface.
  ``run_serving`` is a thin K=1 wrapper over it.
- :class:`Router` — deterministic request→replica assignment with
  pluggable policies (:class:`RoutingPolicy`), an optional session
  overlay that pins every turn of a conversation to one replica, a
  queue-depth backpressure spill, and tail-stealing migration.
- :class:`EngineCluster` — instantiates K replicas, routes a
  :class:`~repro.serve.scheduler.Workload`'s FCFS stream across them,
  and merges the results into a :class:`~repro.metrics.ClusterReport`.

Replica kernels are independent simulations sharing one *absolute*
timeline.  Static policies (random, round-robin, prompt-hash — with no
queue cap) never consult live replica state, so the cluster partitions
the stream up front and runs each replica to completion on its own; the
K=1 degenerate case is exactly the old single-pipeline ``run_serving``
path, byte for byte.  Dynamic policies (least-loaded, prefix-affinity,
any queue cap, migration) need live queue depths and radix trees at
each arrival, so the cluster runs replicas in lockstep: every kernel is
advanced to the arrival instant, the router inspects the replicas, and
the request is pushed into the winner's :class:`ReplicaFeed`.
Everything the router consults is deterministic, so routed placements —
and therefore generated tokens — are reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.topology import Cluster
from repro.comm.mpi_sim import Network
from repro.engines.backend import Backend
from repro.engines.base import EngineConfig
from repro.metrics.collectors import MetricsCollector, RunStats
from repro.metrics.report import ClusterReport, ServingReport
from repro.serve.scheduler import (
    ReplicaFeed,
    Request,
    RequestScheduler,
    Workload,
)
from repro.util.rng import hash_tokens, unit_float

#: Domain-separation salts for the router's hash draws (arbitrary, fixed).
_RANDOM_SALT = 211
_PROMPT_SALT = 223


class RoutingPolicy(str, Enum):
    """How the router picks a replica for each request.

    ``RANDOM``, ``ROUND_ROBIN``, and ``PROMPT_HASH`` are *static*: the
    choice depends only on the request and the seed.  ``LEAST_LOADED``
    and ``PREFIX_AFFINITY`` are *dynamic*: they consult live replica
    state (queue depths, radix trees) at the arrival instant.
    """

    RANDOM = "random"
    ROUND_ROBIN = "round_robin"
    PROMPT_HASH = "prompt_hash"
    LEAST_LOADED = "least_loaded"
    PREFIX_AFFINITY = "prefix_affinity"


#: Policies that consult live replica state and force the lockstep path.
_DYNAMIC_POLICIES = frozenset(
    {RoutingPolicy.LEAST_LOADED, RoutingPolicy.PREFIX_AFFINITY}
)


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster shape and routing knobs (validated on construction).

    Attributes:
        n_replicas: number of independent serving pipelines.
        routing: request→replica policy; accepts a
            :class:`RoutingPolicy` or its string value.
        affinity: ``"session"`` pins every turn of a tagged session to
            the replica its first turn landed on (warm radix tree);
            ``"none"`` routes each request independently.
        queue_cap: per-replica admission backpressure — when the
            policy's first choice already holds this many requests
            (queued or active), the request spills to the least-loaded
            replica instead.  Requests are never dropped: if every
            replica is at the cap, the least-loaded one still takes it.
            None disables backpressure.
        migration: steal queued (never admitted) requests from a
            replica whose waiting queue exceeds ``queue_cap`` and hand
            them to the least-loaded replica.  Requires ``queue_cap``.
        seed: hash seed for the deterministic routing draws.
        deadline_service_est: rough per-queued-request service-time
            estimate (seconds) for deadline-aware spill.  When set, a
            backpressure spill of a request carrying a ``ttft_slo``
            prefers replicas whose queue depth times this estimate still
            fits the deadline, instead of plain least-loaded.  None
            (default) keeps the historical spill byte-identical.
    """

    n_replicas: int = 1
    routing: Union[RoutingPolicy, str] = RoutingPolicy.LEAST_LOADED
    affinity: str = "session"
    queue_cap: Optional[int] = None
    migration: bool = False
    seed: int = 0
    deadline_service_est: Optional[float] = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "routing", RoutingPolicy(self.routing))
        except ValueError:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; choose from "
                f"{[p.value for p in RoutingPolicy]}"
            ) from None
        if self.n_replicas < 1:
            raise ValueError(
                f"n_replicas must be positive, got {self.n_replicas}"
            )
        if self.affinity not in ("none", "session"):
            raise ValueError(
                f"affinity must be 'none' or 'session', got {self.affinity!r}"
            )
        if self.queue_cap is not None and self.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be positive, got {self.queue_cap}"
            )
        if self.migration and self.queue_cap is None:
            raise ValueError(
                "migration needs queue_cap: the cap is the depth "
                "threshold that triggers stealing"
            )
        if self.deadline_service_est is not None and self.deadline_service_est <= 0:
            raise ValueError(
                f"deadline_service_est must be positive, got "
                f"{self.deadline_service_est}"
            )

    @property
    def dynamic(self) -> bool:
        """Whether routing must observe live replica state (lockstep)."""
        return (
            self.routing in _DYNAMIC_POLICIES
            or self.queue_cap is not None
            or self.migration
        )


class Replica:
    """One complete serving pipeline with a uniform cluster surface.

    Owns a fresh :class:`SimKernel`, :class:`Network` (binding its own
    :class:`Cluster`), metrics collector, optional fault injector, and
    the engine itself — construction order matches the historical
    ``run_serving`` body exactly, so a single replica fed the whole
    workload reproduces it byte for byte.
    """

    def __init__(
        self,
        replica_id: int,
        engine_factory,
        backend: Backend,
        cluster: Cluster,
        config: Optional[EngineConfig] = None,
        fault_plan=None,
        trace: Optional[list] = None,
    ) -> None:
        self.replica_id = replica_id
        self.config = config or EngineConfig()
        self.cluster = cluster
        self.backend = backend
        self.kernel = SimKernel()
        self.network = Network(self.kernel, cluster)
        if trace is not None:
            self.network.trace = trace
        self.metrics = MetricsCollector()
        self.injector = None
        if fault_plan is not None and not fault_plan.is_empty():
            from repro.faults import FaultInjector  # cycle avoidance

            self.injector = FaultInjector(fault_plan)
            self.injector.install(self.kernel, self.network, self.metrics)
        self.engine = engine_factory(
            backend, self.network, self.config, self.metrics
        )
        if self.injector is not None:
            self.engine.injector = self.injector
        self.scheduler: Optional[RequestScheduler] = None
        self._procs: list = []

    def start(self, scheduler: RequestScheduler) -> None:
        """Spawn the serving head + workers against ``scheduler``."""
        if self.scheduler is not None:
            raise RuntimeError(f"replica {self.replica_id} already started")
        self.scheduler = scheduler
        self._procs = self.engine.spawn_serving(self.kernel, scheduler)
        if self.injector is not None:
            self.injector.attach_engine(self.engine)

    # -- lockstep surface --------------------------------------------------

    @property
    def feed(self) -> ReplicaFeed:
        if not isinstance(self.scheduler, ReplicaFeed):
            raise TypeError(
                f"replica {self.replica_id} runs a static scheduler"
            )
        return self.scheduler

    def admit(self, req: Request, migrated: bool = False) -> None:
        """Route ``req`` here: enqueue it and wake a parked head."""
        self.feed.push(req, migrated=migrated)
        # Heads idling on an empty open stream park on the endpoint's
        # arrival watchers (the same futures message delivery resolves);
        # resolve them so the head re-checks the queue.
        self.engine.ep()._notify_watchers()

    def advance_to(self, t: float) -> None:
        """Run this replica's simulation up to absolute time ``t``."""
        self.kernel.run(until=t)

    def drain(self) -> None:
        """Close an open feed and run the pipeline to completion."""
        if isinstance(self.scheduler, ReplicaFeed) and not self.scheduler.closed:
            self.scheduler.close()
            self.engine.ep()._notify_watchers()
        run_to_completion(self.kernel, self._procs)

    # -- router load/affinity signals --------------------------------------

    @property
    def depth(self) -> int:
        """Requests in the system (queued or active, not completed)."""
        return self.feed.depth

    @property
    def n_waiting(self) -> int:
        """Requests routed here but not yet admitted."""
        return self.feed.n_waiting

    def prefix_match_tokens(self, prompt: Sequence[int]) -> int:
        """Longest warm radix-tree prefix of ``prompt`` on this replica.

        0 when the engine has no prefix cache (baseline heads, or
        ``prefix_cache=False``).  Pure probe — no cache state changes.
        """
        cache = getattr(self.engine, "prefix_cache", None)
        if cache is None:
            return 0
        return cache.match(list(prompt)).length

    # -- results -----------------------------------------------------------

    def report(self) -> Optional[ServingReport]:
        """This replica's own serving report (None if it served nothing)."""
        requests = self.engine.request_reports
        if not requests:
            return None
        report = ServingReport.from_requests(
            self.engine.name,
            self.cluster.size,
            requests,
            extra_stats=self.metrics.stats,
        )
        # Busy fractions over the serving makespan (head + workers).
        report.utilization = self.metrics.utilization(total_time=report.makespan)
        # Event-core efficiency: process resumes executed vs messages made
        # available to receivers — the batched-inbox hand-off drives this
        # ratio toward one resume per delivery event (< 1 message-wise).
        report.n_resumes = self.kernel.n_resumes
        report.n_delivered = self.network.n_delivered
        report.fusion_width = self.metrics.fusion_width_hist()
        report.draft_batch_width = dict(self.metrics.draft_batch_width)
        # Prefix-cache lifecycle counters (empty dict when the cache is off
        # or the head is a baseline without one).
        report.prefix_cache_stats = dict(
            getattr(self.engine, "prefix_cache_stats", {})
        )
        return report


class _ColdReplica:
    """Stand-in the static routing path hands the router: a replica that
    is never loaded and never warm, so static policies (which must not
    consult state anyway) route identically whether replicas exist yet."""

    depth = 0
    n_waiting = 0

    @staticmethod
    def prefix_match_tokens(prompt) -> int:
        return 0


class Router:
    """Deterministic request→replica assignment.

    All randomness is hash-derived from ``(seed, req_id)`` or the prompt
    (SplitMix64 — see :mod:`repro.util.rng`), never from stateful RNG,
    so a fixed seed yields the same placements on every run.  Load ties
    break toward the lowest replica id.
    """

    def __init__(self, cfg: ClusterConfig) -> None:
        self.cfg = cfg
        self._rr = 0
        #: session id -> replica its first turn landed on.
        self.session_home: Dict[int, int] = {}
        #: req_id -> final replica choice.
        self.assignments: Dict[int, int] = {}
        self.spills = 0
        self.migrations = 0
        self.session_affinity_hits = 0

    def route(self, req: Request, replicas: Sequence) -> int:
        """Pick the replica for ``req``; records counters en route."""
        pinned = None
        if self.cfg.affinity == "session" and req.session is not None:
            pinned = self.session_home.get(req.session)
        choice = pinned if pinned is not None else self._policy_choice(req, replicas)
        final = self._backpressure(req, choice, replicas)
        if final != choice:
            self.spills += 1
        elif pinned is not None:
            self.session_affinity_hits += 1
        if (
            self.cfg.affinity == "session"
            and req.session is not None
            and req.session not in self.session_home
        ):
            # Pin where the first turn actually landed (post-spill) —
            # that is where its KV prefix will be donated.
            self.session_home[req.session] = final
        self.assignments[req.req_id] = final
        return final

    def _policy_choice(self, req: Request, replicas: Sequence) -> int:
        k = len(replicas)
        policy = self.cfg.routing
        if policy is RoutingPolicy.RANDOM:
            draw = unit_float(
                hash_tokens(self.cfg.seed, (req.req_id,), salt=_RANDOM_SALT)
            )
            return min(int(draw * k), k - 1)
        if policy is RoutingPolicy.ROUND_ROBIN:
            choice = self._rr % k
            self._rr += 1
            return choice
        if policy is RoutingPolicy.PROMPT_HASH:
            return hash_tokens(self.cfg.seed, req.job.prompt, salt=_PROMPT_SALT) % k
        if policy is RoutingPolicy.LEAST_LOADED:
            return min(range(k), key=lambda i: (replicas[i].depth, i))
        # PREFIX_AFFINITY: deepest warm radix match wins; ties fall back
        # to the session home, then least-loaded, then lowest id.
        matches = [
            replicas[i].prefix_match_tokens(req.job.prompt) for i in range(k)
        ]
        best = max(matches)
        tied = [i for i in range(k) if matches[i] == best]
        if len(tied) > 1 and req.session is not None:
            home = self.session_home.get(req.session)
            if home in tied:
                return home
        return min(tied, key=lambda i: (replicas[i].depth, i))

    def _backpressure(self, req: Request, choice: int, replicas: Sequence) -> int:
        cap = self.cfg.queue_cap
        if cap is None or replicas[choice].depth < cap:
            return choice
        est = self.cfg.deadline_service_est
        if est is not None and req.ttft_slo is not None:
            # Deadline-aware spill: prefer the least-loaded replica whose
            # queue, at ~est seconds per queued request, still fits the
            # TTFT deadline.  Falls through to plain least-loaded when no
            # replica can make it (never drop).
            fits = [
                i
                for i in range(len(replicas))
                if replicas[i].depth * est <= req.ttft_slo
            ]
            if fits:
                return min(fits, key=lambda i: (replicas[i].depth, i))
        # Spill to the least-loaded replica; never drop — when every
        # replica is at the cap the least-loaded one still takes it.
        return min(range(len(replicas)), key=lambda i: (replicas[i].depth, i))

    def rebalance(self, replicas: Sequence[Replica]) -> None:
        """Steal queued tail requests from over-deep replicas.

        Runs at each arrival sync point (lockstep path only).  Moves the
        most recently routed, not-yet-admitted request from the replica
        whose *waiting* queue exceeds the cap to the least-loaded
        replica, while the latter has headroom.  Deterministic: deepest
        donor first, ties toward the lowest id; each move strictly
        shrinks the donor's queue, so the loop terminates.
        """
        cap = self.cfg.queue_cap
        assert cap is not None  # enforced by ClusterConfig
        while True:
            donor = max(
                (r for r in replicas if r.n_waiting > cap),
                key=lambda r: (r.n_waiting, -r.replica_id),
                default=None,
            )
            if donor is None:
                return
            taker = min(
                replicas, key=lambda r: (r.depth, r.replica_id)
            )
            if taker is donor or taker.depth >= cap:
                return
            req = donor.feed.steal_tail()
            if req is None:
                return
            taker.admit(req, migrated=True)
            self.migrations += 1
            self.assignments[req.req_id] = taker.replica_id
            if (
                self.cfg.affinity == "session"
                and req.session is not None
                and self.session_home.get(req.session) == donor.replica_id
            ):
                # The session's warm state follows its requests.
                self.session_home[req.session] = taker.replica_id


def _materialize(spec, k: int, what: str) -> list:
    """Resolve a factory-or-sequence spec into K distinct instances.

    Replicas are independent simulations: a shared backend or cluster
    instance would leak KV and link state across them, so sequences are
    checked for object distinctness.
    """
    if callable(spec):
        items = [spec() for _ in range(k)]
    else:
        items = list(spec)
    if len(items) != k:
        raise ValueError(
            f"need {k} {what} (one per replica), got {len(items)}"
        )
    if len({id(item) for item in items}) != k:
        raise ValueError(
            f"replicas must not share {what}: pass a factory or {k} "
            f"distinct instances"
        )
    return items


class EngineCluster:
    """K independent serving pipelines behind a :class:`Router`.

    Args:
        engine_factory: engine class (or callable) taking
            (backend, network, config, metrics) — same contract as
            ``run_serving``.
        backends: a zero-argument factory called once per replica, or a
            sequence of K distinct :class:`Backend` instances.
        clusters: likewise for the testbed :class:`Cluster` (each
            replica binds its own copy to its own kernel).
        cluster_config: cluster shape + routing knobs.
        config: per-replica :class:`EngineConfig` (shared value; the
            dataclass is frozen so sharing is safe).
        fault_plans: optional sequence of K fault plans (None entries
            leave that replica fault-free).
    """

    def __init__(
        self,
        engine_factory,
        backends: Union[Callable[[], Backend], Sequence[Backend]],
        clusters: Union[Callable[[], Cluster], Sequence[Cluster]],
        cluster_config: Optional[ClusterConfig] = None,
        config: Optional[EngineConfig] = None,
        fault_plans: Optional[Sequence] = None,
    ) -> None:
        self.cluster_config = cluster_config or ClusterConfig()
        self.config = config or EngineConfig()
        k = self.cluster_config.n_replicas
        if (
            self.cluster_config.routing is RoutingPolicy.PREFIX_AFFINITY
            and not self.config.prefix_cache
        ):
            raise ValueError(
                "prefix_affinity routing needs prefix_cache=True: with "
                "the cache off no replica ever has a warm prefix to win"
            )
        self._engine_factory = engine_factory
        self._backends = _materialize(backends, k, "backends")
        self._clusters = _materialize(clusters, k, "clusters")
        if fault_plans is None:
            self._fault_plans: List = [None] * k
        else:
            if len(fault_plans) != k:
                raise ValueError(
                    f"need {k} fault plans (one per replica, None for "
                    f"fault-free), got {len(fault_plans)}"
                )
            self._fault_plans = list(fault_plans)
        self.router = Router(self.cluster_config)
        self.replicas: List[Optional[Replica]] = [None] * k

    def _new_replica(self, i: int) -> Replica:
        rep = Replica(
            i,
            self._engine_factory,
            self._backends[i],
            self._clusters[i],
            self.config,
            fault_plan=self._fault_plans[i],
        )
        self.replicas[i] = rep
        return rep

    def serve(self, workload: Workload) -> ClusterReport:
        """Route the workload across the replicas and serve it all."""
        requests = workload.requests()
        if self.cluster_config.dynamic and self.cluster_config.n_replicas > 1:
            self._serve_lockstep(workload, requests)
        else:
            self._serve_static(workload, requests)
        return self._build_report()

    # -- static path: partition up front, run replicas independently -------

    def _serve_static(
        self, workload: Workload, requests: List[Request]
    ) -> None:
        k = self.cluster_config.n_replicas
        cold = [_ColdReplica()] * k
        buckets: List[List[Request]] = [[] for _ in range(k)]
        for req in requests:
            buckets[self.router.route(req, cold)].append(req)
        for i, bucket in enumerate(buckets):
            if not bucket:
                continue
            rep = self._new_replica(i)
            rep.start(
                RequestScheduler.from_requests(
                    bucket, max_active=workload.max_active
                )
            )
            rep.drain()

    # -- incremental (push-mode) surface ------------------------------------
    # The lockstep serve path and the streaming front-end
    # (:class:`repro.api.session.ServingSession`) share these four calls:
    # open K fed replicas, submit requests one at a time (the cluster
    # co-simulates to each arrival and routes on live state), then close
    # the feeds and drain.  ``serve()`` composed of them is byte-identical
    # to the historical lockstep body.

    def open(self, max_active: Optional[int] = None) -> List[Replica]:
        """Create all K replicas in push mode (open :class:`ReplicaFeed`)."""
        if any(rep is not None for rep in self.replicas):
            raise RuntimeError("cluster already opened")
        k = self.cluster_config.n_replicas
        replicas = [self._new_replica(i) for i in range(k)]
        for rep in replicas:
            rep.start(ReplicaFeed(max_active=max_active))
        return replicas

    def _live(self) -> List[Replica]:
        live = [rep for rep in self.replicas if rep is not None]
        if not live:
            raise RuntimeError("cluster not opened")
        return live

    def submit(self, req: Request) -> int:
        """Advance to ``req.arrival``, route on live state, enqueue.

        Returns the chosen replica index.  Requests must be submitted in
        arrival order (the feeds enforce it).
        """
        replicas = self._live()
        # Advance every kernel to the arrival instant so queue depths
        # and radix trees reflect the true state at t.
        for rep in replicas:
            rep.advance_to(req.arrival)
        if self.cluster_config.migration:
            self.router.rebalance(replicas)
        target = self.router.route(req, replicas)
        replicas[target].admit(req)
        return target

    def advance_to(self, t: float) -> None:
        """Run every replica's simulation up to absolute time ``t``."""
        for rep in self._live():
            rep.advance_to(t)

    def close_and_drain(self) -> None:
        """Close every feed and run all replicas to completion."""
        for rep in self._live():
            rep.drain()

    def report(self) -> ClusterReport:
        """Aggregate the (drained) replicas into a :class:`ClusterReport`."""
        return self._build_report()

    # -- lockstep path: co-simulate, route on live state --------------------

    def _serve_lockstep(
        self, workload: Workload, requests: List[Request]
    ) -> None:
        self.open(max_active=workload.max_active)
        for req in requests:
            self.submit(req)
        self.close_and_drain()

    # -- aggregation ---------------------------------------------------------

    def _build_report(self) -> ClusterReport:
        per_replica = [
            rep.report() if rep is not None else None for rep in self.replicas
        ]
        live = [rep for rep in self.replicas if rep is not None]
        all_requests = [
            r for rep in live for r in rep.engine.request_reports
        ]
        if not all_requests:
            raise ValueError("cluster served no requests")
        extra = RunStats.merged([rep.metrics.stats for rep in live])
        merged = ServingReport.from_requests(
            live[0].engine.name,
            sum(rep.cluster.size for rep in live),
            all_requests,
            extra_stats=extra,
        )
        # Node-weighted busy fraction over the cluster-wide makespan.
        total_nodes = sum(rep.cluster.size for rep in live)
        merged.utilization = (
            sum(
                rep.metrics.utilization(total_time=merged.makespan)
                * rep.cluster.size
                for rep in live
            )
            / total_nodes
            if total_nodes
            else 0.0
        )
        merged.n_resumes = sum(rep.kernel.n_resumes for rep in live)
        merged.n_delivered = sum(rep.network.n_delivered for rep in live)
        for rep in live:
            for width, count in rep.metrics.fusion_width_hist().items():
                merged.fusion_width[width] = (
                    merged.fusion_width.get(width, 0) + count
                )
            for width, count in rep.metrics.draft_batch_width.items():
                merged.draft_batch_width[width] = (
                    merged.draft_batch_width.get(width, 0) + count
                )
            for key, val in getattr(rep.engine, "prefix_cache_stats", {}).items():
                merged.prefix_cache_stats[key] = (
                    merged.prefix_cache_stats.get(key, 0) + val
                )
        routed = [0] * self.cluster_config.n_replicas
        for rid in self.router.assignments.values():
            routed[rid] += 1
        return ClusterReport(
            merged=merged,
            per_replica=per_replica,
            routing=self.cluster_config.routing.value,
            affinity=self.cluster_config.affinity,
            n_replicas=self.cluster_config.n_replicas,
            assignments=dict(self.router.assignments),
            routed=routed,
            spills=self.router.spills,
            migrations=self.router.migrations,
            session_affinity_hits=self.router.session_affinity_hits,
        )


def run_cluster(
    engine_factory,
    backends: Union[Callable[[], Backend], Sequence[Backend]],
    clusters: Union[Callable[[], Cluster], Sequence[Cluster]],
    workload: Workload,
    cluster_config: Optional[ClusterConfig] = None,
    config: Optional[EngineConfig] = None,
    fault_plans: Optional[Sequence] = None,
) -> ClusterReport:
    """Build an :class:`EngineCluster`, serve ``workload``, return the report."""
    cluster = EngineCluster(
        engine_factory,
        backends,
        clusters,
        cluster_config=cluster_config,
        config=config,
        fault_plans=fault_plans,
    )
    return cluster.serve(workload)
