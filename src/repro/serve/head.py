"""Serving-head processes: request streams through one long-lived pipeline.

Two head loops implement serving:

- :func:`pipeinfer_serving_head` — the PipeInfer head generalized from
  one job to many: it multiplexes canonical and speculative runs of every
  *active* request through the pipeline, filling bubbles left by one
  request's cancelled or exhausted speculation with another request's
  work (the composition PipeSpec observes falls out of asynchronous
  speculation naturally).  Per-request state lives in
  :class:`~repro.core.run_state.RequestContext`; KV sequence slots are
  partitioned across requests by a shared
  :class:`~repro.util.fifo.SequencePool` — each request owns a canonical
  partition for its lifetime and returns it (plus any speculative
  partitions) on completion.  With ``EngineConfig.prefix_cache`` on, the
  pool additionally backs a cross-request prefix cache
  (:mod:`repro.cache.prefix`): admissions materialize cached prompt
  prefixes by pipelined ``seq_cp``/``seq_broadcast`` transactions and
  prefill only the unmatched tail; completions donate their verified
  prompt KV back instead of releasing it.

- :func:`sequential_serving_head` — FCFS, one request at a time, for the
  synchronous baselines (iterative, speculative, single-node) whose head
  blocks on the pipeline.  The pipeline stays up between requests; KV
  state is cleared with a pipelined ``SEQ_RM`` after each one.

Both record a :class:`~repro.metrics.report.RequestReport` per request and
leave the list on ``engine.request_reports``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List

from repro.cluster.kernel import Delay
from repro.comm.message import Tag
from repro.comm.payloads import CacheOp, CacheOpKind
from repro.core.head import (
    canonical_entry,
    dispatch_burst,
    dispatch_prefill,
    dispatch_reprefill,
    dispatch_spec_burst,
    new_request_context,
    cancel_run,
    process_prefill_logits,
    send_cancels,
    spec_allowed_serving,
    start_draft_round,
    verify_run_logits,
)
from repro.cache.prefix import PrefixCacheManager, PrefixMatch
from repro.core.multibuffer import SEQ_END, CellBudget, acquire_canonical
from repro.core.run_state import RequestContext, RunKind
from repro.engines.backend import apply_cache_op
from repro.metrics.collectors import MetricsCollector, RunStats
from repro.metrics.report import RequestReport
from repro.serve.scheduler import (
    RequestScheduler,
    post_match_cell_demand,
    spec_dispatch_headroom,
    unmaterialized_demand,
)
from repro.util.fifo import SequencePool


def _report_for(ctx: RequestContext) -> RequestReport:
    """Freeze a completed context into its report."""
    m = ctx.metrics
    finish = m.finish_time if m.finish_time is not None else ctx.finished_at
    return RequestReport(
        req_id=ctx.req_id,
        tokens=ctx.output_tokens(),
        arrival=ctx.arrival,
        admitted_at=ctx.admitted_at if ctx.admitted_at is not None else ctx.arrival,
        prefill_end=m.prefill_end if m.prefill_end is not None else ctx.arrival,
        finish_time=finish if finish is not None else ctx.arrival,
        itl_samples=m.itl_samples(),
        stats=m.stats,
        prompt_tokens=ctx.n_prompt,
        cached_tokens=ctx.cached_tokens,
        priority=ctx.priority,
        ttft_slo=ctx.ttft_slo,
        itl_slo=ctx.itl_slo,
        cancelled=ctx.cancelled,
    )


# ---------------------------------------------------------------------------
# PipeInfer: multiplexed continuous speculation across requests.
# ---------------------------------------------------------------------------


def pipeinfer_serving_head(engine, scheduler: RequestScheduler) -> Generator:
    """Head process serving a request stream with asynchronous speculation.

    The single-job loop's four priorities (sample waiting logits, keep the
    tip covered, speculate, idle) generalize per iteration to: admit
    arrived requests, sample the oldest waiting logits (the global
    dispatch FIFO identifies the owning request), dispatch canonical runs
    for every request whose tip is uncovered, then run a *batched draft
    round*: all requests that may speculate draft together (their
    one-token draft decodes evaluate as one cross-request batch) and
    their speculative runs leave as one transaction burst — the draft
    scheduler keeping the pipeline's fusion windows wide in steady state.
    """
    cfg = engine.config
    ep = engine.ep()
    kernel = engine.net.kernel
    last_target = engine.target_ranks()[-1]
    first_target = engine.target_ranks()[0]

    pool = SequencePool(cfg.n_seq_partitions)
    budget = CellBudget(engine.backend.worker_cell_capacity())
    active: Dict[int, RequestContext] = {}
    #: Request ids in decode-dispatch order — MPI non-overtaking returns
    #: logits in exactly this order, so the front names the owner of any
    #: arriving logits message.
    order: Deque[int] = deque()
    #: Round-robin rotation for drafting fairness.
    rotation: Deque[int] = deque()
    reports: List[RequestReport] = []

    cache = (
        PrefixCacheManager(
            pool,
            cfg.prefix_cache_cells,
            cfg.min_match_tokens,
            promote_on_second_hit=cfg.prefix_promote_on_second_hit,
        )
        if cfg.prefix_cache
        else None
    )
    # Exposed so the cluster router's prefix-affinity policy can probe this
    # replica's radix tree (a pure match, no pins) at routing time.
    engine.prefix_cache = cache

    injector = engine.injector
    #: Run ids flushed by crash recovery: their logits (if a surviving
    #: downstream stage still returns them) are discarded on arrival
    #: instead of being matched against the rebuilt dispatch order.
    flushed: set = set()

    def ensure_pool_seq() -> bool:
        """A canonical partition is available, evicting cached prefixes
        if the pool ran dry — retained sequences yield to admission."""
        if pool.available():
            return True
        if cache is None:
            return False
        ok, ops = cache.ops_for_pool_seq()
        if ops:
            engine.send_cache_ops(first_target, ops)
        budget.retained = cache.retained_cells
        return ok

    def fits_with_reclaim(demand: int) -> bool:
        """Admission cell check; LRU-evicts cached prefixes to make room.

        Eviction ``seq_rm`` ops are pipelined *before* the admitted
        request's materialization and prefill transactions, so by the
        time its allocations execute on a worker the freed cells are
        really free — reclaimable means reclaimable, on both policies.
        Under the live policy the freed count is credited against the
        (stale, in-flight) ``n_used`` reading for this sweep only.

        Two guards keep the eviction honest: nothing is evicted when
        even reclaiming *every* evictable cell could not close the gap
        (the pressure comes from active requests, and wiping the tree
        would only forfeit future hits for no room gained); and a
        request that would run alone is admitted after the drain
        regardless — the surfaced-overflow escape hatch an oversized
        single job has always had — even when its own pinned match
        keeps ``budget.retained`` above zero.
        """
        freed = 0

        def ok(slack: int = 0) -> bool:
            if not cfg.admission_live_cells:
                if slack and budget.capacity is not None:
                    return (
                        budget.committed + budget.retained - slack + demand
                        <= budget.capacity
                    )
                return budget.fits(demand)
            pending = unmaterialized_demand(active.values(), cfg)
            return budget.fits_live(
                engine.worker_cells_used() + pending - freed - slack, demand
            )

        fit = ok()
        if fit or cache is None:
            return fit
        if active and not ok(slack=cache.evictable_cells()):
            return False
        while not ok():
            got, ops = cache.evict_lru_leaf()
            if not got:
                break
            freed += got
            budget.retained = cache.retained_cells
            engine.send_cache_ops(first_target, ops)
        return ok() or not active

    def admit_ready() -> None:
        # Bounded caches (functional mode) cannot evict mid-flight, so
        # admission waits for cell room.  The static budget check is O(1):
        # the committed total is maintained on admit/release rather than
        # re-summed over active requests or scanned from cache cells.
        # With the prefix cache on, the cost model charges the *post-match*
        # demand — matched positions are metadata copies, not new cells —
        # and the whole sweep's materializations coalesce per cached node
        # (one seq_broadcast per node shared by several admissions).
        admitted: List = []
        while scheduler.ready(kernel.now) and scheduler.may_admit(len(active)):
            req = scheduler.peek_ready(kernel.now)
            match = cache.match(req.job.prompt) if cache else PrefixMatch()
            if match:
                # Pin the matched path before any eviction this admission
                # itself triggers can touch it.
                cache.acquire(req.req_id, match, kernel.now)
            demand = post_match_cell_demand(req.job, cfg, match.length)
            # Cell demand first, canonical-partition second: the pool
            # check may evict a cached sequence, which must not happen
            # for an admission the cell check is about to reject anyway.
            if not (fits_with_reclaim(demand) and ensure_pool_seq()):
                if match:
                    cache.release(req.req_id)
                break
            scheduler.pop_ready(kernel.now)
            if cache is not None:
                cache.note_admitted(match)
            ctx = new_request_context(
                engine,
                req.job,
                kv=acquire_canonical(pool),
                metrics=MetricsCollector(),
                req_id=req.req_id,
                arrival=req.arrival,
            )
            ctx.admitted_at = kernel.now
            ctx.cached_tokens = match.length
            ctx.metrics.stats.cached_prompt_tokens += match.length
            ctx.priority = req.priority
            ctx.ttft_slo = req.ttft_slo
            ctx.itl_slo = req.itl_slo
            if engine.stream_hub is not None:
                ctx.stream = engine.stream_hub.attach(ctx)
            budget.admit(req.req_id, demand)
            active[ctx.req_id] = ctx
            rotation.append(ctx.req_id)
            admitted.append((ctx, match))
        if not admitted:
            return
        if cache is not None:
            ops = cache.ops_for_materialize(
                [(m, ctx.kv.canonical) for ctx, m in admitted if m]
            )
            if ops:
                engine.send_cache_ops(first_target, ops)
        for ctx, match in admitted:
            dispatch_prefill(engine, ctx, start_pos=match.length)
            order.append(ctx.req_id)

    def mark_done(ctx: RequestContext, cancels=None) -> None:
        """Token budget met: stop sampling, flush in-flight speculation."""
        ctx.done = True
        ctx.metrics.mark_finish(kernel.now)
        if ctx.stream is not None:
            # No-op when the stream was already cancel-closed.
            ctx.stream.finish(kernel.now)
        for rec in ctx.fifo.mark_all_cancelled():
            cancel_run(engine, ctx, rec, invalid=False, cancels=cancels)

    def finalize(ctx: RequestContext) -> None:
        """All in-flight runs drained: release the request's partitions.

        With the prefix cache on, the request first *donates* its
        verified prompt KV: the uncached prompt suffix is copied into a
        retained tree sequence, ordered before the canonical partition's
        release in the same transaction batch, so the cells outlive the
        request and the next matching prompt skips their prefill.

        A cancelled request donates its whole *verified* stream instead
        (minus the newest accepted token, whose cell is not resident —
        see ``ops_for_acceptance``): a retried conversation re-submitting
        prompt + partial output skips all of its prefill.
        """
        ops = []
        if cache is not None:
            donated = ctx.job.prompt
            if ctx.cancelled and len(ctx.accepted) - 1 > len(donated):
                donated = ctx.accepted[:-1]
            ops += cache.ops_for_donate(donated, ctx.kv.canonical, kernel.now)
            cache.release(ctx.req_id)
            budget.retained = cache.retained_cells
        ops += ctx.kv.ops_for_request_release()
        engine.send_cache_ops(first_target, ops)
        ctx.kv.release_canonical()
        engine.backend.release_chain(ctx.chain)
        ctx.finished_at = kernel.now
        budget.release(ctx.req_id)
        del active[ctx.req_id]
        rotation.remove(ctx.req_id)
        reports.append(_report_for(ctx))
        scheduler.on_completed(ctx.req_id, kernel.now)

    def process_cancels() -> None:
        """Drain the engine's disconnect inbox (mid-flight cancellation).

        Active requests flip to ``done`` draining mode: every in-flight
        speculative run gets a cancel signal, sampling stops, and the
        request finalizes (KV release + verified-prefix donation) once
        its FIFO empties — exactly the completion path, so cancellation
        can never strand a partition or park the head.  Queued requests
        are removed before admission and reported with zero tokens.
        Unknown ids are ignored (cluster front-ends broadcast cancels to
        every replica without tracking placement).
        """
        if not engine._cancel_requests:
            return
        rids, engine._cancel_requests = engine._cancel_requests, []
        cancels: List = []
        for rid in rids:
            ctx = active.get(rid)
            if ctx is not None:
                if ctx.done:
                    continue
                ctx.cancelled = True
                if ctx.stream is not None:
                    ctx.stream.cancel(kernel.now)
                mark_done(ctx, cancels)
                if not ctx.fifo:
                    finalize(ctx)
                continue
            req = scheduler.cancel_queued(rid)
            if req is None:
                continue
            if engine.stream_hub is not None:
                stream = engine.stream_hub.get(rid)
                if stream is not None:
                    stream.cancel(kernel.now)
            reports.append(
                RequestReport(
                    req_id=rid,
                    tokens=[],
                    arrival=req.arrival,
                    admitted_at=kernel.now,
                    prefill_end=kernel.now,
                    finish_time=kernel.now,
                    itl_samples=[],
                    stats=RunStats(),
                    prompt_tokens=len(req.job.prompt),
                    priority=req.priority,
                    ttft_slo=req.ttft_slo,
                    itl_slo=req.itl_slo,
                    cancelled=True,
                )
            )
        if cancels:
            send_cancels(engine, cancels)

    def recover_from_restart() -> None:
        """Rebuild pipeline state after a worker crash/restart.

        The restarted worker lost its KV shard and every in-flight message
        addressed to it, so the global logits-arrival FIFO no longer
        predicts what will come back.  Recovery flushes *all* in-flight
        runs (their run ids go to ``flushed`` so surviving stages' logits
        are discarded on arrival), releases their partitions, wipes each
        live request's canonical KV across every stage, and re-prefills the
        verified token stream — warm via the prefix cache when the backend's
        worker KV is metadata-only, cold otherwise.  Greedy decoding makes
        the re-prefilled continuation token-identical to the lost one.
        """
        order.clear()
        warm = cache is not None and engine.backend.kv_is_metadata
        for ctx in list(active.values()):
            mb = ctx.kv
            ops = []
            while ctx.fifo:
                rec = ctx.fifo.pop()
                flushed.add(rec.run_id)
                ops += mb.ops_for_release(rec)
                mb.on_run_complete(rec)
            ctx.n_spec_inflight = 0
            mb.on_chain_reset()
            ctx.chain.reconcile(ctx.accepted)
            for p in [p for p in ctx.drafted if p >= len(ctx.accepted)]:
                del ctx.drafted[p]
            if ctx.done:
                # Budget already met; the flush drained everything.
                if ops:
                    engine.send_cache_ops(first_target, ops)
                finalize(ctx)
                continue
            # Wipe the canonical partition on every stage, then rebuild it
            # from the verified stream (ordering per-link FIFO guarantees
            # the wipe lands after any stale in-flight writes and before
            # the re-prefill executes).
            ops.append(CacheOp(CacheOpKind.SEQ_RM, ctx.kv.canonical, ctx.kv.canonical, 0, SEQ_END))
            start = 0
            if warm:
                match = cache.match(ctx.accepted)
                if match:
                    ops += cache.ops_for_materialize([(match, ctx.kv.canonical)])
                    start = match.length
            engine.send_cache_ops(first_target, ops)
            ctx.prefilled = False
            dispatch_reprefill(engine, ctx, start_pos=start)
            order.append(ctx.req_id)
            ctx.metrics.stats.reprefilled_tokens += len(ctx.accepted) - start

    # The head runs as an event-driven state machine: every wait the
    # historical generator loop expressed as a yield (the cumulative
    # sampling delay, the per-round draft future, the idle arrival watch)
    # is a kernel event chaining back into ``step``, at exactly the same
    # simulated instants.  The head *process* parks once, on the ``done``
    # future, so its contribution to the kernel's resume count is constant
    # rather than per-iteration.
    done = kernel.future("serving-done")

    def arrival_step(max_wait) -> None:
        """Re-enter ``step`` on the next delivery, or after ``max_wait``.

        The watcher may resolve mid-delivery-batch, so the re-entry is
        deferred with an at-now event — the loop resumes only after the
        current delivery event has made its whole batch available, just
        as a parked process resume would.
        """
        fut = kernel.future(f"arrival@{ep.rank}")
        fut.detail = f"wait_for_arrival at rank {ep.rank}"
        fut.set_callback(lambda _v: kernel.call_at(kernel.now, step))
        ep._arrival_watchers.append(fut)
        if max_wait is not None:

            def timeout() -> None:
                if not fut.resolved:
                    fut.resolve(False)

            kernel.call_after(max_wait, timeout)

    def after_draft(ready: List[RequestContext], proposed) -> None:
        dispatches = [
            (ctx, proposed[ctx.req_id])
            for ctx in ready
            if proposed[ctx.req_id]
        ]
        progressed = False
        if dispatches:
            order.extend(dispatch_spec_burst(engine, dispatches))
            progressed = True
        for ctx in ready:
            if not proposed[ctx.req_id]:
                # Draft confidence halted this request's speculation.
                ctx.cutoff.on_failed_idle()
        if progressed or ep.iprobe(last_target, Tag.LOGITS) or engine._cancel_requests:
            # Re-enter the loop when the round dispatched — or when
            # logits landed *while the draft round computed*: their
            # delivery notified the arrival watchers before idle() could
            # park one, so parking now would sleep through input that is
            # already in the mailbox (a deadlock once no further traffic
            # arrives to re-wake the head).
            step()
        else:
            idle()

    def idle() -> None:
        # ---- priority 4: idle ---------------------------------------------
        if active:
            if injector is not None:
                # Health-EWMA decay is observed by polling, so the fault
                # plane keeps the historical idle cadence.
                arrival_step(cfg.idle_poll)
                return
            nxt = scheduler.next_arrival()
            if nxt is not None and nxt > kernel.now:
                # Wake for the next request arrival even if the pipeline
                # stays quiet until then.
                arrival_step(nxt - kernel.now)
            else:
                # Every active request has work in flight (priority 2
                # guarantees tip coverage), so a message is certain to
                # arrive: park for it instead of polling on a timer.
                arrival_step(None)
            return
        nxt = scheduler.next_arrival()
        if nxt is not None and nxt > kernel.now:
            kernel.call_at(nxt, step)
        elif nxt is None and scheduler.stream_open():
            # Push-mode feed (cluster serving) with nothing queued yet:
            # park until the router pushes a request (it notifies this
            # endpoint's arrival watchers) instead of burning idle polls.
            arrival_step(None)
        else:
            kernel.call_after(cfg.idle_poll, step)

    def step() -> None:
        while active or scheduler.has_pending() or scheduler.stream_open():
            if engine._fault_events:
                engine._fault_events.clear()
                recover_from_restart()
            process_cancels()
            admit_ready()

            # ---- priority 1: sample/verify waiting logits -----------------
            # Fused stage windows return several runs' logits back-to-back,
            # and the batched inbox hand-off makes them all available at
            # once: drain the whole batch in one pass, verifying each run
            # with :func:`verify_run_logits` (plain function), then charge
            # one cumulative sampling delay and flush the accumulated cache
            # ops as a single transaction.  Tokens are stamped at the
            # instant the historical per-message loop would have recorded
            # them.
            msgs = ep.recv_ready(last_target, Tag.LOGITS)
            if msgs:
                cum = 0.0
                pending_ops: List = []
                pending_cancels: List = []
                for msg in msgs:
                    payload = msg.payload
                    if flushed and payload.run_id in flushed:
                        # A stage past the crashed worker still returned
                        # this flushed run; its partition was already
                        # released.
                        flushed.discard(payload.run_id)
                        engine.pool.release_logits(payload)
                        continue
                    ctx = active[order.popleft()]
                    if ctx.fifo.peek().kind is RunKind.PREFILL:
                        rec = ctx.fifo.pop()
                        if rec.run_id != payload.run_id:
                            raise RuntimeError(
                                f"FIFO desync: expected run {rec.run_id}, "
                                f"got {payload.run_id}"
                            )
                        ctx.metrics.stats.completed += 1
                        if not ctx.done:
                            # A cancelled (or otherwise done) request's
                            # prefill still drains through the pipeline —
                            # its cells are written and released with the
                            # partition — but nothing is sampled.
                            process_prefill_logits(engine, ctx, payload)
                    else:
                        cum += verify_run_logits(
                            engine, ctx, payload, pending_ops,
                            pending_cancels, time_base=cum,
                        )
                    engine.pool.release_logits(payload)
                    if not ctx.done and ctx.target_reached():
                        mark_done(ctx, pending_cancels)
                    if ctx.done and not ctx.fifo:
                        # finalize() pipelines donate/release ops that must
                        # land after this request's run-release ops: flush
                        # first.
                        if pending_ops:
                            engine.send_cache_ops(first_target, pending_ops)
                            pending_ops = []
                        finalize(ctx)
                if cum:
                    # The op/cancel flush happens *after* the sampling
                    # delay — nothing a verification decided may hit the
                    # wire before its compute time is paid.
                    engine.metrics.add_busy(0, cum)

                    def after_sample(
                        pending_ops=pending_ops,
                        pending_cancels=pending_cancels,
                    ) -> None:
                        if pending_ops:
                            engine.send_cache_ops(first_target, pending_ops)
                        if pending_cancels:
                            send_cancels(engine, pending_cancels)
                        step()

                    kernel.call_after(cum, after_sample)
                    return
                if pending_ops:
                    engine.send_cache_ops(first_target, pending_ops)
                if pending_cancels:
                    send_cancels(engine, pending_cancels)
                continue

            # ---- priority 2: guaranteed forward progress ------------------
            # Every request with an uncovered tip gets its canonical run,
            # all of them coalesced into one burst transaction (dispatch
            # takes no simulated time, so batching them never delays
            # sampling).
            entries = []
            for rid in list(rotation):
                ctx = active[rid]
                if not ctx.prefilled or ctx.done:
                    continue
                if not ctx.fifo.covers_tip(ctx.accepted):
                    rec, states = canonical_entry(engine, ctx)
                    entries.append((ctx, rec, states, []))
            if entries:
                order.extend(dispatch_burst(engine, entries))
                continue

            # ---- priority 3: continuous speculation, batched across -------
            # requests.  The draft scheduler: collect every request whose
            # chain wants a proposal step (rotation order for fairness,
            # capped by the knob and by free KV partitions — each dispatch
            # takes one), run their one-token draft decodes as lockstep
            # batched passes, then send the resulting speculative runs as
            # one transaction burst so the workers' fusion windows see the
            # whole round at once.
            ready: List[RequestContext] = []
            limit = min(cfg.max_draft_batch, pool.n_free)
            if injector is not None and injector.health.degraded(kernel.now):
                # Graceful degradation: a flapping link, straggling stage,
                # or recent crash gates speculation depth to 0 — canonical
                # runs (priority 2) keep every request progressing, and
                # drafting resumes once the health EWMA decays through its
                # low water mark (the stable window).
                limit = 0
            headroom = spec_dispatch_headroom(engine, active.values(), cfg)
            if headroom is not None:
                limit = min(limit, headroom)
            # The depth budget is shared over requests that can actually
            # draft — done-but-draining and un-prefilled requests must not
            # dilute a lone live request below its full historical depth.
            n_draftable = sum(
                1 for c in active.values() if c.prefilled and not c.done
            )
            for rid in list(rotation):
                if len(ready) >= limit:
                    break
                ctx = active[rid]
                if not ctx.prefilled or ctx.done:
                    continue
                if not spec_allowed_serving(engine, ctx, n_draftable):
                    continue
                ready.append(ctx)
            if ready:
                rotation.rotate(-1)
                start_draft_round(
                    engine, ready,
                    lambda proposed, ready=ready: after_draft(ready, proposed),
                )
                return

            idle()
            return

        engine.request_reports = reports
        engine.prefix_cache_stats = (
            cache.stats_dict() if cache is not None else {}
        )
        engine.metrics.mark_finish(kernel.now)
        engine.shutdown_pipeline()
        done.resolve(None)

    step()
    if not done.resolved:
        yield done



# ---------------------------------------------------------------------------
# Baselines: FCFS, one request at a time.
# ---------------------------------------------------------------------------


def sequential_serving_head(engine, scheduler: RequestScheduler) -> Generator:
    """FCFS serving for synchronous engines: run requests back-to-back.

    Per-request metrics come from swapping a fresh collector onto the
    engine for the duration of ``_generate`` (workers hold the aggregate
    collector captured at spawn, so their busy time keeps accumulating
    globally; the head's own busy time is merged back afterwards).
    """
    kernel = engine.net.kernel
    base_metrics = engine.metrics
    reports: List[RequestReport] = []

    while scheduler.has_pending() or scheduler.stream_open():
        if not scheduler.has_pending():
            # Push-mode feed (cluster serving): park until the router
            # pushes the next request or closes the stream — both notify
            # this endpoint's arrival watchers.
            fut = kernel.future(f"feed-wait@{engine.head_rank()}")
            fut.detail = "wait_for_routed_request"
            engine.ep()._arrival_watchers.append(fut)
            yield fut
            continue
        nxt = scheduler.peek_next()
        if nxt.arrival > kernel.now:
            yield Delay(nxt.arrival - kernel.now)
        req = scheduler.pop_ready(kernel.now)
        admitted_at = kernel.now
        per = MetricsCollector()
        engine.metrics = per
        try:
            accepted = yield from engine._generate(req.job)
        finally:
            engine.metrics = base_metrics
        for rank, seconds in per.busy_time.items():
            base_metrics.add_busy(rank, seconds)
        finish = kernel.now
        reports.append(
            RequestReport(
                req_id=req.req_id,
                tokens=list(accepted[len(req.job.prompt):][: req.job.n_generate]),
                arrival=req.arrival,
                admitted_at=admitted_at,
                prefill_end=per.prefill_end if per.prefill_end is not None else admitted_at,
                finish_time=finish,
                itl_samples=per.itl_samples(),
                stats=per.stats,
                prompt_tokens=len(req.job.prompt),
                priority=req.priority,
                ttft_slo=req.ttft_slo,
                itl_slo=req.itl_slo,
            )
        )
        scheduler.on_completed(req.req_id, finish)

        # Clear the finished request's KV cells on every stage so the next
        # request's positions start clean.
        ops = [CacheOp(CacheOpKind.SEQ_RM, 0, 0, 0, SEQ_END)]
        ranks = engine.target_ranks()
        if engine.head_rank() in engine._worker_states:
            apply_cache_op(engine._worker_states[engine.head_rank()].cache, ops[0])
        if len(ranks) > 1:
            engine.send_cache_ops(ranks[1], ops)

    engine.request_reports = reports
    base_metrics.mark_finish(kernel.now)
    engine.shutdown_pipeline()
