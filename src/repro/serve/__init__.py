"""Multi-request serving: scheduler, serving heads, and the run harness.

The serving layer turns the single-job simulator into a request-level
system: a :class:`Workload` (jobs + arrival trace) is admitted FCFS by a
:class:`RequestScheduler` into one long-lived pipeline, and the engine's
serving head multiplexes work across the active requests.  See
:mod:`repro.serve.head` for the two head disciplines and
:func:`run_serving` for the single-pipeline entry point.

Above the single pipeline sits the cluster layer
(:mod:`repro.serve.cluster`): a :class:`Replica` bundles one pipeline
behind a uniform admit/drain/report surface, and an
:class:`EngineCluster` runs K of them behind a prefix/session-aware
:class:`Router` — see ``docs/serving-cluster.md``.
"""

from repro.serve.cluster import (
    ClusterConfig,
    EngineCluster,
    Replica,
    Router,
    RoutingPolicy,
    run_cluster,
)
from repro.serve.run import make_workload, run_serving
from repro.serve.scheduler import (
    ReplicaFeed,
    Request,
    RequestScheduler,
    Workload,
)

__all__ = [
    "Request",
    "RequestScheduler",
    "ReplicaFeed",
    "Workload",
    "run_serving",
    "make_workload",
    "Replica",
    "Router",
    "RoutingPolicy",
    "ClusterConfig",
    "EngineCluster",
    "run_cluster",
]
