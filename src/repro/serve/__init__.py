"""Multi-request serving: scheduler, serving heads, and the run harness.

The serving layer turns the single-job simulator into a request-level
system: a :class:`Workload` (jobs + arrival trace) is admitted FCFS by a
:class:`RequestScheduler` into one long-lived pipeline, and the engine's
serving head multiplexes work across the active requests.  See
:mod:`repro.serve.head` for the two head disciplines and
:func:`run_serving` for the entry point.
"""

from repro.serve.run import make_workload, run_serving
from repro.serve.scheduler import Request, RequestScheduler, Workload

__all__ = [
    "Request",
    "RequestScheduler",
    "Workload",
    "run_serving",
    "make_workload",
]
