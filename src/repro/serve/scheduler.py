"""Request admission and queueing for multi-request serving.

A :class:`Workload` is a static description: jobs plus an arrival trace
(see :mod:`repro.workloads.arrivals`) and an optional concurrency cap.
The :class:`RequestScheduler` is the live FCFS admission queue the serving
head consults: requests become *ready* when simulated time passes their
arrival, are *admitted* when the head has a free KV partition (and the
cap allows), and are *completed* when their token budget is met and their
in-flight runs have drained.

Scheduling is deliberately deterministic — FCFS by (arrival, submission
index) — so served outputs are reproducible token-for-token against
single-job runs of the same prompts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engines.base import GenerationJob


@dataclass(frozen=True)
class Request:
    """One queued generation request."""

    req_id: int
    job: GenerationJob
    arrival: float


def worst_case_cell_demand(job: GenerationJob, config) -> int:
    """Worst-case KV cells ``job`` occupies at its peak, from shapes alone.

    Accepted cells persist until the request releases its canonical
    partition; in-flight drafts add at most the lookahead plus one
    micro-batch (verification can overshoot by a batch).  Computed once
    per request at admission time — the admission check itself never
    scans cache cells (see :class:`repro.core.multibuffer.CellBudget`).
    """
    return (
        len(job.prompt)
        + job.n_generate
        + config.lookahead_cap
        + config.microbatch_size
    )


def post_match_cell_demand(job: GenerationJob, config, cached_tokens: int) -> int:
    """Worst-case *new* cells after a prefix-cache match of ``cached_tokens``.

    Materializing a cached prefix is a metadata copy — the matched
    positions' cells already exist under the cache's retained sequences
    and are merely shared into the request's canonical partition — so
    admission must charge only the unmatched tail plus generation and
    speculation headroom.  With the cache off (``cached_tokens == 0``)
    this is exactly :func:`worst_case_cell_demand`.
    """
    return worst_case_cell_demand(job, config) - cached_tokens


def unmaterialized_demand(active_contexts, config) -> int:
    """Worst-case cells of admitted-but-not-yet-prefilled requests.

    The live ``n_used`` admission signal lags dispatch: a request admitted
    a moment ago has its prefill in flight and *no cells resident yet*, so
    back-to-back admissions (closed-loop arrival bursts) would all see the
    same stale occupancy.  Counting un-prefilled requests at their full
    worst case closes that hole; once prefill logits return, the prompt's
    cells are resident on every shard and the live signal takes over.
    Prefix-cache matches are subtracted: matched positions never
    materialize new cells, only sequence metadata.
    """
    return sum(
        post_match_cell_demand(ctx.job, config, ctx.cached_tokens)
        for ctx in active_contexts
        if not ctx.prefilled
    )


def spec_dispatch_headroom(engine, active_contexts, config) -> Optional[int]:
    """Speculative runs the draft scheduler may dispatch under live admission.

    Static worst-case admission already reserves every request's full
    speculative footprint, so batched rounds can never overflow there —
    no throttle (None = unbounded).  The optimistic live-cells policy
    reserves nothing for future growth, and a batched draft round grows
    *every* request's speculation at once, so the round is capped to what
    the live free-cell count can absorb: each dispatch materializes at
    most ``microbatch_size`` fresh cells, and un-prefilled admissions
    claim their full worst case (same lag rule as admission).  Every
    in-flight speculative run is also charged ``microbatch_size`` cells —
    deliberately conservative: the head cannot cheaply tell which runs'
    cells are already resident (and so counted in ``worker_cells_used``),
    and under-drafting near capacity only defers speculation, while
    over-drafting overflows a cache that cannot evict mid-flight.
    """
    cap = engine.backend.worker_cell_capacity()
    if cap is None or not config.admission_live_cells:
        return None
    inflight = sum(
        ctx.n_spec_inflight for ctx in active_contexts
    ) * config.microbatch_size
    pending = unmaterialized_demand(active_contexts, config)
    free = cap - engine.worker_cells_used() - inflight - pending
    return max(free // config.microbatch_size, 0)


@dataclass(frozen=True)
class Workload:
    """A stream of jobs with an arrival trace.

    Attributes:
        jobs: the generation jobs, in submission order.
        arrivals: per-job arrival timestamps; an empty tuple means every
            request is queued at t=0 (closed loop).
        max_active: concurrency cap on simultaneously admitted requests
            (None = bounded only by KV partitions).
    """

    jobs: Tuple[GenerationJob, ...]
    arrivals: Tuple[float, ...] = ()
    max_active: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("workload must contain at least one job")
        if self.arrivals and len(self.arrivals) != len(self.jobs):
            raise ValueError(
                f"arrival trace length {len(self.arrivals)} does not match "
                f"{len(self.jobs)} jobs"
            )
        if any(t < 0 for t in self.arrivals):
            raise ValueError("arrival times must be non-negative")
        if self.max_active is not None and self.max_active < 1:
            raise ValueError(f"max_active must be positive, got {self.max_active}")

    def requests(self) -> List[Request]:
        """The jobs as FCFS-ordered :class:`Request` records."""
        arrivals = self.arrivals or (0.0,) * len(self.jobs)
        reqs = [
            Request(req_id=i, job=job, arrival=arrivals[i])
            for i, job in enumerate(self.jobs)
        ]
        return sorted(reqs, key=lambda r: (r.arrival, r.req_id))


class RequestScheduler:
    """FCFS admission queue driven by the serving head."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._queue: List[Request] = workload.requests()
        self._next = 0
        self.n_admitted = 0
        self.n_completed = 0
        #: req_id -> completion timestamp.
        self.completed_at: Dict[int, float] = {}

    @property
    def max_active(self) -> Optional[int]:
        return self.workload.max_active

    @property
    def n_total(self) -> int:
        return len(self._queue)

    def has_pending(self) -> bool:
        """Requests not yet admitted remain."""
        return self._next < len(self._queue)

    def all_done(self) -> bool:
        return self.n_completed == len(self._queue)

    def peek_next(self) -> Optional[Request]:
        """The next request in FCFS order, or None when all admitted."""
        if self._next >= len(self._queue):
            return None
        return self._queue[self._next]

    def next_arrival(self) -> Optional[float]:
        """Arrival time of the next unadmitted request."""
        nxt = self.peek_next()
        return None if nxt is None else nxt.arrival

    def ready(self, now: float) -> bool:
        """True when the FCFS head has arrived by ``now``."""
        nxt = self.peek_next()
        return nxt is not None and nxt.arrival <= now

    def may_admit(self, n_active: int) -> bool:
        """Does the concurrency cap allow another admission?"""
        cap = self.workload.max_active
        return cap is None or n_active < cap

    def pop_ready(self, now: float) -> Optional[Request]:
        """Admit (dequeue) the FCFS head if it has arrived."""
        if not self.ready(now):
            return None
        req = self._queue[self._next]
        self._next += 1
        self.n_admitted += 1
        return req

    def on_completed(self, req_id: int, t: float) -> None:
        if req_id in self.completed_at:
            raise ValueError(f"request {req_id} completed twice")
        self.completed_at[req_id] = t
        self.n_completed += 1
