"""Request admission and queueing for multi-request serving.

A :class:`Workload` is a static description: jobs plus an arrival trace
(see :mod:`repro.workloads.arrivals`) and an optional concurrency cap.
The :class:`RequestScheduler` is the live FCFS admission queue the serving
head consults: requests become *ready* when simulated time passes their
arrival, are *admitted* when the head has a free KV partition (and the
cap allows), and are *completed* when their token budget is met and their
in-flight runs have drained.

Scheduling is deliberately deterministic — FCFS by (arrival, submission
index) — so served outputs are reproducible token-for-token against
single-job runs of the same prompts.

Requests may carry a ``priority`` and deadline tags (``ttft_slo``,
``itl_slo``).  Priorities reorder *admission only*: among the requests
that have arrived (the contiguous ready prefix of the queue), the highest
priority wins, ties broken by queue position — so untagged traffic
(all priority 0) admits in exactly the historical FCFS order.  SLO tags
never change scheduling here; they feed the goodput metric and the
cluster router's deadline-aware spill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engines.base import GenerationJob


@dataclass(frozen=True)
class Request:
    """One queued generation request.

    ``session`` tags requests that belong to one multi-turn conversation
    (all of a session's turns share it); the cluster router uses it for
    session-affinity routing.  Single-shot traffic leaves it None.

    ``priority`` biases admission (higher first among arrived requests);
    ``ttft_slo`` / ``itl_slo`` are deadline tags — seconds to first token
    and seconds between tokens — consumed by the goodput metric and the
    cluster router's deadline-aware spill.  None means no SLO.
    """

    req_id: int
    job: GenerationJob
    arrival: float
    session: Optional[int] = None
    priority: int = 0
    ttft_slo: Optional[float] = None
    itl_slo: Optional[float] = None


def worst_case_cell_demand(job: GenerationJob, config) -> int:
    """Worst-case KV cells ``job`` occupies at its peak, from shapes alone.

    Accepted cells persist until the request releases its canonical
    partition; in-flight drafts add at most the lookahead plus one
    micro-batch (verification can overshoot by a batch).  Computed once
    per request at admission time — the admission check itself never
    scans cache cells (see :class:`repro.core.multibuffer.CellBudget`).
    """
    return (
        len(job.prompt)
        + job.n_generate
        + config.lookahead_cap
        + config.microbatch_size
    )


def post_match_cell_demand(job: GenerationJob, config, cached_tokens: int) -> int:
    """Worst-case *new* cells after a prefix-cache match of ``cached_tokens``.

    Materializing a cached prefix is a metadata copy — the matched
    positions' cells already exist under the cache's retained sequences
    and are merely shared into the request's canonical partition — so
    admission must charge only the unmatched tail plus generation and
    speculation headroom.  With the cache off (``cached_tokens == 0``)
    this is exactly :func:`worst_case_cell_demand`.
    """
    return worst_case_cell_demand(job, config) - cached_tokens


def unmaterialized_demand(active_contexts, config) -> int:
    """Worst-case cells of admitted-but-not-yet-prefilled requests.

    The live ``n_used`` admission signal lags dispatch: a request admitted
    a moment ago has its prefill in flight and *no cells resident yet*, so
    back-to-back admissions (closed-loop arrival bursts) would all see the
    same stale occupancy.  Counting un-prefilled requests at their full
    worst case closes that hole; once prefill logits return, the prompt's
    cells are resident on every shard and the live signal takes over.
    Prefix-cache matches are subtracted: matched positions never
    materialize new cells, only sequence metadata.
    """
    return sum(
        post_match_cell_demand(ctx.job, config, ctx.cached_tokens)
        for ctx in active_contexts
        if not ctx.prefilled
    )


def spec_dispatch_headroom(engine, active_contexts, config) -> Optional[int]:
    """Speculative runs the draft scheduler may dispatch under live admission.

    Static worst-case admission already reserves every request's full
    speculative footprint, so batched rounds can never overflow there —
    no throttle (None = unbounded).  The optimistic live-cells policy
    reserves nothing for future growth, and a batched draft round grows
    *every* request's speculation at once, so the round is capped to what
    the live free-cell count can absorb: each dispatch materializes at
    most ``microbatch_size`` fresh cells, and un-prefilled admissions
    claim their full worst case (same lag rule as admission).  Every
    in-flight speculative run is also charged ``microbatch_size`` cells —
    deliberately conservative: the head cannot cheaply tell which runs'
    cells are already resident (and so counted in ``worker_cells_used``),
    and under-drafting near capacity only defers speculation, while
    over-drafting overflows a cache that cannot evict mid-flight.
    """
    cap = engine.backend.worker_cell_capacity()
    if cap is None or not config.admission_live_cells:
        return None
    inflight = sum(
        ctx.n_spec_inflight for ctx in active_contexts
    ) * config.microbatch_size
    pending = unmaterialized_demand(active_contexts, config)
    free = cap - engine.worker_cells_used() - inflight - pending
    return max(free // config.microbatch_size, 0)


@dataclass(frozen=True)
class Workload:
    """A stream of jobs with an arrival trace.

    Attributes:
        jobs: the generation jobs, in submission order.
        arrivals: per-job arrival timestamps; an empty tuple means every
            request is queued at t=0 (closed loop).
        max_active: concurrency cap on simultaneously admitted requests
            (None = bounded only by KV partitions).
        sessions: optional per-job session tags aligned with ``jobs``
            (multi-turn traces tag every turn of one conversation with
            the same id; see
            :meth:`repro.workloads.prompts.MultiTurnTemplate.sessions`).
            Empty means untagged — single-shot traffic.
        priorities: optional per-job admission priorities aligned with
            ``jobs`` (empty = all zero).
        ttft_slos: optional per-job time-to-first-token deadlines aligned
            with ``jobs`` (empty = no SLO; None entries allowed).
        itl_slos: optional per-job inter-token-latency deadlines aligned
            with ``jobs`` (empty = no SLO; None entries allowed).
    """

    jobs: Tuple[GenerationJob, ...]
    arrivals: Tuple[float, ...] = ()
    max_active: Optional[int] = None
    sessions: Tuple[Optional[int], ...] = ()
    priorities: Tuple[int, ...] = ()
    ttft_slos: Tuple[Optional[float], ...] = ()
    itl_slos: Tuple[Optional[float], ...] = ()

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("workload must contain at least one job")
        if self.arrivals and len(self.arrivals) != len(self.jobs):
            raise ValueError(
                f"arrival trace length {len(self.arrivals)} does not match "
                f"{len(self.jobs)} jobs"
            )
        if any(t < 0 for t in self.arrivals):
            raise ValueError("arrival times must be non-negative")
        if self.max_active is not None and self.max_active < 1:
            raise ValueError(f"max_active must be positive, got {self.max_active}")
        for name in ("sessions", "priorities", "ttft_slos", "itl_slos"):
            tags = getattr(self, name)
            if tags and len(tags) != len(self.jobs):
                raise ValueError(
                    f"{name} length {len(tags)} does not match "
                    f"{len(self.jobs)} jobs"
                )
        for name in ("ttft_slos", "itl_slos"):
            if any(s is not None and s <= 0 for s in getattr(self, name)):
                raise ValueError(f"{name} entries must be positive or None")

    def requests(self) -> List[Request]:
        """The jobs as FCFS-ordered :class:`Request` records."""
        n = len(self.jobs)
        arrivals = self.arrivals or (0.0,) * n
        sessions = self.sessions or (None,) * n
        priorities = self.priorities or (0,) * n
        ttft_slos = self.ttft_slos or (None,) * n
        itl_slos = self.itl_slos or (None,) * n
        reqs = [
            Request(
                req_id=i,
                job=job,
                arrival=arrivals[i],
                session=sessions[i],
                priority=priorities[i],
                ttft_slo=ttft_slos[i],
                itl_slo=itl_slos[i],
            )
            for i, job in enumerate(self.jobs)
        ]
        return sorted(reqs, key=lambda r: (r.arrival, r.req_id))


class RequestScheduler:
    """FCFS admission queue (priority-aware) driven by the serving head.

    Admission readiness keeps the historical *contiguous prefix* rule:
    only requests up to the first not-yet-arrived queue entry are
    candidates (so a migrated request parked behind a later arrival waits
    its queue turn, exactly as before).  Among those candidates the
    highest ``priority`` wins, ties broken by queue position — with all
    priorities zero this degenerates to popping the head, byte-identical
    to the historical FCFS scheduler.
    """

    def __init__(self, workload: Workload) -> None:
        self.workload: Optional[Workload] = workload
        self._queue: List[Request] = workload.requests()
        self._pending: List[Request] = list(self._queue)
        self._max_active = workload.max_active
        self.n_admitted = 0
        self.n_completed = 0
        self.n_cancelled = 0
        #: req_id -> completion timestamp.
        self.completed_at: Dict[int, float] = {}

    @classmethod
    def from_requests(
        cls, requests: List[Request], max_active: Optional[int] = None
    ) -> "RequestScheduler":
        """A scheduler over pre-routed requests, global req_ids preserved.

        The cluster's static routing path partitions one workload's FCFS
        stream across replicas; rebuilding per-replica ``Workload``s
        would renumber ``req_id``s (they are positional), so the router
        hands each replica its slice of already-numbered requests.
        """
        if not requests:
            raise ValueError("scheduler needs at least one request")
        self = cls.__new__(cls)
        self.workload = None
        self._queue = sorted(requests, key=lambda r: (r.arrival, r.req_id))
        self._pending = list(self._queue)
        self._max_active = max_active
        self.n_admitted = 0
        self.n_completed = 0
        self.n_cancelled = 0
        self.completed_at = {}
        return self

    @property
    def max_active(self) -> Optional[int]:
        return self._max_active

    @property
    def n_total(self) -> int:
        return len(self._queue)

    def has_pending(self) -> bool:
        """Requests not yet admitted (nor cancelled while queued) remain."""
        return bool(self._pending)

    def stream_open(self) -> bool:
        """Whether more requests may still be fed in.

        A static workload is fully known up front, so the stream is never
        open: the serving head may exit as soon as the queue drains.  The
        cluster router's :class:`ReplicaFeed` overrides this — its head
        must stay up until the router closes the stream.
        """
        return False

    def all_done(self) -> bool:
        return self.n_completed + self.n_cancelled == len(self._queue)

    def peek_next(self) -> Optional[Request]:
        """The queue head (earliest position), or None when all admitted.

        This is the *arrival-order* head — the right probe for "when does
        the next request arrive" — not necessarily the admission winner;
        see :meth:`peek_ready` for that.
        """
        return self._pending[0] if self._pending else None

    def next_arrival(self) -> Optional[float]:
        """Arrival time of the next unadmitted request."""
        nxt = self.peek_next()
        return None if nxt is None else nxt.arrival

    def _ready_index(self, now: float) -> Optional[int]:
        """Index into the pending queue of the admission winner.

        Scans the contiguous arrived prefix; the winner is the highest
        priority, ties broken by queue position.
        """
        best: Optional[int] = None
        for i, req in enumerate(self._pending):
            if req.arrival > now:
                break
            if best is None or req.priority > self._pending[best].priority:
                best = i
        return best

    def ready(self, now: float) -> bool:
        """True when some request in the arrived prefix awaits admission."""
        return self._ready_index(now) is not None

    def peek_ready(self, now: float) -> Optional[Request]:
        """The request :meth:`pop_ready` would admit at ``now``, unpopped."""
        idx = self._ready_index(now)
        return None if idx is None else self._pending[idx]

    def may_admit(self, n_active: int) -> bool:
        """Does the concurrency cap allow another admission?"""
        cap = self._max_active
        return cap is None or n_active < cap

    def pop_ready(self, now: float) -> Optional[Request]:
        """Admit (dequeue) the winning arrived request, if any."""
        idx = self._ready_index(now)
        if idx is None:
            return None
        req = self._pending.pop(idx)
        self.n_admitted += 1
        return req

    def cancel_queued(self, req_id: int) -> Optional[Request]:
        """Remove a not-yet-admitted request (client disconnected).

        Returns the removed request, or None when ``req_id`` is not
        queued here (already admitted, completed, or routed elsewhere).
        """
        for i, req in enumerate(self._pending):
            if req.req_id == req_id:
                self._pending.pop(i)
                self.n_cancelled += 1
                return req
        return None

    def on_completed(self, req_id: int, t: float) -> None:
        if req_id in self.completed_at:
            raise ValueError(f"request {req_id} completed twice")
        self.completed_at[req_id] = t
        self.n_completed += 1


class ReplicaFeed(RequestScheduler):
    """Push-mode admission queue for one cluster replica.

    Where :class:`RequestScheduler` holds a whole static workload from the
    start, a feed begins empty and receives requests one at a time as the
    cluster's router assigns them (:meth:`push`), in global arrival order.
    The serving head treats it exactly like the static scheduler except
    that the stream stays *open* — the head parks instead of shutting the
    pipeline down when the queue drains — until the router calls
    :meth:`close` after the last request has been routed.

    The queue-depth accessors feed the router's load signals: ``depth``
    counts requests in the system (queued or active, not yet completed),
    ``n_waiting`` only those not yet admitted.  :meth:`steal_tail` lets
    the router migrate the most recently routed request away while it is
    still waiting — admitted requests hold KV state and never move.
    """

    def __init__(self, max_active: Optional[int] = None) -> None:
        self._queue: List[Request] = []
        self._pending: List[Request] = []
        self._max_active = max_active
        self.n_admitted = 0
        self.n_completed = 0
        self.n_cancelled = 0
        self.completed_at: Dict[int, float] = {}
        self.closed = False
        self.n_pushed = 0

    @property
    def workload(self):  # pragma: no cover - guards accidental static use
        raise AttributeError("a ReplicaFeed has no static workload")

    @property
    def max_active(self) -> Optional[int]:
        return self._max_active

    def may_admit(self, n_active: int) -> bool:
        cap = self._max_active
        return cap is None or n_active < cap

    def stream_open(self) -> bool:
        return not self.closed

    @property
    def depth(self) -> int:
        """Requests in the system: routed here, neither completed nor
        cancelled-while-queued."""
        return len(self._queue) - self.n_completed - self.n_cancelled

    @property
    def n_waiting(self) -> int:
        """Requests routed here but not yet admitted into the pipeline."""
        return len(self._pending)

    def push(self, req: Request, migrated: bool = False) -> None:
        """Append one routed request; must arrive in global FCFS order.

        Migrated requests (stolen from another replica's tail) may carry
        an arrival earlier than this queue's tail — they simply wait
        their queue turn — so ``migrated=True`` skips the order guard.
        """
        if self.closed:
            raise ValueError("cannot push into a closed feed")
        if not migrated and self._queue and req.arrival < self._queue[-1].arrival:
            raise ValueError(
                f"push out of arrival order: {req.arrival} after "
                f"{self._queue[-1].arrival}"
            )
        self._queue.append(req)
        self._pending.append(req)
        self.n_pushed += 1

    def steal_tail(self) -> Optional[Request]:
        """Take back the most recently pushed, not-yet-admitted request."""
        if not self._pending or self._pending[-1] is not self._queue[-1]:
            return None
        req = self._pending.pop()
        self._queue.pop()
        self.n_pushed -= 1
        return req

    def close(self) -> None:
        """No more requests will be routed here; heads may drain and exit."""
        self.closed = True
