"""Entry point: run a workload of requests through one simulated pipeline.

``run_serving`` is the single-pipeline (K=1) path: it builds one
:class:`~repro.serve.cluster.Replica` — the same bundle the
multi-replica :class:`~repro.serve.cluster.EngineCluster` instantiates K
times — feeds it the whole workload, and returns its report.  The
construction and execution order inside ``Replica`` matches this
module's historical body exactly, so results are byte-identical to
every earlier release.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.topology import Cluster
from repro.engines.backend import Backend
from repro.engines.base import EngineConfig, GenerationJob
from repro.metrics.report import ServingReport
from repro.serve.cluster import Replica
from repro.serve.scheduler import RequestScheduler, Workload


def run_serving(
    engine_factory,
    backend: Backend,
    cluster: Cluster,
    workload: Workload,
    config: Optional[EngineConfig] = None,
    fault_plan=None,
    trace: Optional[list] = None,
) -> ServingReport:
    """Build a fresh simulation, serve the whole workload, return the report.

    Args:
        engine_factory: engine class (or callable) taking
            (backend, network, config, metrics).  PipeInfer serves with
            multiplexed continuous speculation; the baselines serve FCFS
            one request at a time.
        backend: functional or oracle backend.
        cluster: the testbed (bound to a fresh kernel here).
        workload: jobs + arrival trace + optional concurrency cap.
        config: algorithm knobs; defaults to :class:`EngineConfig`.
        fault_plan: optional :class:`repro.faults.FaultPlan`; a non-empty
            plan injects link faults, stragglers, and worker crashes, and
            arms the ack/retransmit + re-prefill recovery machinery.  An
            empty (or None) plan installs nothing — the simulation is
            byte-identical to one run without the fault plane.
        trace: optional list the network appends every consumed message
            to as ``(rank, src, tag, seq)`` — the batched-inbox
            equivalence suite uses it to prove on/off consumption-order
            identity.  Leave None (the default) on the hot path.
    """
    replica = Replica(
        0,
        engine_factory,
        backend,
        cluster,
        config=config,
        fault_plan=fault_plan,
        trace=trace,
    )
    replica.start(RequestScheduler(workload))
    replica.drain()
    report = replica.report()
    assert report is not None  # workloads hold >= 1 job
    return report


def make_workload(
    jobs: Sequence[GenerationJob],
    arrivals: Sequence[float] = (),
    max_active: Optional[int] = None,
    sessions: Sequence[Optional[int]] = (),
    priorities: Sequence[int] = (),
    ttft_slos: Sequence[Optional[float]] = (),
    itl_slos: Sequence[Optional[float]] = (),
) -> Workload:
    """Convenience constructor accepting plain sequences."""
    return Workload(
        jobs=tuple(jobs),
        arrivals=tuple(arrivals),
        max_active=max_active,
        sessions=tuple(sessions),
        priorities=tuple(priorities),
        ttft_slos=tuple(ttft_slos),
        itl_slos=tuple(itl_slos),
    )
