"""Entry point: run a workload of requests through one simulated pipeline."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.topology import Cluster
from repro.comm.mpi_sim import Network
from repro.engines.backend import Backend
from repro.engines.base import EngineConfig, GenerationJob
from repro.metrics.collectors import MetricsCollector
from repro.metrics.report import ServingReport
from repro.serve.scheduler import RequestScheduler, Workload


def run_serving(
    engine_factory,
    backend: Backend,
    cluster: Cluster,
    workload: Workload,
    config: Optional[EngineConfig] = None,
    fault_plan=None,
    trace: Optional[list] = None,
) -> ServingReport:
    """Build a fresh simulation, serve the whole workload, return the report.

    Args:
        engine_factory: engine class (or callable) taking
            (backend, network, config, metrics).  PipeInfer serves with
            multiplexed continuous speculation; the baselines serve FCFS
            one request at a time.
        backend: functional or oracle backend.
        cluster: the testbed (bound to a fresh kernel here).
        workload: jobs + arrival trace + optional concurrency cap.
        config: algorithm knobs; defaults to :class:`EngineConfig`.
        fault_plan: optional :class:`repro.faults.FaultPlan`; a non-empty
            plan injects link faults, stragglers, and worker crashes, and
            arms the ack/retransmit + re-prefill recovery machinery.  An
            empty (or None) plan installs nothing — the simulation is
            byte-identical to one run without the fault plane.
        trace: optional list the network appends every consumed message
            to as ``(rank, src, tag, seq)`` — the batched-inbox
            equivalence suite uses it to prove on/off consumption-order
            identity.  Leave None (the default) on the hot path.
    """
    config = config or EngineConfig()
    kernel = SimKernel()
    network = Network(kernel, cluster)
    if trace is not None:
        network.trace = trace
    metrics = MetricsCollector()
    injector = None
    if fault_plan is not None and not fault_plan.is_empty():
        from repro.faults import FaultInjector  # cycle avoidance

        injector = FaultInjector(fault_plan)
        injector.install(kernel, network, metrics)
    engine = engine_factory(backend, network, config, metrics)
    if injector is not None:
        engine.injector = injector
    scheduler = RequestScheduler(workload)
    procs = engine.spawn_serving(kernel, scheduler)
    if injector is not None:
        injector.attach_engine(engine)
    run_to_completion(kernel, procs)
    requests = engine.request_reports
    report = ServingReport.from_requests(
        engine.name, cluster.size, requests, extra_stats=metrics.stats
    )
    # Busy fractions over the serving makespan (head + workers).
    report.utilization = metrics.utilization(total_time=report.makespan)
    # Event-core efficiency: process resumes executed vs messages made
    # available to receivers — the batched-inbox hand-off drives this
    # ratio toward one resume per delivery event (< 1 message-wise).
    report.n_resumes = kernel.n_resumes
    report.n_delivered = network.n_delivered
    report.fusion_width = metrics.fusion_width_hist()
    report.draft_batch_width = dict(metrics.draft_batch_width)
    # Prefix-cache lifecycle counters (empty dict when the cache is off
    # or the head is a baseline without one).
    report.prefix_cache_stats = dict(getattr(engine, "prefix_cache_stats", {}))
    return report


def make_workload(
    jobs: Sequence[GenerationJob],
    arrivals: Sequence[float] = (),
    max_active: Optional[int] = None,
) -> Workload:
    """Convenience constructor accepting plain sequences."""
    return Workload(
        jobs=tuple(jobs), arrivals=tuple(arrivals), max_active=max_active
    )
