"""Speculative decoding machinery.

- :mod:`repro.spec.tree` — speculation trees (token, confidence, parent);
- :mod:`repro.spec.draft` — drafting policies: greedy chains and branching
  trees halted by a confidence cutoff (paper Section II-A1);
- :mod:`repro.spec.tree_attention` — attention-mask construction and
  sequence-id assignment keeping tree branches mutually exclusive
  (Section II-A2);
- :mod:`repro.spec.verify` — the SpecInfer token-verification walk used by
  both the speculative baseline and PipeInfer (Section IV-E), in greedy
  and stochastic (rejection-sampling) forms.
"""

from repro.spec.tree import SpecNode, SpecTree
from repro.spec.draft import DraftParams, draft_chain, draft_tree
from repro.spec.verify import VerifyOutcome, verify_chain, verify_tree
from repro.spec.tree_attention import assign_tree_seqs, tree_attention_mask

__all__ = [
    "SpecNode",
    "SpecTree",
    "DraftParams",
    "draft_chain",
    "draft_tree",
    "VerifyOutcome",
    "verify_chain",
    "verify_tree",
    "assign_tree_seqs",
    "tree_attention_mask",
]
