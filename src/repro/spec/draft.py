"""Drafting policies: turning a draft model into speculation trees.

The speculation phase (paper Section II-A1) runs the draft model
iteratively, extending candidates until the top confidence falls below a
cutoff or the tree reaches its token budget.  Engines consume drafting
through the small :class:`Drafter` protocol so oracle models (performance
mode) and real tiny transformers (functional mode) are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

from repro.spec.tree import SpecTree


class Drafter(Protocol):
    """Anything that can greedily propose the next token for a prefix."""

    def propose(self, prefix: Sequence[int]) -> Tuple[int, float]:
        """Return (token, confidence) for the greedy continuation of ``prefix``."""
        ...

    def propose_alternatives(
        self, prefix: Sequence[int], n: int
    ) -> List[Tuple[int, float]]:
        """Top-``n`` proposals, best first (used by branching trees)."""
        ...


@dataclass(frozen=True)
class DraftParams:
    """Speculation-phase knobs.

    Attributes:
        max_tokens: tree token budget (the paper caps Dolphin trees at 4).
        cutoff: confidence threshold below which drafting halts.
        branch_width: candidates per expansion point (1 = chain).
        branch_margin: extra branches are added only when their confidence
            is within this margin of the best candidate.
    """

    max_tokens: int = 4
    cutoff: float = 0.30
    branch_width: int = 1
    branch_margin: float = 0.15

    def __post_init__(self) -> None:
        if self.max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        if not 0.0 <= self.cutoff <= 1.0:
            raise ValueError("cutoff must be within [0, 1]")
        if self.branch_width < 1:
            raise ValueError("branch_width must be >= 1")


def draft_chain(
    drafter: Drafter,
    prefix: Sequence[int],
    params: DraftParams,
    cutoff_override: float | None = None,
) -> List[Tuple[int, float]]:
    """Draft a greedy chain continuing ``prefix``.

    Returns (token, confidence) pairs; may be empty when the very first
    proposal falls below the cutoff.  ``cutoff_override`` lets PipeInfer's
    reactive controller substitute its adapted threshold.
    """
    cutoff = params.cutoff if cutoff_override is None else cutoff_override
    chain: List[Tuple[int, float]] = []
    working = list(prefix)
    while len(chain) < params.max_tokens:
        token, conf = drafter.propose(working)
        if conf < cutoff:
            break
        chain.append((token, conf))
        working.append(token)
    return chain


def draft_tree(
    drafter: Drafter,
    prefix: Sequence[int],
    base_pos: int,
    params: DraftParams,
    cutoff_override: float | None = None,
) -> SpecTree:
    """Draft a speculation tree continuing ``prefix``.

    Expands best-confidence-first: a frontier of (tree index, prefix)
    candidates is grown until the budget or cutoff halts it.  Secondary
    branches are opened only when their confidence is competitive
    (within ``branch_margin`` of the best) — a cheap stand-in for
    SpecInfer's learned expansion policies that keeps trees narrow when
    the draft is confident.
    """
    cutoff = params.cutoff if cutoff_override is None else cutoff_override
    tree = SpecTree(base_pos)
    # Frontier entries: (confidence, parent index, prefix tokens).
    frontier: List[Tuple[float, int, List[int]]] = [(1.0, -1, list(prefix))]
    while frontier and len(tree) < params.max_tokens:
        frontier.sort(key=lambda e: -e[0])
        _, parent, working = frontier.pop(0)
        proposals = drafter.propose_alternatives(working, params.branch_width)
        if not proposals:
            continue
        best_conf = proposals[0][1]
        if best_conf < cutoff:
            continue
        for rank, (token, conf) in enumerate(proposals):
            if len(tree) >= params.max_tokens:
                break
            if rank > 0 and conf < max(cutoff, best_conf - params.branch_margin):
                continue
            node = tree.add(token, conf, parent)
            frontier.append((conf, node, working + [token]))
    return tree
