"""SpecInfer token verification (paper Sections II-A2 and IV-E).

The verification walk consumes target-model logits for a run of input
tokens and advances the accepted stream:

- logits at position *p* (computed from the token placed at *p*) predict
  the token at *p + 1*;
- walking from the accepted tip, each prediction either confirms the next
  drafted token (walk continues into that token's logits) or replaces it
  (walk stops — later logits were conditioned on a rejected token);
- the final prediction always contributes one token (the *bonus* token on
  full acceptance, the *correction* on divergence), so every completed run
  is productive.

The greedy walk is exact token comparison; :func:`stochastic_verify_step`
implements SpecInfer's rejection-sampling rule for dense distributions,
which preserves the target model's output distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.models.sampler import LogitsLike, argmax_token, softmax_probs
from repro.spec.tree import SpecTree


@dataclass
class VerifyOutcome:
    """Result of verifying one run's logits.

    Attributes:
        new_tokens: tokens newly appended to the accepted stream, in order.
        n_draft_accepted: how many of the run's *unverified* input tokens
            were confirmed (excludes the already-accepted prefix).
        diverged: True when a drafted token was rejected (the last entry of
            ``new_tokens`` is the correction).
    """

    new_tokens: List[int] = field(default_factory=list)
    n_draft_accepted: int = 0
    diverged: bool = False
    #: For tree verification: indices of the accepted path's nodes.
    matched_nodes: List[int] = field(default_factory=list)

    @property
    def n_draft_checked(self) -> int:
        """Draft tokens actually compared against the target.

        Accepted tokens plus the first rejection; drafts beyond a rejection
        were never examined.  ``accepted / checked`` is the per-token
        acceptance rate the paper reports (79%, 66%, ... — Section V-B).
        """
        return self.n_draft_accepted + (1 if self.diverged else 0)


def verify_chain(
    accepted_len: int,
    run_start_pos: int,
    run_tokens: Sequence[int],
    logits: Sequence[LogitsLike],
    sample: Callable[[LogitsLike], int] = argmax_token,
) -> VerifyOutcome:
    """Verify a chain run against its logits.

    Args:
        accepted_len: number of tokens accepted so far (positions
            ``0 .. accepted_len-1`` are known; the tip is the last).
        run_start_pos: absolute position of ``run_tokens[0]``.
        run_tokens: the run's input tokens (already-accepted prefix tokens
            plus drafted continuations).
        logits: one entry per input token; ``logits[i]`` predicts the token
            at ``run_start_pos + i + 1``.
        sample: greedy by default; any deterministic sampler works as long
            as every strategy uses the same one.

    Returns:
        The accepted-stream extension.  Empty when the run is entirely
        behind the tip (superfluous).

    Raises:
        ValueError: when the run starts beyond the accepted tip — the
        engine invariant (invalidation-before-verification) was violated.
    """
    if len(run_tokens) != len(logits):
        raise ValueError("need exactly one logits entry per input token")
    k = len(run_tokens)
    q = run_start_pos
    pos = accepted_len - 1  # index of the last accepted token
    if pos < q:
        # The run's first input token was never verified: its predecessor
        # run has not completed, which FIFO completion order forbids.
        raise ValueError(
            f"run starting at {q} verified with accepted tip at {pos}"
        )
    out = VerifyOutcome()
    while q <= pos <= q + k - 1:
        nxt = sample(logits[pos - q])
        out.new_tokens.append(nxt)
        nxt_index = pos + 1 - q
        if nxt_index <= k - 1:
            if run_tokens[nxt_index] != nxt:
                out.diverged = True
                break
            out.n_draft_accepted += 1
        pos += 1
    return out


def verify_tree(
    tip_logits: LogitsLike,
    tree: SpecTree,
    node_logits: Sequence[LogitsLike],
    sample: Callable[[LogitsLike], int] = argmax_token,
) -> VerifyOutcome:
    """Verify a speculation tree, descending along the matching branch.

    Args:
        tip_logits: logits at the accepted tip (predict the tree's root
            position).
        tree: the speculated tree.
        node_logits: logits per tree node, aligned with ``tree.nodes``.

    Returns:
        Accepted tokens along the matching path plus the final bonus or
        correction token.
    """
    if len(node_logits) != len(tree):
        raise ValueError("need logits for every tree node")
    out = VerifyOutcome()
    cur_logits = tip_logits
    candidates = tree.roots()
    while True:
        nxt = sample(cur_logits)
        out.new_tokens.append(nxt)
        match = next(
            (i for i in candidates if tree.nodes[i].token == nxt), None
        )
        if match is None:
            out.diverged = bool(candidates)
            return out
        out.n_draft_accepted += 1
        out.matched_nodes.append(match)
        cur_logits = node_logits[match]
        candidates = tree.children(match)
        if not candidates:
            # Full path accepted; the matched leaf's logits give the bonus.
            out.new_tokens.append(sample(cur_logits))
            return out


def stochastic_verify_step(
    target_logits: np.ndarray,
    draft_logits: np.ndarray,
    draft_token: int,
    rng: np.random.Generator,
) -> tuple[bool, int]:
    """One SpecInfer rejection-sampling step for dense distributions.

    Accepts ``draft_token`` with probability ``min(1, p(t)/q(t))``; on
    rejection, samples the replacement from ``normalize(max(p - q, 0))``.
    The marginal distribution of the emitted token equals sampling directly
    from the target distribution ``p`` — the property test checks this.

    Returns:
        (accepted, token): the drafted token when accepted, otherwise the
        residual-sampled replacement.
    """
    p = softmax_probs(target_logits)
    q = softmax_probs(draft_logits)
    ratio = p[draft_token] / max(q[draft_token], 1e-30)
    if rng.random() < min(1.0, ratio):
        return True, int(draft_token)
    residual = np.maximum(p - q, 0.0)
    total = residual.sum()
    if total <= 0.0:
        # Distributions identical: rejection cannot happen in exact math;
        # guard the numerical edge by sampling from the target directly.
        return False, int(rng.choice(len(p), p=p))
    residual /= total
    return False, int(rng.choice(len(residual), p=residual))
