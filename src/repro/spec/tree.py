"""Speculation tree data structure.

A tree of candidate continuations rooted at the current accepted tip.
Each node holds a token, the draft's confidence in it, and its parent;
root-to-node paths are candidate sequences.  A greedy single-path draft
produces a degenerate tree (a chain) — the common case in the engines —
while the SpecInfer-style baseline can verify branching trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class SpecNode:
    """One speculated token.

    Attributes:
        token: proposed vocabulary id.
        confidence: draft model's probability for this proposal.
        parent: index of the parent node within the tree (-1 for roots,
            which continue directly from the accepted tip).
        pos: absolute sequence position this token would occupy.
    """

    token: int
    confidence: float
    parent: int
    pos: int


class SpecTree:
    """An append-only speculation tree with flat node storage."""

    def __init__(self, base_pos: int) -> None:
        """Create an empty tree continuing after absolute position ``base_pos``."""
        self.base_pos = base_pos
        self.nodes: List[SpecNode] = []

    def add(self, token: int, confidence: float, parent: int = -1) -> int:
        """Append a node; returns its index.

        Position is derived from the parent's depth: roots sit at
        ``base_pos + 1``.
        """
        if parent >= len(self.nodes):
            raise IndexError(f"parent {parent} does not exist")
        pos = self.base_pos + 1 if parent < 0 else self.nodes[parent].pos + 1
        self.nodes.append(SpecNode(token, confidence, parent, pos))
        return len(self.nodes) - 1

    def __len__(self) -> int:
        return len(self.nodes)

    def children(self, index: int) -> List[int]:
        """Indices of ``index``'s children (-1 for root-level nodes)."""
        return [i for i, n in enumerate(self.nodes) if n.parent == index]

    def roots(self) -> List[int]:
        return self.children(-1)

    def path_to(self, index: int) -> List[int]:
        """Node indices along the root-to-``index`` path, root first."""
        path: List[int] = []
        i = index
        while i >= 0:
            path.append(i)
            i = self.nodes[i].parent
        path.reverse()
        return path

    def path_tokens(self, index: int) -> List[int]:
        """Tokens along the root-to-``index`` path."""
        return [self.nodes[i].token for i in self.path_to(index)]

    def leaves(self) -> List[int]:
        """Indices of nodes with no children."""
        has_child = {n.parent for n in self.nodes if n.parent >= 0}
        return [i for i in range(len(self.nodes)) if i not in has_child]

    def depth(self) -> int:
        """Length of the longest root-to-leaf path."""
        best = 0
        for leaf in self.leaves():
            best = max(best, len(self.path_to(leaf)))
        return best

    def ancestors(self, index: int) -> set[int]:
        """All strict ancestors of ``index``."""
        out: set[int] = set()
        i = self.nodes[index].parent
        while i >= 0:
            out.add(i)
            i = self.nodes[i].parent
        return out

    def is_chain(self) -> bool:
        """True when the tree is a single path."""
        return all(len(self.children(i)) <= 1 for i in range(-1, len(self.nodes)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpecTree(base={self.base_pos}, n={len(self.nodes)}, leaves={len(self.leaves())})"


def chain_tree(base_pos: int, tokens: Sequence[int], confidences: Sequence[float]) -> SpecTree:
    """Build a degenerate (single-path) tree from a drafted chain."""
    tree = SpecTree(base_pos)
    parent = -1
    for tok, conf in zip(tokens, confidences):
        parent = tree.add(tok, conf, parent)
    return tree
