"""Tree attention: masks and sequence assignment for speculation trees.

Verifying a tree in one batch requires that sibling branches not attend to
each other (paper Section II-A2).  Two equivalent mechanisms are provided:

- an explicit (n x n) boolean mask over the batch — node *i* may attend to
  node *j* iff *j* is *i* or an ancestor of *i* — for mask-based attention
  implementations and for cross-checking;
- KV-cache *sequence-id assignment*: each root-to-leaf path becomes one
  sequence, and a node's cache cell carries the set of sequences whose
  paths pass through it (the llama.cpp representation).  The causal mask
  the cache derives from this metadata equals the explicit mask, which a
  property test asserts.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.models.layers import batched_grouped_attention
from repro.spec.tree import SpecTree


def tree_attention_mask(tree: SpecTree) -> np.ndarray:
    """Boolean (n, n) mask: entry [i, j] true when i may attend to j."""
    n = len(tree)
    mask = np.zeros((n, n), dtype=bool)
    for i in range(n):
        mask[i, i] = True
        for j in tree.ancestors(i):
            mask[i, j] = True
    return mask


def tree_batch_attention(
    tree: SpecTree,
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    n_kv_heads: int,
) -> np.ndarray:
    """Attend a whole tree-verification batch in one masked kernel call.

    Uses the explicit ancestor mask with the shared batched attention
    kernel (:func:`repro.models.layers.batched_grouped_attention`) — the
    mask-based twin of the KV-cache sequence-metadata path the engines
    take, so tests can cross-check the two mechanisms numerically, not
    just on mask equality.

    Args:
        tree: the speculation tree (defines the (n, n) visibility).
        q: (n_nodes, n_heads, head_dim) queries, in tree-node order.
        k_cells: (n_nodes, kv_dim) keys for the batch, in tree-node order.
        v_cells: (n_nodes, kv_dim) values, in tree-node order.
        n_kv_heads: KV head count.

    Returns:
        (n_nodes, n_heads, head_dim) attention output per tree node.
    """
    return batched_grouped_attention(
        q, k_cells, v_cells, tree_attention_mask(tree), n_kv_heads
    )


def assign_tree_seqs(tree: SpecTree, seq_ids: Sequence[int]) -> List[Set[int]]:
    """Map each tree node to the set of branch sequence ids covering it.

    Args:
        tree: the speculation tree.
        seq_ids: one id per leaf, in :meth:`SpecTree.leaves` order.

    Returns:
        Per-node sets of sequence ids.  Each node belongs to the branches
        of every leaf beneath it; attending within one branch's sequence
        then reproduces ancestor-only visibility.

    Raises:
        ValueError: when fewer ids than leaves are supplied.
    """
    leaves = tree.leaves()
    if len(seq_ids) < len(leaves):
        raise ValueError(f"need {len(leaves)} seq ids, got {len(seq_ids)}")
    node_seqs: List[Set[int]] = [set() for _ in range(len(tree))]
    for leaf, seq in zip(leaves, seq_ids):
        for node in tree.path_to(leaf):
            node_seqs[node].add(seq)
    return node_seqs


def branch_seq_of(tree: SpecTree, node_seqs: List[Set[int]], leaf: int) -> int:
    """The unique sequence id assigned to ``leaf``'s branch."""
    exclusive = set(node_seqs[leaf])
    for other in tree.leaves():
        if other != leaf:
            exclusive -= node_seqs[other]
    if len(exclusive) != 1:
        raise ValueError(f"leaf {leaf} does not own exactly one sequence id")
    return exclusive.pop()


def mask_from_seqs(tree: SpecTree, node_seqs: List[Set[int]]) -> np.ndarray:
    """Reconstruct the attention mask implied by sequence metadata.

    Node *i* (querying in its own branch sequences) sees node *j* iff they
    share a sequence and ``pos_j <= pos_i``.  Used to verify equivalence
    with :func:`tree_attention_mask`.
    """
    n = len(tree)
    mask = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            shared = node_seqs[i] & node_seqs[j]
            if shared and tree.nodes[j].pos <= tree.nodes[i].pos:
                # Visibility is evaluated from i's own branch: every branch
                # of i passing through j sees j.
                if node_seqs[i] <= node_seqs[j] or j == i or j in tree.ancestors(i):
                    mask[i, j] = True
    return mask
