"""Token-level radix tree over retained KV prompt prefixes.

Production prefix caches (vLLM/lmdeploy-class servers) index cached
prompt KV by a radix tree over token ids: each node holds one contiguous
token span, children branch where prompts diverge, and matching a new
prompt is a single root-to-leaf walk.  Here every node additionally owns
a *retained pool sequence id* — the KV-cache sequence (on every pipeline
worker) whose cells hold the K/V entries for the node's positions.  The
tree itself is pure head-side bookkeeping: it never talks to the
workers.  :class:`~repro.cache.prefix.PrefixCacheManager` turns tree
transitions into the pipelined ``seq_cp``/``seq_rm``/``seq_broadcast``
cache-op transactions of the paper's Section IV-C plane.

Structure invariants:

- a node's span is ``[start, end)`` absolute prompt positions with
  ``end - start == len(tokens)``; a child's ``start`` equals its
  parent's ``end`` (spans tile the path);
- sibling edges start with distinct tokens (radix property);
- ``ref`` counts *active requests* currently pinning the node (they
  matched through it at admission and have not completed); pinned nodes
  are never evicted;
- eviction removes leaves only — an interior node's cells are the
  attention context of its descendants' positions, so it must outlive
  them (the manager walks LRU leaves until pressure clears).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class RadixNode:
    """One cached token span backed by a retained KV pool sequence."""

    __slots__ = (
        "tokens", "start", "seq", "children", "parent", "ref", "last_used",
    )

    def __init__(
        self,
        tokens: Tuple[int, ...],
        start: int,
        seq: int,
        parent: Optional["RadixNode"],
        last_used: float = 0.0,
    ) -> None:
        self.tokens = tuple(tokens)
        self.start = start
        self.seq = seq
        self.parent = parent
        self.children: Dict[int, "RadixNode"] = {}
        self.ref = 0
        self.last_used = last_used

    @property
    def end(self) -> int:
        """One past the node's last absolute position."""
        return self.start + len(self.tokens)

    @property
    def n_cells(self) -> int:
        """KV cells the node's retained sequence holds (one per position)."""
        return len(self.tokens)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RadixNode(seq={self.seq}, span=[{self.start},{self.end}), "
            f"ref={self.ref}, children={len(self.children)})"
        )


class RadixTree:
    """Radix tree over prompt token prefixes; nodes own retained sequences.

    The root is a zero-span sentinel (no sequence).  All mutation
    primitives are metadata-only and return enough information for the
    manager to emit matching worker cache-ops; the tree never allocates
    or frees pool sequences itself.
    """

    def __init__(self) -> None:
        self.root = RadixNode((), 0, -1, None)

    # -- walking ------------------------------------------------------------

    def walk(self, prompt) -> Tuple[List[Tuple[RadixNode, int]], int]:
        """Longest-prefix walk: ``([(node, tokens_used)], matched_len)``.

        ``tokens_used`` is how many of the node's edge tokens the prompt
        matched (the last entry may be partial — the prompt diverged
        mid-edge or ran out).  The root never appears in the path.
        """
        path: List[Tuple[RadixNode, int]] = []
        node = self.root
        m = 0
        n = len(prompt)
        while m < n:
            child = node.children.get(prompt[m])
            if child is None:
                break
            k = 0
            limit = min(len(child.tokens), n - m)
            while k < limit and child.tokens[k] == prompt[m + k]:
                k += 1
            path.append((child, k))
            m += k
            if k < len(child.tokens):
                break
            node = child
        return path, m

    # -- mutation -----------------------------------------------------------

    def split(self, node: RadixNode, k: int, child_seq: int) -> RadixNode:
        """Split ``node`` after its first ``k`` edge tokens (copy-on-write).

        The node keeps its identity (and sequence) for the span
        ``[start, start+k)``; a new child under it takes the tail span
        with ``child_seq`` as its retained sequence.  The caller emits
        the worker-side ops that move the tail's cells from the node's
        sequence to the child's (``seq_cp`` then ``seq_rm``) and fixes up
        any active pins that extend past the split point.
        """
        if not 0 < k < len(node.tokens):
            raise ValueError(f"split point {k} outside edge of {node!r}")
        child = RadixNode(
            node.tokens[k:], node.start + k, child_seq, node, node.last_used
        )
        child.children = node.children
        for grandchild in child.children.values():
            grandchild.parent = child
        node.children = {child.tokens[0]: child}
        node.tokens = node.tokens[:k]
        return child

    def insert_child(
        self,
        parent: RadixNode,
        tokens,
        start: int,
        seq: int,
        now: float,
    ) -> RadixNode:
        """Attach a new leaf span under ``parent``."""
        tokens = tuple(tokens)
        if not tokens:
            raise ValueError("cannot insert an empty span")
        if tokens[0] in parent.children:
            raise ValueError(f"edge {tokens[0]} already present on {parent!r}")
        node = RadixNode(tokens, start, seq, parent, now)
        parent.children[tokens[0]] = node
        return node

    def remove_leaf(self, node: RadixNode) -> None:
        """Detach an (unpinned) leaf from the tree."""
        if node.children:
            raise ValueError(f"{node!r} is not a leaf")
        if node.ref:
            raise ValueError(f"{node!r} is pinned by {node.ref} requests")
        assert node.parent is not None, "the root is never removed"
        del node.parent.children[node.tokens[0]]
        node.parent = None

    # -- queries ------------------------------------------------------------

    def nodes(self) -> List[RadixNode]:
        """Every node except the root (preorder)."""
        out: List[RadixNode] = []
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children.values())
        return out

    def leaves(self) -> List[RadixNode]:
        return [n for n in self.nodes() if n.is_leaf]

    def evictable_leaves(self) -> List[RadixNode]:
        """Unpinned leaves, LRU-first (stable on equal timestamps)."""
        free = [n for n in self.leaves() if n.ref == 0]
        free.sort(key=lambda n: (n.last_used, n.start))
        return free

    def evictable_cells(self) -> int:
        """Cells reclaimable by repeated leaf eviction.

        A node's cells count as reclaimable when no node in its subtree
        is pinned — evicting the subtree leaf-by-leaf eventually frees
        the node itself.  Free subtrees hanging under a pinned ancestor
        still count (their leaves can go; the ancestor stays).
        """
        total = 0
        for child in self.root.children.values():
            cells, free = self._walk_free(child)
            total += cells if free else self._free_below(child)
        return total

    def _free_below(self, pinned: RadixNode) -> int:
        """Reclaimable cells strictly below a non-free node."""
        total = 0
        for child in pinned.children.values():
            cells, free = self._walk_free(child)
            total += cells if free else self._free_below(child)
        return total

    def _walk_free(self, node: RadixNode) -> Tuple[int, bool]:
        cells, free = node.n_cells, node.ref == 0
        for child in node.children.values():
            c, f = self._walk_free(child)
            cells += c
            free = free and f
        return (cells, free) if free else (0, False)

    def total_cells(self) -> int:
        return sum(n.n_cells for n in self.nodes())

    def __len__(self) -> int:
        return len(self.nodes())
