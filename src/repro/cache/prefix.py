"""Cross-request KV prefix caching on the multibuffered sequence plane.

The paper's Section IV-C plane lets a run inherit context through
metadata copies pipelined as transactions instead of recomputing it.
PRs 1-4 exploited that *within* a request; this module extends it
*across* requests: when a request completes, its verified prompt KV is
*donated* into a :class:`~repro.cache.radix.RadixTree` (the cells stay
resident under a retained pool sequence) instead of being freed, and a
later request whose prompt shares a prefix *materializes* the cached
cells into its own canonical partition with the same O(1)
``seq_cp``/``seq_broadcast`` cache-op transactions the engines already
pipeline (IV-C3) — then prefills only the unmatched prompt tail.  Under
shared-system-prompt or multi-turn traffic this converts most prefill
compute into metadata copies, attacking TTFT directly.

Lifecycle per request (all head-side, all deterministic):

1. **match** — pure longest-prefix walk, capped so at least one prompt
   token always prefills (its logits sample the first output token) and
   floored by ``min_match_tokens``;
2. **acquire** — pin (ref-count) the matched path so eviction cannot
   take it while the request is active;
3. **materialize** — emit ``seq_cp`` ops (or one ``seq_broadcast`` when
   several same-sweep admissions match the same node) copying the
   matched cells into the request's canonical sequence;
4. **donate** — on completion, retain the prompt's uncached suffix as a
   new tree node: one ``seq_cp`` from the canonical sequence into a
   freshly allocated pool sequence, ordered *before* the canonical
   partition's release so the cells survive it.  A donation that
   diverges mid-edge first *splits* the node copy-on-write style
   (``seq_cp`` + ``seq_rm`` move the tail cells to a child sequence);
5. **evict** — LRU unpinned leaves are dropped (``seq_rm``, sequence
   back to the pool) whenever retained cells exceed the configured
   budget, the pool runs dry, or serving admission needs cell headroom —
   cached prefixes always yield to live traffic.

The manager only *builds* cache-ops; the serving head sends them, so
ordering against prefill/decode transactions is exactly the pipelined
transaction order of Section IV-C3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cache.radix import RadixNode, RadixTree
from repro.comm.payloads import CacheOp, CacheOpKind
from repro.util.fifo import SequencePool


@dataclass
class PrefixMatch:
    """One prompt's longest cached prefix.

    ``entries`` are ``(node, lo, hi)`` absolute position ranges — the
    last may cover only part of its node's span (mid-edge match, or the
    always-prefill-one-token cap).  ``length`` is the total matched
    token count after caps.
    """

    entries: List[Tuple[RadixNode, int, int]] = field(default_factory=list)
    length: int = 0

    def __bool__(self) -> bool:
        return self.length > 0


class PrefixCacheManager:
    """Head-side radix prefix cache over a shared KV sequence pool.

    Args:
        pool: the serving head's shared :class:`SequencePool`; retained
            tree nodes hold pool sequences and return them on eviction.
        max_cells: retained-cell budget (``EngineConfig.prefix_cache_cells``).
            Donations beyond it evict LRU leaves first and are skipped
            when pinned entries leave no room.
        min_match_tokens: prefix matches (and donated spans) shorter than
            this are ignored — tiny copies are not worth a transaction.
        promote_on_second_hit: donate a span only once it has been
            *offered* twice — the promoted span is the longest head of the
            prompt that a previous donation attempt also carried, so
            shared prefixes still enter the tree while one-shot unique
            tails never do, keeping the tree lean under unique traffic.
            Never changes served tokens, only cache contents.
    """

    def __init__(
        self,
        pool: SequencePool,
        max_cells: int,
        min_match_tokens: int,
        promote_on_second_hit: bool = False,
    ) -> None:
        self.pool = pool
        self.max_cells = max_cells
        self.min_match_tokens = min_match_tokens
        self.promote_on_second_hit = promote_on_second_hit
        self.tree = RadixTree()
        #: Cells currently held by retained tree sequences.
        self.retained_cells = 0
        #: req_id -> pinned match (refs released when the request ends).
        self._active: Dict[int, PrefixMatch] = {}
        #: Shadow trie of every prefix ever *offered* for donation
        #: (second-hit promotion): nested ``token -> child`` dicts.  Only
        #: the part of a new offer that extends a previously offered path
        #: has been "seen twice" and may enter the real tree.
        self._seen_trie: Dict[int, dict] = {}
        self.stats = {
            "requests_hit": 0,
            "requests_missed": 0,
            "hit_tokens": 0,
            "donated_nodes": 0,
            "donated_tokens": 0,
            "deferred_donations": 0,
            "splits": 0,
            "evictions": 0,
            "evicted_cells": 0,
        }

    # -- match / pin ---------------------------------------------------------

    def match(self, prompt: Sequence[int]) -> PrefixMatch:
        """Longest usable cached prefix of ``prompt`` (pure, no side effects).

        Capped at ``len(prompt) - 1``: the final prompt token must always
        prefill, because its logits sample the request's first output
        token.  Matches below ``min_match_tokens`` return empty.
        """
        path, m = self.tree.walk(prompt)
        m = min(m, len(prompt) - 1)
        if m < self.min_match_tokens:
            return PrefixMatch()
        entries: List[Tuple[RadixNode, int, int]] = []
        covered = 0
        for node, k in path:
            if covered >= m:
                break
            hi = min(node.start + k, m)
            entries.append((node, node.start, hi))
            covered = hi
        return PrefixMatch(entries, m)

    def acquire(self, req_id: int, match: PrefixMatch, now: float) -> None:
        """Pin the matched path (ref-count retain).

        Called *before* the admission cell check so that any eviction the
        admission itself triggers cannot reclaim the path it is about to
        materialize; :meth:`release` unpins (also when admission fails
        and the request retries later).  Stats are recorded separately by
        :meth:`note_admitted` — only requests that actually admit count.
        """
        if not match:
            return
        if req_id in self._active:
            raise ValueError(f"request {req_id} already holds a prefix match")
        for node, _, _ in match.entries:
            node.ref += 1
            node.last_used = now
        self._active[req_id] = match

    def note_admitted(self, match: PrefixMatch) -> None:
        """Record one admission's hit/miss outcome."""
        if match:
            self.stats["requests_hit"] += 1
            self.stats["hit_tokens"] += match.length
        else:
            self.stats["requests_missed"] += 1

    def release(self, req_id: int) -> None:
        """Drop a completed request's pins (idempotent for cache misses)."""
        match = self._active.pop(req_id, None)
        if match is None:
            return
        for node, _, _ in match.entries:
            node.ref -= 1

    # -- materialization -----------------------------------------------------

    def ops_for_materialize(
        self, pairs: Sequence[Tuple[PrefixMatch, int]]
    ) -> List[CacheOp]:
        """Cache-ops copying matched cells into each request's canonical seq.

        ``pairs`` is one admission sweep's ``(match, canonical_seq)``
        list.  Spans matched by several requests in the sweep collapse
        into a single multi-target ``seq_broadcast`` transaction — the
        shared-system-prompt fast path where a burst of admissions costs
        one op per cached node, not one per request.  Ops only reference
        already-resident cells, so any op order works; the emitted order
        is deterministic (first-seen span, then pool id).
        """
        grouped: Dict[Tuple[int, int, int], Tuple[RadixNode, int, int, List[int]]] = {}
        for match, canonical in pairs:
            for node, lo, hi in match.entries:
                key = (node.seq, lo, hi)
                if key not in grouped:
                    grouped[key] = (node, lo, hi, [])
                grouped[key][3].append(canonical)
        ops: List[CacheOp] = []
        for node, lo, hi, targets in grouped.values():
            if len(targets) == 1:
                ops.append(CacheOp(CacheOpKind.SEQ_CP, node.seq, targets[0], lo, hi))
            else:
                ops.append(
                    CacheOp(
                        CacheOpKind.SEQ_BROADCAST, node.seq, targets[0], lo, hi,
                        targets=tuple(targets),
                    )
                )
        return ops

    # -- donation ------------------------------------------------------------

    def _seen_prefix_len(self, prompt: Sequence[int]) -> int:
        """Longest head of ``prompt`` carried by a previous donation offer."""
        node = self._seen_trie
        n = 0
        for tok in prompt:
            nxt = node.get(tok)
            if nxt is None:
                break
            node = nxt
            n += 1
        return n

    def _remember(self, prompt: Sequence[int]) -> None:
        """Record ``prompt`` in the shadow trie of offered donation spans."""
        node = self._seen_trie
        for tok in prompt:
            node = node.setdefault(tok, {})

    def ops_for_donate(
        self, prompt: Sequence[int], canonical_seq: int, now: float
    ) -> List[CacheOp]:
        """Retain a completed request's uncached prompt suffix in the tree.

        Walks the *current* tree (it may have grown or shrunk since this
        request matched), splits a mid-edge divergence copy-on-write
        style, and copies the new span's cells out of the canonical
        sequence into a fresh retained sequence.  Must be called before
        the canonical partition's release ops are sent — the returned
        ops are ordered to precede them in the same transaction batch.

        Yields to pressure rather than creating it: evicts LRU leaves to
        stay within ``max_cells`` and skips the donation entirely when
        pinned entries or pool exhaustion leave no room.
        """
        ops: List[CacheOp] = []
        path, m = self.tree.walk(prompt)
        for node, _ in path:
            node.last_used = now
        span = len(prompt) - m
        if span < self.min_match_tokens:
            return ops
        if self.promote_on_second_hit:
            seen = self._seen_prefix_len(prompt)
            self._remember(prompt)
            if seen - m < self.min_match_tokens:
                # Nothing (or only a sliver) beyond the current tree match
                # has been offered before: keep the tree untouched.  The
                # cells release with the canonical partition as if the
                # cache were off.
                self.stats["deferred_donations"] += 1
                return ops
            if seen < len(prompt):
                # Promote only the twice-offered head; the unique tail
                # never enters the tree.
                prompt = prompt[:seen]
                span = seen - m
        # The walk's own path is off-limits to the evictions this
        # donation triggers: the new node attaches under its last entry.
        protect = {node for node, _ in path}
        # Cell budget: evict LRU leaves until the new span fits.
        while self.retained_cells + span > self.max_cells:
            if not self._evict_one(ops, protect):
                return ops
        parent = self.tree.root
        if path:
            last, k = path[-1]
            if k < len(last.tokens):
                # Mid-edge divergence: copy-on-write split.  The tail's
                # cells move to a child sequence so the shared head span
                # can be referenced (and the tail evicted) independently.
                if not self._seq_available(ops, protect):
                    return ops
                child_seq = self.pool.allocate()
                split_pos = last.start + k
                ops.append(
                    CacheOp(CacheOpKind.SEQ_CP, last.seq, child_seq,
                            split_pos, last.end)
                )
                ops.append(
                    CacheOp(CacheOpKind.SEQ_RM, last.seq, last.seq,
                            split_pos, last.end)
                )
                child = self.tree.split(last, k, child_seq)
                self.stats["splits"] += 1
                self._repin_after_split(last, child, split_pos)
                protect.add(child)
                parent = last
            else:
                parent = last
        if not self._seq_available(ops, protect):
            return ops
        seq = self.pool.allocate()
        self.tree.insert_child(parent, prompt[m:], m, seq, now)
        ops.append(CacheOp(CacheOpKind.SEQ_CP, canonical_seq, seq, m, len(prompt)))
        self.retained_cells += span
        self.stats["donated_nodes"] += 1
        self.stats["donated_tokens"] += span
        return ops

    def _repin_after_split(
        self, parent: RadixNode, child: RadixNode, split_pos: int
    ) -> None:
        """Fix active pins that span a just-split node.

        A pinned entry covering positions past the split point now rests
        on two nodes; the child inherits exactly the pins that reach into
        its span, so release() keeps refs balanced and eviction keeps
        honoring in-use spans.
        """
        for match in self._active.values():
            for i, (node, lo, hi) in enumerate(match.entries):
                if node is parent and hi > split_pos:
                    match.entries[i] = (parent, lo, split_pos)
                    match.entries.insert(i + 1, (child, split_pos, hi))
                    child.ref += 1
                    break

    # -- eviction ------------------------------------------------------------

    def _seq_available(self, ops: List[CacheOp], protect=()) -> bool:
        """Ensure the pool can hand out one sequence, evicting if needed."""
        while not self.pool.available():
            if not self._evict_one(ops, protect):
                return False
        return True

    def _evict_one(self, ops: List[CacheOp], protect=()) -> int:
        """Evict the LRU unpinned leaf; returns the cells freed (0 = none).

        ``protect`` excludes nodes from eviction for the duration of one
        operation — the donation walk's own path must never be reclaimed
        by the eviction *that donation itself triggers* (the new node
        would attach under a detached parent, leaking its sequence).

        The full-tree LRU scan per call is fine: every node holds a pool
        sequence, so the tree can never outgrow the pool's capacity
        (tens of nodes) — even a drain loop stays trivially cheap.
        """
        leaves = [n for n in self.tree.evictable_leaves() if n not in protect]
        if not leaves:
            return 0
        node = leaves[0]
        ops.append(
            CacheOp(CacheOpKind.SEQ_RM, node.seq, node.seq, node.start, node.end)
        )
        freed = node.n_cells
        self.tree.remove_leaf(node)
        self.pool.release(node.seq)
        self.retained_cells -= freed
        self.stats["evictions"] += 1
        self.stats["evicted_cells"] += freed
        return freed

    def evict_lru_leaf(self) -> Tuple[int, List[CacheOp]]:
        """Evict the single LRU unpinned leaf: ``(cells_freed, seq_rm ops)``.

        Serving admission calls this when a new request's post-match
        demand does not fit beside the retained cells: cached prefixes
        are reclaimable capacity, released on demand.  The returned ops
        are pipelined before the admitted request's prefill, so the
        freed cells are really available by the time its allocation
        executes on a worker.  ``(0, [])`` when everything left is
        pinned (or the tree is empty).
        """
        ops: List[CacheOp] = []
        freed = self._evict_one(ops)
        return freed, ops

    def ops_for_pool_seq(self) -> Tuple[bool, List[CacheOp]]:
        """Free one pool sequence for admission, evicting LRU leaves.

        Returns ``(success, ops)``.  Ops from partial evictions must be
        sent even on failure — the head-side tree already dropped those
        nodes, and their sequences return to the pool for reuse, so the
        workers must see the matching ``seq_rm`` before any reuse.
        """
        ops: List[CacheOp] = []
        return self._seq_available(ops), ops

    # -- accounting ----------------------------------------------------------

    def evictable_cells(self) -> int:
        """Retained cells reclaimable right now (unpinned subtrees)."""
        return self.tree.evictable_cells()

    def stats_dict(self) -> Dict[str, int]:
        out = dict(self.stats)
        out["retained_cells"] = self.retained_cells
        out["retained_nodes"] = len(self.tree)
        return out
