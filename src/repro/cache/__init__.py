"""Cross-request KV prefix caching (radix prompt sharing, paper IV-C plane)."""

from repro.cache.prefix import PrefixCacheManager, PrefixMatch
from repro.cache.radix import RadixNode, RadixTree

__all__ = ["PrefixCacheManager", "PrefixMatch", "RadixNode", "RadixTree"]
