"""Layer partitioning across pipeline ranks.

Layers are assigned proportionally to each node's effective matvec
bandwidth (the quantity that determines per-layer time on bandwidth-bound
inference), using the largest-remainder method so totals are exact.  On a
homogeneous cluster this reduces to an even split; on the heterogeneous
cluster B the slow Optiplexes receive proportionally fewer layers — the
same tuning the paper performs by hand with llama.cpp's split ratios.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.cluster.hardware import NodeSpec


def split_layers(n_layers: int, weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Split ``n_layers`` into contiguous ranges proportional to ``weights``.

    Every rank receives at least one layer when ``n_layers >= len(weights)``.

    Returns:
        [lo, hi) ranges, one per rank, covering layers exactly once.
    """
    n_ranks = len(weights)
    if n_ranks == 0:
        raise ValueError("need at least one rank")
    if n_layers < n_ranks:
        raise ValueError(f"cannot split {n_layers} layers across {n_ranks} ranks")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    # Largest-remainder apportionment with a floor of one layer per rank.
    quotas = [max(1.0, n_layers * w / total) for w in weights]
    counts = [int(q) for q in quotas]
    remainders = [q - c for q, c in zip(quotas, counts)]
    # Fix the total: add to the largest remainders, trim from the smallest
    # quotas that stay above the one-layer floor.
    while sum(counts) < n_layers:
        i = max(range(n_ranks), key=lambda j: remainders[j])
        counts[i] += 1
        remainders[i] = -1.0
    while sum(counts) > n_layers:
        candidates = [j for j in range(n_ranks) if counts[j] > 1]
        i = min(candidates, key=lambda j: remainders[j])
        counts[i] -= 1
        remainders[i] = 2.0
    ranges: List[Tuple[int, int]] = []
    lo = 0
    for c in counts:
        ranges.append((lo, lo + c))
        lo += c
    assert lo == n_layers
    return ranges


def partition_for(n_layers: int, nodes: Sequence[NodeSpec]) -> List[Tuple[int, int]]:
    """Bandwidth-weighted layer ranges for the given pipeline nodes."""
    weights = [node.effective_mem_bw for node in nodes]
    return split_layers(n_layers, weights)
