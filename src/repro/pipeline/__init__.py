"""Pipeline-parallel execution support: layer partitioning across ranks."""

from repro.pipeline.partition import split_layers, partition_for

__all__ = ["split_layers", "partition_for"]
