"""Retained pure-Python KV-cache metadata reference.

This is the original per-cell ``List[Set[int]]`` implementation the
vectorized :class:`~repro.models.kv_cache.KVCache` replaced.  It is kept
(metadata plane only — no tensor store) as the executable specification
of the cache semantics: the differential property test drives identical
op sequences through both implementations (and through
:class:`~repro.models.range_cache.RangeKVCache`) and asserts identical
observable state, including allocation order, positional dedupe in
``seq_cp``, and free-on-empty.

Do not use this class in engine code — it is O(n_cells) per operation by
construction.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.models.kv_cache import KVCacheError


class ReferenceKVCache:
    """Per-cell set metadata with linear-scan sequence ops (reference)."""

    def __init__(self, n_cells: int) -> None:
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self.n_cells = n_cells
        #: cell -> position (-1 when free).
        self.pos = np.full(n_cells, -1, dtype=np.int64)
        #: cell -> set of sequence ids.
        self.seqs: List[Set[int]] = [set() for _ in range(n_cells)]

    # -- allocation ------------------------------------------------------------

    @property
    def n_used(self) -> int:
        return int(np.count_nonzero(self.pos >= 0))

    @property
    def n_free(self) -> int:
        return self.n_cells - self.n_used

    def allocate(self, entries: Sequence[Tuple[int, Iterable[int]]]) -> List[int]:
        """Allocate one cell per (pos, seq_ids) entry; returns cell indices."""
        free = np.flatnonzero(self.pos < 0)
        if len(free) < len(entries):
            raise KVCacheError(
                f"cache overflow: need {len(entries)} cells, {len(free)} free"
            )
        cells = []
        for (p, seq_ids), cell in zip(entries, free):
            cell = int(cell)
            seq_ids = set(seq_ids)
            if not seq_ids:
                raise KVCacheError("a cell must belong to at least one sequence")
            if p < 0:
                raise KVCacheError(f"invalid position {p}")
            self.pos[cell] = p
            self.seqs[cell] = seq_ids
            cells.append(cell)
        return cells

    # -- sequence operations -----------------------------------------------------

    def seq_cp(self, seq_src: int, seq_dst: int, p0: int, p1: int) -> int:
        """Add ``seq_dst`` to cells of ``seq_src`` with p0 <= pos < p1."""
        self._check_range(p0, p1)
        if seq_src == seq_dst:
            return 0
        dst_positions = {
            int(self.pos[c])
            for c in np.flatnonzero(self.pos >= 0)
            if seq_dst in self.seqs[int(c)]
        }
        n = 0
        for cell in self._cells_of(seq_src, p0, p1):
            p = int(self.pos[cell])
            if p in dst_positions:
                continue
            self.seqs[cell].add(seq_dst)
            dst_positions.add(p)
            n += 1
        return n

    def seq_rm(self, seq: int, p0: int, p1: int) -> int:
        """Remove ``seq`` from cells with p0 <= pos < p1; free emptied cells."""
        self._check_range(p0, p1)
        n = 0
        for cell in self._cells_of(seq, p0, p1):
            self.seqs[cell].discard(seq)
            if not self.seqs[cell]:
                self.pos[cell] = -1
            n += 1
        return n

    def seq_keep(self, seq: int) -> int:
        """Drop every sequence except ``seq``; free cells not in it."""
        n = 0
        for cell in range(self.n_cells):
            if self.pos[cell] < 0:
                continue
            if seq in self.seqs[cell]:
                self.seqs[cell] = {seq}
            else:
                self.seqs[cell] = set()
                self.pos[cell] = -1
                n += 1
        return n

    def seq_broadcast(self, seq_src: int, p0: int, p1: int, targets: Iterable[int]) -> int:
        n = 0
        for dst in targets:
            n += self.seq_cp(seq_src, dst, p0, p1)
        return n

    # -- queries ---------------------------------------------------------------

    def seq_max_pos(self, seq: int) -> int:
        """Highest position stored for ``seq``, or -1 when empty."""
        best = -1
        for cell in range(self.n_cells):
            if self.pos[cell] >= 0 and seq in self.seqs[cell] and self.pos[cell] > best:
                best = int(self.pos[cell])
        return best

    def seq_cells(self, seq: int) -> List[int]:
        """Cells belonging to ``seq``, sorted by position."""
        cells = [c for c in range(self.n_cells) if self.pos[c] >= 0 and seq in self.seqs[c]]
        return sorted(cells, key=lambda c: int(self.pos[c]))

    def seq_positions(self, seq: int) -> List[int]:
        """Sorted positions stored for ``seq``."""
        return [int(self.pos[c]) for c in self.seq_cells(seq)]

    def visible_cells(self, seq: int, pos: int, inclusive: bool = True) -> np.ndarray:
        """Cell indices visible to a query at (seq, pos)."""
        mask = self.pos >= 0
        if inclusive:
            idx = np.flatnonzero(mask & (self.pos <= pos))
        else:
            idx = np.flatnonzero(mask & (self.pos < pos))
        return np.array([c for c in idx if seq in self.seqs[c]], dtype=np.int64)

    def has_entry(self, seq: int, pos: int) -> bool:
        """True when ``seq`` already holds a cell at position ``pos``."""
        idx = np.flatnonzero(self.pos == pos)
        return any(seq in self.seqs[c] for c in idx)

    # -- internals ---------------------------------------------------------------

    def _cells_of(self, seq: int, p0: int, p1: int) -> List[int]:
        out = []
        for cell in np.flatnonzero((self.pos >= p0) & (self.pos < p1)):
            if seq in self.seqs[int(cell)]:
                out.append(int(cell))
        return out

    @staticmethod
    def _check_range(p0: int, p1: int) -> None:
        if p0 < 0 or p1 < p0:
            raise KVCacheError(f"invalid position range [{p0}, {p1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReferenceKVCache(cells={self.n_cells}, used={self.n_used})"
