"""The paper's model pairs (Tables I and III) as architecture descriptors.

Shapes come from the models' published configs.  Two conventions:

- Falcon uses a non-gated 4x MLP (two matrices); its ``d_ff`` below is the
  *SwiGLU-equivalent* width (2/3 of twice the real width) so that the
  3-matrix parameter formula in :class:`~repro.models.arch.ArchSpec`
  yields the correct parameter count.
- Goliath-120B is a layer-splice merge of two Llama-2-70Bs: same width,
  137 layers — the paper's "tall and thin" architecture.

``acceptance`` on a :class:`ModelPair` is the paper's measured token
acceptance rate where reported (Section V-B); GPU-cluster pairs, for which
the paper reports no rates, carry estimates chosen to reproduce Figure 9's
relative ordering (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.arch import ArchSpec
from repro.models.quant import Quant


def _llama2_7b(name: str, quant: Quant) -> ArchSpec:
    return ArchSpec(name, n_layers=32, d_model=4096, n_heads=32, n_kv_heads=32,
                    d_ff=11008, vocab=32000, quant=quant)


def _llama2_13b(name: str, quant: Quant) -> ArchSpec:
    return ArchSpec(name, n_layers=40, d_model=5120, n_heads=40, n_kv_heads=40,
                    d_ff=13824, vocab=32000, quant=quant)


def _llama2_70b(name: str, quant: Quant) -> ArchSpec:
    return ArchSpec(name, n_layers=80, d_model=8192, n_heads=64, n_kv_heads=8,
                    d_ff=28672, vocab=32000, quant=quant)


MODEL_ZOO: dict[str, ArchSpec] = {
    # ----- Table I (CPU clusters) ------------------------------------------
    "dolphin-70b": _llama2_70b("Dolphin 2.1 70B", Quant.Q3_K_M),
    "tinyllama-1.1b": ArchSpec("TinyLlama OpenOrca 1.1B", n_layers=22, d_model=2048,
                               n_heads=32, n_kv_heads=4, d_ff=5632, vocab=32000,
                               quant=Quant.Q4_K_M),
    "orca2-7b": _llama2_7b("Orca 2 7B", Quant.Q4_K_M),
    "goliath-120b": ArchSpec("Goliath 120B", n_layers=137, d_model=8192, n_heads=64,
                             n_kv_heads=8, d_ff=28672, vocab=32000, quant=Quant.Q2_K),
    "xwin-7b": _llama2_7b("XWinLM 0.2 7B", Quant.Q4_K_M),
    "xwin-13b": _llama2_13b("XWinLM 0.1 13B", Quant.Q4_K_M),
    "falcon-180b": ArchSpec("Falcon 180B", n_layers=80, d_model=14848, n_heads=232,
                            n_kv_heads=8, d_ff=39595, vocab=65024, quant=Quant.Q3_K_M),
    "falcon-40b": ArchSpec("Falcon 40B", n_layers=60, d_model=8192, n_heads=128,
                           n_kv_heads=8, d_ff=21845, vocab=65024, quant=Quant.Q3_K_M),
    "falcon-7b": ArchSpec("Falcon 7B", n_layers=32, d_model=4544, n_heads=71,
                          n_kv_heads=1, d_ff=12117, vocab=65024, quant=Quant.Q3_K_M),
    # ----- Table III additions (GPU cluster) --------------------------------
    "senku-70b": _llama2_70b("Senku 70B", Quant.Q3_K_M),
    "llongorca-7b": _llama2_7b("LlongOrca 7B", Quant.Q4_K_M),
    "dolphin29-70b": ArchSpec("Dolphin 2.9 70B (Llama 3)", n_layers=80, d_model=8192,
                              n_heads=64, n_kv_heads=8, d_ff=28672, vocab=128256,
                              quant=Quant.Q3_K_M),
    "dolphin29-8b": ArchSpec("Dolphin 2.9 8B (Llama 3)", n_layers=32, d_model=4096,
                             n_heads=32, n_kv_heads=8, d_ff=14336, vocab=128256,
                             quant=Quant.Q4_K_M),
    "qwen-33b": ArchSpec("Qwen 33B", n_layers=64, d_model=5120, n_heads=40,
                         n_kv_heads=8, d_ff=27392, vocab=152064, quant=Quant.Q5_K),
    "qwen-7b": ArchSpec("Qwen 7B", n_layers=32, d_model=4096, n_heads=32,
                        n_kv_heads=32, d_ff=11008, vocab=152064, quant=Quant.Q5_K),
    "mixtral-8x22b": ArchSpec("Mixtral 8x22B", n_layers=56, d_model=6144, n_heads=48,
                              n_kv_heads=8, d_ff=16384, vocab=32000, quant=Quant.Q3_K_M,
                              n_experts=8, n_active_experts=2),
    "mistral-7b": ArchSpec("Mistral 7B", n_layers=32, d_model=4096, n_heads=32,
                           n_kv_heads=8, d_ff=14336, vocab=32000, quant=Quant.Q4_K_M),
    "yi-34b": ArchSpec("Yi 34B", n_layers=60, d_model=7168, n_heads=56,
                       n_kv_heads=8, d_ff=20480, vocab=64000, quant=Quant.Q3_K_M),
    "yi-9b": ArchSpec("Yi 9B", n_layers=48, d_model=4096, n_heads=32,
                      n_kv_heads=4, d_ff=11008, vocab=64000, quant=Quant.Q4_K_M),
}


@dataclass(frozen=True)
class ModelPair:
    """A (target, draft) pairing with its measured/estimated acceptance rate.

    Attributes:
        key: short identifier used by experiment harnesses.
        target: zoo key of the target model.
        draft: zoo key of the speculative model.
        acceptance: per-token probability the draft's greedy choice matches
            the target's (paper Section V-B where reported).
        label: legend text as it appears in the paper's figures.
        measured: True when ``acceptance`` is a paper-reported number.
    """

    key: str
    target: str
    draft: str
    acceptance: float
    label: str
    measured: bool = True

    @property
    def target_arch(self) -> ArchSpec:
        return MODEL_ZOO[self.target]

    @property
    def draft_arch(self) -> ArchSpec:
        return MODEL_ZOO[self.draft]


#: Table I pairings with the acceptance rates reported in Section V-B.
CPU_PAIRS: dict[str, ModelPair] = {
    "dolphin+tinyllama": ModelPair("dolphin+tinyllama", "dolphin-70b", "tinyllama-1.1b",
                                   0.79, "Dolphin-70B / TinyLlama"),
    "dolphin+orca2": ModelPair("dolphin+orca2", "dolphin-70b", "orca2-7b",
                               0.66, "Dolphin-70B / Orca2-7B"),
    "goliath+xwin7b": ModelPair("goliath+xwin7b", "goliath-120b", "xwin-7b",
                                0.52, "Goliath-120B / XWin-7B"),
    "goliath+xwin13b": ModelPair("goliath+xwin13b", "goliath-120b", "xwin-13b",
                                 0.61, "Goliath-120B / XWin-13B"),
    "falcon+7b": ModelPair("falcon+7b", "falcon-180b", "falcon-7b",
                           0.68675, "Falcon-180B / Falcon-7B"),
    "falcon+40b": ModelPair("falcon+40b", "falcon-180b", "falcon-40b",
                            0.6947, "Falcon-180B / Falcon-40B"),
}

#: Table III pairings (GPU cluster).  Acceptance rates are estimates — the
#: paper does not report them — chosen to reproduce Figure 9's ordering.
GPU_PAIRS: dict[str, ModelPair] = {
    "senku+tinyllama": ModelPair("senku+tinyllama", "senku-70b", "tinyllama-1.1b",
                                 0.72, "Senku-70B / TinyLlama", measured=False),
    "senku+llongorca": ModelPair("senku+llongorca", "senku-70b", "llongorca-7b",
                                 0.70, "Senku-70B / LlongOrca", measured=False),
    "dolphin21+tinyllama": ModelPair("dolphin21+tinyllama", "dolphin-70b", "tinyllama-1.1b",
                                     0.79, "Dolphin 2.1 70B / TinyLlama"),
    "dolphin29+8b": ModelPair("dolphin29+8b", "dolphin29-70b", "dolphin29-8b",
                              0.88, "Dolphin 2.9 70B / 8B (Llama 3)", measured=False),
    "qwen+7b": ModelPair("qwen+7b", "qwen-33b", "qwen-7b",
                         0.74, "Qwen 33B / 7B Q5_K", measured=False),
    "mixtral+mistral": ModelPair("mixtral+mistral", "mixtral-8x22b", "mistral-7b",
                                 0.62, "Mixtral 8x22B / Mistral 7B", measured=False),
    "yi+9b": ModelPair("yi+9b", "yi-34b", "yi-9b",
                       0.73, "Yi 34B / 9B", measured=False),
}

ALL_PAIRS: dict[str, ModelPair] = {**CPU_PAIRS, **GPU_PAIRS}


def get_model(key: str) -> ArchSpec:
    """Look up a zoo model by key, with a helpful error."""
    try:
        return MODEL_ZOO[key]
    except KeyError:
        raise KeyError(f"unknown model {key!r}; available: {sorted(MODEL_ZOO)}") from None


def get_pair(key: str) -> ModelPair:
    """Look up a model pair by key, with a helpful error."""
    try:
        return ALL_PAIRS[key]
    except KeyError:
        raise KeyError(f"unknown pair {key!r}; available: {sorted(ALL_PAIRS)}") from None
