"""A toy deterministic tokenizer for the runnable examples.

Word-and-punctuation splitting with a stable hash-bucket vocabulary: the
same text always maps to the same ids, round-trips through a reverse map
built on the fly, and needs no external vocabulary files.  Adequate for
demonstrating the inference API; the experiments use synthetic token
streams directly.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.util.rng import hash_tokens

_WORD_RE = re.compile(r"\w+|[^\w\s]")


class ToyTokenizer:
    """Deterministic hash-bucket tokenizer."""

    def __init__(self, vocab: int = 32000, reserved: int = 16) -> None:
        if vocab <= reserved:
            raise ValueError("vocab must exceed the reserved id range")
        self.vocab = vocab
        self.reserved = reserved
        self._decode: Dict[int, str] = {}

    @property
    def bos(self) -> int:
        return 1

    @property
    def eos(self) -> int:
        return 2

    def encode(self, text: str, add_bos: bool = True) -> List[int]:
        """Tokenize ``text``; remembers the pieces for decoding."""
        ids: List[int] = [self.bos] if add_bos else []
        for piece in _WORD_RE.findall(text):
            h = hash_tokens(0xBEEF, piece.encode("utf-8"))
            tid = self.reserved + h % (self.vocab - self.reserved)
            self._decode.setdefault(tid, piece)
            ids.append(tid)
        return ids

    def decode(self, ids: List[int]) -> str:
        """Best-effort detokenization (unknown ids render as ⟨id⟩)."""
        pieces = []
        for tid in ids:
            if tid == self.bos or tid == self.eos:
                continue
            pieces.append(self._decode.get(tid, f"<{tid}>"))
        return " ".join(pieces)
