"""llama.cpp quantization formats.

Effective bits-per-weight figures are derived from published GGUF file
sizes (file bytes x 8 / parameter count), which fold in the per-block
scales and the unquantized norm/embedding tensors — the quantity that
matters for the memory-bandwidth cost model.
"""

from __future__ import annotations

import enum


class Quant(str, enum.Enum):
    """Quantization formats appearing in Tables I and III."""

    Q2_K = "Q2_K"
    Q3_K_M = "Q3_K_M"
    Q4_K_M = "Q4_K_M"
    Q5_K = "Q5_K"
    Q6_K = "Q6_K"
    Q8_0 = "Q8_0"
    F16 = "F16"
    F32 = "F32"


_BITS_PER_WEIGHT: dict[Quant, float] = {
    Quant.Q2_K: 3.40,
    Quant.Q3_K_M: 3.90,
    Quant.Q4_K_M: 4.85,
    Quant.Q5_K: 5.65,
    Quant.Q6_K: 6.60,
    Quant.Q8_0: 8.50,
    Quant.F16: 16.0,
    Quant.F32: 32.0,
}


def bits_per_weight(quant: Quant) -> float:
    """Effective stored bits per parameter for ``quant``."""
    return _BITS_PER_WEIGHT[Quant(quant)]
