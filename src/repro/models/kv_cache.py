"""llama.cpp-style KV cache with per-cell sequence metadata.

Each cache cell stores a token position and the *set of sequence ids* the
entry belongs to (paper Section II-B).  Sequence-level operations
(`seq_cp`, `seq_rm`) manipulate only this metadata: copying a range of
cells from one sequence to another adds the destination id to the cells'
sets — the actual K/V tensors are shared, which is why the paper's
"buffer swap" between a speculative partition and the canonical sequence
is near-free.

The cache is used at two fidelity levels:

- metadata-only (``n_layers=0``): the cluster simulation tracks cell
  occupancy and sequence structure without tensors;
- tensor-backed: the functional transformer stores real K/V arrays per
  layer and builds attention masks from the metadata.

A cell is free when its sequence set is empty.  Attention visibility for a
query (seq, pos) is: cell carries ``seq`` and ``cell.pos < pos`` (strictly
earlier positions; the query token's own cell is written during the same
forward but tokens do not attend to themselves ahead of their position).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


class KVCacheError(RuntimeError):
    """Raised on cache misuse: overflow, overwriting live cells, bad ranges."""


class KVCache:
    """Fixed-capacity KV cache with sequence metadata.

    Args:
        n_cells: total cell capacity.
        n_layers: number of layers storing tensors (0 = metadata only).
        kv_dim: width of one K (or V) vector when tensor-backed.
        dtype: tensor dtype for the K/V store.
    """

    def __init__(
        self,
        n_cells: int,
        n_layers: int = 0,
        kv_dim: int = 0,
        dtype: np.dtype = np.float32,
    ) -> None:
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self.n_cells = n_cells
        self.n_layers = n_layers
        self.kv_dim = kv_dim
        #: cell -> position (-1 when free).
        self.pos = np.full(n_cells, -1, dtype=np.int64)
        #: cell -> set of sequence ids.
        self.seqs: List[Set[int]] = [set() for _ in range(n_cells)]
        if n_layers > 0:
            if kv_dim <= 0:
                raise ValueError("tensor-backed cache needs kv_dim > 0")
            self.k = np.zeros((n_layers, n_cells, kv_dim), dtype=dtype)
            self.v = np.zeros((n_layers, n_cells, kv_dim), dtype=dtype)
        else:
            self.k = None
            self.v = None

    # -- allocation ------------------------------------------------------------

    @property
    def n_used(self) -> int:
        return int(np.count_nonzero(self.pos >= 0))

    @property
    def n_free(self) -> int:
        return self.n_cells - self.n_used

    def allocate(self, entries: Sequence[Tuple[int, Iterable[int]]]) -> List[int]:
        """Allocate one cell per (pos, seq_ids) entry; returns cell indices.

        All layers of a decode batch share these indices (each layer writes
        its own K/V row at the same cell), mirroring llama.cpp's slot
        allocation per ``llama_decode``.

        Raises:
            KVCacheError: when the cache is full.
        """
        free = np.flatnonzero(self.pos < 0)
        if len(free) < len(entries):
            raise KVCacheError(
                f"cache overflow: need {len(entries)} cells, {len(free)} free"
            )
        cells = []
        for (p, seq_ids), cell in zip(entries, free):
            cell = int(cell)
            seq_ids = set(seq_ids)
            if not seq_ids:
                raise KVCacheError("a cell must belong to at least one sequence")
            if p < 0:
                raise KVCacheError(f"invalid position {p}")
            self.pos[cell] = p
            self.seqs[cell] = seq_ids
            cells.append(cell)
        return cells

    def write(self, layer: int, cells: Sequence[int], k: np.ndarray, v: np.ndarray) -> None:
        """Store K/V rows for ``cells`` at ``layer`` (tensor-backed only)."""
        if self.k is None:
            raise KVCacheError("metadata-only cache cannot store tensors")
        self.k[layer, list(cells)] = k
        self.v[layer, list(cells)] = v

    # -- sequence operations -----------------------------------------------------

    def seq_cp(self, seq_src: int, seq_dst: int, p0: int, p1: int) -> int:
        """Add ``seq_dst`` to cells of ``seq_src`` with p0 <= pos < p1.

        Returns the number of cells affected.  Metadata-only: K/V tensors
        are shared between the sequences afterwards.  A position the
        destination already holds is skipped: a second (seq, pos) cell
        would double-count that key in attention, and interval metadata
        (:class:`~repro.models.range_cache.RangeKVCache`) cannot represent
        the duplicate.
        """
        self._check_range(p0, p1)
        if seq_src == seq_dst:
            return 0
        dst_positions = {
            int(self.pos[c])
            for c in np.flatnonzero(self.pos >= 0)
            if seq_dst in self.seqs[int(c)]
        }
        n = 0
        for cell in self._cells_of(seq_src, p0, p1):
            p = int(self.pos[cell])
            if p in dst_positions:
                continue
            self.seqs[cell].add(seq_dst)
            dst_positions.add(p)
            n += 1
        return n

    def seq_rm(self, seq: int, p0: int, p1: int) -> int:
        """Remove ``seq`` from cells with p0 <= pos < p1; free emptied cells."""
        self._check_range(p0, p1)
        n = 0
        for cell in self._cells_of(seq, p0, p1):
            self.seqs[cell].discard(seq)
            if not self.seqs[cell]:
                self.pos[cell] = -1
            n += 1
        return n

    def seq_keep(self, seq: int) -> int:
        """Drop every sequence except ``seq``; free cells not in it."""
        n = 0
        for cell in range(self.n_cells):
            if self.pos[cell] < 0:
                continue
            if seq in self.seqs[cell]:
                self.seqs[cell] = {seq}
            else:
                self.seqs[cell] = set()
                self.pos[cell] = -1
                n += 1
        return n

    def seq_broadcast(self, seq_src: int, p0: int, p1: int, targets: Iterable[int]) -> int:
        """Copy ``seq_src``'s cells in range into every sequence in ``targets``.

        Implements acceptance propagation (Section IV-C2): accepted entries
        are copied to all other sequences so new runs find correct context.
        """
        n = 0
        for dst in targets:
            n += self.seq_cp(seq_src, dst, p0, p1)
        return n

    # -- queries ---------------------------------------------------------------

    def seq_max_pos(self, seq: int) -> int:
        """Highest position stored for ``seq``, or -1 when empty."""
        best = -1
        for cell in range(self.n_cells):
            if self.pos[cell] >= 0 and seq in self.seqs[cell] and self.pos[cell] > best:
                best = int(self.pos[cell])
        return best

    def seq_cells(self, seq: int) -> List[int]:
        """Cells belonging to ``seq``, sorted by position."""
        cells = [c for c in range(self.n_cells) if self.pos[c] >= 0 and seq in self.seqs[c]]
        return sorted(cells, key=lambda c: int(self.pos[c]))

    def seq_positions(self, seq: int) -> List[int]:
        """Sorted positions stored for ``seq``."""
        return [int(self.pos[c]) for c in self.seq_cells(seq)]

    def visible_cells(self, seq: int, pos: int, inclusive: bool = True) -> np.ndarray:
        """Cell indices visible to a query at (seq, pos).

        A cell is visible when it belongs to ``seq`` and sits at an earlier
        position; with ``inclusive`` (the default, matching causal
        self-attention) the query's own position is visible too.
        """
        mask = self.pos >= 0
        if inclusive:
            idx = np.flatnonzero(mask & (self.pos <= pos))
        else:
            idx = np.flatnonzero(mask & (self.pos < pos))
        return np.array([c for c in idx if seq in self.seqs[c]], dtype=np.int64)

    def has_entry(self, seq: int, pos: int) -> bool:
        """True when ``seq`` already holds a cell at position ``pos``."""
        idx = np.flatnonzero(self.pos == pos)
        return any(seq in self.seqs[c] for c in idx)

    # -- internals ---------------------------------------------------------------

    def _cells_of(self, seq: int, p0: int, p1: int) -> List[int]:
        out = []
        for cell in np.flatnonzero((self.pos >= p0) & (self.pos < p1)):
            if seq in self.seqs[int(cell)]:
                out.append(int(cell))
        return out

    @staticmethod
    def _check_range(p0: int, p1: int) -> None:
        if p0 < 0 or p1 < p0:
            raise KVCacheError(f"invalid position range [{p0}, {p1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KVCache(cells={self.n_cells}, used={self.n_used}, layers={self.n_layers})"
