"""llama.cpp-style KV cache with vectorized per-cell sequence metadata.

Each cache cell stores a token position and the *set of sequence ids* the
entry belongs to (paper Section II-B).  Sequence-level operations
(`seq_cp`, `seq_rm`) manipulate only this metadata: copying a range of
cells from one sequence to another adds the destination id to the cells'
sets — the actual K/V tensors are shared, which is why the paper's
"buffer swap" between a speculative partition and the canonical sequence
is near-free.

The metadata plane is stored as NumPy state rather than Python sets:

- ``pos``: ``(n_cells,)`` int64 positions, -1 when free;
- ``_member``: ``(n_cells, n_seq_cols)`` boolean membership matrix, with
  columns grown on demand as higher sequence ids appear;
- ``_free``: a min-heap of free cell indices, so allocation hands out the
  lowest-indexed free cells (the same order a linear scan would) in
  O(log n) instead of scanning every cell.

Sequence ops and queries are masked-array expressions over this state —
O(1) or one vectorized pass — with semantics identical to the retained
pure-Python reference (:mod:`repro.models.kv_cache_ref`), which a
differential property test asserts: positional dedupe in ``seq_cp``,
free-on-empty, strict/inclusive visibility.

The cache is used at two fidelity levels:

- metadata-only (``n_layers=0``): the cluster simulation tracks cell
  occupancy and sequence structure without tensors;
- tensor-backed: the functional transformer stores real K/V arrays per
  layer and builds attention masks from the metadata.

A cell is free when its sequence set is empty.  Attention visibility for a
query (seq, pos) is: cell carries ``seq`` and ``cell.pos < pos`` (strictly
earlier positions; the query token's own cell is written during the same
forward but tokens do not attend to themselves ahead of their position).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

#: Initial sequence-id capacity of the membership matrix.
_INITIAL_SEQ_COLS = 8


class KVCacheError(RuntimeError):
    """Raised on cache misuse: overflow, overwriting live cells, bad ranges."""


class _SeqsView:
    """Read-only per-cell sequence sets derived from the membership matrix.

    Kept for API compatibility (``cache.seqs[cell] == {0, 2}``); mutation
    goes through the sequence ops, never through this view.
    """

    __slots__ = ("_cache",)

    def __init__(self, cache: "KVCache") -> None:
        self._cache = cache

    def __getitem__(self, cell: int) -> Set[int]:
        return {int(s) for s in np.flatnonzero(self._cache._member[cell])}

    def __len__(self) -> int:
        return self._cache.n_cells


class KVCache:
    """Fixed-capacity KV cache with vectorized sequence metadata.

    Args:
        n_cells: total cell capacity.
        n_layers: number of layers storing tensors (0 = metadata only).
        kv_dim: width of one K (or V) vector when tensor-backed.
        dtype: tensor dtype for the K/V store.
    """

    def __init__(
        self,
        n_cells: int,
        n_layers: int = 0,
        kv_dim: int = 0,
        dtype: np.dtype = np.float32,
    ) -> None:
        if n_cells <= 0:
            raise ValueError("n_cells must be positive")
        self.n_cells = n_cells
        self.n_layers = n_layers
        self.kv_dim = kv_dim
        #: cell -> position (-1 when free).
        self.pos = np.full(n_cells, -1, dtype=np.int64)
        self._member = np.zeros((n_cells, _INITIAL_SEQ_COLS), dtype=bool)
        #: Min-heap of free cells; ``range`` is already heap-ordered.
        self._free: List[int] = list(range(n_cells))
        #: One past the highest cell index ever allocated.  Allocation is
        #: lowest-index-first, so cells at or beyond the high-water mark
        #: have never held an entry — visibility queries can ignore them.
        self._high_water = 0
        if n_layers > 0:
            if kv_dim <= 0:
                raise ValueError("tensor-backed cache needs kv_dim > 0")
            self.k = np.zeros((n_layers, n_cells, kv_dim), dtype=dtype)
            self.v = np.zeros((n_layers, n_cells, kv_dim), dtype=dtype)
        else:
            self.k = None
            self.v = None

    # -- metadata views ----------------------------------------------------------

    @property
    def seqs(self) -> _SeqsView:
        """cell -> set of sequence ids (read-only compatibility view)."""
        return _SeqsView(self)

    def _ensure_seq(self, seq: int) -> None:
        """Grow the membership matrix to cover column ``seq``."""
        if seq < 0:
            raise KVCacheError(f"invalid sequence id {seq}")
        cols = self._member.shape[1]
        if seq < cols:
            return
        while cols <= seq:
            cols *= 2
        grown = np.zeros((self.n_cells, cols), dtype=bool)
        grown[:, : self._member.shape[1]] = self._member
        self._member = grown

    def _col(self, seq: int) -> bool:
        """True when ``seq`` has a column (i.e. may have members)."""
        return 0 <= seq < self._member.shape[1]

    def _release(self, cells: np.ndarray) -> None:
        """Mark ``cells`` free and return them to the allocator.

        Bulk frees (request teardown) re-heapify once instead of pushing
        cell by cell; allocation order is unchanged either way (the heap
        always pops the lowest free index).
        """
        self.pos[cells] = -1
        if len(cells) > 8:
            self._free.extend(int(c) for c in cells)
            heapq.heapify(self._free)
        else:
            for c in cells:
                heapq.heappush(self._free, int(c))

    # -- allocation ------------------------------------------------------------

    @property
    def n_used(self) -> int:
        return self.n_cells - len(self._free)

    @property
    def high_water(self) -> int:
        """One past the highest cell index ever allocated."""
        return self._high_water

    @property
    def n_free(self) -> int:
        return len(self._free)

    def allocate(self, entries: Sequence[Tuple[int, Iterable[int]]]) -> List[int]:
        """Allocate one cell per (pos, seq_ids) entry; returns cell indices.

        All layers of a decode batch share these indices (each layer writes
        its own K/V row at the same cell), mirroring llama.cpp's slot
        allocation per ``llama_decode``.  Cells are handed out lowest
        index first, matching the linear-scan order of the reference
        implementation.

        Raises:
            KVCacheError: when the cache is full.
        """
        if len(self._free) < len(entries):
            raise KVCacheError(
                f"cache overflow: need {len(entries)} cells, "
                f"{len(self._free)} free"
            )
        cells = []
        free = self._free
        pos = self.pos
        for p, seq_ids in entries:
            if not seq_ids:
                raise KVCacheError("a cell must belong to at least one sequence")
            if p < 0:
                raise KVCacheError(f"invalid position {p}")
            # Duplicate ids are harmless (membership marking is
            # idempotent), so the per-entry ``set()`` dedup is skipped.
            ids = seq_ids if isinstance(seq_ids, (list, tuple)) else list(seq_ids)
            lo_id = min(ids)
            if lo_id < 0:
                raise KVCacheError(f"invalid sequence id {lo_id}")
            self._ensure_seq(max(ids))
            cell = heapq.heappop(free)
            if cell >= self._high_water:
                self._high_water = cell + 1
            pos[cell] = p
            if len(ids) == 1:
                self._member[cell, ids[0]] = True
            else:
                self._member[cell, list(ids)] = True
            cells.append(cell)
        return cells

    def grow(self, n_cells: int) -> int:
        """Extend capacity to ``n_cells`` in place; returns the new capacity.

        Existing cells keep their indices, metadata, and K/V tensors, so
        every outstanding cell reference stays valid — the head-side draft
        plane grows its shared cache this way as serving chains lengthen.
        A ``n_cells`` at or below the current capacity is a no-op.
        """
        if n_cells <= self.n_cells:
            return self.n_cells
        old = self.n_cells
        pos = np.full(n_cells, -1, dtype=np.int64)
        pos[:old] = self.pos
        self.pos = pos
        member = np.zeros((n_cells, self._member.shape[1]), dtype=bool)
        member[:old] = self._member
        self._member = member
        self._free.extend(range(old, n_cells))
        heapq.heapify(self._free)
        if self.k is not None:
            k = np.zeros((self.n_layers, n_cells, self.kv_dim), dtype=self.k.dtype)
            v = np.zeros_like(k)
            k[:, :old] = self.k
            v[:, :old] = self.v
            self.k, self.v = k, v
        self.n_cells = n_cells
        return self.n_cells

    def write(self, layer: int, cells, k: np.ndarray, v: np.ndarray) -> None:
        """Store K/V rows for ``cells`` at ``layer`` (tensor-backed only).

        ``cells`` should be an integer ndarray (the engines convert once
        per batch and reuse it across layers); sequences are accepted and
        converted for convenience.
        """
        if self.k is None:
            raise KVCacheError("metadata-only cache cannot store tensors")
        if not isinstance(cells, np.ndarray):
            cells = np.asarray(cells, dtype=np.intp)
        self.k[layer, cells] = k
        self.v[layer, cells] = v

    # -- sequence operations -----------------------------------------------------

    def seq_cp(self, seq_src: int, seq_dst: int, p0: int, p1: int) -> int:
        """Add ``seq_dst`` to cells of ``seq_src`` with p0 <= pos < p1.

        Returns the number of cells affected.  Metadata-only: K/V tensors
        are shared between the sequences afterwards.  A position the
        destination already holds is skipped: a second (seq, pos) cell
        would double-count that key in attention, and interval metadata
        (:class:`~repro.models.range_cache.RangeKVCache`) cannot represent
        the duplicate.  When several source cells share a position, the
        lowest-indexed one is copied (scan order of the reference).
        """
        self._check_range(p0, p1)
        if seq_src == seq_dst:
            return 0
        if not self._col(seq_src):
            if seq_src < 0:
                raise KVCacheError(f"invalid sequence id {seq_src}")
            return 0
        # Scans stop at the high-water mark: cells past it have never been
        # allocated, so they belong to no sequence.  Membership first:
        # the sequence's column is sparse relative to the high-water
        # range, so narrowing to its cells before the position compare
        # touches far fewer elements — and subsetting an ascending index
        # list keeps it ascending, so the result is the same ``cand``.
        hw = self._high_water
        pos = self.pos[:hw]
        owned = np.flatnonzero(self._member[:hw, seq_src])
        owned_pos = pos[owned]
        cand = owned[(owned_pos >= p0) & (owned_pos < p1)]
        if cand.size == 0:
            return 0
        self._ensure_seq(seq_dst)
        # First cell per distinct source position, then drop positions the
        # destination already holds.  Copies into a *fresh* partition (the
        # common case: materializing a new run's context) skip the
        # destination-position scan entirely.
        cand_pos = pos[cand]
        if cand_pos.size == 1 or (cand_pos[1:] > cand_pos[:-1]).all():
            # Cells allocated lowest-index-first while a prompt is decoded
            # in order leave positions already strictly ascending — the
            # common prefix-admission shape; skip the unique() sort.
            uniq_pos, first = cand_pos, np.arange(cand_pos.size)
        else:
            uniq_pos, first = np.unique(cand_pos, return_index=True)
        dst_owned = np.flatnonzero(self._member[:hw, seq_dst])
        if dst_owned.size:
            # Membership via a Python set: the position lists are tiny
            # (tens of entries), where ``np.isin``'s sort-based path is
            # all fixed overhead.  Same boolean outcome by definition.
            dst_pos = {p for p in pos[dst_owned].tolist() if p >= 0}
            keep = [i for i, p in enumerate(uniq_pos.tolist())
                    if p not in dst_pos]
            chosen = cand[first[keep]]
        else:
            chosen = cand[first]
        self._member[chosen, seq_dst] = True
        return int(chosen.size)

    def seq_rm(self, seq: int, p0: int, p1: int) -> int:
        """Remove ``seq`` from cells with p0 <= pos < p1; free emptied cells."""
        self._check_range(p0, p1)
        if not self._col(seq):
            return 0
        hw = self._high_water
        pos = self.pos[:hw]
        owned = np.flatnonzero(self._member[:hw, seq])
        owned_pos = pos[owned]
        hit = owned[(owned_pos >= p0) & (owned_pos < p1)]
        if hit.size == 0:
            return 0
        self._member[hit, seq] = False
        emptied = hit[~self._member[hit].any(axis=1)]
        if emptied.size:
            self._release(emptied)
        return int(hit.size)

    def seq_keep(self, seq: int) -> int:
        """Drop every sequence except ``seq``; free cells not in it."""
        live = self.pos >= 0
        has_col = self._col(seq)
        if has_col:
            keep = live & self._member[:, seq]
        else:
            keep = np.zeros(self.n_cells, dtype=bool)
        drop = np.flatnonzero(live & ~keep)
        self._member[:, :] = False
        if has_col:
            self._member[keep, seq] = True
        if drop.size:
            self._release(drop)
        return int(drop.size)

    def seq_broadcast(self, seq_src: int, p0: int, p1: int, targets: Iterable[int]) -> int:
        """Copy ``seq_src``'s cells in range into every sequence in ``targets``.

        Implements acceptance propagation (Section IV-C2): accepted entries
        are copied to all other sequences so new runs find correct context.

        Equivalent to ``seq_cp(seq_src, dst, ...)`` per target, but the
        source-side scan (candidate cells, first-per-position selection) is
        computed once and shared: adding ``dst`` members never changes the
        source column, so only the destination-position filter differs per
        target.
        """
        targets = list(targets)
        if not targets:
            return 0
        self._check_range(p0, p1)
        if not self._col(seq_src):
            if seq_src < 0:
                raise KVCacheError(f"invalid sequence id {seq_src}")
            return 0
        hw = self._high_water
        pos = self.pos[:hw]
        owned = np.flatnonzero(self._member[:hw, seq_src])
        owned_pos = pos[owned]
        cand = owned[(owned_pos >= p0) & (owned_pos < p1)]
        if cand.size == 0:
            return 0
        cand_pos = pos[cand]
        if cand_pos.size == 1 or (cand_pos[1:] > cand_pos[:-1]).all():
            uniq_pos, first = cand_pos, np.arange(cand_pos.size)
        else:
            uniq_pos, first = np.unique(cand_pos, return_index=True)
        default = cand[first]
        n = 0
        for dst in targets:
            if dst == seq_src:
                continue
            self._ensure_seq(dst)
            dst_owned = np.flatnonzero(self._member[:hw, dst])
            if dst_owned.size:
                dst_pos = {p for p in pos[dst_owned].tolist() if p >= 0}
                keep = [i for i, p in enumerate(uniq_pos.tolist())
                        if p not in dst_pos]
                chosen = cand[first[keep]]
            else:
                chosen = default
            self._member[chosen, dst] = True
            n += int(chosen.size)
        return n

    # -- queries ---------------------------------------------------------------

    def seq_max_pos(self, seq: int) -> int:
        """Highest position stored for ``seq``, or -1 when empty."""
        if not self._col(seq):
            return -1
        held = self.pos[self._member[:, seq] & (self.pos >= 0)]
        return int(held.max()) if held.size else -1

    def seq_cells(self, seq: int) -> List[int]:
        """Cells belonging to ``seq``, sorted by position."""
        if not self._col(seq):
            return []
        cells = np.flatnonzero(self._member[:, seq] & (self.pos >= 0))
        order = np.argsort(self.pos[cells], kind="stable")
        return [int(c) for c in cells[order]]

    def seq_positions(self, seq: int) -> List[int]:
        """Sorted positions stored for ``seq``."""
        if not self._col(seq):
            return []
        cells = np.flatnonzero(self._member[:, seq] & (self.pos >= 0))
        return sorted(int(p) for p in self.pos[cells])

    def visible_cells(self, seq: int, pos: int, inclusive: bool = True) -> np.ndarray:
        """Cell indices visible to a query at (seq, pos).

        A cell is visible when it belongs to ``seq`` and sits at an earlier
        position; with ``inclusive`` (the default, matching causal
        self-attention) the query's own position is visible too.
        """
        if not self._col(seq):
            return np.empty(0, dtype=np.int64)
        mask = self._member[:, seq] & (self.pos >= 0)
        if inclusive:
            mask &= self.pos <= pos
        else:
            mask &= self.pos < pos
        return np.flatnonzero(mask).astype(np.int64)

    def visible_matrix(
        self,
        seq_ids: Sequence[int],
        positions: Sequence[int],
        inclusive: bool = True,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Batched visibility: boolean ``(n_tokens, n_cells)`` mask.

        Row *i* is ``visible_cells(seq_ids[i], positions[i])`` as a mask.
        Visibility depends only on cache metadata, never on the layer, so
        the functional transformer computes this once per decode batch and
        reuses it across its whole layer range.

        ``limit`` truncates the cell axis (rows become ``limit`` wide):
        hot callers pass :attr:`high_water` so a mostly-empty cache is not
        scanned to its full capacity — cells past the high-water mark have
        never been allocated and are invisible by construction.
        """
        seq_ids = np.asarray(seq_ids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        end = self.n_cells if limit is None else min(limit, self.n_cells)
        cols = self._member.shape[1]
        if seq_ids.size and 0 <= seq_ids.min() and seq_ids.max() < cols:
            # Hot path: every query sequence has a column.
            member = self._member[:end, seq_ids].T
        else:
            valid = (seq_ids >= 0) & (seq_ids < cols)
            member = (
                self._member[:end, np.clip(seq_ids, 0, cols - 1)].T
                & valid[:, None]
            )
        pos = self.pos[:end]
        live = pos >= 0
        if inclusive:
            reach = pos[None, :] <= positions[:, None]
        else:
            reach = pos[None, :] < positions[:, None]
        return member & live[None, :] & reach

    def has_entry(self, seq: int, pos: int) -> bool:
        """True when ``seq`` already holds a cell at position ``pos``."""
        if not self._col(seq):
            return False
        return bool(np.any(self._member[:, seq] & (self.pos == pos) & (self.pos >= 0)))

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_range(p0: int, p1: int) -> None:
        if p0 < 0 or p1 < p0:
            raise KVCacheError(f"invalid position range [{p0}, {p1})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KVCache(cells={self.n_cells}, used={self.n_used}, layers={self.n_layers})"
