"""Analytic cost model: architecture x hardware -> simulated durations.

Small-batch autoregressive inference is memory-bandwidth bound: every layer
evaluation streams that layer's quantized weights once regardless of how
many tokens are batched (the weights are reused across the batch — the
source of speculative decoding's efficiency).  Per layer, per batch:

``time = max(weight_bytes / matvec_bandwidth, flops / flop_rate)``

plus the node's per-batch dispatch overhead.  ``matvec_bandwidth`` is the
node's sustained STREAM bandwidth derated by a dequantization-kernel
efficiency — quantized matvec kernels reach only a fraction of STREAM on
CPUs (dequant ALU cost) and a larger fraction on GPUs.

The same object supplies message sizes (activation and logits tensors) for
the interconnect model, and per-node memory footprints for the Figure 7a
memory-efficiency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.hardware import NodeSpec
from repro.models.arch import ArchSpec

#: Fraction of STREAM bandwidth a quantized matvec kernel sustains.  The
#: GPU figure reflects the paper's testbed: mixed-vendor cards driven by a
#: then-unoptimized llama.cpp MPI GPU backend over PCIe hosts.
CPU_MATVEC_EFFICIENCY = 0.30
GPU_MATVEC_EFFICIENCY = 0.40

#: Fraction of peak FLOP throughput quantized *batched* kernels sustain.
#: Dequantize-then-multiply batch kernels are far from peak on CPUs, so
#: batches beyond ~4 tokens cross from bandwidth-bound to compute-bound —
#: the latency growth that motivates micro-batching (paper Section IV-B1).
CPU_QUANT_COMPUTE_EFFICIENCY = 0.25
GPU_QUANT_COMPUTE_EFFICIENCY = 0.50

#: Bytes per activation element on the wire (llama.cpp MPI sends f32).
ACTIVATION_ELEM_BYTES = 4.0
LOGIT_ELEM_BYTES = 4.0


@dataclass(frozen=True)
class CostModel:
    """Durations and sizes for one architecture.

    Attributes:
        arch: the model's shape descriptor.
        context: nominal context length for attention-cost and KV-read
            estimates (prompt + generation budget).
    """

    arch: ArchSpec
    context: int = 640
    #: Memo of ``(node, n_tokens) -> layer_time`` and ``node ->
    #: output_head_time``.  Every term below is a pure function of the
    #: frozen arch/node specs, but evaluating it walks a chain of Python
    #: properties (param counts, kv_dim, derated node rates) — measurable
    #: on the serving hot path, where every fused window asks for the
    #: same handful of ``(node, n_tokens)`` pairs.  Caching reuses the
    #: identical float, so simulated times are bit-equal with or without
    #: the memo.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    # -- compute -------------------------------------------------------------

    def _matvec_bw(self, node: NodeSpec) -> float:
        eff = GPU_MATVEC_EFFICIENCY if node.is_gpu else CPU_MATVEC_EFFICIENCY
        return node.effective_mem_bw * eff

    def _quant_flops(self, node: NodeSpec) -> float:
        eff = (
            GPU_QUANT_COMPUTE_EFFICIENCY if node.is_gpu else CPU_QUANT_COMPUTE_EFFICIENCY
        )
        return node.effective_flops * eff

    def layer_time(self, node: NodeSpec, n_tokens: int) -> float:
        """Time to evaluate one decoder layer on a batch of ``n_tokens``.

        Roofline over two terms: weights are streamed once per batch
        (bandwidth term ~independent of batch size), while arithmetic
        grows linearly with the batch at the derated quantized-kernel
        rate.  Small batches are bandwidth-bound — the speculative-
        decoding premise — and batches beyond a handful of tokens turn
        compute-bound, penalizing oversized speculation batches.
        """
        if n_tokens <= 0:
            raise ValueError("n_tokens must be positive")
        key = (node, n_tokens)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        a = self.arch
        # Weights are streamed once per batch; the KV cache is read once
        # per token (attention over the running context).
        mem_bytes = a.active_bytes_per_layer + (
            n_tokens * self.context * a.kv_bytes_per_token_per_layer
        )
        mem_time = mem_bytes / self._matvec_bw(node)
        flops = a.flops_per_token_per_layer(self.context) * n_tokens
        compute_time = flops / self._quant_flops(node)
        t = max(mem_time, compute_time)
        self._memo[key] = t
        return t

    def stage_time(self, node: NodeSpec, n_layers: int, n_tokens: int) -> float:
        """Time for one pipeline stage: ``n_layers`` plus dispatch overhead."""
        if n_layers <= 0:
            return node.compute_overhead
        return n_layers * self.layer_time(node, n_tokens) + node.compute_overhead

    def chunked_stage_times(
        self, node: NodeSpec, n_layers: int, n_tokens: int, chunk_layers: int
    ) -> list:
        """Stage time split at cancellation-probe chunk boundaries.

        ``n_tokens`` is the *whole batch* evaluated in one pass.  For a
        fused multi-run window that is the concatenated token count of
        every run in the window: the layer weights are streamed once for
        the fused batch and the dispatch overhead is paid once, so a
        fused window is charged a single fused stage time — not the sum
        of its runs' singleton stage times.  (Small batches sit on the
        bandwidth-bound side of the roofline, which is exactly why fusing
        several 1–4-token runs is nearly free in time and saves the
        per-run weight streams.)
        """
        if n_layers <= 0:
            return [node.compute_overhead]
        key = (node, n_layers, n_tokens, chunk_layers)
        cached = self._memo.get(key)
        if cached is not None:
            return list(cached)
        per_layer = self.layer_time(node, n_tokens)
        chunks = []
        remaining = n_layers
        while remaining > 0:
            step = min(chunk_layers, remaining)
            chunks.append(step * per_layer)
            remaining -= step
        chunks[0] += node.compute_overhead
        # Cache a tuple; hand out a fresh list so callers may mutate.
        self._memo[key] = tuple(chunks)
        return chunks

    def output_head_time(self, node: NodeSpec, n_logits: int) -> float:
        """Final norm + LM head: streams the (unquantized-ish) head weights."""
        cached = self._memo.get(node)
        if cached is not None:
            return cached
        a = self.arch
        head_bytes = a.vocab * a.d_model * 2.0  # f16 output head
        t = head_bytes / self._matvec_bw(node) + node.compute_overhead
        self._memo[node] = t
        return t

    def embed_time(self, node: NodeSpec, n_tokens: int) -> float:
        """Token-embedding lookup: one row per token — effectively free."""
        a = self.arch
        return n_tokens * a.d_model * 2.0 / node.effective_mem_bw

    def full_model_time(self, node: NodeSpec, n_tokens: int) -> float:
        """Single-node full forward pass (draft model on the head node)."""
        key = ("full", node, n_tokens)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        t = (
            self.embed_time(node, n_tokens)
            + self.stage_time(node, self.arch.n_layers, n_tokens)
            + self.output_head_time(node, n_tokens)
        )
        self._memo[key] = t
        return t

    def cache_op_time(self, node: NodeSpec) -> float:
        """A KV-cache metadata operation (seq_cp/seq_rm): near-free."""
        return 2e-6

    # -- message sizes ---------------------------------------------------------

    def activation_bytes(self, n_tokens: int) -> float:
        """Hidden-state tensor size between pipeline stages."""
        return n_tokens * self.arch.d_model * ACTIVATION_ELEM_BYTES

    def logits_bytes(self, n_logits: int) -> float:
        """Logit tensor size returned to the head node."""
        return n_logits * self.arch.vocab * LOGIT_ELEM_BYTES

    # -- memory footprints -------------------------------------------------------

    def weights_bytes(self, n_layers: int | None = None) -> float:
        """Stored weight bytes for ``n_layers`` (default: whole model)."""
        a = self.arch
        if n_layers is None:
            return a.total_bytes
        embed = a.embedding_params * 2.0  # head+embedding kept f16
        return n_layers * a.bytes_per_layer + (embed if n_layers == a.n_layers else 0.0)

    def kv_bytes(self, n_layers: int, n_cells: int) -> float:
        """KV-cache bytes for a shard of ``n_layers`` and ``n_cells`` cells."""
        return n_layers * n_cells * self.arch.kv_bytes_per_token_per_layer
