"""Interval-based KV cache metadata for the cluster simulation.

Performance-mode workers must execute the same cache-operation stream as
the functional engine (the multibuffering protocol is part of what is
being timed and validated), but holding a per-cell set for thousands of
positions per node would dominate simulation cost.  ``RangeKVCache``
stores, per sequence, a merged interval set of positions — cache ops
(`seq_cp`, `seq_rm`) become interval arithmetic with identical observable
semantics to :class:`~repro.models.kv_cache.KVCache` metadata, which a
differential property test asserts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class IntervalSet:
    """A sorted set of disjoint half-open integer intervals [lo, hi)."""

    __slots__ = ("_ivals",)

    def __init__(self, ivals: Iterable[Tuple[int, int]] = ()) -> None:
        self._ivals: List[Tuple[int, int]] = []
        for lo, hi in ivals:
            self.add(lo, hi)

    def add(self, lo: int, hi: int) -> None:
        """Insert [lo, hi), merging with touching or overlapping intervals."""
        if hi <= lo:
            return
        out: List[Tuple[int, int]] = []
        placed = False
        for a, b in self._ivals:
            if b < lo or a > hi:
                if a > hi and not placed:
                    out.append((lo, hi))
                    placed = True
                out.append((a, b))
            else:
                lo, hi = min(lo, a), max(hi, b)
        if not placed:
            out.append((lo, hi))
        out.sort()
        self._ivals = out

    def remove(self, lo: int, hi: int) -> None:
        """Delete [lo, hi) from the set."""
        if hi <= lo:
            return
        out: List[Tuple[int, int]] = []
        for a, b in self._ivals:
            if b <= lo or a >= hi:
                out.append((a, b))
                continue
            if a < lo:
                out.append((a, lo))
            if b > hi:
                out.append((hi, b))
        self._ivals = out

    def clip(self, lo: int, hi: int) -> "IntervalSet":
        """The subset intersecting [lo, hi)."""
        out = IntervalSet()
        for a, b in self._ivals:
            a2, b2 = max(a, lo), min(b, hi)
            if a2 < b2:
                out.add(a2, b2)
        return out

    def union_into(self, other: "IntervalSet") -> None:
        for a, b in self._ivals:
            other.add(a, b)

    def __contains__(self, pos: int) -> bool:
        return any(a <= pos < b for a, b in self._ivals)

    def __len__(self) -> int:
        return sum(b - a for a, b in self._ivals)

    def max_value(self) -> int:
        """Largest contained integer, or -1 when empty."""
        return self._ivals[-1][1] - 1 if self._ivals else -1

    def positions(self) -> List[int]:
        return [p for a, b in self._ivals for p in range(a, b)]

    def intervals(self) -> List[Tuple[int, int]]:
        return list(self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self._ivals!r})"


class RangeKVCache:
    """Sequence-indexed interval metadata with KVCache-compatible ops."""

    def __init__(self, n_cells: int = 1 << 30) -> None:
        self.n_cells = n_cells
        self._seqs: Dict[int, IntervalSet] = {}

    def _seq(self, seq: int) -> IntervalSet:
        found = self._seqs.get(seq)
        if found is None:
            found = IntervalSet()
            self._seqs[seq] = found
        return found

    def add_tokens(self, seq: int, positions: Iterable[int]) -> None:
        """Record freshly-written cells for ``seq`` at ``positions``."""
        s = self._seq(seq)
        for p in positions:
            s.add(p, p + 1)

    def seq_cp(self, seq_src: int, seq_dst: int, p0: int, p1: int) -> int:
        """Copy ``seq_src``'s entries in [p0, p1) into ``seq_dst``."""
        if seq_src == seq_dst:
            return 0
        clip = self._seq(seq_src).clip(p0, p1)
        clip.union_into(self._seq(seq_dst))
        return len(clip)

    def seq_rm(self, seq: int, p0: int, p1: int) -> int:
        """Drop ``seq``'s entries in [p0, p1)."""
        s = self._seq(seq)
        before = len(s)
        s.remove(p0, p1)
        return before - len(s)

    def seq_broadcast(self, seq_src: int, p0: int, p1: int, targets: Iterable[int]) -> int:
        n = 0
        for dst in targets:
            n += self.seq_cp(seq_src, dst, p0, p1)
        return n

    def seq_keep(self, seq: int) -> int:
        """Drop every sequence except ``seq``; returns positions dropped.

        Interval metadata has no cell identity, so the return value counts
        dropped *positions* rather than freed cells (two sequences at one
        position may or may not share a cell — unrepresentable here); the
        observable per-sequence state matches :class:`KVCache.seq_keep`.
        """
        n = 0
        for other, ivals in self._seqs.items():
            if other != seq:
                n += len(ivals)
        kept = self._seqs.get(seq)
        self._seqs = {seq: kept} if kept is not None else {}
        return n

    # -- queries (KVCache-compatible) ---------------------------------------

    @property
    def n_used(self) -> int:
        """Upper bound on occupied cells: total tracked (seq, pos) pairs.

        Interval metadata has no cell identity, so entries shared between
        sequences by ``seq_cp`` are counted once per sequence — an
        overestimate of :attr:`KVCache.n_used` that is safe for admission
        throttling (it can only admit later, never overflow).
        """
        return sum(len(ivals) for ivals in self._seqs.values())

    def seq_max_pos(self, seq: int) -> int:
        return self._seq(seq).max_value()

    def seq_positions(self, seq: int) -> List[int]:
        return self._seq(seq).positions()

    def has_entry(self, seq: int, pos: int) -> bool:
        return pos in self._seq(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = {s: iv.intervals() for s, iv in self._seqs.items() if iv}
        return f"RangeKVCache({live!r})"
