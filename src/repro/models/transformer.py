"""A real (tiny) decoder-only transformer in NumPy.

Architecturally a faithful miniature of the Llama family: RMSNorm ->
grouped-query attention with RoPE -> residual -> RMSNorm -> SwiGLU ->
residual, untied embedding and output head.  Weights are deterministic
random draws from a seed, so a "model" is reproducible from its config.

The forward pass is *stage-sliced* for pipeline parallelism: a pipeline
rank evaluates ``forward_stage`` over its layer range against its own KV
cache shard, exactly like a llama.cpp MPI worker.  Batches are lists of
:class:`~repro.comm.payloads.TokenSlot`, which carry per-token positions
and KV sequence assignments — the substrate for speculative tree
verification and KV multibuffering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.comm.payloads import TokenSlot
from repro.models.kv_cache import KVCache
from repro.models.layers import (
    ScratchArena,
    apply_rope_tables,
    batched_grouped_attention,
    rms_norm,
    rope_frequencies,
    rope_tables,
    swiglu,
)

#: RoPE-table cache entries kept per model before the cache is reset.
_ROPE_CACHE_LIMIT = 512

#: Attention row-chunk size within one run.  Long prefill batches are
#: causal, so splitting their rows bounds each chunk's visible-cell set
#: to roughly the cells written so far — skipping most of the masked-out
#: score/softmax area.  Chunk boundaries are relative to the run start,
#: so a run is chunked the same way whether it is evaluated alone or
#: inside a fused window.
_ATTN_CHUNK = 128


@dataclass(frozen=True)
class TransformerConfig:
    """Shape and seed of a tiny functional transformer."""

    vocab: int = 256
    d_model: int = 64
    n_layers: int = 4
    n_heads: int = 4
    n_kv_heads: int = 2
    d_ff: int = 172
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must divide evenly into heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ValueError("head_dim must be even (RoPE)")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim


class _LayerWeights:
    """One decoder layer's parameters."""

    __slots__ = ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down",
                 "attn_norm", "ffn_norm")

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator) -> None:
        d, kv, ff = cfg.d_model, cfg.kv_dim, cfg.d_ff
        s = 1.0 / np.sqrt(d)
        self.wq = rng.normal(0.0, s, (d, d))
        self.wk = rng.normal(0.0, s, (d, kv))
        self.wv = rng.normal(0.0, s, (d, kv))
        self.wo = rng.normal(0.0, s / np.sqrt(2 * cfg.n_layers), (d, d))
        self.w_gate = rng.normal(0.0, s, (d, ff))
        self.w_up = rng.normal(0.0, s, (d, ff))
        self.w_down = rng.normal(0.0, 1.0 / np.sqrt(ff) / np.sqrt(2 * cfg.n_layers), (ff, d))
        self.attn_norm = np.ones(d)
        self.ffn_norm = np.ones(d)


class TinyTransformer:
    """Deterministic NumPy decoder-only transformer."""

    def __init__(self, cfg: TransformerConfig) -> None:
        self.cfg = cfg
        rng = np.random.default_rng(cfg.seed)
        d = cfg.d_model
        self.embedding = rng.normal(0.0, 1.0, (cfg.vocab, d))
        self.layers = [_LayerWeights(cfg, rng) for _ in range(cfg.n_layers)]
        self.final_norm = np.ones(d)
        self.lm_head = rng.normal(0.0, 1.0 / np.sqrt(d), (d, cfg.vocab))
        self._freqs = rope_frequencies(cfg.head_dim)
        #: positions-tuple -> (cos, sin) rotation tables.  Prefill batches
        #: repeat the same 0..L-1 positions per prompt length and decode
        #: batches revisit position patterns across requests, so tables
        #: are computed once per distinct positions tuple rather than
        #: twice per layer per forward pass.
        self._rope_cache: dict = {}

    def _rope_tables(self, positions: np.ndarray):
        key = positions.tobytes()
        hit = self._rope_cache.get(key)
        if hit is None:
            if len(self._rope_cache) >= _ROPE_CACHE_LIMIT:
                self._rope_cache.clear()
            hit = rope_tables(positions, self._freqs)
            self._rope_cache[key] = hit
        return hit

    # -- cache construction -------------------------------------------------------

    def new_cache(self, n_cells: int, layer_range: Optional[tuple[int, int]] = None) -> KVCache:
        """A tensor-backed cache shard for ``layer_range`` (default: all layers)."""
        lo, hi = layer_range if layer_range is not None else (0, self.cfg.n_layers)
        return KVCache(n_cells, n_layers=hi - lo, kv_dim=self.cfg.kv_dim)

    # -- forward pieces (pipeline-stage API) ----------------------------------------

    def embed(self, slots: Sequence[TokenSlot]) -> np.ndarray:
        """Input embedding for a batch: shape (n_tokens, d_model)."""
        tokens = [s.token for s in slots]
        # Fancy indexing already materializes a fresh array.
        return self.embedding[tokens]

    def forward_stage(
        self,
        hidden: np.ndarray,
        slots: Sequence[TokenSlot],
        cache: KVCache,
        layer_range: tuple[int, int],
        cells: Optional[Sequence[int]] = None,
        visible: Optional[np.ndarray] = None,
        arena: Optional[ScratchArena] = None,
        row_groups: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Evaluate layers [lo, hi) for a batch against a cache shard.

        Args:
            hidden: (n_tokens, d_model) activations entering the stage.
            slots: batch metadata; positions drive RoPE, seq ids drive the
                attention mask via cache metadata.
            cache: this stage's KV shard; must have ``hi - lo`` layers.
            layer_range: global layer indices [lo, hi); the shard's local
                layer index is ``layer - lo``.
            cells: pre-allocated cache cells for this batch (one per slot).
                Allocated here when omitted.
            visible: precomputed (n_tokens, n_cells) visibility mask.
                Fused cross-run batches pass per-run rows snapshotted in
                transaction order; computed from current cache metadata
                when omitted.
            arena: scratch buffers reused across calls of the same batch
                shape (a private one is made per call when omitted).  The
                returned activations are always freshly allocated — they
                travel downstream while the arena is recycled for the
                next window — and ``hidden`` is never mutated.
            row_groups: per-run row counts when the batch concatenates
                several runs (fused windows, batched draft proposals).
                Attention is evaluated per group over just the cells that
                group can see — fused cross-request batches mostly attend
                to disjoint cell sets, so this skips the masked-out bulk
                of the score area — and each group's math is exactly what
                the run would compute evaluated on its own.  Default: one
                group spanning the whole batch.

        Returns:
            (n_tokens, d_model) activations leaving the stage.
        """
        lo, hi = layer_range
        if cache.n_layers != hi - lo:
            raise ValueError(
                f"cache shard has {cache.n_layers} layers, stage needs {hi - lo}"
            )
        cfg = self.cfg
        positions = np.array([s.pos for s in slots], dtype=np.int64)
        if cells is None:
            cells = cache.allocate([(s.pos, s.seq_ids) for s in slots])
        cells = np.asarray(cells, dtype=np.intp)
        # Visibility depends only on cache metadata (fixed once the batch's
        # cells are allocated), never on the layer: one mask per batch,
        # compacted to the cells any token can see.
        if visible is None:
            visible = cache.visible_matrix(
                [s.seq_ids[0] for s in slots], positions, limit=cache.high_water
            )
        rot = self._rope_tables(positions)
        if arena is None:
            arena = ScratchArena()
        n, d, kv = len(slots), cfg.d_model, cfg.kv_dim
        # Attention plan: one sub-problem per run row-group (further
        # chunked for long causal runs), each over just the cells its
        # rows can see.  Masks depend only on cache metadata, never the
        # layer, so the plan is built once per batch.
        kdt, vdt = cache.k.dtype, cache.v.dtype
        kvh, hd = cfg.n_kv_heads, cfg.head_dim
        group = cfg.n_heads // cfg.n_kv_heads
        # Residual stream and per-layer temporaries live in the arena;
        # every operation below is the same BLAS call / ufunc whether the
        # buffers are recycled or freshly allocated.
        h = arena.get("stage.h", (n, d))
        np.copyto(h, hidden)
        x = arena.get("stage.x", (n, d))
        tmp = arena.get("stage.tmp", (n, d))
        q2 = arena.get("stage.q", (n, d))
        k2 = arena.get("stage.k", (n, kv))
        v2 = arena.get("stage.v", (n, kv))
        attn2 = arena.get("stage.attn", (n, d))
        q = q2.reshape(n, cfg.n_heads, hd)
        k = k2.reshape(n, kvh, hd)
        attn4 = attn2.reshape(n, kvh, group, hd)
        plans = []
        a = 0
        for count in (row_groups if row_groups is not None else (n,)):
            for c0 in range(a, a + count, _ATTN_CHUNK):
                b = min(c0 + _ATTN_CHUNK, a + count)
                rows = visible[c0:b]
                used = np.flatnonzero(rows.any(axis=0))
                mask = rows[:, used]
                key = str(len(plans))
                u = len(used)
                kc = arena.get("stage.kused" + key, (u, cfg.kv_dim), dtype=kdt)
                vc = arena.get("stage.vused" + key, (u, cfg.kv_dim), dtype=vdt)
                # Everything shape-dependent is hoisted out of the layer
                # loop: transposed K/V views of the gather buffers, the
                # score buffer, and the query/output row slices.  The
                # arithmetic below is exactly batched_grouped_attention's,
                # unrolled so each layer pays only the ufunc/BLAS calls.
                scores = arena.get(
                    "attn.scores" + key, (b - c0, kvh, group, u)
                )
                # Reduction buffer for the softmax max/sum (keepdims
                # shape): the reductions write here instead of allocating
                # a fresh array twice per plan per layer.
                red = arena.get("attn.red" + key, (b - c0, kvh, group, 1))
                inv = ~mask[:, None, None, :]
                plans.append((
                    used,
                    # All-visible plans (single-run decode rows over their
                    # own compacted cells) skip the mask write entirely —
                    # copyto with an all-False ``where`` is a no-op.
                    inv if inv.any() else None,
                    kc,
                    vc,
                    kc.reshape(u, kvh, hd).transpose(1, 2, 0),
                    vc.reshape(u, kvh, hd).transpose(1, 0, 2),
                    scores,
                    red,
                    q2[c0:b].reshape(b - c0, kvh, group, hd),
                    attn4[c0:b],
                ))
            a += count
        if a != n:
            raise ValueError(f"row_groups sum to {a}, batch has {n} tokens")
        sqrt_hd = np.sqrt(hd)
        for layer in range(lo, hi):
            w = self.layers[layer]
            local = layer - lo
            rms_norm(h, w.attn_norm, out=x)
            np.matmul(x, w.wq, out=q2)
            np.matmul(x, w.wk, out=k2)
            np.matmul(x, w.wv, out=v2)
            apply_rope_tables(q, rot, out=q)
            apply_rope_tables(k, rot, out=k)
            cache.write(local, cells, k2, v2)
            ck, cv = cache.k[local], cache.v[local]
            for used, inv, kc, vc, kct, vct, scores, red, qg, og in plans:
                ck.take(used, axis=0, out=kc)
                cv.take(used, axis=0, out=vc)
                np.matmul(qg, kct, out=scores)
                scores /= sqrt_hd
                if inv is not None:
                    np.copyto(scores, -np.inf, where=inv)
                scores -= scores.max(axis=-1, keepdims=True, out=red)
                np.exp(scores, out=scores)
                scores /= scores.sum(axis=-1, keepdims=True, out=red)
                np.matmul(scores, vct, out=og)
            np.matmul(attn2, w.wo, out=tmp)
            h += tmp
            rms_norm(h, w.ffn_norm, out=x)
            swiglu(x, w.w_gate, w.w_up, w.w_down, arena=arena, out=tmp)
            h += tmp
        # The activations leave this stage (and this arena): copy out.
        return h.copy()

    def output(
        self,
        hidden: np.ndarray,
        want: Optional[Sequence[int]] = None,
        arena: Optional[ScratchArena] = None,
    ) -> np.ndarray:
        """Final norm + LM head; ``want`` selects batch rows (default: all).

        The returned logits are always freshly allocated (the head keeps
        them); ``arena`` only recycles the normalized intermediate.
        """
        h = hidden if want is None else hidden[list(want)]
        if arena is None:
            return rms_norm(h, self.final_norm) @ self.lm_head
        x = arena.get("out.norm", h.shape)
        rms_norm(h, self.final_norm, out=x)
        return x @ self.lm_head

    # -- single-node convenience --------------------------------------------------

    def decode(
        self,
        slots: Sequence[TokenSlot],
        cache: KVCache,
        arena: Optional[ScratchArena] = None,
        row_groups: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Full forward pass: logits for every slot with ``want_logits``."""
        hidden = self.embed(slots)
        hidden = self.forward_stage(
            hidden, slots, cache, (0, self.cfg.n_layers), arena=arena,
            row_groups=row_groups,
        )
        want = [i for i, s in enumerate(slots) if s.want_logits]
        return self.output(hidden, want, arena=arena)


def perturbed_copy(model: TinyTransformer, noise: float, seed: int = 1) -> TinyTransformer:
    """A draft model derived from ``model`` by adding weight noise.

    ``noise=0`` gives a perfectly aligned draft (acceptance 1 under greedy
    decoding); increasing noise monotonically decreases alignment.  Used by
    functional tests to exercise partial-acceptance paths with real logits.
    """
    draft = TinyTransformer(model.cfg)
    rng = np.random.default_rng(seed)

    def jitter(a: np.ndarray) -> np.ndarray:
        return a + rng.normal(0.0, noise * (np.std(a) + 1e-9), a.shape)

    draft.embedding = jitter(model.embedding)
    draft.lm_head = jitter(model.lm_head)
    draft.final_norm = model.final_norm.copy()
    for dst, src in zip(draft.layers, model.layers):
        for name in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"):
            setattr(dst, name, jitter(getattr(src, name)))
        dst.attn_norm = src.attn_norm.copy()
        dst.ffn_norm = src.ffn_norm.copy()
    return draft
