"""A real (tiny) decoder-only transformer in NumPy.

Architecturally a faithful miniature of the Llama family: RMSNorm ->
grouped-query attention with RoPE -> residual -> RMSNorm -> SwiGLU ->
residual, untied embedding and output head.  Weights are deterministic
random draws from a seed, so a "model" is reproducible from its config.

The forward pass is *stage-sliced* for pipeline parallelism: a pipeline
rank evaluates ``forward_stage`` over its layer range against its own KV
cache shard, exactly like a llama.cpp MPI worker.  Batches are lists of
:class:`~repro.comm.payloads.TokenSlot`, which carry per-token positions
and KV sequence assignments — the substrate for speculative tree
verification and KV multibuffering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.comm.payloads import TokenSlot
from repro.models.kv_cache import KVCache
from repro.models.layers import (
    apply_rope_tables,
    batched_grouped_attention,
    rms_norm,
    rope_frequencies,
    rope_tables,
    swiglu,
)

#: RoPE-table cache entries kept per model before the cache is reset.
_ROPE_CACHE_LIMIT = 512


@dataclass(frozen=True)
class TransformerConfig:
    """Shape and seed of a tiny functional transformer."""

    vocab: int = 256
    d_model: int = 64
    n_layers: int = 4
    n_heads: int = 4
    n_kv_heads: int = 2
    d_ff: int = 172
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must divide evenly into heads")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if (self.d_model // self.n_heads) % 2 != 0:
            raise ValueError("head_dim must be even (RoPE)")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        return self.n_kv_heads * self.head_dim


class _LayerWeights:
    """One decoder layer's parameters."""

    __slots__ = ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down",
                 "attn_norm", "ffn_norm")

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator) -> None:
        d, kv, ff = cfg.d_model, cfg.kv_dim, cfg.d_ff
        s = 1.0 / np.sqrt(d)
        self.wq = rng.normal(0.0, s, (d, d))
        self.wk = rng.normal(0.0, s, (d, kv))
        self.wv = rng.normal(0.0, s, (d, kv))
        self.wo = rng.normal(0.0, s / np.sqrt(2 * cfg.n_layers), (d, d))
        self.w_gate = rng.normal(0.0, s, (d, ff))
        self.w_up = rng.normal(0.0, s, (d, ff))
        self.w_down = rng.normal(0.0, 1.0 / np.sqrt(ff) / np.sqrt(2 * cfg.n_layers), (ff, d))
        self.attn_norm = np.ones(d)
        self.ffn_norm = np.ones(d)


class TinyTransformer:
    """Deterministic NumPy decoder-only transformer."""

    def __init__(self, cfg: TransformerConfig) -> None:
        self.cfg = cfg
        rng = np.random.default_rng(cfg.seed)
        d = cfg.d_model
        self.embedding = rng.normal(0.0, 1.0, (cfg.vocab, d))
        self.layers = [_LayerWeights(cfg, rng) for _ in range(cfg.n_layers)]
        self.final_norm = np.ones(d)
        self.lm_head = rng.normal(0.0, 1.0 / np.sqrt(d), (d, cfg.vocab))
        self._freqs = rope_frequencies(cfg.head_dim)
        #: positions-tuple -> (cos, sin) rotation tables.  Prefill batches
        #: repeat the same 0..L-1 positions per prompt length and decode
        #: batches revisit position patterns across requests, so tables
        #: are computed once per distinct positions tuple rather than
        #: twice per layer per forward pass.
        self._rope_cache: dict = {}

    def _rope_tables(self, positions: np.ndarray):
        key = positions.tobytes()
        hit = self._rope_cache.get(key)
        if hit is None:
            if len(self._rope_cache) >= _ROPE_CACHE_LIMIT:
                self._rope_cache.clear()
            hit = rope_tables(positions, self._freqs)
            self._rope_cache[key] = hit
        return hit

    # -- cache construction -------------------------------------------------------

    def new_cache(self, n_cells: int, layer_range: Optional[tuple[int, int]] = None) -> KVCache:
        """A tensor-backed cache shard for ``layer_range`` (default: all layers)."""
        lo, hi = layer_range if layer_range is not None else (0, self.cfg.n_layers)
        return KVCache(n_cells, n_layers=hi - lo, kv_dim=self.cfg.kv_dim)

    # -- forward pieces (pipeline-stage API) ----------------------------------------

    def embed(self, slots: Sequence[TokenSlot]) -> np.ndarray:
        """Input embedding for a batch: shape (n_tokens, d_model)."""
        tokens = [s.token for s in slots]
        return self.embedding[tokens].copy()

    def forward_stage(
        self,
        hidden: np.ndarray,
        slots: Sequence[TokenSlot],
        cache: KVCache,
        layer_range: tuple[int, int],
        cells: Optional[Sequence[int]] = None,
        visible: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate layers [lo, hi) for a batch against a cache shard.

        Args:
            hidden: (n_tokens, d_model) activations entering the stage.
            slots: batch metadata; positions drive RoPE, seq ids drive the
                attention mask via cache metadata.
            cache: this stage's KV shard; must have ``hi - lo`` layers.
            layer_range: global layer indices [lo, hi); the shard's local
                layer index is ``layer - lo``.
            cells: pre-allocated cache cells for this batch (one per slot).
                Allocated here when omitted.
            visible: precomputed (n_tokens, n_cells) visibility mask.
                Fused cross-run batches pass per-run rows snapshotted in
                transaction order; computed from current cache metadata
                when omitted.

        Returns:
            (n_tokens, d_model) activations leaving the stage.
        """
        lo, hi = layer_range
        if cache.n_layers != hi - lo:
            raise ValueError(
                f"cache shard has {cache.n_layers} layers, stage needs {hi - lo}"
            )
        cfg = self.cfg
        positions = np.array([s.pos for s in slots], dtype=np.int64)
        if cells is None:
            cells = cache.allocate([(s.pos, set(s.seq_ids)) for s in slots])
        cells = np.asarray(cells, dtype=np.intp)
        # Visibility depends only on cache metadata (fixed once the batch's
        # cells are allocated), never on the layer: one mask per batch,
        # compacted to the cells any token can see.
        if visible is None:
            visible = cache.visible_matrix(
                [s.primary_seq for s in slots], positions, limit=cache.high_water
            )
        used = np.flatnonzero(visible.any(axis=0))
        mask = visible[:, used]
        invisible = ~mask[:, None, None, :]
        rot = self._rope_tables(positions)
        h = hidden
        for layer in range(lo, hi):
            w = self.layers[layer]
            local = layer - lo
            x = rms_norm(h, w.attn_norm)
            q = (x @ w.wq).reshape(len(slots), cfg.n_heads, cfg.head_dim)
            k = (x @ w.wk).reshape(len(slots), cfg.n_kv_heads, cfg.head_dim)
            v = x @ w.wv
            q = apply_rope_tables(q, rot)
            k = apply_rope_tables(k, rot)
            cache.write(local, cells, k.reshape(len(slots), cfg.kv_dim), v)
            attn_out = batched_grouped_attention(
                q, cache.k[local, used], cache.v[local, used], mask,
                cfg.n_kv_heads, invisible=invisible,
            ).reshape(len(slots), cfg.d_model)
            h = h + attn_out @ self.layers[layer].wo
            x = rms_norm(h, w.ffn_norm)
            h = h + swiglu(x, w.w_gate, w.w_up, w.w_down)
        return h

    def output(self, hidden: np.ndarray, want: Optional[Sequence[int]] = None) -> np.ndarray:
        """Final norm + LM head; ``want`` selects batch rows (default: all)."""
        h = hidden if want is None else hidden[list(want)]
        return rms_norm(h, self.final_norm) @ self.lm_head

    # -- single-node convenience --------------------------------------------------

    def decode(self, slots: Sequence[TokenSlot], cache: KVCache) -> np.ndarray:
        """Full forward pass: logits for every slot with ``want_logits``."""
        hidden = self.embed(slots)
        hidden = self.forward_stage(hidden, slots, cache, (0, self.cfg.n_layers))
        want = [i for i, s in enumerate(slots) if s.want_logits]
        return self.output(hidden, want)


def perturbed_copy(model: TinyTransformer, noise: float, seed: int = 1) -> TinyTransformer:
    """A draft model derived from ``model`` by adding weight noise.

    ``noise=0`` gives a perfectly aligned draft (acceptance 1 under greedy
    decoding); increasing noise monotonically decreases alignment.  Used by
    functional tests to exercise partial-acceptance paths with real logits.
    """
    draft = TinyTransformer(model.cfg)
    rng = np.random.default_rng(seed)

    def jitter(a: np.ndarray) -> np.ndarray:
        return a + rng.normal(0.0, noise * (np.std(a) + 1e-9), a.shape)

    draft.embedding = jitter(model.embedding)
    draft.lm_head = jitter(model.lm_head)
    draft.final_norm = model.final_norm.copy()
    for dst, src in zip(draft.layers, model.layers):
        for name in ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down"):
            setattr(dst, name, jitter(getattr(src, name)))
        dst.attn_norm = src.attn_norm.copy()
        dst.ffn_norm = src.ffn_norm.copy()
    return draft
