"""Alignment-calibrated oracle language models.

The cluster-scale experiments cannot run real 70B–180B weights, but the
engines' control flow only consumes two things from a model: *which token
is the target's greedy choice at each position* and *how often the draft's
choice matches it*.  An :class:`OracleLM` provides exactly that, as a pure
function of the token prefix via keyed hashing (:mod:`repro.util.rng`):

- the target's next token for a prefix is a deterministic hash draw;
- a draft oracle built by :func:`make_aligned_pair` agrees with its target
  on a given prefix with probability ``acceptance`` (an independent hash
  coin per prefix), reproducing the paper's measured per-token acceptance
  rates (79%, 66%, 52%, 61%, 68.7%, 69.5% — Section V-B);
- draft confidences are hash draws lightly correlated with agreement, so
  the confidence-cutoff machinery has realistic signal.

Statelessness matters: the head node re-drafts from corrected prefixes
after a rejection, and a stateful generator would desynchronize.  For O(1)
message payloads the oracle exposes an *incremental state* (the rolling
hash), which :class:`~repro.comm.payloads.DecodeMeta` carries per slot so
the last pipeline rank can materialize logits without the full prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.util.rng import hash_tokens, splitmix64, unit_float

_SALT_TOKEN = 0x1
_SALT_AGREE = 0x2
_SALT_CONF = 0x3
_SALT_ALT = 0x4


@dataclass(frozen=True)
class OracleLogits:
    """Sparse stand-in for a logits vector: the greedy token and its prob.

    Satisfies everything greedy sampling and SpecInfer verification need in
    performance mode; dense arrays are used in functional mode.
    """

    top_token: int
    top_prob: float


class OracleLM:
    """A deterministic pseudo language model over hashed prefixes."""

    def __init__(self, seed: int, vocab: int = 32000) -> None:
        if vocab < 4:
            raise ValueError("vocab too small for distinct alternatives")
        self.seed = seed
        self.vocab = vocab

    # -- incremental state ----------------------------------------------------

    def init_state(self, prefix: Sequence[int] = ()) -> int:
        """Rolling-hash state after consuming ``prefix``."""
        return hash_tokens(self.seed, prefix, salt=_SALT_TOKEN)

    def advance(self, state: int, token: int) -> int:
        """State after consuming one more token."""
        return splitmix64(state ^ (token & ((1 << 64) - 1)))

    # -- target behaviour -------------------------------------------------------

    def next_token_from_state(self, state: int) -> int:
        """The greedy (argmax) next token for the given prefix state."""
        return splitmix64(state ^ 0xA5A5) % self.vocab

    def next_token(self, prefix: Sequence[int]) -> int:
        return self.next_token_from_state(self.init_state(prefix))

    def logits_from_state(self, state: int) -> OracleLogits:
        """Sparse greedy logits for the prefix state."""
        tok = self.next_token_from_state(state)
        prob = 0.5 + 0.5 * unit_float(splitmix64(state ^ _SALT_CONF))
        return OracleLogits(top_token=tok, top_prob=prob)

    def logits(self, prefix: Sequence[int]) -> OracleLogits:
        return self.logits_from_state(self.init_state(prefix))


class DraftOracle:
    """A draft model whose greedy choice matches a target at a fixed rate.

    Agreement is decided by an independent hash coin per prefix, so the
    measured per-token acceptance over any long run converges to
    ``acceptance`` (law of large numbers; the property tests check this).
    """

    def __init__(self, target: OracleLM, acceptance: float, seed: int = 17) -> None:
        if not 0.0 <= acceptance <= 1.0:
            raise ValueError("acceptance must be within [0, 1]")
        self.target = target
        self.acceptance = acceptance
        self.seed = seed
        self.vocab = target.vocab

    def init_state(self, prefix: Sequence[int] = ()) -> int:
        return self.target.init_state(prefix)

    def advance(self, state: int, token: int) -> int:
        return self.target.advance(state, token)

    def _agrees(self, state: int) -> bool:
        u = unit_float(splitmix64(state ^ (self.seed * 0x9E37) ^ _SALT_AGREE))
        return u < self.acceptance

    def next_token_from_state(self, state: int) -> int:
        """The draft's greedy proposal for the prefix state."""
        truth = self.target.next_token_from_state(state)
        if self._agrees(state):
            return truth
        # A deterministic wrong answer, guaranteed different from the truth.
        alt = splitmix64(state ^ (self.seed * 0x85EB) ^ _SALT_ALT) % self.vocab
        if alt == truth:
            alt = (alt + 1) % self.vocab
        return alt

    def next_token(self, prefix: Sequence[int]) -> int:
        return self.next_token_from_state(self.init_state(prefix))

    #: Confidence distributions: agreeing proposals draw uniform over
    #: [AGREE_LO, 1), disagreeing ones over [DIS_LO, DIS_HI).  Confidence
    #: is informative — real draft models are more confident when right —
    #: which is what makes the confidence-cutoff machinery effective.
    AGREE_LO = 0.50
    DIS_LO = 0.10
    DIS_HI = 0.90

    def confidence_from_state(self, state: int) -> float:
        """Draft self-confidence in [0, 1), correlated with agreement."""
        u = unit_float(splitmix64(state ^ (self.seed * 0xC2B2) ^ _SALT_CONF))
        if self._agrees(state):
            return self.AGREE_LO + (1.0 - self.AGREE_LO) * u
        return self.DIS_LO + (self.DIS_HI - self.DIS_LO) * u

    def confidence(self, prefix: Sequence[int]) -> float:
        return self.confidence_from_state(self.init_state(prefix))


def pass_probabilities(cutoff: float) -> Tuple[float, float]:
    """P(confidence >= cutoff) for agreeing and disagreeing proposals."""

    def clamp01(x: float) -> float:
        return min(max(x, 0.0), 1.0)

    p_agree = clamp01((1.0 - cutoff) / (1.0 - DraftOracle.AGREE_LO))
    p_dis = clamp01((DraftOracle.DIS_HI - cutoff) / (DraftOracle.DIS_HI - DraftOracle.DIS_LO))
    return p_agree, p_dis


def calibrate_agreement(measured_acceptance: float, cutoff: float) -> float:
    """Raw agreement rate that yields the target *measured* acceptance.

    The paper's reported acceptance rates are measured over tokens that
    passed the confidence cutoff; since confidence correlates with
    agreement, the cutoff enriches dispatched tokens.  Inverting Bayes:

        measured = a * Pa / (a * Pa + (1 - a) * Pd)
        =>  a = measured * Pd / (Pa * (1 - measured) + measured * Pd)

    where Pa, Pd are the cutoff pass probabilities of agreeing and
    disagreeing proposals.
    """
    if not 0.0 < measured_acceptance < 1.0:
        return measured_acceptance
    p_agree, p_dis = pass_probabilities(cutoff)
    if p_agree <= 0.0:
        return measured_acceptance
    num = measured_acceptance * p_dis
    den = p_agree * (1.0 - measured_acceptance) + measured_acceptance * p_dis
    if den <= 0.0:
        return measured_acceptance
    return num / den


def make_aligned_pair(
    acceptance: float,
    seed: int = 0,
    vocab: int = 32000,
    cutoff: Optional[float] = None,
) -> Tuple[OracleLM, DraftOracle]:
    """Build a (target, draft) oracle pair.

    Args:
        acceptance: target *measured* per-token acceptance rate.
        cutoff: when given, the raw agreement is Bayes-calibrated so that
            tokens passing this confidence cutoff are accepted at the
            requested rate (matching how the paper's rates were measured);
            when None, ``acceptance`` is used as the raw agreement rate.
    """
    raw = acceptance if cutoff is None else calibrate_agreement(acceptance, cutoff)
    target = OracleLM(seed=seed, vocab=vocab)
    draft = DraftOracle(target, acceptance=raw, seed=seed + 101)
    return target, draft
