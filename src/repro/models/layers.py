"""Transformer layer math: RMSNorm, RoPE, softmax, SwiGLU.

Pure NumPy, vectorized over the (tiny) decode batches the engines use.
Shapes follow the convention ``(n_tokens, ...)`` with attention heads as an
explicit axis: ``(n_tokens, n_heads, head_dim)``.
"""

from __future__ import annotations

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (Llama-style, no mean subtraction).

    The mean square is a single einsum contraction (one pass, no squared
    temporary) — this runs twice per layer per decode batch, so the
    constant factors matter.
    """
    ms = np.einsum("...d,...d->...", x, x) / x.shape[-1]
    scale = 1.0 / np.sqrt(ms + eps)
    return x * scale[..., None] * weight


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit."""
    return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Per-pair rotation frequencies for rotary position embedding."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    return base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)


def rope_tables(positions: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Per-token rotation table (complex rotors) for a batch of positions.

    The table depends only on ``positions`` — never on the layer or the
    tensor being rotated — so one table serves every q/k rotation of every
    layer in a forward pass, and callers may further cache it per
    positions-tuple across calls (prefill batches repeat the same
    0..L-1 positions for every request of a given prompt length).

    Returns ``cos + i*sin`` shaped (n, 1, head_dim/2), ready to broadcast
    over the heads axis: rotating a channel pair (x1, x2) by angle θ is
    exactly the complex product (x1 + i*x2)(cosθ + i*sinθ).
    """
    angles = positions[:, None].astype(np.float64) * freqs[None, :]  # (n, hd/2)
    return (np.cos(angles) + 1j * np.sin(angles))[:, None, :]


def apply_rope_tables(x: np.ndarray, rot: np.ndarray) -> np.ndarray:
    """Rotate ``x`` of shape (n, heads, head_dim) with a precomputed table.

    Consecutive channel pairs are viewed as complex numbers and rotated
    with one vectorized complex multiply — the same ``x1*cos - x2*sin`` /
    ``x1*sin + x2*cos`` arithmetic as the explicit form, without the
    strided slice assignments.
    """
    if not x.flags.c_contiguous:  # complex view needs contiguous pairs
        x = np.ascontiguousarray(x)
    return (x.view(np.complex128) * rot).view(np.float64)


def apply_rope(x: np.ndarray, positions: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Rotate ``x`` of shape (n, heads, head_dim) by per-token positions.

    Rotary embedding encodes *absolute* position by rotating consecutive
    channel pairs; relative offsets fall out of the attention dot product.
    Tokens in a speculative batch carry non-contiguous positions, so the
    rotation is applied per token from ``positions``.
    """
    return apply_rope_tables(x, rope_tables(positions, freqs))


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU feed-forward: ``silu(x @ Wg) * (x @ Wu) @ Wd``."""
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down


def batched_grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    mask: np.ndarray,
    n_kv_heads: int,
    invisible: "np.ndarray | None" = None,
) -> np.ndarray:
    """Masked attention for a whole decode batch over shared cache cells.

    The batched form of :func:`grouped_attention`: instead of gathering
    each token's visible cells and attending one token at a time, every
    token attends over the same cell block with a per-token boolean
    visibility mask (invisible cells are driven to -inf before softmax,
    so their weights are exactly zero).

    Args:
        q: (n_tokens, n_heads, head_dim) queries (already rotated).
        k_cells: (n_cells, kv_dim) keys for the shared cell block.
        v_cells: (n_cells, kv_dim) values for the shared cell block.
        mask: (n_tokens, n_cells) boolean visibility; every row must have
            at least one visible cell (a token always sees its own entry).
        n_kv_heads: KV head count; query heads are grouped onto them.
        invisible: optional precomputed ``~mask[:, None, None, :]``.  The
            mask is fixed for a whole decode batch, so callers evaluating
            several layers hoist the inversion out of the layer loop.

    Returns:
        (n_tokens, n_heads, head_dim) attention output per token.
    """
    n_tokens, n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Group query heads onto their KV head: (tokens, kv_heads, group, hd),
    # then batched matmuls over the cell axis (equivalent to the einsum
    # contractions "tkgd,ckd->tkgc" / "tkgc,ckd->tkgd", but dispatched to
    # BLAS, which is several times faster at these shapes).
    qg = q.reshape(n_tokens, n_kv_heads, group, head_dim)
    scores = np.matmul(qg, k.transpose(1, 2, 0))
    scores /= np.sqrt(head_dim)
    # Mask and softmax in place: invisible cells are driven to -inf before
    # the shift-exp-normalize, so their weights are exactly zero.  Same
    # arithmetic as ``softmax(np.where(mask, scores, -inf))`` without the
    # three full-size temporaries — this runs once per layer per batch.
    if invisible is None:
        invisible = ~mask[:, None, None, :]
    np.copyto(scores, -np.inf, where=invisible)
    scores -= np.max(scores, axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= np.sum(scores, axis=-1, keepdims=True)
    out = np.matmul(scores, v.transpose(1, 0, 2))
    return out.reshape(n_tokens, n_heads, head_dim)


def grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    n_kv_heads: int,
) -> np.ndarray:
    """Single-query attention over gathered cache cells.

    Args:
        q: (n_heads, head_dim) query for one token.
        k_cells: (n_cells, kv_dim) gathered keys (already rotated).
        v_cells: (n_cells, kv_dim) gathered values.
        n_kv_heads: KV head count; query heads are grouped onto them.

    Returns:
        (n_heads, head_dim) attention output for the token.
    """
    n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Broadcast each KV head to its query-head group.
    k = np.repeat(k, group, axis=1)  # (cells, heads, hd)
    v = np.repeat(v, group, axis=1)
    scores = np.einsum("hd,chd->hc", q, k) / np.sqrt(head_dim)
    weights = softmax(scores, axis=-1)
    return np.einsum("hc,chd->hd", weights, v)
