"""Transformer layer math: RMSNorm, RoPE, softmax, SwiGLU.

Pure NumPy, vectorized over the (tiny) decode batches the engines use.
Shapes follow the convention ``(n_tokens, ...)`` with attention heads as an
explicit axis: ``(n_tokens, n_heads, head_dim)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # numpy >= 2.0
    from numpy._core._multiarray_umath import c_einsum as _c_einsum
except ImportError:  # pragma: no cover - older numpy layouts
    try:
        from numpy.core._multiarray_umath import c_einsum as _c_einsum
    except ImportError:
        _c_einsum = np.einsum


class ScratchArena:
    """Named, shape-keyed scratch buffers for the hot forward path.

    ``get(name, shape)`` hands back a preallocated C-contiguous buffer,
    reallocating only when the requested shape (or dtype) changes — so
    decode batches of the same shape reuse the same memory pass after
    pass instead of re-allocating every temporary of every layer.

    A buffer is only valid until the next ``get`` with the same name;
    anything that outlives the arena (activations forwarded downstream,
    logits kept by the head) must be copied out.  Each concurrent
    consumer therefore owns its own arena — one per pipeline stage, one
    per draft plane — which the simulation's cooperative scheduling turns
    into a safety guarantee: a stage's buffers are never live across a
    yield.
    """

    __slots__ = ("_bufs", "n_hits", "n_misses")

    def __init__(self) -> None:
        self._bufs: dict = {}
        #: Statistics: shape-stable reuses vs. (re)allocations.
        self.n_hits = 0
        self.n_misses = 0

    def get(
        self, name: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.n_hits += 1
            return buf
        self.n_misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._bufs[name] = buf
        return buf


def rms_norm(
    x: np.ndarray,
    weight: np.ndarray,
    eps: float = 1e-5,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Root-mean-square layer norm (Llama-style, no mean subtraction).

    The mean square is a single einsum contraction (one pass, no squared
    temporary) — this runs twice per layer per decode batch, so the
    constant factors matter.  With ``out`` the normalized product is
    written into a caller-provided buffer using the exact same operation
    order, so results are bit-identical to the allocating form.
    """
    # Direct dispatch to the einsum kernel: ``np.einsum`` without an
    # ``optimize`` path delegates to exactly this call, so the result is
    # bit-identical — only the per-call wrapper overhead is skipped
    # (this runs twice per layer per decode batch).
    ms = _c_einsum("...d,...d->...", x, x)
    # In-place on the fresh einsum result: the same ufunc sequence as
    # ``1.0 / np.sqrt(ms / d + eps)`` without the three temporaries.
    ms /= x.shape[-1]
    ms += eps
    np.sqrt(ms, out=ms)
    np.divide(1.0, ms, out=ms)
    scale = ms
    if out is None:
        return x * scale[..., None] * weight
    np.multiply(x, scale[..., None], out=out)
    out *= weight
    return out


def silu(
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sigmoid-weighted linear unit.

    With ``out`` (which may alias ``x``) the result is computed with the
    same elementwise steps into caller buffers; ``scratch`` holds the
    ``exp(-x)`` intermediate and must not alias ``x`` or ``out``.
    """
    if out is None:
        return x / (1.0 + np.exp(-x))
    t = scratch if scratch is not None else np.empty_like(x)
    np.negative(x, out=t)
    np.exp(t, out=t)
    t += 1.0
    np.divide(x, t, out=out)
    return out


def softmax(
    x: np.ndarray, axis: int = -1, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Numerically stable softmax (``out`` may alias ``x``)."""
    m = x.max(axis=axis, keepdims=True)
    if out is None:
        e = np.exp(x - m)
        return e / e.sum(axis=axis, keepdims=True)
    np.subtract(x, m, out=out)
    np.exp(out, out=out)
    out /= out.sum(axis=axis, keepdims=True)
    return out


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Per-pair rotation frequencies for rotary position embedding."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    return base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)


def rope_tables(positions: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Per-token rotation table (complex rotors) for a batch of positions.

    The table depends only on ``positions`` — never on the layer or the
    tensor being rotated — so one table serves every q/k rotation of every
    layer in a forward pass, and callers may further cache it per
    positions-tuple across calls (prefill batches repeat the same
    0..L-1 positions for every request of a given prompt length).

    Returns ``cos + i*sin`` shaped (n, 1, head_dim/2), ready to broadcast
    over the heads axis: rotating a channel pair (x1, x2) by angle θ is
    exactly the complex product (x1 + i*x2)(cosθ + i*sinθ).
    """
    angles = positions[:, None].astype(np.float64) * freqs[None, :]  # (n, hd/2)
    return (np.cos(angles) + 1j * np.sin(angles))[:, None, :]


def apply_rope_tables(
    x: np.ndarray, rot: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Rotate ``x`` of shape (n, heads, head_dim) with a precomputed table.

    Consecutive channel pairs are viewed as complex numbers and rotated
    with one vectorized complex multiply — the same ``x1*cos - x2*sin`` /
    ``x1*sin + x2*cos`` arithmetic as the explicit form, without the
    strided slice assignments.  ``out`` must be a C-contiguous float64
    buffer of the same shape and may alias ``x`` (in-place rotation).
    """
    if not x.flags.c_contiguous:  # complex view needs contiguous pairs
        x = np.ascontiguousarray(x)
    xc = x.view(np.complex128)
    if out is None:
        return (xc * rot).view(np.float64)
    np.multiply(xc, rot, out=out.view(np.complex128))
    return out


def apply_rope(x: np.ndarray, positions: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Rotate ``x`` of shape (n, heads, head_dim) by per-token positions.

    Rotary embedding encodes *absolute* position by rotating consecutive
    channel pairs; relative offsets fall out of the attention dot product.
    Tokens in a speculative batch carry non-contiguous positions, so the
    rotation is applied per token from ``positions``.
    """
    return apply_rope_tables(x, rope_tables(positions, freqs))


def swiglu(
    x: np.ndarray,
    w_gate: np.ndarray,
    w_up: np.ndarray,
    w_down: np.ndarray,
    arena: Optional[ScratchArena] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """SwiGLU feed-forward: ``silu(x @ Wg) * (x @ Wu) @ Wd``.

    With ``arena`` the gate/up projections and the silu intermediate live
    in recycled scratch buffers; every operation is the same BLAS call or
    elementwise ufunc as the allocating form, so outputs are
    bit-identical.  ``out`` (requires ``arena``) receives the final
    down-projection.
    """
    if arena is None:
        return (silu(x @ w_gate) * (x @ w_up)) @ w_down
    n, ff = x.shape[0], w_gate.shape[1]
    g = arena.get("swiglu.gate", (n, ff))
    u = arena.get("swiglu.up", (n, ff))
    t = arena.get("swiglu.tmp", (n, ff))
    np.matmul(x, w_gate, out=g)
    np.matmul(x, w_up, out=u)
    silu(g, out=g, scratch=t)
    g *= u
    if out is None:
        return g @ w_down
    np.matmul(g, w_down, out=out)
    return out


def batched_grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    mask: np.ndarray,
    n_kv_heads: int,
    invisible: "np.ndarray | None" = None,
    arena: Optional[ScratchArena] = None,
    key: str = "",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Masked attention for a whole decode batch over shared cache cells.

    The batched form of :func:`grouped_attention`: instead of gathering
    each token's visible cells and attending one token at a time, every
    token attends over the same cell block with a per-token boolean
    visibility mask (invisible cells are driven to -inf before softmax,
    so their weights are exactly zero).

    Args:
        q: (n_tokens, n_heads, head_dim) queries (already rotated).
        k_cells: (n_cells, kv_dim) keys for the shared cell block.
        v_cells: (n_cells, kv_dim) values for the shared cell block.
        mask: (n_tokens, n_cells) boolean visibility; every row must have
            at least one visible cell (a token always sees its own entry).
        n_kv_heads: KV head count; query heads are grouped onto them.
        invisible: optional precomputed ``~mask[:, None, None, :]``.  The
            mask is fixed for a whole decode batch, so callers evaluating
            several layers hoist the inversion out of the layer loop.
        arena: optional scratch arena for the score and output tensors.
            When given, the returned array is an arena view valid only
            until the arena's next use — callers must consume (or copy)
            it before their next attention call.
        key: arena-name suffix so several attention sub-problems of
            different shapes (row groups of one batch) keep distinct
            score buffers instead of thrashing one.
        out: optional (n_tokens, n_kv_heads, group, head_dim) buffer for
            the output matmul (e.g. a row slice of a whole-batch
            activation buffer).

    Returns:
        (n_tokens, n_heads, head_dim) attention output per token.
    """
    n_tokens, n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Group query heads onto their KV head: (tokens, kv_heads, group, hd),
    # then batched matmuls over the cell axis (equivalent to the einsum
    # contractions "tkgd,ckd->tkgc" / "tkgc,ckd->tkgd", but dispatched to
    # BLAS, which is several times faster at these shapes).
    qg = q.reshape(n_tokens, n_kv_heads, group, head_dim)
    if arena is None:
        scores = np.matmul(qg, k.transpose(1, 2, 0))
    else:
        scores = arena.get(
            "attn.scores" + key, (n_tokens, n_kv_heads, group, n_cells)
        )
        np.matmul(qg, k.transpose(1, 2, 0), out=scores)
    scores /= np.sqrt(head_dim)
    # Mask and softmax in place: invisible cells are driven to -inf before
    # the shift-exp-normalize, so their weights are exactly zero.  Same
    # arithmetic as ``softmax(np.where(mask, scores, -inf))`` without the
    # three full-size temporaries — this runs once per layer per batch.
    if invisible is None:
        invisible = ~mask[:, None, None, :]
    np.copyto(scores, -np.inf, where=invisible)
    # Method-call forms of max/sum skip the np.* dispatch wrappers —
    # same reductions, and this runs once per layer per row group.
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    if out is None:
        if arena is None:
            out = np.matmul(scores, v.transpose(1, 0, 2))
        else:
            out = arena.get(
                "attn.out" + key, (n_tokens, n_kv_heads, group, head_dim)
            )
            np.matmul(scores, v.transpose(1, 0, 2), out=out)
    else:
        np.matmul(scores, v.transpose(1, 0, 2), out=out)
    return out.reshape(n_tokens, n_heads, head_dim)


def grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    n_kv_heads: int,
) -> np.ndarray:
    """Single-query attention over gathered cache cells.

    Args:
        q: (n_heads, head_dim) query for one token.
        k_cells: (n_cells, kv_dim) gathered keys (already rotated).
        v_cells: (n_cells, kv_dim) gathered values.
        n_kv_heads: KV head count; query heads are grouped onto them.

    Returns:
        (n_heads, head_dim) attention output for the token.
    """
    n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Broadcast each KV head to its query-head group.
    k = np.repeat(k, group, axis=1)  # (cells, heads, hd)
    v = np.repeat(v, group, axis=1)
    scores = np.einsum("hd,chd->hc", q, k) / np.sqrt(head_dim)
    weights = softmax(scores, axis=-1)
    return np.einsum("hc,chd->hd", weights, v)
