"""Transformer layer math: RMSNorm, RoPE, softmax, SwiGLU.

Pure NumPy, vectorized over the (tiny) decode batches the engines use.
Shapes follow the convention ``(n_tokens, ...)`` with attention heads as an
explicit axis: ``(n_tokens, n_heads, head_dim)``.
"""

from __future__ import annotations

import numpy as np


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer norm (Llama-style, no mean subtraction)."""
    scale = 1.0 / np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + eps)
    return x * scale * weight


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit."""
    return x / (1.0 + np.exp(-x))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Per-pair rotation frequencies for rotary position embedding."""
    if head_dim % 2 != 0:
        raise ValueError("head_dim must be even for RoPE")
    return base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)


def apply_rope(x: np.ndarray, positions: np.ndarray, freqs: np.ndarray) -> np.ndarray:
    """Rotate ``x`` of shape (n, heads, head_dim) by per-token positions.

    Rotary embedding encodes *absolute* position by rotating consecutive
    channel pairs; relative offsets fall out of the attention dot product.
    Tokens in a speculative batch carry non-contiguous positions, so the
    rotation is applied per token from ``positions``.
    """
    n, n_heads, head_dim = x.shape
    angles = positions[:, None].astype(np.float64) * freqs[None, :]  # (n, hd/2)
    cos = np.cos(angles)[:, None, :]  # (n, 1, hd/2)
    sin = np.sin(angles)[:, None, :]
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    out = np.empty_like(x)
    out[..., 0::2] = x1 * cos - x2 * sin
    out[..., 1::2] = x1 * sin + x2 * cos
    return out


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU feed-forward: ``silu(x @ Wg) * (x @ Wu) @ Wd``."""
    return (silu(x @ w_gate) * (x @ w_up)) @ w_down


def batched_grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    mask: np.ndarray,
    n_kv_heads: int,
) -> np.ndarray:
    """Masked attention for a whole decode batch over shared cache cells.

    The batched form of :func:`grouped_attention`: instead of gathering
    each token's visible cells and attending one token at a time, every
    token attends over the same cell block with a per-token boolean
    visibility mask (invisible cells are driven to -inf before softmax,
    so their weights are exactly zero).

    Args:
        q: (n_tokens, n_heads, head_dim) queries (already rotated).
        k_cells: (n_cells, kv_dim) keys for the shared cell block.
        v_cells: (n_cells, kv_dim) values for the shared cell block.
        mask: (n_tokens, n_cells) boolean visibility; every row must have
            at least one visible cell (a token always sees its own entry).
        n_kv_heads: KV head count; query heads are grouped onto them.

    Returns:
        (n_tokens, n_heads, head_dim) attention output per token.
    """
    n_tokens, n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Group query heads onto their KV head: (tokens, kv_heads, group, hd).
    qg = q.reshape(n_tokens, n_kv_heads, group, head_dim)
    scores = np.einsum("tkgd,ckd->tkgc", qg, k) / np.sqrt(head_dim)
    scores = np.where(mask[:, None, None, :], scores, -np.inf)
    weights = softmax(scores, axis=-1)
    out = np.einsum("tkgc,ckd->tkgd", weights, v)
    return out.reshape(n_tokens, n_heads, head_dim)


def grouped_attention(
    q: np.ndarray,
    k_cells: np.ndarray,
    v_cells: np.ndarray,
    n_kv_heads: int,
) -> np.ndarray:
    """Single-query attention over gathered cache cells.

    Args:
        q: (n_heads, head_dim) query for one token.
        k_cells: (n_cells, kv_dim) gathered keys (already rotated).
        v_cells: (n_cells, kv_dim) gathered values.
        n_kv_heads: KV head count; query heads are grouped onto them.

    Returns:
        (n_heads, head_dim) attention output for the token.
    """
    n_heads, head_dim = q.shape
    group = n_heads // n_kv_heads
    n_cells = k_cells.shape[0]
    k = k_cells.reshape(n_cells, n_kv_heads, head_dim)
    v = v_cells.reshape(n_cells, n_kv_heads, head_dim)
    # Broadcast each KV head to its query-head group.
    k = np.repeat(k, group, axis=1)  # (cells, heads, hd)
    v = np.repeat(v, group, axis=1)
    scores = np.einsum("hd,chd->hc", q, k) / np.sqrt(head_dim)
    weights = softmax(scores, axis=-1)
    return np.einsum("hc,chd->hd", weights, v)
