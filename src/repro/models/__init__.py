"""Model substrate: the llama.cpp-equivalent inference stack.

Two coupled fidelity levels share the interfaces in
:mod:`repro.models.interfaces`:

- **Functional**: :mod:`repro.models.transformer` is a real NumPy
  decoder-only transformer (RMSNorm, RoPE, grouped-query attention,
  SwiGLU) operating over the llama.cpp-style KV cache in
  :mod:`repro.models.kv_cache`.  Used for the correctness-level
  experiments (output equivalence, multibuffer isolation).
- **Performance**: :mod:`repro.models.oracle` provides deterministic
  target/draft model pairs with calibrated agreement (the paper's
  acceptance rates), and :mod:`repro.models.cost` turns the architecture
  descriptors of :mod:`repro.models.zoo` (Tables I and III) into per-layer
  compute times and message sizes for the cluster simulation.
"""

from repro.models.arch import ArchSpec
from repro.models.quant import Quant, bits_per_weight
from repro.models.zoo import MODEL_ZOO, CPU_PAIRS, GPU_PAIRS, ModelPair, get_model, get_pair
from repro.models.cost import CostModel
from repro.models.kv_cache import KVCache, KVCacheError
from repro.models.transformer import TinyTransformer, TransformerConfig
from repro.models.oracle import OracleLM, OracleLogits, make_aligned_pair
from repro.models.sampler import greedy_sample, argmax_token
from repro.models.tokenizer import ToyTokenizer

__all__ = [
    "ArchSpec",
    "Quant",
    "bits_per_weight",
    "MODEL_ZOO",
    "CPU_PAIRS",
    "GPU_PAIRS",
    "ModelPair",
    "get_model",
    "get_pair",
    "CostModel",
    "KVCache",
    "KVCacheError",
    "TinyTransformer",
    "TransformerConfig",
    "OracleLM",
    "OracleLogits",
    "make_aligned_pair",
    "greedy_sample",
    "argmax_token",
    "ToyTokenizer",
]
