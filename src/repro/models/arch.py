"""Transformer architecture descriptors.

An :class:`ArchSpec` captures the shape parameters that determine inference
cost: layer count, hidden width, attention heads (with grouped-query KV
heads), feed-forward width, vocabulary, and the quantization format the
paper ran the model in (Table I / III).  Parameter counts follow the
standard Llama layer layout; Falcon's parallel-attention layout differs by
a few percent, which is within the fidelity of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.quant import Quant, bits_per_weight


@dataclass(frozen=True)
class ArchSpec:
    """Decoder-only transformer shape.

    Attributes:
        name: model name as used in the paper.
        n_layers: decoder layer count.
        d_model: hidden width.
        n_heads: attention query heads.
        n_kv_heads: key/value heads (``n_heads`` unless grouped-query).
        d_ff: feed-forward inner width.
        vocab: vocabulary size.
        quant: weight quantization format.
        n_experts: total experts for MoE models (1 = dense).
        n_active_experts: experts evaluated per token (MoE routing).
    """

    name: str
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    vocab: int
    quant: Quant = Quant.F16
    n_experts: int = 1
    n_active_experts: int = 1

    def __post_init__(self) -> None:
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError("n_heads must be a multiple of n_kv_heads")
        if self.n_active_experts > self.n_experts:
            raise ValueError("cannot activate more experts than exist")

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.n_kv_heads * self.head_dim

    # -- parameter accounting -------------------------------------------------

    @property
    def attn_params_per_layer(self) -> int:
        """Q, K, V, O projection weights of one layer."""
        d = self.d_model
        return d * d + 2 * d * self.kv_dim + d * d

    @property
    def ffn_params_per_layer(self) -> int:
        """SwiGLU feed-forward weights (gate, up, down) of one layer.

        MoE models store ``n_experts`` copies but evaluate only
        ``n_active_experts`` of them per token.
        """
        return 3 * self.d_model * self.d_ff * self.n_experts

    @property
    def ffn_active_params_per_layer(self) -> int:
        """Feed-forward weights actually touched per token."""
        return 3 * self.d_model * self.d_ff * self.n_active_experts

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.ffn_params_per_layer

    @property
    def active_params_per_layer(self) -> int:
        """Weights read from memory per token per layer (MoE-aware)."""
        return self.attn_params_per_layer + self.ffn_active_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Input embedding plus output head (untied, as in Llama)."""
        return 2 * self.vocab * self.d_model

    @property
    def total_params(self) -> int:
        return self.n_layers * self.params_per_layer + self.embedding_params

    # -- byte accounting -------------------------------------------------------

    @property
    def bytes_per_layer(self) -> float:
        """Stored bytes of one layer's weights under the quantization."""
        return self.params_per_layer * bits_per_weight(self.quant) / 8.0

    @property
    def active_bytes_per_layer(self) -> float:
        """Weight bytes streamed from memory per token per layer."""
        return self.active_params_per_layer * bits_per_weight(self.quant) / 8.0

    @property
    def total_bytes(self) -> float:
        """Model file size estimate in bytes."""
        return self.total_params * bits_per_weight(self.quant) / 8.0

    @property
    def kv_bytes_per_token_per_layer(self) -> float:
        """KV-cache growth per token per layer (f16 K and V)."""
        return 2 * self.kv_dim * 2.0

    def flops_per_token_per_layer(self, context: int = 512) -> float:
        """Arithmetic per token per layer: 2 FLOPs/weight + attention scores."""
        weight_flops = 2.0 * self.active_params_per_layer
        attn_flops = 2.0 * 2.0 * context * self.head_dim * self.n_heads
        return weight_flops + attn_flops
