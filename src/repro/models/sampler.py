"""Token sampling.

The paper uses greedy sampling throughout so that all inference strategies
produce byte-identical output (Section V-A); greedy is therefore the load-
bearing path here.  Temperature sampling is provided for the examples and
to exercise the stochastic branch of SpecInfer verification.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.models.oracle import OracleLogits

LogitsLike = Union[np.ndarray, OracleLogits]


def argmax_token(logits: LogitsLike) -> int:
    """The greedy token for dense logits or an oracle's sparse logits."""
    if isinstance(logits, OracleLogits):
        return logits.top_token
    return int(np.argmax(logits))


def top_prob(logits: LogitsLike) -> float:
    """Probability of the greedy token under softmax."""
    if isinstance(logits, OracleLogits):
        return logits.top_prob
    shifted = logits - logits.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    return float(probs.max())


def greedy_sample(logits: LogitsLike) -> int:
    """Deterministic argmax sampling (the paper's evaluation setting)."""
    return argmax_token(logits)


def temperature_sample(
    logits: np.ndarray, temperature: float, rng: np.random.Generator
) -> int:
    """Sample from softmax(logits / T).  Requires dense logits."""
    if isinstance(logits, OracleLogits):
        raise TypeError("temperature sampling needs dense logits")
    if temperature <= 0:
        return argmax_token(logits)
    scaled = logits / temperature
    shifted = scaled - scaled.max()
    probs = np.exp(shifted)
    probs /= probs.sum()
    return int(rng.choice(len(probs), p=probs))


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Full softmax distribution for dense logits."""
    shifted = logits - logits.max()
    probs = np.exp(shifted)
    return probs / probs.sum()


def batched_top1(logits: np.ndarray):
    """Greedy token and its softmax probability for every row at once.

    The draft plane's batched rounds only ever need the argmax token and
    its confidence, so materializing a full per-row softmax distribution
    (``softmax_probs`` row by row) wastes a vocab-sized normalize per
    chain.  One fused pass computes both: the argmax's shifted logit is
    exactly 0, so its probability is ``1 / sum(exp(row - row_max))`` —
    the same stable-softmax arithmetic as the per-row reference, which
    the draft-batch property suite pins to <= 1e-10.

    Returns ``(tokens, confs)`` int/float 1-D arrays, one entry per row.
    """
    mat = np.asarray(logits)
    tokens = np.argmax(mat, axis=1)
    shifted = mat - mat.max(axis=1, keepdims=True)
    confs = 1.0 / np.exp(shifted).sum(axis=1)
    return tokens, confs
