"""An in-process OpenAI-ish streaming client over a :class:`ServingSession`.

:class:`AsyncFrontend` multiplexes N concurrent client coroutines over
one :class:`~repro.serve.cluster.EngineCluster`: each call to
:meth:`stream` submits a request and async-iterates its accepted tokens
as the shared co-simulation advances.  The simulation itself is
single-threaded and deterministic — concurrency here is *interleaving*,
not parallelism: whichever coroutine holds the lock steps the sim, and
every other live stream drinks the tokens that step produced.

Disconnect semantics mirror a dropped HTTP connection: exiting the
async generator early (``break``, task cancellation, garbage
collection) cancels the request mid-flight — the serving head invalidates
its speculation, releases its canonical KV, and donates the verified
prefix to the prefix cache.

No wall-clock coupling: the frontend never sleeps on real time (only
``asyncio.sleep(0)`` yields to interleave coroutines), so tests and
examples run at simulation speed.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Optional

from repro.api.session import ServingSession
from repro.api.stream import TokenStream
from repro.engines.base import GenerationJob
from repro.serve.cluster import EngineCluster


class AsyncFrontend:
    """Async streaming facade over one serving cluster.

    Args:
        cluster: a fresh (not yet opened) :class:`EngineCluster`.
        max_active: per-replica concurrency cap.
    """

    def __init__(
        self, cluster: EngineCluster, max_active: Optional[int] = None
    ) -> None:
        self.session = ServingSession(cluster, max_active=max_active)
        #: Serializes sim stepping: one coroutine advances, all observe.
        self._lock = asyncio.Lock()

    async def stream(
        self,
        prompt,
        n_generate: int = 32,
        arrival: Optional[float] = None,
        priority: int = 0,
        ttft_slo: Optional[float] = None,
        itl_slo: Optional[float] = None,
        session: Optional[int] = None,
    ) -> AsyncIterator[int]:
        """Submit a request and yield its tokens as verification accepts them.

        ``prompt`` is a token sequence or a prebuilt
        :class:`GenerationJob` (in which case ``n_generate`` is ignored).
        Exiting the iterator before exhaustion cancels the request
        mid-flight.
        """
        if isinstance(prompt, GenerationJob):
            job = prompt
        else:
            job = GenerationJob(prompt=tuple(prompt), n_generate=n_generate)
        async with self._lock:
            ts = self.session.submit(
                job,
                arrival=arrival,
                priority=priority,
                ttft_slo=ttft_slo,
                itl_slo=itl_slo,
                session=session,
            )
        cursor = 0
        try:
            while True:
                fresh = ts.take(cursor)
                if fresh:
                    cursor += len(fresh)
                    for tok in fresh:
                        yield tok
                    continue
                if ts.closed:
                    return
                async with self._lock:
                    # Another coroutine may have advanced the sim while
                    # we waited on the lock; only step if still starved.
                    if not ts.take(cursor) and not ts.closed:
                        if not self.session.step():
                            # Nothing streamed this timestamp batch; if
                            # the sim is fully drained and the stream is
                            # still open the head is parked waiting for
                            # traffic that only a drain can flush.
                            if self.session._next_event_time() is None:
                                self.session.drain()
                # Let sibling streams consume what this step produced.
                await asyncio.sleep(0)
        finally:
            if not ts.closed:
                async with self._lock:
                    self.session.cancel(ts)

    async def complete(self, prompt, **kwargs) -> list:
        """Non-streaming convenience: collect the full output."""
        return [tok async for tok in self.stream(prompt, **kwargs)]

    def report(self):
        """Drain the session and return the final ClusterReport."""
        return self.session.report()
