"""Streamed single-pipeline serving: the batch path plus live streams.

``stream_serving`` is ``run_serving`` with a :class:`StreamHub` attached
to the engine before the head spawns: the simulation is the same object
graph, built in the same order, executing the same events — the hub is a
pure observer — so the returned report is *field-identical* to the batch
path's, and each request's streamed token sequence equals its report
tokens.  The property suite pins both.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.api.stream import StreamHub
from repro.cluster.topology import Cluster
from repro.engines.backend import Backend
from repro.engines.base import EngineConfig
from repro.metrics.report import ServingReport
from repro.serve.cluster import Replica
from repro.serve.scheduler import RequestScheduler, Workload


def stream_serving(
    engine_factory,
    backend: Backend,
    cluster: Cluster,
    workload: Workload,
    config: Optional[EngineConfig] = None,
    fault_plan=None,
) -> Tuple[ServingReport, StreamHub]:
    """Serve ``workload`` with per-request token streams recorded.

    Same contract as :func:`repro.serve.run.run_serving`, returning the
    identical report *plus* the hub of closed token streams — each
    stream's events carry the sim instants verification accepted its
    tokens.
    """
    replica = Replica(
        0,
        engine_factory,
        backend,
        cluster,
        config=config,
        fault_plan=fault_plan,
    )
    hub = StreamHub()
    replica.engine.stream_hub = hub
    replica.start(RequestScheduler(workload))
    replica.drain()
    report = replica.report()
    assert report is not None  # workloads hold >= 1 job
    return report, hub
