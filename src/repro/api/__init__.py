"""Streaming serving front-end: token streams, cancellation, SLOs.

The :mod:`repro.api` package layers an OpenAI-style streaming surface on
the discrete-event serving core:

- :class:`TokenStream` / :class:`StreamHub` — per-request streams fed by
  the serving head at the sim instant verification accepts each token;
- :func:`stream_serving` — the batch ``run_serving`` path with streams
  recorded (byte-identical report);
- :class:`ServingSession` — incremental submit/step/cancel driving of a
  multi-replica cluster;
- :class:`AsyncFrontend` — an in-process async client multiplexing
  concurrent connections over one cluster, with disconnect-cancel.
"""

from repro.api.frontend import AsyncFrontend
from repro.api.run import stream_serving
from repro.api.session import ServingSession
from repro.api.stream import StreamHub, TokenStream

__all__ = [
    "AsyncFrontend",
    "ServingSession",
    "StreamHub",
    "TokenStream",
    "stream_serving",
]
