"""Incremental driving of a serving cluster: submit / step / cancel.

:class:`ServingSession` wraps an :class:`~repro.serve.cluster.EngineCluster`
in push mode and replaces "serve the whole workload, hand back one
report" with an *incremental* surface:

- :meth:`submit` routes one request now (or at a given future arrival)
  and returns its live :class:`~repro.api.stream.TokenStream`;
- :meth:`step` advances the co-simulation one timestamp batch — the
  smallest unit that can change observable state — and reports whether
  anything streamed;
- :meth:`advance_until` runs until a condition: an absolute sim time, a
  stream producing (or closing), or an arbitrary predicate;
- :meth:`cancel` propagates a client disconnect mid-flight (speculation
  invalidation, canonical KV release, verified-prefix donation);
- :meth:`drain` / :meth:`report` finish the session into the usual
  :class:`~repro.metrics.report.ClusterReport`.

Streams are pure observers over the serving heads, so a session that
submits a whole workload and drains without cancelling reproduces the
batch path's outputs token for token.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.api.stream import StreamHub, TokenStream
from repro.engines.base import GenerationJob
from repro.serve.cluster import EngineCluster
from repro.serve.scheduler import Request


class ServingSession:
    """One live serving run driven request by request.

    Args:
        cluster: a fresh (not yet opened) :class:`EngineCluster`.
        max_active: per-replica concurrency cap for the feeds.
    """

    def __init__(
        self, cluster: EngineCluster, max_active: Optional[int] = None
    ) -> None:
        self.cluster = cluster
        self.hub = StreamHub()
        self._next_req_id = 0
        #: Monotonic submission clock: arrivals may never go backwards
        #: (the co-simulation has already advanced past them).
        self._clock = 0.0
        self._drained = False
        self._replicas = cluster.open(max_active=max_active)
        for rep in self._replicas:
            rep.engine.stream_hub = self.hub

    # -- client surface ------------------------------------------------------

    def submit(
        self,
        job: GenerationJob,
        arrival: Optional[float] = None,
        priority: int = 0,
        ttft_slo: Optional[float] = None,
        itl_slo: Optional[float] = None,
        session: Optional[int] = None,
    ) -> TokenStream:
        """Route one request into the cluster; returns its token stream.

        ``arrival`` defaults to the session clock (submit *now*); an
        earlier value is clamped to it — simulated time already passed.
        """
        if self._drained:
            raise RuntimeError("session already drained")
        t = self._clock if arrival is None else max(arrival, self._clock)
        self._clock = t
        req = Request(
            req_id=self._next_req_id,
            job=job,
            arrival=t,
            session=session,
            priority=priority,
            ttft_slo=ttft_slo,
            itl_slo=itl_slo,
        )
        self._next_req_id += 1
        stream = self.hub.open(req.req_id, budget=job.n_generate)
        self.cluster.submit(req)
        return stream

    def cancel(self, stream: Union[TokenStream, int]) -> None:
        """Client disconnect: cancel a request mid-flight.

        Broadcast to every replica (migration may have moved the request
        since routing; unknown ids are ignored), processed by the owning
        head at its next step.  No-op for already-closed streams.
        """
        rid = stream.req_id if isinstance(stream, TokenStream) else stream
        ts = self.hub.get(rid)
        if ts is not None and ts.closed:
            return
        for rep in self._replicas:
            rep.engine.cancel_request(rid)

    # -- time control --------------------------------------------------------

    def now(self) -> float:
        """The session clock (latest point every replica has reached)."""
        return self._clock

    def _next_event_time(self) -> Optional[float]:
        times = [
            t
            for rep in self._replicas
            if (t := rep.kernel.next_event_time()) is not None
        ]
        return min(times) if times else None

    def step(self) -> bool:
        """Advance to the next event timestamp across all replicas.

        Runs every replica up to the earliest pending event time (so the
        co-simulation stays in lockstep), then returns True if any stream
        saw an event (tokens or closure) during the step.  Returns False
        with no time advance when every kernel is drained.
        """
        if self._drained:
            return False
        nxt = self._next_event_time()
        if nxt is None:
            return False
        version = self.hub.version
        t = max(nxt, self._clock)
        for rep in self._replicas:
            rep.advance_to(t)
        self._clock = max(self._clock, t)
        return self.hub.version != version

    def advance_until(
        self,
        event: Union[float, TokenStream, Callable[[], bool]],
        max_steps: int = 1_000_000,
    ) -> bool:
        """Step the simulation until ``event`` occurs.

        ``event`` may be an absolute sim time (advance to it), a
        :class:`TokenStream` (until it yields new tokens or closes), or
        a zero-argument predicate (until it returns True).  Returns True
        if the condition was met, False if the simulation drained (or
        ``max_steps`` elapsed) first.
        """
        if isinstance(event, float) or isinstance(event, int):
            target = float(event)
            while True:
                nxt = self._next_event_time()
                if nxt is None or nxt > target:
                    # Nothing left to execute before the target instant;
                    # settle every clock at it.
                    for rep in self._replicas:
                        rep.advance_to(target)
                    self._clock = max(self._clock, target)
                    return True
                if not self.step() and self._next_event_time() is None:
                    return False
        if isinstance(event, TokenStream):
            baseline = event.n_tokens

            def cond(stream: TokenStream = event, base: int = baseline) -> bool:
                return stream.n_tokens > base or stream.closed

        else:
            cond = event
        for _ in range(max_steps):
            if cond():
                return True
            nxt = self._next_event_time()
            if nxt is None:
                return cond()
            self.step()
        return cond()

    # -- completion ----------------------------------------------------------

    def drain(self) -> None:
        """Close the request stream and run everything to completion."""
        if self._drained:
            return
        self.cluster.close_and_drain()
        self._drained = True
        # Kernels share one absolute timeline; after a full drain the
        # session clock is the cluster-wide completion instant.
        self._clock = max(
            (rep.kernel.now for rep in self._replicas), default=self._clock
        )

    def report(self):
        """Drain (if needed) and aggregate the final ClusterReport."""
        self.drain()
        return self.cluster.report()

    def outputs(self) -> Dict[int, List[int]]:
        """Streamed tokens per request id so far."""
        return self.hub.outputs()
