"""Per-request token streams: observers over the serving head's acceptances.

A :class:`TokenStream` is the streaming front-end's view of one request:
the serving head pushes every accepted token into it *at the simulated
instant verification accepts it* (see the hooks in
:func:`repro.core.head.verify_run_logits` and
:func:`~repro.core.head.process_prefill_logits`), and closes it when the
request finalizes — normally or by cancellation.  Streams are pure
observers: they record, they never feed anything back into the
simulation, so attaching a :class:`StreamHub` leaves served tokens and
report fields byte-identical to an unobserved run.

Verification can overshoot a request's token budget (a batch accepts
several tokens at once); the stream clips at ``n_generate`` exactly like
:meth:`~repro.core.run_state.RequestContext.output_tokens`, so the
streamed sequence always equals the request's report tokens.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple


class TokenStream:
    """One request's ordered stream of accepted tokens.

    Attributes:
        req_id: the owning request.
        events: ``(sim_time, tokens)`` acceptance records, push order.
        finished: closed by normal completion.
        cancelled: closed by client disconnect / cancellation.
        closed_at: simulated close timestamp (None while live).
    """

    def __init__(self, req_id: int, budget: Optional[int] = None) -> None:
        self.req_id = req_id
        self.budget = budget
        self.events: List[Tuple[float, Tuple[int, ...]]] = []
        self._tokens: List[int] = []
        self.finished = False
        self.cancelled = False
        self.closed_at: Optional[float] = None
        self.on_event: Optional[Callable[["TokenStream"], None]] = None

    # -- producer side (serving head) ---------------------------------------

    def bind_budget(self, budget: int) -> None:
        """Set the generation budget at admission (clips overshoot)."""
        if self.budget is None:
            self.budget = budget

    def push(self, t: float, tokens: Iterable[int]) -> None:
        """Record tokens accepted at sim instant ``t`` (clipped to budget)."""
        toks = tuple(tokens)
        if self.budget is not None:
            room = self.budget - len(self._tokens)
            if room <= 0:
                return
            toks = toks[:room]
        if not toks:
            return
        self.events.append((t, toks))
        self._tokens.extend(toks)
        self._notify()

    def finish(self, t: float) -> None:
        """Close the stream: the request completed its budget."""
        if self.closed:
            return
        self.finished = True
        self.closed_at = self._close_time(t)
        self._notify()

    def cancel(self, t: float) -> None:
        """Close the stream: the request was cancelled mid-flight."""
        if self.closed:
            return
        self.cancelled = True
        self.closed_at = self._close_time(t)
        self._notify()

    def _close_time(self, t: float) -> float:
        # A verification batch stamps its tokens at the instant its
        # cumulative sampling delay is paid, which can sit past the
        # head-loop "now" that closes the stream; never close before the
        # last delivered token.
        return max(t, self.events[-1][0]) if self.events else t

    def _notify(self) -> None:
        if self.on_event is not None:
            self.on_event(self)

    # -- consumer side -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.finished or self.cancelled

    @property
    def tokens(self) -> List[int]:
        """Every token streamed so far (budget-clipped), in order."""
        return list(self._tokens)

    @property
    def n_tokens(self) -> int:
        return len(self._tokens)

    def take(self, cursor: int) -> List[int]:
        """Tokens past ``cursor`` (the caller advances its own cursor)."""
        return self._tokens[cursor:]

    def __iter__(self) -> Iterator[int]:
        """Iterate the tokens streamed so far (a snapshot, not blocking)."""
        return iter(list(self._tokens))

    def __len__(self) -> int:
        return len(self._tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "finished" if self.finished else "live"
        )
        return f"TokenStream(req={self.req_id}, n={len(self._tokens)}, {state})"


class StreamHub:
    """The per-engine registry of live token streams.

    The serving head looks for ``engine.stream_hub`` at admission and, if
    present, attaches the admitted request's context to its stream
    (creating one on demand for requests nobody pre-registered).  The
    ``version`` counter bumps on every stream event, so a driver can
    cheaply detect "something streamed since I last looked" between
    kernel slices without scanning every stream.
    """

    def __init__(self) -> None:
        self.streams: Dict[int, TokenStream] = {}
        self.version = 0

    def open(self, req_id: int, budget: Optional[int] = None) -> TokenStream:
        """Pre-register a stream for ``req_id`` (the front-end's handle)."""
        if req_id in self.streams:
            raise ValueError(f"request {req_id} already has a stream")
        stream = TokenStream(req_id, budget=budget)
        stream.on_event = self._bump
        self.streams[req_id] = stream
        return stream

    def attach(self, ctx) -> TokenStream:
        """Bind an admitted request's context to its stream (serving head)."""
        stream = self.streams.get(ctx.req_id)
        if stream is None:
            stream = self.open(ctx.req_id)
        stream.bind_budget(ctx.job.n_generate)
        return stream

    def get(self, req_id: int) -> Optional[TokenStream]:
        return self.streams.get(req_id)

    def _bump(self, _stream: TokenStream) -> None:
        self.version += 1

    def outputs(self) -> Dict[int, List[int]]:
        """Streamed tokens per request id (mirror of report ``outputs()``)."""
        return {rid: s.tokens for rid, s in self.streams.items()}
