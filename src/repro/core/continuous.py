"""Reactive confidence-cutoff control (paper Section IV-B2).

Continuous speculation drafts further and further ahead of verification;
the deeper the unverified chain, the likelier that everything beyond some
point is wasted.  PipeInfer counteracts with two factors:

- the **recovery factor** is added to the cutoff on every successful
  continuous-speculation iteration, building an increasing gradient of
  required confidence, and is reset when a completed run is accepted;
- the **decay factor** is subtracted when speculation fails (the draft's
  confidence fell below the cutoff) while no logits are waiting — the
  head has nothing better to do, so it lowers its standards to keep the
  pipeline fed.

Together they make speculation depth adapt to real-time system conditions
(slow interconnects raise effective depth costs; the controller backs
off).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CutoffController:
    """Adaptive confidence threshold for continuous speculation.

    Attributes:
        base: the configured starting cutoff.
        recovery: added per successful speculation dispatch.
        decay: subtracted per failed attempt while idle.
        floor: lower clamp — drafting never becomes unconditional.
        ceiling: upper clamp — speculation can always resume after reset.
    """

    base: float
    recovery: float
    decay: float
    floor: float = 0.02
    ceiling: float = 0.97

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0:
            raise ValueError("base cutoff must be within [0, 1]")
        if self.recovery < 0 or self.decay < 0:
            raise ValueError("factors must be non-negative")
        self.current = self._clamp(self.base)

    def _clamp(self, x: float) -> float:
        return min(max(x, self.floor), self.ceiling)

    def on_dispatched(self) -> None:
        """A speculative micro-batch was generated and dispatched."""
        self.current = self._clamp(self.current + self.recovery)

    def on_failed_idle(self) -> None:
        """Drafting halted below the cutoff and no logits were waiting."""
        self.current = self._clamp(self.current - self.decay)

    def on_accepted(self) -> None:
        """A completed run was accepted: reset the gradient."""
        self.current = self._clamp(self.base)
