"""Pipelined KV-cache multibuffering (paper Section IV-C).

Every simultaneous run works in a private *sequence partition* of the KV
cache, allocated from a FIFO pool; the canonical sequence 0 holds the
accepted truth.  Partitions behave like back buffers: a speculative run
writes its drafted tokens' cells into its own sequence, and on acceptance
the cells are "swapped" into the canonical sequence by a metadata copy.

Cache commands are *pipelined as transactions* (IV-C3): a run's dispatch
is preceded by copy commands that materialize its context — the accepted
prefix from sequence 0 plus the still-unverified chain prefix from the
most recent speculative partition — at each node immediately after that
node finishes the predecessor runs.  This is what lets a run skip
recomputing tokens shared with previous runs *before those runs have
completed*.

This module owns the bookkeeping and emits the operations; the head node
sends them down the pipeline and the workers apply them in transaction
order.
"""

from __future__ import annotations

from typing import List, Optional

from repro.comm.payloads import CacheOp, CacheOpKind
from repro.core.run_state import RunRecord
from repro.util.fifo import SequencePool

#: Open end bound for whole-sequence removals.
SEQ_END = 1 << 40


class MultibufferManager:
    """Sequence-partition allocation and cache-op construction."""

    def __init__(self, n_partitions: int) -> None:
        self.pool = SequencePool(n_partitions)
        #: Partition holding the newest unverified chain cells (0 = none:
        #: the chain is fully accepted / was just reset).
        self.chain_seq: int = 0

    # -- allocation ---------------------------------------------------------

    def can_allocate(self) -> bool:
        return self.pool.available()

    def allocate(self) -> int:
        return self.pool.allocate()

    # -- op builders ------------------------------------------------------------

    def ops_for_spec_dispatch(
        self, seq: int, accepted_len: int, start_pos: int
    ) -> List[CacheOp]:
        """Copy a new run's full context into its fresh partition.

        Ordering: these ops are sent *before* the run's decode transaction,
        so each node applies them after evaluating the predecessor runs
        (which wrote the copied cells) and before evaluating this run —
        the pipelined coherence of Section IV-C3.

        Source selection: positions below the accepted tip are guaranteed
        to sit in the canonical sequence (acceptance propagation copies a
        completed run's inputs there).  The tip's cell and the unverified
        chain prefix live in the newest speculative partition when one is
        in flight (``chain_seq``); otherwise the canonical run earlier in
        the pipeline writes the tip cell into sequence 0 before these ops
        execute.
        """
        if self.chain_seq != 0:
            ops = [CacheOp(CacheOpKind.SEQ_CP, 0, seq, 0, max(accepted_len - 1, 0))]
            ops.append(
                CacheOp(
                    CacheOpKind.SEQ_CP, self.chain_seq, seq,
                    max(accepted_len - 1, 0), start_pos,
                )
            )
            return ops
        if start_pos > accepted_len:
            raise RuntimeError(
                "unverified chain prefix exists but no partition holds it"
            )
        return [CacheOp(CacheOpKind.SEQ_CP, 0, seq, 0, accepted_len)]

    def ops_for_acceptance(
        self, rec: RunRecord, accepted_len_after: int
    ) -> List[CacheOp]:
        """Swap a completed run's accepted cells into the canonical sequence.

        Only entries up to the final accepted input position are copied
        (IV-C2).  The *newest* accepted token (position
        ``accepted_len_after - 1``) is excluded: on full acceptance it is
        the bonus token, which was sampled rather than evaluated and has
        no cell; on divergence it is the correction, and the run's cell at
        that position holds the *rejected* draft token — copying it would
        poison the canonical sequence.
        """
        if rec.seq_id == 0:
            return []  # canonical runs already write into sequence 0
        hi = min(rec.end_pos + 1, accepted_len_after - 1)
        if hi <= rec.start_pos:
            return []
        return [CacheOp(CacheOpKind.SEQ_CP, rec.seq_id, 0, rec.start_pos, hi)]

    def ops_for_release(self, rec: RunRecord) -> List[CacheOp]:
        """Drop a completed run's partition (back-buffer free).

        Accepted cells survive: they were copied into sequence 0 (and into
        successor partitions at their dispatch); removing this sequence id
        only frees cells no other sequence references — the rejected
        suffix.
        """
        if rec.seq_id == 0:
            return []
        return [CacheOp(CacheOpKind.SEQ_RM, rec.seq_id, rec.seq_id, 0, SEQ_END)]

    # -- lifecycle ------------------------------------------------------------------

    def on_run_complete(self, rec: RunRecord) -> None:
        """Release the partition and fix the chain pointer."""
        if rec.seq_id != 0:
            self.pool.release(rec.seq_id)
            if self.chain_seq == rec.seq_id:
                # The newest chain cells just left flight; anything beyond
                # the accepted stream was reconciled by the head.
                self.chain_seq = 0

    def on_chain_reset(self) -> None:
        """The drafted chain diverged; context now lives in sequence 0 only."""
        self.chain_seq = 0

    def on_spec_dispatch(self, seq: int) -> None:
        self.chain_seq = seq
