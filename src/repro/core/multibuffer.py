"""Pipelined KV-cache multibuffering (paper Section IV-C).

Every simultaneous run works in a private *sequence partition* of the KV
cache, allocated from a FIFO pool; the canonical sequence holds the
accepted truth.  Partitions behave like back buffers: a speculative run
writes its drafted tokens' cells into its own sequence, and on acceptance
the cells are "swapped" into the canonical sequence by a metadata copy.

Cache commands are *pipelined as transactions* (IV-C3): a run's dispatch
is preceded by copy commands that materialize its context — the accepted
prefix from the canonical sequence plus the still-unverified chain prefix
from the most recent speculative partition — at each node immediately
after that node finishes the predecessor runs.  This is what lets a run
skip recomputing tokens shared with previous runs *before those runs have
completed*.

Single-job mode uses one manager whose canonical sequence is 0 and whose
pool is private.  Serving mode partitions one shared :class:`SequencePool`
across requests: each admitted request allocates a pool sequence as its
*canonical* partition for its lifetime (see :func:`acquire_canonical`),
and its speculative runs draw further partitions from the same pool.  On
request completion every partition it held returns to the pool, making
room for queued requests — per-request release.

This module owns the bookkeeping and emits the operations; the head node
sends them down the pipeline and the workers apply them in transaction
order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.comm.payloads import CacheOp, CacheOpKind
from repro.core.run_state import RunRecord
from repro.util.fifo import SequencePool

#: Open end bound for whole-sequence removals.
SEQ_END = 1 << 40

#: Sentinel for "no partition holds unverified chain cells".  Pool ids
#: start at 1, so 0 never names a speculative partition.
NO_CHAIN = 0


class MultibufferManager:
    """Sequence-partition allocation and cache-op construction.

    Args:
        n_partitions: size of a private pool (single-job mode).  Mutually
            exclusive with ``pool``.
        pool: a shared :class:`SequencePool` (serving mode) — several
            managers, one per request, draw from it concurrently.
        canonical_seq: the sequence id holding this request's accepted
            truth.  0 in single-job mode; a pool-allocated id in serving
            mode (see :func:`acquire_canonical`).
    """

    def __init__(
        self,
        n_partitions: Optional[int] = None,
        pool: Optional[SequencePool] = None,
        canonical_seq: int = 0,
    ) -> None:
        if (n_partitions is None) == (pool is None):
            raise ValueError("pass exactly one of n_partitions or pool")
        self.pool = pool if pool is not None else SequencePool(n_partitions)
        self.canonical = canonical_seq
        #: Partition holding the newest unverified chain cells (NO_CHAIN =
        #: none: the chain is fully accepted / was just reset).
        self.chain_seq: int = NO_CHAIN

    # -- allocation ---------------------------------------------------------

    def can_allocate(self) -> bool:
        return self.pool.available()

    def allocate(self) -> int:
        return self.pool.allocate()

    # -- op builders ------------------------------------------------------------

    def ops_for_spec_dispatch(
        self, seq: int, accepted_len: int, start_pos: int
    ) -> List[CacheOp]:
        """Copy a new run's full context into its fresh partition.

        Ordering: these ops are sent *before* the run's decode transaction,
        so each node applies them after evaluating the predecessor runs
        (which wrote the copied cells) and before evaluating this run —
        the pipelined coherence of Section IV-C3.

        Source selection: positions below the accepted tip are guaranteed
        to sit in the canonical sequence (acceptance propagation copies a
        completed run's inputs there).  The tip's cell and the unverified
        chain prefix live in the newest speculative partition when one is
        in flight (``chain_seq``); otherwise the canonical run earlier in
        the pipeline writes the tip cell into the canonical sequence
        before these ops execute.
        """
        if self.chain_seq != NO_CHAIN:
            ops = [
                CacheOp(
                    CacheOpKind.SEQ_CP, self.canonical, seq,
                    0, max(accepted_len - 1, 0),
                )
            ]
            ops.append(
                CacheOp(
                    CacheOpKind.SEQ_CP, self.chain_seq, seq,
                    max(accepted_len - 1, 0), start_pos,
                )
            )
            return ops
        if start_pos > accepted_len:
            raise RuntimeError(
                "unverified chain prefix exists but no partition holds it"
            )
        return [CacheOp(CacheOpKind.SEQ_CP, self.canonical, seq, 0, accepted_len)]

    def ops_for_acceptance(
        self, rec: RunRecord, accepted_len_after: int
    ) -> List[CacheOp]:
        """Swap a completed run's accepted cells into the canonical sequence.

        Only entries up to the final accepted input position are copied
        (IV-C2).  The *newest* accepted token (position
        ``accepted_len_after - 1``) is excluded: on full acceptance it is
        the bonus token, which was sampled rather than evaluated and has
        no cell; on divergence it is the correction, and the run's cell at
        that position holds the *rejected* draft token — copying it would
        poison the canonical sequence.
        """
        if rec.seq_id == self.canonical:
            return []  # canonical runs already write into the canonical seq
        hi = min(rec.end_pos + 1, accepted_len_after - 1)
        if hi <= rec.start_pos:
            return []
        return [CacheOp(CacheOpKind.SEQ_CP, rec.seq_id, self.canonical, rec.start_pos, hi)]

    def ops_for_release(self, rec: RunRecord) -> List[CacheOp]:
        """Drop a completed run's partition (back-buffer free).

        Accepted cells survive: they were copied into the canonical
        sequence (and into successor partitions at their dispatch);
        removing this sequence id only frees cells no other sequence
        references — the rejected suffix.
        """
        if rec.seq_id == self.canonical:
            return []
        return [CacheOp(CacheOpKind.SEQ_RM, rec.seq_id, rec.seq_id, 0, SEQ_END)]

    def ops_for_request_release(self) -> List[CacheOp]:
        """Drop the canonical partition itself (request completion).

        Serving mode only: frees every cell the finished request's
        canonical sequence still references so queued requests find room.
        """
        return [CacheOp(CacheOpKind.SEQ_RM, self.canonical, self.canonical, 0, SEQ_END)]

    # -- lifecycle ------------------------------------------------------------------

    def on_run_complete(self, rec: RunRecord) -> None:
        """Release the partition and fix the chain pointer."""
        if rec.seq_id != self.canonical:
            self.pool.release(rec.seq_id)
            if self.chain_seq == rec.seq_id:
                # The newest chain cells just left flight; anything beyond
                # the accepted stream was reconciled by the head.
                self.chain_seq = NO_CHAIN

    def on_chain_reset(self) -> None:
        """The drafted chain diverged; context now lives in the canonical seq only."""
        self.chain_seq = NO_CHAIN

    def on_spec_dispatch(self, seq: int) -> None:
        self.chain_seq = seq

    def release_canonical(self) -> None:
        """Return the canonical partition to the shared pool (serving mode)."""
        if self.canonical != 0:
            self.pool.release(self.canonical)


class CellBudget:
    """O(1) worst-case KV-cell accounting for serving admission.

    The serving head throttles admission against the workers' bounded
    cell capacity (functional caches cannot evict mid-flight).  The
    committed total is maintained incrementally on admit/release instead
    of being re-summed over every active request — and never by scanning
    cache cells — so the admission check in the serving hot loop is O(1)
    regardless of concurrency or cache size.

    A request too large to ever fit is still admitted when it would run
    alone — the same overflow a single-job run of it would hit, surfaced
    rather than deadlocked.
    """

    def __init__(self, capacity: Optional[int]) -> None:
        #: Worker shard cell capacity; None = unbounded (performance mode).
        self.capacity = capacity
        #: Sum of admitted requests' worst-case demands.
        self.committed = 0
        #: Cells held by the prefix cache's retained sequences (resident on
        #: every shard but owned by no active request, so the committed
        #: total cannot see them).  The serving head keeps this in sync
        #: with :attr:`repro.cache.prefix.PrefixCacheManager.retained_cells`
        #: and *evicts before admitting* when the sum would not fit —
        #: retained prefixes are reclaimable capacity, never a hard claim.
        self.retained = 0
        self._demands: Dict[int, int] = {}

    def fits(self, demand: int) -> bool:
        """Would admitting a request of ``demand`` cells stay in capacity?

        Retained prefix-cache cells count as occupancy: they are real
        resident cells the committed total does not cover.  The
        lone-request escape hatch (admit an oversized request that would
        run alone) additionally requires the cache to be empty — the
        head drains it first, so an oversized request still runs exactly
        like its single-job overflow case rather than colliding with
        leftover cached cells.
        """
        if self.capacity is None:
            return True
        if self.committed + self.retained + demand <= self.capacity:
            return True
        return not self._demands and self.retained == 0

    def fits_live(self, live_used: int, demand: int) -> bool:
        """Live-signal admission check (``EngineConfig.admission_live_cells``).

        Replaces the static committed total with the workers' *actual*
        cells-in-use (``KVCache.n_used``, O(1)): the new request's full
        worst-case demand must fit beside what is really resident now.
        This admits far more aggressively than summing every active
        request's worst case — admitted requests typically hold a
        fraction of their peak — at the cost of the hard guarantee: the
        policy is optimistic about active requests' *future* growth, so
        a workload whose active set simultaneously reaches worst-case
        footprint can still overflow (surfaced as a cache error, exactly
        like an oversized single job).  It is therefore opt-in; the
        serving suite asserts representative workloads run without
        overflow.  The too-large-to-ever-fit escape hatch is unchanged:
        a request that would run alone is admitted regardless.
        """
        if self.capacity is None:
            return True
        if live_used + demand <= self.capacity:
            return True
        return not self._demands and self.retained == 0

    def admit(self, req_id: int, demand: int) -> None:
        if req_id in self._demands:
            raise ValueError(f"request {req_id} admitted twice")
        self._demands[req_id] = demand
        self.committed += demand

    def release(self, req_id: int) -> None:
        self.committed -= self._demands.pop(req_id, 0)


def acquire_canonical(pool: SequencePool) -> "MultibufferManager":
    """Allocate a canonical partition from ``pool`` for a new request.

    The returned manager shares ``pool`` for its speculative partitions;
    call :meth:`MultibufferManager.release_canonical` when the request
    completes.
    """
    return MultibufferManager(pool=pool, canonical_seq=pool.allocate())
