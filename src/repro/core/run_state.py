"""In-flight run tracking (paper Sections IV-A1 and IV-D1).

Each pipeline run is tracked in a :class:`RunRecord` holding its tokens
and position range, placed in a FIFO when dispatched and popped when its
logits arrive — MPI non-overtaking guarantees completion order matches
dispatch order, so the FIFO head always identifies the arriving run.

Invalidation detection implements the paper's two methods:

- a run whose maximum end position is behind the accepted tip is
  **superfluous** (all its predictions are already known);
- a run whose tokens disagree with the accepted stream at any position —
  or whose *context* builds on a drafted prefix that diverged — is
  **invalidated** (its logits are conditioned on rejected tokens).

The paper detects the second case by comparing each run's token sequence
against the accepted tokens after every sampling phase.  Because runs
partition the drafted chain contiguously, a divergence at position *d*
invalidates exactly the runs starting after *d*; :meth:`RunFIFO.invalidate_after`
uses that equivalent rule (and additionally catches context divergence
before the tip reaches the run, which pure token comparison would observe
only later).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence


from repro.util.fifo import FifoQueue


class RunKind(enum.Enum):
    """Run flavours: prompt prefill, the canonical single-token run, and
    speculation."""

    PREFILL = "prefill"
    CANONICAL = "canonical"
    SPECULATIVE = "speculative"


@dataclass
class RunRecord:
    """Tracking data for one in-flight pipeline run.

    Attributes:
        run_id: unique identifier (matches cancel signals and logits).
        kind: canonical or speculative.
        tokens: the run's input tokens.
        start_pos: absolute position of ``tokens[0]``.
        seq_id: the KV sequence partition (0 for canonical runs).
        cancelled: set when invalidated; the run's logits are discarded.
        superfluous: set when all its predictions are already known; the
            run still evaluates fully (canonical) but sampling is skipped.
        dispatched_at: simulated dispatch timestamp (diagnostics).
    """

    run_id: int
    kind: RunKind
    tokens: List[int]
    start_pos: int
    seq_id: int
    cancelled: bool = False
    superfluous: bool = False
    dispatched_at: float = 0.0

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)

    @property
    def end_pos(self) -> int:
        """Position of the run's last input token."""
        return self.start_pos + len(self.tokens) - 1

    def covers(self, pos: int) -> bool:
        return self.start_pos <= pos <= self.end_pos

    def token_at(self, pos: int) -> int:
        if not self.covers(pos):
            raise IndexError(f"run does not cover position {pos}")
        return self.tokens[pos - self.start_pos]

    @property
    def is_speculative(self) -> bool:
        return self.kind is RunKind.SPECULATIVE


class RunFIFO:
    """FIFO of in-flight runs with invalidation scans."""

    def __init__(self) -> None:
        self._q: FifoQueue[RunRecord] = FifoQueue()

    def push(self, rec: RunRecord) -> None:
        self._q.push(rec)

    def pop(self) -> RunRecord:
        return self._q.pop()

    def peek(self) -> RunRecord:
        return self._q.peek()

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._q)

    def live(self) -> List[RunRecord]:
        """Runs neither cancelled nor superfluous."""
        return [r for r in self._q if not r.cancelled and not r.superfluous]

    def covers_tip(self, accepted: Sequence[int]) -> bool:
        """Is some live run going to predict the token after the tip?

        True when a live run's input range includes the tip position with
        the accepted token — its logits at the tip will extend the stream.
        """
        tip = len(accepted) - 1
        for rec in self.live():
            if rec.covers(tip) and rec.token_at(tip) == accepted[tip]:
                return True
        return False

    def invalidate_after(self, divergence_pos: int) -> List[RunRecord]:
        """Mark speculative runs built on a diverged chain as invalid.

        Args:
            divergence_pos: first position where the accepted stream
                disagrees with the previously drafted chain.  Every token
                the chain held at or beyond this position is dead, so any
                speculative run starting at or after it — its first input
                is a dead token, or its context contains one — is invalid.
                (In-flight runs always start at or beyond the divergence:
                the run whose verification *revealed* the divergence has
                already been popped, and chained runs partition positions
                contiguously after it.)

        Returns:
            The newly invalidated records (for cancel-signal emission).
        """
        hit = []
        for rec in self._q:
            if rec.cancelled or not rec.is_speculative:
                continue
            if rec.start_pos >= divergence_pos:
                rec.cancelled = True
                hit.append(rec)
        return hit

    def mark_superfluous(self, accepted: Sequence[int]) -> List[RunRecord]:
        """Mark runs entirely behind the accepted tip (paper IV-D1).

        Only canonical runs can reach this state under chained speculation
        (speculative runs cover positions past the tip by construction),
        but the scan checks every record, matching the paper's method.
        """
        tip = len(accepted) - 1
        hit = []
        for rec in self._q:
            if rec.cancelled or rec.superfluous:
                continue
            if rec.end_pos < tip:
                rec.superfluous = True
                hit.append(rec)
        return hit

    def mark_all_cancelled(self) -> List[RunRecord]:
        """Cancel every in-flight speculative run (request completion).

        Canonical and prefill runs are left alone — workers never skip
        them — but their sampling is suppressed by the request's ``done``
        flag.  Returns the newly cancelled speculative records so the head
        can emit cancel signals.
        """
        hit = []
        for rec in self._q:
            if rec.is_speculative and not rec.cancelled:
                rec.cancelled = True
                hit.append(rec)
        return hit

    def find_token_mismatches(self, accepted: Sequence[int]) -> List[RunRecord]:
        """The paper's literal detection: token-wise comparison vs accepted.

        Exposed for tests demonstrating equivalence with
        :meth:`invalidate_after`; the engine uses the divergence-based rule
        which additionally catches stale context early.
        """
        tip = len(accepted) - 1
        hit = []
        for rec in self._q:
            if rec.cancelled:
                continue
            lo = rec.start_pos
            hi = min(rec.end_pos, tip)
            for pos in range(lo, hi + 1):
                if rec.token_at(pos) != accepted[pos]:
                    hit.append(rec)
                    break
        return hit


@dataclass
class RequestContext:
    """All head-side state for one generation request.

    The PipeInfer head loop historically kept this state in local
    variables because it served exactly one job; the serving scheduler
    multiplexes many requests through one pipeline, so the state lives in
    a context object instead.  The single-job head builds one context and
    runs the identical logic through it.

    Attributes:
        req_id: scheduler-assigned request identifier (0 for single-job).
        job: the :class:`~repro.engines.base.GenerationJob` being served.
        accepted: the verified token stream (prompt + generated).
        chain: the drafted working chain
            (:class:`~repro.engines.backend.ChainState`).
        fifo: this request's in-flight runs, dispatch order.
        kv: the request's :class:`~repro.core.multibuffer.MultibufferManager`
            view (its canonical partition plus pool access).
        cutoff: the request's reactive
            :class:`~repro.core.continuous.CutoffController`.
        metrics: per-request collector (the engine's own collector in
            single-job mode).
        drafted: position -> drafted token, for acceptance-rate accounting.
            A drafted token is "checked" when verification fixes its
            position's true token; tokens drafted beyond a divergence are
            discarded unchecked.
        n_spec_inflight: live speculative runs (Figure 8's non-continuous
            ablation allows at most one).
        arrival: simulated arrival timestamp (0 for single-job).
        admitted_at: when the scheduler admitted the request.
        finished_at: when the final token was accepted and in-flight runs
            drained.
        prefilled: the prompt's prefill logits have been sampled; drafting
            and canonical dispatch are gated on this in serving mode.
        done: the token budget is met; remaining in-flight runs drain
            without sampling.
        cached_tokens: prompt tokens materialized from the cross-request
            prefix cache at admission (0 = cache miss or cache off); the
            request's prefill covered only the remaining tail.
        priority: admission priority (higher admits first among ready
            requests; 0 for untagged traffic).
        ttft_slo: deadline on the time to first token, or None (no SLO).
        itl_slo: per-token inter-token-latency SLO, or None (no SLO).
        cancelled: the client disconnected mid-flight; the request stops
            sampling and drains like a completed one, but its report is
            tagged and its output is whatever was verified by then.
        stream: optional :class:`repro.api.stream.TokenStream` sink the
            serving head pushes accepted tokens into at the sim instant
            verification accepts them.  None outside streaming mode —
            a pure observer, never consulted by the simulation.
    """

    req_id: int
    job: Any
    accepted: List[int]
    chain: Any
    fifo: RunFIFO
    kv: Any
    cutoff: Any
    metrics: Any
    drafted: Dict[int, int] = field(default_factory=dict)
    n_spec_inflight: int = 0
    arrival: float = 0.0
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    prefilled: bool = False
    done: bool = False
    cached_tokens: int = 0
    priority: int = 0
    ttft_slo: Optional[float] = None
    itl_slo: Optional[float] = None
    cancelled: bool = False
    stream: Any = None

    @property
    def n_prompt(self) -> int:
        return len(self.job.prompt)

    @property
    def n_generated(self) -> int:
        return len(self.accepted) - self.n_prompt

    def target_reached(self) -> bool:
        """The token budget is met (verification may overshoot; callers clip)."""
        return self.n_generated >= self.job.n_generate

    def output_tokens(self) -> List[int]:
        """Generated tokens clipped to the budget (identical to single-job)."""
        return list(self.accepted[self.n_prompt:][: self.job.n_generate])
