"""PipeInfer: asynchronous pipelined speculation (paper Section IV).

The four components map onto modules:

- **Asynchronous Speculation** — the head node (rank 0) hosts the draft
  model and no target layers; the target pipeline (ranks 1..N-1) evaluates
  runs concurrently with drafting (:mod:`repro.core.head`).
- **Continuous Speculation** — the head drafts micro-batches whenever no
  logits are waiting, with the reactive confidence-cutoff controller of
  :mod:`repro.core.continuous`.
- **Pipelined KV Cache Multibuffering** — per-run sequence partitions
  allocated FIFO, with dispatch-time cache-copy transactions giving each
  run its context even before predecessors complete
  (:mod:`repro.core.multibuffer`).
- **Early Inference Cancellation** — invalidation/superfluity detection on
  the run FIFO (:mod:`repro.core.run_state`) and back-propagated cancel
  signals that let workers skip invalidated speculative work mid-run.

**Fusion window** (multi-run batching, beyond the paper): each pipeline
worker drains every transaction waiting in its mailbox and evaluates the
pending decode runs — across in-flight runs and, in serving mode, across
requests — as one fused cross-run batch with a single per-run-masked
attention pass per layer, forwarding per-run records downstream in
dispatch order as one FUSED transaction
(:mod:`repro.engines.worker`, :meth:`Backend.compute_stage_multi`).
Metadata (cell allocation, cache ops, visibility snapshots) stays in
strict transaction order, so fused execution is differentially pinned to
sequential per-run execution; cancellation signals landing mid-window
still drop their run from the computation.
"""

from repro.core.continuous import CutoffController
from repro.core.engine import PipeInferEngine
from repro.core.multibuffer import MultibufferManager
from repro.core.run_state import RunFIFO, RunKind, RunRecord

__all__ = [
    "CutoffController",
    "PipeInferEngine",
    "MultibufferManager",
    "RunFIFO",
    "RunKind",
    "RunRecord",
]
