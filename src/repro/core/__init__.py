"""PipeInfer: asynchronous pipelined speculation (paper Section IV).

The four components map onto modules:

- **Asynchronous Speculation** — the head node (rank 0) hosts the draft
  model and no target layers; the target pipeline (ranks 1..N-1) evaluates
  runs concurrently with drafting (:mod:`repro.core.head`).
- **Continuous Speculation** — the head drafts micro-batches whenever no
  logits are waiting, with the reactive confidence-cutoff controller of
  :mod:`repro.core.continuous`.
- **Pipelined KV Cache Multibuffering** — per-run sequence partitions
  allocated FIFO, with dispatch-time cache-copy transactions giving each
  run its context even before predecessors complete
  (:mod:`repro.core.multibuffer`).
- **Early Inference Cancellation** — invalidation/superfluity detection on
  the run FIFO (:mod:`repro.core.run_state`) and back-propagated cancel
  signals that let workers skip invalidated speculative work mid-run.
"""

from repro.core.continuous import CutoffController
from repro.core.engine import PipeInferEngine
from repro.core.multibuffer import MultibufferManager
from repro.core.run_state import RunFIFO, RunKind, RunRecord

__all__ = [
    "CutoffController",
    "PipeInferEngine",
    "MultibufferManager",
    "RunFIFO",
    "RunKind",
    "RunRecord",
]
