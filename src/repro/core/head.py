"""The PipeInfer head-node process (paper Section IV).

Rank 0 hosts the draft model and no target layers.  Its loop implements
continuous asynchronous speculation:

1. if a logits transfer is waiting (probe), run sampling/verification —
   advance the accepted stream, emit acceptance/release cache ops, detect
   invalidated and superfluous runs, and back-propagate cancellations;
2. else, if no live in-flight run will predict the token after the
   accepted tip, dispatch the canonical (non-speculative) run for the tip
   — guaranteeing forward progress even with zero speculation accuracy;
3. else, draft the next speculative micro-batch continuing the chain and
   dispatch it into the pipeline under a fresh KV sequence partition,
   with its context copy-ops pipelined ahead of it;
4. else (cutoff halted drafting / no free partition / lookahead cap),
   idle briefly waiting for an arrival, decaying the cutoff when the halt
   came from draft confidence.
"""

from __future__ import annotations

from typing import Generator, List

from repro.cluster.kernel import Delay
from repro.comm.message import Tag
from repro.comm.payloads import Activations, CancelMsg, DecodeMeta, TokenSlot
from repro.core.continuous import CutoffController
from repro.core.multibuffer import MultibufferManager
from repro.core.run_state import RunFIFO, RunKind, RunRecord
from repro.engines.base import GenerationJob
from repro.models.sampler import argmax_token
from repro.spec.verify import verify_chain

#: Head-node CPU cost to sample/verify one logits vector.
SAMPLE_TIME_PER_LOGIT = 3e-5

#: Wire size of the token-ids-only activation record the head sends.
TOKEN_ACTIVATION_BYTES_PER_TOKEN = 4.0


def pipeinfer_head(engine, job: GenerationJob) -> Generator:
    """Head process; ``engine`` is the owning :class:`PipeInferEngine`."""
    be = engine.backend
    cfg = engine.config
    ep = engine.ep()
    metrics = engine.metrics
    stats = metrics.stats
    kernel = engine.net.kernel

    ranks = engine.target_ranks()
    first_target, last_target = ranks[0], ranks[-1]

    accepted: List[int] = list(job.prompt)
    chain = be.new_chain(job.prompt)
    fifo = RunFIFO()
    mb = MultibufferManager(cfg.n_seq_partitions)
    cutoff = CutoffController(cfg.draft.cutoff, cfg.cutoff_recovery, cfg.cutoff_decay)
    n_spec_inflight = 0
    #: position -> drafted token, for acceptance-rate accounting.  A
    #: drafted token is "checked" when verification fixes its position's
    #: true token; tokens drafted beyond a divergence are discarded
    #: unchecked (they were never compared against the target).
    drafted: dict = {}

    # ---- helpers -----------------------------------------------------------

    def send_run(rec: RunRecord, states) -> None:
        slots = [
            TokenSlot(tok, rec.start_pos + i, (rec.seq_id,), want_logits=True)
            for i, tok in enumerate(rec.tokens)
        ]
        meta = DecodeMeta(
            rec.run_id, slots, rec.is_speculative, oracle_states=states
        )
        meta.nbytes = be.meta_nbytes(meta.n_tokens)
        act = Activations(
            rec.run_id,
            nbytes=TOKEN_ACTIVATION_BYTES_PER_TOKEN * len(rec.tokens),
            hidden=None,
        )
        engine.send_decode(first_target, meta, act)
        rec.dispatched_at = kernel.now
        fifo.push(rec)
        stats.dispatched += 1

    def dispatch_canonical() -> None:
        tip = len(accepted) - 1
        rec = RunRecord(
            engine.new_run_id(), RunKind.CANONICAL, [accepted[tip]], tip, 0
        )
        states = be.slot_states(chain, tip, 1)
        send_run(rec, states)
        stats.canonical += 1

    def cancel(rec: RunRecord, invalid: bool) -> None:
        """Mark and (for speculative runs) back-propagate a cancel signal."""
        if invalid:
            stats.cancelled_invalid += 1
        else:
            stats.cancelled_superfluous += 1
        if (
            cfg.enable_cancellation
            and rec.is_speculative
            and not rec.superfluous
        ):
            # The signal enters at the far end of the pipeline and relays
            # toward earlier stages (IV-D2); workers probe for it between
            # compute chunks.
            ep.send(
                CancelMsg(rec.run_id), last_target, Tag.CANCEL,
                nbytes=16.0, eager=True,
            )
            stats.cancel_signals_sent += 1

    def process_logits(msg) -> Generator:
        nonlocal n_spec_inflight
        payload = msg.payload
        rec = fifo.pop()
        if rec.run_id != payload.run_id:
            raise RuntimeError(
                f"FIFO desync: expected run {rec.run_id}, got {payload.run_id}"
            )
        if rec.is_speculative:
            n_spec_inflight -= 1
        stats.completed += 1

        def release() -> None:
            ops = mb.ops_for_release(rec)
            if ops:
                engine.send_cache_ops(first_target, ops)
            mb.on_run_complete(rec)

        if payload.cancelled or rec.cancelled:
            release()
            return
        if rec.superfluous:
            # Evaluated in full (canonical) or raced the mark (speculative);
            # its predictions are already known — skip sampling.
            release()
            return

        # ---- sampling / verification --------------------------------------
        t = SAMPLE_TIME_PER_LOGIT * max(len(payload.logits), 1)
        yield Delay(t)
        metrics.add_busy(0, t)

        outcome = verify_chain(
            len(accepted), rec.start_pos, rec.tokens, payload.logits
        )

        if outcome.new_tokens:
            old_len = len(accepted)
            accepted.extend(outcome.new_tokens)
            # Drafted-token accounting: verification just fixed the true
            # token at each new position; drafted tokens there were checked.
            for p in range(old_len, len(accepted)):
                d = drafted.pop(p, None)
                if d is not None:
                    stats.draft_tokens_checked += 1
                    if d == accepted[p]:
                        stats.draft_tokens_accepted += 1
            metrics.record_tokens(kernel.now, len(outcome.new_tokens))
            cutoff.on_accepted()
            ops = mb.ops_for_acceptance(rec, len(accepted))
            if ops:
                engine.send_cache_ops(first_target, ops)
        release()

        # ---- chain reconciliation and invalidation -------------------------
        if not chain.matches_prefix(accepted):
            # Find the divergence point: first index where the drafted
            # chain disagrees (pure extensions reconcile without one).
            div = None
            limit = min(len(chain.tokens), len(accepted))
            for i in range(limit):
                if chain.tokens[i] != accepted[i]:
                    div = i
                    break
            chain.reconcile(accepted)
            if div is not None:
                mb.on_chain_reset()
                for dead in fifo.invalidate_after(div):
                    cancel(dead, invalid=True)
                # Tokens drafted beyond the divergence die unchecked.
                for p in [p for p in drafted if p >= len(accepted)]:
                    del drafted[p]
        for stale in fifo.mark_superfluous(accepted):
            cancel(stale, invalid=False)

    # ---- prefill -------------------------------------------------------------
    rid = engine.new_run_id()
    slots = [
        TokenSlot(t, i, (0,), want_logits=(i == len(job.prompt) - 1))
        for i, t in enumerate(job.prompt)
    ]
    states = be.slot_states(chain, 0, len(job.prompt))
    meta = DecodeMeta(rid, slots, False, oracle_states=states)
    meta.nbytes = be.meta_nbytes(meta.n_tokens)
    engine.send_decode(
        first_target,
        meta,
        Activations(rid, TOKEN_ACTIVATION_BYTES_PER_TOKEN * len(slots), None),
    )
    msg = yield from ep.recv(last_target, Tag.LOGITS)
    first = argmax_token(msg.payload.logits[0])
    accepted.append(first)
    chain.append(first)
    metrics.mark_prefill_end(kernel.now)

    # ---- main loop -------------------------------------------------------------
    while len(accepted) - len(job.prompt) < job.n_generate:
        if ep.iprobe(last_target, Tag.LOGITS):
            msg = yield from ep.recv(last_target, Tag.LOGITS)
            yield from process_logits(msg)
            continue

        if not fifo.covers_tip(accepted):
            dispatch_canonical()
            continue

        # ---- continuous speculation ---------------------------------------
        if cfg.enable_continuous:
            spec_allowed = (
                mb.can_allocate()
                and len(chain) - len(accepted) < cfg.lookahead_cap
            )
        else:
            # Figure 8 ablation: asynchronous speculation only — a single
            # (larger) speculative run at a time, never chained.
            spec_allowed = mb.can_allocate() and n_spec_inflight == 0

        if spec_allowed:
            proposed = 0
            for _ in range(cfg.microbatch_size):
                t = be.draft_token_time()
                yield Delay(t)
                metrics.add_busy(0, t)
                token, conf = be.propose(chain)
                if conf < cutoff.current:
                    break
                drafted[len(chain)] = token
                chain.append(token)
                proposed += 1
                # Probe between draft passes (a head-side synchronization
                # point): when logits are waiting, dispatch what we have
                # and go sample — sampling latency must not grow with the
                # draft model's size (Section IV-A).
                if ep.iprobe(last_target, Tag.LOGITS):
                    break
            if proposed:
                seq = mb.allocate()
                start = len(chain) - proposed
                ops = mb.ops_for_spec_dispatch(seq, len(accepted), start)
                engine.send_cache_ops(first_target, ops)
                rec = RunRecord(
                    engine.new_run_id(),
                    RunKind.SPECULATIVE,
                    chain.tokens[start:],
                    start,
                    seq,
                )
                states = be.slot_states(chain, start, proposed)
                send_run(rec, states)
                mb.on_spec_dispatch(seq)
                n_spec_inflight += 1
                stats.speculative += 1
                stats.draft_tokens_proposed += proposed
                cutoff.on_dispatched()
                continue
            # Draft confidence halted speculation with nothing waiting.
            cutoff.on_failed_idle()
            yield from ep.wait_for_arrival(cfg.idle_poll)
            continue

        # Partitions exhausted or lookahead cap: wait for the pipeline.
        yield from ep.wait_for_arrival(cfg.idle_poll)

    engine.finish(job, accepted)
