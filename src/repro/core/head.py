"""The PipeInfer head-node process (paper Section IV).

Rank 0 hosts the draft model and no target layers.  Its loop implements
continuous asynchronous speculation:

1. if a logits transfer is waiting (probe), run sampling/verification —
   advance the accepted stream, emit acceptance/release cache ops, detect
   invalidated and superfluous runs, and back-propagate cancellations;
2. else, if no live in-flight run will predict the token after the
   accepted tip, dispatch the canonical (non-speculative) run for the tip
   — guaranteeing forward progress even with zero speculation accuracy;
3. else, draft the next speculative micro-batch continuing the chain and
   dispatch it into the pipeline under a fresh KV sequence partition,
   with its context copy-ops pipelined ahead of it;
4. else (cutoff halted drafting / no free partition / lookahead cap),
   idle briefly waiting for an arrival, decaying the cutoff when the halt
   came from draft confidence.

All per-request logic operates on a :class:`RequestContext`, so the same
functions drive both this single-job head and the multi-request serving
head (:mod:`repro.serve.head`), which multiplexes canonical and
speculative runs of many live requests through one pipeline.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence, Tuple

from repro.cluster.kernel import Delay
from repro.comm.message import Tag
from repro.comm.payloads import (
    Activations,
    CancelMsg,
    DecodeMeta,
    TokenSlot,
)
from repro.core.continuous import CutoffController
from repro.core.multibuffer import MultibufferManager
from repro.core.run_state import RequestContext, RunFIFO, RunKind, RunRecord
from repro.engines.base import GenerationJob
from repro.models.sampler import argmax_token
from repro.spec.verify import verify_chain

#: Head-node CPU cost to sample/verify one logits vector.
SAMPLE_TIME_PER_LOGIT = 3e-5

#: Wire size of the token-ids-only activation record the head sends.
TOKEN_ACTIVATION_BYTES_PER_TOKEN = 4.0


def new_request_context(
    engine,
    job: GenerationJob,
    kv: MultibufferManager,
    metrics,
    req_id: int = 0,
    arrival: float = 0.0,
) -> RequestContext:
    """Build the head-side state for one request."""
    cfg = engine.config
    return RequestContext(
        req_id=req_id,
        job=job,
        accepted=list(job.prompt),
        chain=engine.backend.new_chain(job.prompt),
        fifo=RunFIFO(),
        kv=kv,
        cutoff=CutoffController(
            cfg.draft.cutoff, cfg.cutoff_recovery, cfg.cutoff_decay
        ),
        metrics=metrics,
        arrival=arrival,
    )


# ---------------------------------------------------------------------------
# Per-request operations shared by the single-job and serving heads.
# ---------------------------------------------------------------------------


def build_run_payload(
    rec: RunRecord, states, want_all_logits: bool = True, pool=None
) -> Tuple[DecodeMeta, Activations]:
    """The (meta, activations) pieces of one run's decode transaction.

    ``want_all_logits`` is True for verification runs (every slot's logits
    feed the verify walk) and False for prefill, where only the last
    prompt slot's logits are sampled.  The activation record comes from
    ``pool`` when given (the meta and its slots are long-lived — they stay
    referenced by the head's flight bookkeeping — and are never pooled).
    """
    slots = [
        TokenSlot(
            tok,
            rec.start_pos + i,
            (rec.seq_id,),
            want_logits=want_all_logits or i == len(rec.tokens) - 1,
        )
        for i, tok in enumerate(rec.tokens)
    ]
    meta = DecodeMeta(rec.run_id, slots, rec.is_speculative, oracle_states=states)
    nbytes = TOKEN_ACTIVATION_BYTES_PER_TOKEN * len(rec.tokens)
    if pool is not None:
        act = pool.acquire_activations(rec.run_id, nbytes, hidden=None)
    else:
        act = Activations(rec.run_id, nbytes=nbytes, hidden=None)
    return meta, act


def send_record(engine, rec: RunRecord, states, want_all_logits: bool = True) -> None:
    """Send one run's decode transaction into the pipeline."""
    first_target = engine.target_ranks()[0]
    # send_decode stamps meta.nbytes from the backend's cost descriptor.
    meta, act = build_run_payload(rec, states, want_all_logits, pool=engine.pool)
    engine.send_decode(first_target, meta, act)
    rec.dispatched_at = engine.net.kernel.now


def track_dispatch(engine, ctx: RequestContext, rec: RunRecord) -> None:
    """Per-dispatch bookkeeping shared by the singleton and burst paths.

    The two dispatch paths must stay bookkeeping-identical for the
    burst-ablation differential suites to be meaningful, so the stamp /
    FIFO push / counter live here and nowhere else.
    """
    rec.dispatched_at = engine.net.kernel.now
    ctx.fifo.push(rec)
    ctx.metrics.stats.dispatched += 1


def send_run(engine, ctx: RequestContext, rec: RunRecord, states) -> None:
    """Dispatch ``rec`` into the pipeline and track it in the request FIFO."""
    send_record(engine, rec, states)
    track_dispatch(engine, ctx, rec)


def canonical_entry(engine, ctx: RequestContext):
    """Build (rec, states) for the tip's guaranteed-progress run."""
    tip = len(ctx.accepted) - 1
    rec = RunRecord(
        engine.new_run_id(),
        RunKind.CANONICAL,
        [ctx.accepted[tip]],
        tip,
        ctx.kv.canonical,
    )
    states = engine.backend.slot_states(ctx.chain, tip, 1)
    ctx.metrics.stats.canonical += 1
    return rec, states


def dispatch_canonical(engine, ctx: RequestContext) -> RunRecord:
    """The guaranteed-progress single-token run for the accepted tip."""
    rec, states = canonical_entry(engine, ctx)
    send_run(engine, ctx, rec, states)
    return rec


def dispatch_prefill(engine, ctx: RequestContext, start_pos: int = 0) -> RunRecord:
    """Send the prompt through the pipeline as a tracked run (serving mode).

    The single-job head awaits its prefill logits synchronously; the
    serving head cannot block, so the prefill enters the request FIFO like
    any other run and its logits are sampled on arrival
    (:func:`process_prefill_logits`).

    ``start_pos`` skips a prompt prefix the prefix cache materialized by
    pipelined ``seq_cp`` transactions (IV-C3): only the unmatched tail is
    evaluated, attending over the copied cells exactly as the full
    prefill would.  The cache caps matches below the prompt length, so
    the tail — and the last-slot logits that sample the first output
    token — is never empty.
    """
    rec = RunRecord(
        engine.new_run_id(),
        RunKind.PREFILL,
        list(ctx.job.prompt[start_pos:]),
        start_pos,
        ctx.kv.canonical,
    )
    states = engine.backend.slot_states(ctx.chain, start_pos, len(rec.tokens))
    send_record(engine, rec, states, want_all_logits=False)
    track_dispatch(engine, ctx, rec)
    return rec


def dispatch_reprefill(engine, ctx: RequestContext, start_pos: int = 0) -> RunRecord:
    """Rebuild a request's canonical KV from its *verified* token stream.

    Crash recovery: a restarted worker comes back with an empty KV shard,
    so every live request re-runs its accepted tokens (prompt plus already
    verified output) through the pipeline as a fresh prefill.  Greedy
    decoding depends only on the token prefix, so the logits this run
    returns sample exactly the token the lost in-flight runs would have
    produced — recovery changes timing, never output.

    ``start_pos`` skips a prefix the prefix cache re-materialized (warm
    recovery, metadata-KV backends only); the tail is never empty because
    matches are capped below the stream length.
    """
    rec = RunRecord(
        engine.new_run_id(),
        RunKind.PREFILL,
        list(ctx.accepted[start_pos:]),
        start_pos,
        ctx.kv.canonical,
    )
    states = engine.backend.slot_states(ctx.chain, start_pos, len(rec.tokens))
    send_record(engine, rec, states, want_all_logits=False)
    track_dispatch(engine, ctx, rec)
    return rec


def process_prefill_logits(engine, ctx: RequestContext, payload) -> None:
    """Sample the first token from a prefill run's logits (serving mode)."""
    first = argmax_token(payload.logits[0])
    ctx.accepted.append(first)
    ctx.chain.append(first)
    ctx.prefilled = True
    ctx.metrics.mark_prefill_end(engine.net.kernel.now)
    if ctx.stream is not None:
        ctx.stream.push(engine.net.kernel.now, (first,))


def cancel_run(
    engine, ctx: RequestContext, rec: RunRecord, invalid: bool, cancels=None
) -> None:
    """Mark and (for speculative runs) back-propagate a cancel signal.

    When ``cancels`` is given, the wire send is deferred: the run id is
    appended for the caller to flush with :func:`send_cancels` *after*
    charging the sampling delay that produced the decision — the signal
    must not leave before the verification work it depends on is done.
    Bookkeeping (stats, eligibility) is decided immediately either way.
    """
    cfg = engine.config
    stats = ctx.metrics.stats
    if invalid:
        stats.cancelled_invalid += 1
    else:
        stats.cancelled_superfluous += 1
    if cfg.enable_cancellation and rec.is_speculative and not rec.superfluous:
        stats.cancel_signals_sent += 1
        if cancels is not None:
            cancels.append(rec.run_id)
            return
        # The signal enters at the far end of the pipeline and relays
        # toward earlier stages (IV-D2); workers probe for it between
        # compute chunks.
        engine.ep().send(
            CancelMsg(rec.run_id), engine.target_ranks()[-1], Tag.CANCEL,
            nbytes=16.0, eager=True,
        )


def send_cancels(engine, run_ids: Sequence[int]) -> None:
    """Flush deferred cancel signals into the far end of the pipeline."""
    ep = engine.ep()
    last_target = engine.target_ranks()[-1]
    for rid in run_ids:
        ep.send(CancelMsg(rid), last_target, Tag.CANCEL, nbytes=16.0, eager=True)


def verify_run_logits(
    engine,
    ctx: RequestContext,
    payload,
    ops: List,
    cancels: List,
    time_base: float = 0.0,
) -> float:
    """Sampling/verification core for the request's oldest in-flight run.

    Plain function (no yields) so batch-draining heads can verify several
    logits messages in one generator step: cache ops are *appended* to
    ``ops`` and cancel signals to ``cancels`` for the caller to flush
    (one transaction / one signal burst) after charging the returned
    sampling time (one cumulative ``Delay`` per drain round) — nothing
    this verification decides may hit the wire before its compute time is
    paid.  ``time_base`` is the sampling time already accumulated this
    round; accepted tokens are stamped at ``now + time_base + t`` — where
    sequential per-message processing would have recorded them.

    Appended op order (acceptance before release, request-FIFO order
    across calls) matches the order the historical per-message sends put
    on the wire, so workers apply them identically.
    """
    kernel = engine.net.kernel
    stats = ctx.metrics.stats
    mb: MultibufferManager = ctx.kv
    accepted = ctx.accepted
    chain = ctx.chain

    rec = ctx.fifo.pop()
    if rec.run_id != payload.run_id:
        raise RuntimeError(
            f"FIFO desync: expected run {rec.run_id}, got {payload.run_id}"
        )
    if rec.is_speculative:
        ctx.n_spec_inflight -= 1
    stats.completed += 1

    def release() -> None:
        ops.extend(mb.ops_for_release(rec))
        mb.on_run_complete(rec)

    if payload.cancelled or rec.cancelled or ctx.done or rec.superfluous:
        # Cancelled/stale runs skip sampling: superfluous runs were
        # evaluated in full (canonical) or raced the mark (speculative);
        # their predictions are already known.
        release()
        return 0.0

    # ---- sampling / verification --------------------------------------
    t = SAMPLE_TIME_PER_LOGIT * max(len(payload.logits), 1)

    outcome = verify_chain(
        len(accepted), rec.start_pos, rec.tokens, payload.logits
    )

    if outcome.new_tokens:
        old_len = len(accepted)
        accepted.extend(outcome.new_tokens)
        # Drafted-token accounting: verification just fixed the true
        # token at each new position; drafted tokens there were checked.
        for p in range(old_len, len(accepted)):
            d = ctx.drafted.pop(p, None)
            if d is not None:
                stats.draft_tokens_checked += 1
                if d == accepted[p]:
                    stats.draft_tokens_accepted += 1
        ctx.metrics.record_tokens(
            kernel.now + time_base + t, len(outcome.new_tokens)
        )
        if ctx.stream is not None:
            # Streamed at the acceptance instant — the same timestamp the
            # metrics stamp — so a front-end sees tokens exactly when the
            # head accepts them, not at drain time.
            ctx.stream.push(kernel.now + time_base + t, outcome.new_tokens)
        ctx.cutoff.on_accepted()
        ops.extend(mb.ops_for_acceptance(rec, len(accepted)))
    release()

    # ---- chain reconciliation and invalidation -------------------------
    if not chain.matches_prefix(accepted):
        # Find the divergence point: first index where the drafted
        # chain disagrees (pure extensions reconcile without one).
        div = None
        limit = min(len(chain.tokens), len(accepted))
        for i in range(limit):
            if chain.tokens[i] != accepted[i]:
                div = i
                break
        chain.reconcile(accepted)
        if div is not None:
            mb.on_chain_reset()
            for dead in ctx.fifo.invalidate_after(div):
                cancel_run(engine, ctx, dead, invalid=True, cancels=cancels)
            # Tokens drafted beyond the divergence die unchecked.
            for p in [p for p in ctx.drafted if p >= len(accepted)]:
                del ctx.drafted[p]
    for stale in ctx.fifo.mark_superfluous(accepted):
        cancel_run(engine, ctx, stale, invalid=False, cancels=cancels)
    return t


def process_run_logits(engine, ctx: RequestContext, payload) -> Generator:
    """Sampling/verification for one logits message (per-message form).

    Thin generator over :func:`verify_run_logits`: charges the sampling
    delay, then flushes the run's acceptance + release cache ops as a
    single transaction (historically two) and its cancel signals.  The
    serving head batch-drains via :func:`verify_run_logits` directly.
    """
    ops: List = []
    cancels: List = []
    t = verify_run_logits(engine, ctx, payload, ops, cancels)
    if t:
        yield Delay(t)
        engine.metrics.add_busy(0, t)
    if ops:
        engine.send_cache_ops(engine.target_ranks()[0], ops)
    if cancels:
        send_cancels(engine, cancels)


def spec_allowed(engine, ctx: RequestContext) -> bool:
    """May this request draft a new speculative micro-batch now?"""
    cfg = engine.config
    if cfg.enable_continuous:
        return (
            ctx.kv.can_allocate()
            and len(ctx.chain) - len(ctx.accepted) < cfg.lookahead_cap
        )
    # Figure 8 ablation: asynchronous speculation only — a single
    # (larger) speculative run at a time, never chained.
    return ctx.kv.can_allocate() and ctx.n_spec_inflight == 0


def spec_allowed_serving(engine, ctx: RequestContext, n_active: int) -> bool:
    """Serving-mode speculation gate: depth adapts to concurrency.

    Single-job continuous speculation fills pipeline bubbles with *depth*
    — chains of unverified micro-batches up to ``lookahead_cap``.  Under
    serving load the batched draft round fills them with *width* (one run
    per request), and deep per-request chains become waste: every chained
    run builds on unverified drafts, so one early rejection invalidates a
    whole tower per request — multiplied by however many requests drafted
    in lockstep.  The gate therefore shares the lookahead budget across
    the active set: each request may hold about

        ``(lookahead_cap / microbatch_size) / n_active``

    speculative runs in flight (at least one).  With one active request
    this is the historical depth; with many, chaining tapers off and
    cross-request width keeps the pipeline saturated instead — speculation
    depth adapting to real-time conditions, as IV-B2 prescribes for the
    cutoff.  The Figure-8 non-continuous ablation keeps its one-run rule.
    """
    cfg = engine.config
    if not cfg.enable_continuous:
        return ctx.kv.can_allocate() and ctx.n_spec_inflight == 0
    depth_budget = max(
        1, (cfg.lookahead_cap // max(cfg.microbatch_size, 1)) // max(n_active, 1)
    )
    return (
        ctx.kv.can_allocate()
        and ctx.n_spec_inflight < depth_budget
        and len(ctx.chain) - len(ctx.accepted) < cfg.lookahead_cap
    )


def draft_round(
    engine, ctxs: Sequence[RequestContext]
) -> Generator[object, object, Dict[int, int]]:
    """Lockstep batched drafting across several requests' chains.

    Each step proposes the next token for *every* participating chain in
    one batched draft pass (:meth:`~repro.engines.backend.Backend.propose_multi`)
    charged a single fused pass time; a chain whose confidence falls below
    its request's cutoff drops out of the round, the rest continue up to
    ``microbatch_size`` tokens.  Returns ``req_id -> proposal count``
    (zero entries mean that request's cutoff halted drafting immediately).

    With one participant this is exactly the historical sequential
    drafting loop; the differential suites pin the wider batches to it.

    The passes run as chained kernel events (each pass's completion
    callback proposes, filters, and schedules the next pass at exactly
    the instants the historical per-pass delay loop hit), so the head
    process parks once on a future for the whole round instead of
    resuming per pass.
    """
    kernel = engine.net.kernel
    fut = kernel.future("draft_round")
    start_draft_round(engine, ctxs, fut.resolve)
    if not fut.resolved:
        yield fut
    return fut.value


def start_draft_round(engine, ctxs: Sequence[RequestContext], on_complete) -> None:
    """Event-driven core of :func:`draft_round`.

    Chains the lockstep draft passes as kernel events and invokes
    ``on_complete(proposed)`` at the instant the round ends — callable
    from plain (non-generator) code such as the serving head's event
    loop.  Completes synchronously (before returning) when there are no
    participants or drafting is disabled.
    """
    be = engine.backend
    cfg = engine.config
    ep = engine.ep()
    kernel = engine.net.kernel
    last_target = engine.target_ranks()[-1]

    participants = list(ctxs)
    proposed: Dict[int, int] = {ctx.req_id: 0 for ctx in ctxs}
    if not participants or cfg.microbatch_size <= 0:
        on_complete(proposed)
        return

    busy_acc = [0.0]
    passes_left = [cfg.microbatch_size]

    def schedule_pass() -> None:
        t = be.draft_batch_time(len(participants))
        busy_acc[0] += t
        kernel.call_at(kernel.now + t, complete_pass)

    def complete_pass() -> None:
        nonlocal participants
        engine.metrics.record_draft_batch(len(participants))
        results = be.propose_multi([ctx.chain for ctx in participants])
        keep = []
        for ctx, (token, conf) in zip(participants, results):
            if conf < ctx.cutoff.current:
                continue
            ctx.drafted[len(ctx.chain)] = token
            ctx.chain.append(token)
            proposed[ctx.req_id] += 1
            keep.append(ctx)
        participants = keep
        passes_left[0] -= 1
        # Probe between draft passes (a head-side synchronization
        # point): when logits are waiting, dispatch what we have
        # and go sample — sampling latency must not grow with the
        # draft model's size (Section IV-A).
        if (
            not participants
            or passes_left[0] <= 0
            or ep.iprobe(last_target, Tag.LOGITS)
        ):
            engine.metrics.add_busy(0, busy_acc[0])
            on_complete(proposed)
        else:
            schedule_pass()

    schedule_pass()


def dispatch_burst(engine, entries) -> List[int]:
    """Send several runs into the pipeline as coalesced burst transactions.

    ``entries`` is an ordered list of ``(ctx, rec, states, ops)``: each
    run's record, its per-slot oracle states, and the cache ops that must
    precede it (context materialization — Section IV-C3).  Under
    ``burst_dispatch`` the whole list travels as FUSED transactions of at
    most ``max_fused_runs`` runs each, every run's ops immediately before
    it, so the first stage's fusion window sees the burst at once instead
    of dribbling one run per head iteration; otherwise each run goes out
    as the historical singleton CACHE_OP + DECODE pair.  Either way the
    per-request FIFOs and the returned req-id order match the entry
    order, which MPI non-overtaking turns into the logits return order.
    """
    cfg = engine.config
    first_target = engine.target_ranks()[0]
    rids: List[int] = []
    if not cfg.burst_dispatch:
        for ctx, rec, states, ops in entries:
            engine.send_cache_ops(first_target, ops)
            send_run(engine, ctx, rec, states)
            rids.append(ctx.req_id)
        return rids
    items: List = []
    n_runs = 0
    for ctx, rec, states, ops in entries:
        if n_runs >= cfg.max_fused_runs:
            engine.send_burst(first_target, items)
            items, n_runs = [], 0
        if ops:
            items.append(list(ops))
        meta, act = build_run_payload(rec, states, pool=engine.pool)
        items.append(engine.pool.acquire_fused_run(meta, act))
        n_runs += 1
        track_dispatch(engine, ctx, rec)
        rids.append(ctx.req_id)
    if items:
        engine.send_burst(first_target, items)
    return rids


def dispatch_spec_burst(engine, dispatches) -> List[int]:
    """Dispatch one speculative run per ``(ctx, n_proposed)`` pair.

    Allocates each request's partition, builds its context ops and run
    record in order, and hands the whole batch to :func:`dispatch_burst`.
    Returns the dispatched req ids in order (the serving head appends
    them to its global logits-arrival FIFO).
    """
    be = engine.backend
    entries = []
    for ctx, n in dispatches:
        chain = ctx.chain
        mb: MultibufferManager = ctx.kv
        seq = mb.allocate()
        start = len(chain) - n
        ops = mb.ops_for_spec_dispatch(seq, len(ctx.accepted), start)
        rec = RunRecord(
            engine.new_run_id(),
            RunKind.SPECULATIVE,
            chain.tokens[start:],
            start,
            seq,
        )
        states = be.slot_states(chain, start, n)
        entries.append((ctx, rec, states, ops))
        mb.on_spec_dispatch(seq)
        ctx.n_spec_inflight += 1
        ctx.metrics.stats.speculative += 1
        ctx.metrics.stats.draft_tokens_proposed += n
        ctx.cutoff.on_dispatched()
    return dispatch_burst(engine, entries)


def draft_and_dispatch(engine, ctx: RequestContext) -> Generator:
    """Draft a speculative micro-batch and dispatch it; returns the count.

    Returns 0 when the confidence cutoff halted drafting before the first
    proposal (the caller decays the cutoff / moves to another request).
    Single-request form of the batched round: the serving head drafts
    many requests per round through :func:`draft_round` directly.
    """
    proposed = yield from draft_round(engine, [ctx])
    n = proposed[ctx.req_id]
    if n:
        dispatch_spec_burst(engine, [(ctx, n)])
    return n


# ---------------------------------------------------------------------------
# The single-job head loop.
# ---------------------------------------------------------------------------


def pipeinfer_head(engine, job: GenerationJob) -> Generator:
    """Head process; ``engine`` is the owning :class:`PipeInferEngine`."""
    be = engine.backend
    cfg = engine.config
    ep = engine.ep()
    metrics = engine.metrics
    kernel = engine.net.kernel

    ranks = engine.target_ranks()
    first_target, last_target = ranks[0], ranks[-1]

    ctx = new_request_context(
        engine, job, kv=MultibufferManager(cfg.n_seq_partitions), metrics=metrics
    )

    # ---- prefill -------------------------------------------------------------
    prefill_rec = RunRecord(
        engine.new_run_id(), RunKind.PREFILL, list(job.prompt), 0, ctx.kv.canonical
    )
    states = be.slot_states(ctx.chain, 0, len(job.prompt))
    send_record(engine, prefill_rec, states, want_all_logits=False)
    msg = yield from ep.recv(last_target, Tag.LOGITS)
    first = argmax_token(msg.payload.logits[0])
    engine.pool.release_logits(msg.payload)
    ctx.accepted.append(first)
    ctx.chain.append(first)
    ctx.prefilled = True
    metrics.mark_prefill_end(kernel.now)

    # ---- main loop -------------------------------------------------------------
    while not ctx.target_reached():
        # Fused stage windows deliver several runs' logits back-to-back;
        # drain them all before re-walking the priority ladder.
        drained = False
        while not ctx.target_reached() and ep.iprobe(last_target, Tag.LOGITS):
            msg = yield from ep.recv(last_target, Tag.LOGITS)
            yield from process_run_logits(engine, ctx, msg.payload)
            engine.pool.release_logits(msg.payload)
            drained = True
        if drained:
            continue

        if not ctx.fifo.covers_tip(ctx.accepted):
            dispatch_canonical(engine, ctx)
            continue

        # ---- continuous speculation ---------------------------------------
        if spec_allowed(engine, ctx):
            proposed = yield from draft_and_dispatch(engine, ctx)
            if proposed:
                continue
            # Draft confidence halted speculation with nothing waiting.
            ctx.cutoff.on_failed_idle()
            yield from ep.wait_for_arrival(cfg.idle_poll)
            continue

        # Partitions exhausted or lookahead cap: wait for the pipeline.
        yield from ep.wait_for_arrival(cfg.idle_poll)

    engine.finish(job, ctx.accepted)
