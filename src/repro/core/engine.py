"""PipeInfer engine wiring.

Rank layout (paper Section IV-A / Figure 1): rank 0 is the head node —
draft model, sampling, verification, orchestration — and holds *no* target
layers ("one of the nodes is solely dedicated to speculation ... making
the target pipeline one node shorter").  Ranks 1..N-1 form the target
pipeline; the last rank returns logits straight to the head.
"""

from __future__ import annotations

from typing import Generator, List

from repro.core.head import pipeinfer_head
from repro.engines.base import BaseEngine, GenerationJob


class PipeInferEngine(BaseEngine):
    """Continuous asynchronous pipelined speculation."""

    name = "pipeinfer"

    def __init__(self, backend, network, config, metrics) -> None:
        super().__init__(backend, network, config, metrics)
        if self.cluster.size < 2:
            raise ValueError(
                "PipeInfer needs at least 2 nodes: a speculation/head node "
                "plus one target pipeline stage"
            )

    def target_ranks(self) -> List[int]:
        return list(range(1, self.cluster.size))

    def hosts_draft(self) -> bool:
        return True

    def _head(self, job: GenerationJob) -> Generator:
        return pipeinfer_head(self, job)

    def _serve_head(self, scheduler) -> Generator:
        """Serve request streams with multiplexed asynchronous speculation."""
        from repro.serve.head import pipeinfer_serving_head  # cycle avoidance

        return pipeinfer_serving_head(self, scheduler)
