"""PipeInfer reproduction: asynchronous pipelined speculation for LLM
inference across clusters (Butler et al., SC24).

Quickstart::

    from repro import (
        OracleBackend, PipeInferEngine, GenerationJob, run_engine,
        get_pair, cluster_c,
    )

    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    backend = OracleBackend(pair, head_node=cluster.nodes[0])
    report = run_engine(
        PipeInferEngine, backend, cluster,
        GenerationJob(prompt=tuple(range(100, 228)), n_generate=256),
    )
    print(report.generation_speed, "tokens/s")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.api import (
    AsyncFrontend,
    ServingSession,
    StreamHub,
    TokenStream,
    stream_serving,
)
from repro.cluster import (
    Cluster,
    cluster_a,
    cluster_b,
    cluster_c,
    gpu_testbed,
    make_testbed,
)
from repro.cache import PrefixCacheManager, RadixTree
from repro.core import PipeInferEngine
from repro.engines import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    SingleNodeEngine,
    SpeculativeEngine,
    run_engine,
)
from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    LinkFault,
    StragglerSpec,
)
from repro.metrics import ClusterReport, EngineReport, RequestReport, ServingReport
from repro.serve import (
    ClusterConfig,
    EngineCluster,
    Replica,
    RoutingPolicy,
    Workload,
    make_workload,
    run_cluster,
    run_serving,
)
from repro.models import (
    CPU_PAIRS,
    GPU_PAIRS,
    MODEL_ZOO,
    ModelPair,
    TinyTransformer,
    TransformerConfig,
    get_model,
    get_pair,
)
from repro.spec import DraftParams

__version__ = "1.0.0"

__all__ = [
    "AsyncFrontend",
    "ServingSession",
    "StreamHub",
    "TokenStream",
    "stream_serving",
    "Cluster",
    "cluster_a",
    "cluster_b",
    "cluster_c",
    "gpu_testbed",
    "make_testbed",
    "PipeInferEngine",
    "PrefixCacheManager",
    "RadixTree",
    "EngineConfig",
    "FunctionalBackend",
    "GenerationJob",
    "IterativeEngine",
    "OracleBackend",
    "SingleNodeEngine",
    "SpeculativeEngine",
    "run_engine",
    "run_serving",
    "CrashSpec",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "StragglerSpec",
    "Workload",
    "make_workload",
    "Replica",
    "RoutingPolicy",
    "ClusterConfig",
    "EngineCluster",
    "run_cluster",
    "EngineReport",
    "RequestReport",
    "ServingReport",
    "ClusterReport",
    "CPU_PAIRS",
    "GPU_PAIRS",
    "MODEL_ZOO",
    "ModelPair",
    "TinyTransformer",
    "TransformerConfig",
    "get_model",
    "get_pair",
    "DraftParams",
    "__version__",
]
