"""Micro-benchmarks of the simulation substrate itself.

These are classic pytest-benchmark measurements (many rounds) guarding
the simulator's performance: event throughput, message passing, cache
ops, and the functional transformer step.
"""

import numpy as np

from repro.cluster.kernel import Delay, SimKernel
from repro.cluster.testbed import cluster_c
from repro.comm.message import Tag
from repro.comm.mpi_sim import Network
from repro.comm.payloads import TokenSlot
from repro.models.range_cache import RangeKVCache
from repro.models.transformer import TinyTransformer, TransformerConfig


def test_kernel_event_throughput(benchmark):
    def run():
        k = SimKernel()

        def proc():
            for _ in range(2000):
                yield Delay(1e-6)

        k.spawn(proc())
        k.run()
        return k.n_events

    events = benchmark(run)
    assert events >= 2000


def test_mpi_message_throughput(benchmark):
    def run():
        k = SimKernel()
        net = Network(k, cluster_c(2))

        def sender():
            ep = net.endpoint(0)
            for i in range(500):
                ep.send(i, 1, Tag.DECODE, nbytes=1000)
            yield from ()

        def receiver():
            ep = net.endpoint(1)
            for _ in range(500):
                yield from ep.recv(0, Tag.DECODE)

        k.spawn(sender())
        k.spawn(receiver())
        k.run()
        return net.n_sent

    assert benchmark(run) == 500


def test_range_cache_ops(benchmark):
    def run():
        c = RangeKVCache()
        c.add_tokens(0, range(700))
        for i in range(1, 9):
            c.seq_cp(0, i, 0, 700)
            c.add_tokens(i, range(700, 704))
            c.seq_rm(i, 0, 1 << 40)
        return c.seq_max_pos(0)

    assert benchmark(run) == 699


def test_functional_decode_step(benchmark):
    model = TinyTransformer(
        TransformerConfig(vocab=128, d_model=32, n_layers=4, n_heads=4,
                          n_kv_heads=2, d_ff=64, seed=0)
    )
    cache = model.new_cache(256)
    state = {"pos": 0}

    def step():
        slot = [TokenSlot(7, state["pos"], (0,), True)]
        state["pos"] += 1
        if state["pos"] >= 250:  # keep within capacity across rounds
            cache.seq_rm(0, 0, 1 << 40)
            state["pos"] = 0
        return model.decode(slot, cache)

    out = benchmark(step)
    assert np.isfinite(out[0]).all()
