"""Figure 9: generation speed on the 4-GPU cluster, seven model pairs."""

from benchmarks.conftest import run_once
from repro.experiments.fig9 import run
from repro.models.zoo import GPU_PAIRS
from repro.util.tables import format_series


def test_fig9_gpu_pairs(benchmark, bench_scale):
    series = run_once(benchmark, lambda: run(bench_scale))
    labels = [GPU_PAIRS[k].label for k in GPU_PAIRS]
    print()
    print(format_series("pair", labels, series,
                        title="Figure 9 — 4-GPU cluster", unit="tokens/s"))

    wins = sum(
        p > s for p, s in zip(series["PipeInfer"], series["Speculative"])
    )
    # Paper: PipeInfer ahead in all but one case (the Dolphin 2.9 outlier).
    assert wins >= len(labels) - 2
    # GPU speeds land well above the CPU clusters' 1-5 tokens/s band.
    assert max(series["PipeInfer"]) > 3.0
