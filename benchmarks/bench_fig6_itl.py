"""Figure 6: inter-token latencies across node counts."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig6_itl(benchmark, bench_scale):
    def compute():
        out = {}
        for key, label in (("dolphin+tinyllama", "Dolphin"),
                           ("goliath+xwin7b", "Goliath")):
            grid = node_sweep(key, ["iter", "spec", "pipe"], "C", NODES, bench_scale)
            for s, pretty in (("iter", "Iter."), ("spec", "Spec."), ("pipe", "Pipe.")):
                out[f"{pretty} ({label})"] = [
                    (r.itl, r.generation_speed) for r in grid[s]
                ]
        return out

    raw = run_once(benchmark, compute)
    series = {k: [itl for itl, _ in v] for k, v in raw.items()}
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 6 — ITL", unit="seconds"))

    # The paper's check: ITL trends mirror generation speed.
    for pairs in raw.values():
        for itl, speed in pairs:
            assert itl == pytest.approx(1.0 / speed, rel=0.15)
    # PipeInfer has the lowest ITL at depth for both pairs.
    for label in ("Dolphin", "Goliath"):
        assert series[f"Pipe. ({label})"][1] < series[f"Spec. ({label})"][1]
        assert series[f"Pipe. ({label})"][1] < series[f"Iter. ({label})"][1]
    # Well-aligned speculation beats iterative; at Goliath's 52% acceptance
    # the baseline's ITL sits at or above iterative (paper Fig. 4b shows
    # the same collapse).
    assert series["Spec. (Dolphin)"][1] < series["Iter. (Dolphin)"][1]
