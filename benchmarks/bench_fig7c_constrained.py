"""Figure 7c: generation speed on the constrained clusters A/B."""

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_7c
from repro.util.tables import format_series


def test_fig7c_constrained_clusters(benchmark, bench_scale):
    series = run_once(benchmark, lambda: run_7c(bench_scale))
    print()
    print(format_series("nodes", [4, 8, 13], series,
                        title="Figure 7c — constrained clusters", unit="tokens/s"))

    for family in ("Dolphin", "Goliath", "Falcon"):
        pipe = series[f"Pipe. ({family})"]
        spec = series[f"Spec. ({family})"]
        it = series[f"Iter. ({family})"]
        # PipeInfer shows its greatest advantage on slow interconnects.
        assert pipe[1] > spec[1]
        assert pipe[1] > it[1]
    # Paper: PipeInfer's edge over speculative grows for the poorly
    # aligned Goliath pair relative to the well-aligned Dolphin pair.
    gain_goliath = series["Pipe. (Goliath)"][1] / series["Spec. (Goliath)"][1]
    gain_dolphin = series["Pipe. (Dolphin)"][1] / series["Spec. (Dolphin)"][1]
    assert gain_goliath > gain_dolphin * 0.9
