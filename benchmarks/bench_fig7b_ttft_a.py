"""Figure 7b: TTFT on the constrained cluster A (Gigabit Ethernet)."""

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_7b
from repro.util.tables import format_series


def test_fig7b_ttft_cluster_a(benchmark, bench_scale):
    series = run_once(benchmark, lambda: run_7b(bench_scale))
    print()
    print(format_series("model", ["Dolphin", "Goliath", "Falcon"], series,
                        title="Figure 7b — TTFT on cluster A", unit="seconds"))

    for i in range(3):
        # Speculative pays for the pipelined tree before the first token.
        assert series["Speculative"][i] > series["Iterative"][i]
        # PipeInfer's dedicated speculation node shortens the target
        # pipeline: TTFT at or below iterative (paper observed below).
        assert series["PipeInfer"][i] <= series["Iterative"][i] * 1.02
