"""Figure 4a: Dolphin-70B generation speeds (TinyLlama / Orca2 drafts)."""

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig4a(benchmark, bench_scale):
    def compute():
        out = {}
        iters = node_sweep("dolphin+tinyllama", ["iter"], "C", NODES, bench_scale)
        out["Iter."] = [r.generation_speed for r in iters["iter"]]
        for key, label in (("dolphin+tinyllama", "TinyLlama"), ("dolphin+orca2", "Orca2")):
            grid = node_sweep(key, ["spec", "pipe"], "C", NODES, bench_scale)
            out[f"Spec. ({label})"] = [r.generation_speed for r in grid["spec"]]
            out[f"Pipe. ({label})"] = [r.generation_speed for r in grid["pipe"]]
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 4a — Dolphin-70B speeds", unit="tokens/s"))

    # Paper shapes: PipeInfer leads at depth; iterative/speculative ~flat.
    for label in ("TinyLlama", "Orca2"):
        pipe, spec = series[f"Pipe. ({label})"], series[f"Spec. ({label})"]
        assert pipe[1] > spec[1] and pipe[2] > spec[2]
        assert pipe[1] >= pipe[0] * 0.95  # depth never hurts PipeInfer here
    # The well-aligned pair gains from the deeper pipeline (paper Fig. 4a;
    # the Orca2 pair is flatter there too).
    assert series["Pipe. (TinyLlama)"][1] > series["Pipe. (TinyLlama)"][0] * 1.05
    it = series["Iter."]
    assert max(it) / min(it) < 1.4
    # The better-aligned TinyLlama pair speculates at least as fast.
    assert series["Pipe. (TinyLlama)"][1] >= series["Pipe. (Orca2)"][1] * 0.9
