"""Figure 5: time-to-first-token latencies across node counts."""

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig5_ttft(benchmark, bench_scale):
    def compute():
        out = {}
        for key, label in (("dolphin+tinyllama", "Dolphin"),
                           ("goliath+xwin7b", "Goliath"),
                           ("falcon+7b", "Falcon")):
            grid = node_sweep(key, ["iter", "spec", "pipe"], "C", NODES, bench_scale)
            out[f"Iter. ({label})"] = [r.ttft for r in grid["iter"]]
            out[f"Spec. ({label})"] = [r.ttft for r in grid["spec"]]
            out[f"Pipe. ({label})"] = [r.ttft for r in grid["pipe"]]
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 5 — TTFT", unit="seconds"))

    for label in ("Dolphin", "Goliath", "Falcon"):
        for i in range(len(NODES)):
            # Near-parity with iterative; far below speculative.
            assert series[f"Pipe. ({label})"][i] <= series[f"Iter. ({label})"][i] * 1.1
            assert series[f"Spec. ({label})"][i] > series[f"Pipe. ({label})"][i] * 1.3
