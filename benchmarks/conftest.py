"""Benchmark-suite configuration.

Each ``bench_<id>`` module regenerates one paper artifact: it runs the
experiment harness at benchmark scale, asserts the paper's qualitative
shape, prints the series (captured with ``-s``), and registers the
simulation wall-time with pytest-benchmark.

Scale: benchmarks default to short generations so the whole suite stays
in CI budgets; set ``REPRO_TOKENS=512 REPRO_REPS=10`` to reproduce the
paper's full scale.
"""

import os

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return ExperimentScale(
        n_generate=int(os.environ.get("REPRO_TOKENS", "96")),
        reps=int(os.environ.get("REPRO_REPS", "1")),
        prompt_len=int(os.environ.get("REPRO_PROMPT", "128")),
    )


def run_once(benchmark, fn):
    """Register ``fn``'s single execution with pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
