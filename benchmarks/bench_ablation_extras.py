"""Extension ablations beyond Figure 8 (DESIGN.md's ablation index).

- micro-batch size sweep (Section IV-B1 says 1-4),
- cutoff recovery/decay factors (Section IV-B2's reactive speculation),
- draft alignment sweep (resilience claim of Section I).
"""

from benchmarks.conftest import run_once
from repro.cluster.testbed import cluster_c
from repro.engines.base import EngineConfig
from repro.experiments.common import run_cell
from repro.util.tables import format_series


def test_microbatch_sweep(benchmark, bench_scale):
    def compute():
        cluster = cluster_c(8)
        return {
            f"microbatch={mb}": [
                run_cell("dolphin+tinyllama", "pipe", cluster, bench_scale,
                         config=EngineConfig().ablated(microbatch_size=mb)
                         ).generation_speed
            ]
            for mb in (1, 2, 4, 8)
        }

    series = run_once(benchmark, compute)
    print()
    print(format_series("", ["tokens/s"], series, title="Micro-batch sweep"))
    speeds = {k: v[0] for k, v in series.items()}
    # All sizes work; the paper's 1-4 band is competitive with 8 (larger
    # batches pay the compute-bound penalty without more acceptance).
    assert all(s > 0 for s in speeds.values())
    best_small = max(speeds["microbatch=2"], speeds["microbatch=4"])
    assert best_small > 0.85 * speeds["microbatch=8"]


def test_cutoff_factor_sweep(benchmark, bench_scale):
    def compute():
        cluster = cluster_c(8)
        out = {}
        for rec, dec in ((0.0, 0.0), (0.06, 0.03), (0.2, 0.1)):
            cfg = EngineConfig().ablated(cutoff_recovery=rec, cutoff_decay=dec)
            r = run_cell("goliath+xwin7b", "pipe", cluster, bench_scale, config=cfg)
            out[f"recovery={rec}/decay={dec}"] = [
                r.generation_speed, r.stats.dispatch_efficiency
            ]
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("", ["tokens/s", "dispatch eff."], series,
                        title="Reactive-cutoff sweep (Goliath, 52% acceptance)"))
    # The factors trade throughput against efficiency ("tuned towards
    # higher performance or greater power efficiency", IV-B2): all
    # settings must stay within a modest band of the default — the knob
    # is a tuning dial, not a cliff.
    speeds = [v[0] for v in series.values()]
    assert max(speeds) / min(speeds) < 1.5
    assert all(s > 0 for s in speeds)


def test_alignment_sweep(benchmark, bench_scale):
    """PipeInfer's near-zero slowdown at poor acceptance vs speculative."""

    def compute():
        from repro.engines.backend import OracleBackend
        from repro.engines.base import GenerationJob, run_engine
        from repro.core.engine import PipeInferEngine
        from repro.engines.speculative import SpeculativeEngine
        from repro.engines.iterative import IterativeEngine
        from repro.models.zoo import get_pair
        from repro.workloads.prompts import make_prompt

        cluster = cluster_c(8)
        pair = get_pair("dolphin+tinyllama")
        job = GenerationJob(
            make_prompt("wikitext", bench_scale.prompt_len, pair.target_arch.vocab),
            bench_scale.n_generate,
        )
        out = {}
        for acc in (0.15, 0.5, 0.85):
            row = []
            for eng in (IterativeEngine, SpeculativeEngine, PipeInferEngine):
                be = OracleBackend(pair, head_node=cluster.nodes[0],
                                   acceptance_override=acc)
                row.append(run_engine(eng, be, cluster, job).generation_speed)
            out[f"acceptance={acc}"] = row
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("strategy", ["iter", "spec", "pipe"], series,
                        title="Alignment sweep (8 nodes)", unit="tokens/s"))
    # At terrible alignment PipeInfer stays near iterative speed
    # ("near-zero slowdown for poor speculation accuracy") while the
    # synchronous baseline collapses well below it.
    it, sp, pi = series["acceptance=0.15"]
    assert pi >= it * 0.85
    assert sp < it
    # At every alignment PipeInfer >= speculative.
    for row in series.values():
        assert row[2] >= row[1] * 0.95
