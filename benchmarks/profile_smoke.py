#!/usr/bin/env python
"""Profile the serving smoke workload; emit a cumulative-time report.

CI runs this as the ``profile-smoke`` job and uploads the report as an
artifact, so perf PRs can cite before/after profiles of the actual serving
hot path instead of guessing where time goes.  Locally:

    python benchmarks/profile_smoke.py                # top-30 to stdout
    python benchmarks/profile_smoke.py --sort tottime --top 50

The serving scenario is the same one the bench gate runs
(``bench_hotpath.bench_serving``): closed-loop requests through a 4-node
pipeline with cross-request draft batching and fused windows — the
workload every hot-path layer (kernel, links, transaction pool, scratch
arenas) sits under.  One un-profiled warm-up run precedes the measured
one so allocator and import costs don't pollute the report.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_hotpath import bench_serving  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--top", type=int, default=30, metavar="N",
                        help="number of entries in the report (default 30)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--out", default=None, metavar="TXT",
                        help="also write the report to this file")
    parser.add_argument("--dump", default=None, metavar="PROF",
                        help="also dump raw pstats data (for snakeviz etc.)")
    parser.add_argument("--full", action="store_true",
                        help="profile the full-size serving run instead of "
                             "the CI smoke size")
    args = parser.parse_args(argv)

    smoke = not args.full
    bench_serving(smoke)  # warm-up: imports, allocator, BLAS thread pools
    profiler = cProfile.Profile()
    profiler.enable()
    tokens_per_sec, max_fusion, max_draft = bench_serving(smoke)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = (
        f"serving {'smoke' if smoke else 'full'} under cProfile: "
        f"{tokens_per_sec:.1f} tokens/s (profiled), "
        f"fusion width {max_fusion}, draft batch width {max_draft}\n"
        f"top {args.top} by {args.sort}\n\n"
    )
    report = header + buf.getvalue()
    print(report)
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"wrote {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
