#!/usr/bin/env python
"""Profile the serving smoke workload; emit a cumulative-time report.

CI runs this as the ``profile-smoke`` job and uploads the report as an
artifact, so perf PRs can cite before/after profiles of the actual serving
hot path instead of guessing where time goes.  Locally:

    python benchmarks/profile_smoke.py                # top-30 to stdout
    python benchmarks/profile_smoke.py --sort tottime --top 50

Alongside the text report, a machine-readable ``profile_smoke.json`` is
written (top-N functions by cumulative time, with their percentage of
the total): ``bench_hotpath.py --check-against`` diffs a fresh profile
against the committed copy when a tracked metric regresses, turning the
artifact into a function-level triage tool.

The serving scenario is the same one the bench gate runs
(``bench_hotpath.bench_serving``): closed-loop requests through a 4-node
pipeline with cross-request draft batching and fused windows — the
workload every hot-path layer (kernel, links, transaction pool, scratch
arenas) sits under.  One un-profiled warm-up run precedes the measured
one so allocator and import costs don't pollute the report.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_hotpath import bench_serving  # noqa: E402


def _func_label(filename: str, lineno: int, name: str) -> str:
    """Host-portable ``file:line(func)`` label for one pstats entry.

    Repo files are rendered relative to the repo root so committed and
    freshly-generated profiles match across machines; stdlib paths and
    built-ins keep pstats' native spelling.
    """
    try:
        filename = str(Path(filename).resolve().relative_to(REPO_ROOT))
    except ValueError:
        pass
    return f"{filename}:{lineno}({name})"


def _profile_once(smoke: bool):
    """One warm-up run, then one profiled run; returns (profiler, outcome)."""
    bench_serving(smoke)  # warm-up: imports, allocator, BLAS thread pools
    profiler = cProfile.Profile()
    profiler.enable()
    outcome = bench_serving(smoke)
    profiler.disable()
    return profiler, outcome


def _entries(profiler, top: int = 0):
    """Profile rows sorted by cumulative time, as plain dicts.

    ``pct`` is the entry's cumulative time over the run's total time, the
    number the regression triage in ``bench_hotpath.check_against``
    compares.  ``top=0`` returns every entry.
    """
    stats = pstats.Stats(profiler)
    total = stats.total_tt
    rows = [
        {
            "func": _func_label(filename, lineno, name),
            "ncalls": nc,
            "tottime": round(tt, 6),
            "cumtime": round(ct, 6),
            "pct": round(100.0 * ct / total, 2) if total else 0.0,
        }
        for (filename, lineno, name), (_cc, nc, tt, ct, _callers)
        in stats.stats.items()
    ]
    rows.sort(key=lambda r: r["cumtime"], reverse=True)
    return rows[:top] if top else rows


def profile_entries(smoke: bool = True, top: int = 0):
    """Profile one serving run and return its entry rows (triage API)."""
    profiler, _ = _profile_once(smoke)
    return _entries(profiler, top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--top", type=int, default=30, metavar="N",
                        help="number of entries in the report (default 30)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--out", default=None, metavar="TXT",
                        help="also write the report to this file")
    parser.add_argument("--json", default=str(REPO_ROOT / "profile_smoke.json"),
                        metavar="JSON",
                        help="machine-readable output path (top-N cumulative "
                             "functions with pct; default profile_smoke.json "
                             "at the repo root)")
    parser.add_argument("--dump", default=None, metavar="PROF",
                        help="also dump raw pstats data (for snakeviz etc.)")
    parser.add_argument("--full", action="store_true",
                        help="profile the full-size serving run instead of "
                             "the CI smoke size")
    args = parser.parse_args(argv)

    smoke = not args.full
    profiler, outcome = _profile_once(smoke)
    tokens_per_sec, max_fusion, max_draft, resumes_per_msg = outcome

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(args.sort).print_stats(args.top)
    header = (
        f"serving {'smoke' if smoke else 'full'} under cProfile: "
        f"{tokens_per_sec:.1f} tokens/s (profiled), "
        f"fusion width {max_fusion}, draft batch width {max_draft}, "
        f"{resumes_per_msg:.3f} resumes/message\n"
        f"top {args.top} by {args.sort}\n\n"
    )
    report = header + buf.getvalue()
    print(report)
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote {args.out}")
    if args.json:
        doc = {
            "workload": "smoke" if smoke else "full",
            "tokens_per_sec_profiled": round(tokens_per_sec, 2),
            "resumes_per_message": round(resumes_per_msg, 4),
            "entries": _entries(profiler, args.top),
        }
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"wrote {args.dump}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
