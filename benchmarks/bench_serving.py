"""Serving sweep: request rate x cluster size under Poisson traffic.

Drives the request scheduler over open-loop Poisson arrival traces and
prints the serving-level metrics the single-job figures cannot show:
stream throughput, TTFT/ITL tail percentiles, and queue-wait.  Asserts
the qualitative shape: concurrent serving beats sequential admission of
the same workload, and queue wait grows with the request rate.
"""

import os

from benchmarks.conftest import run_once
from repro import (
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    Workload,
    cluster_c,
    get_pair,
    run_serving,
)
from repro.util.tables import format_table
from repro.workloads import make_prompt, poisson_arrivals

RATES = (0.5, 1.0, 2.0, 4.0)
NODES = (4, 8)
N_REQUESTS = int(os.environ.get("REPRO_SERVE_REQUESTS", "10"))
PROMPT_KINDS = ("wikitext", "code", "explain", "paper", "roleplay")


def _workload(pair, rate, seed=11, max_active=4):
    """Poisson workload; ``max_active`` caps concurrency so admission
    queueing is visible (with an uncapped pool the first
    ``n_seq_partitions`` requests admit instantly)."""
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(
                PROMPT_KINDS[i % len(PROMPT_KINDS)],
                length=64,
                vocab=pair.target_arch.vocab,
            ),
            n_generate=int(os.environ.get("REPRO_SERVE_TOKENS", "32")),
        )
        for i in range(N_REQUESTS)
    )
    return Workload(
        jobs=jobs,
        arrivals=poisson_arrivals(rate, len(jobs), seed=seed),
        max_active=max_active,
    )


def _mean_queue_wait(report):
    return sum(r.queue_wait for r in report.requests) / report.n_requests


def test_bench_serving(benchmark):
    pair = get_pair("dolphin+tinyllama")

    def compute():
        grid = {}
        for n_nodes in NODES:
            cluster = cluster_c(n_nodes)
            backend = OracleBackend(pair, head_node=cluster.nodes[0])
            for rate in RATES:
                grid[(n_nodes, rate)] = run_serving(
                    PipeInferEngine, backend, cluster, _workload(pair, rate)
                )
            # Sequential reference at the highest rate on this cluster.
            grid[(n_nodes, "seq")] = run_serving(
                PipeInferEngine, backend, cluster,
                _workload(pair, RATES[-1], max_active=1),
            )
        return grid

    grid = run_once(benchmark, compute)

    rows = [
        [
            str(n_nodes),
            str(rate),
            f"{rep.throughput:.2f}",
            f"{rep.ttft_p50:.2f}/{rep.ttft_p95:.2f}/{rep.ttft_p99:.2f}",
            f"{rep.itl_p50:.3f}/{rep.itl_p95:.3f}/{rep.itl_p99:.3f}",
            f"{rep.queue_wait_p95:.2f}",
            str(sum(rep.token_counts().values())),
        ]
        for (n_nodes, rate), rep in sorted(
            grid.items(), key=lambda kv: (kv[0][0], str(kv[0][1]))
        )
    ]
    print()
    print(format_table(
        ["nodes", "req/s", "tok/s", "TTFT p50/p95/p99",
         "ITL p50/p95/p99", "queue p95", "tokens"],
        rows,
        title=f"Serving sweep — PipeInfer, {N_REQUESTS} requests, Poisson arrivals",
    ))

    for n_nodes in NODES:
        # Concurrency beats one-at-a-time admission of the same trace.
        conc = grid[(n_nodes, RATES[-1])]
        seq = grid[(n_nodes, "seq")]
        assert conc.throughput > seq.throughput
        # Higher request rates queue more (open loop, same service rate):
        # arrivals compress while the capped service order stays fixed.
        assert (
            _mean_queue_wait(grid[(n_nodes, RATES[-1])])
            >= _mean_queue_wait(grid[(n_nodes, RATES[0])])
        )
        # Every request completed with its full budget.
        for rep in (conc, seq):
            assert len(rep.token_counts()) == N_REQUESTS
