"""Tables I & III: model-pair catalogs and footprints."""


from benchmarks.conftest import run_once
from repro.experiments.tables import table_model_files, table_pairs, table_testbeds
from repro.models.cost import CostModel
from repro.models.zoo import ALL_PAIRS, CPU_PAIRS, GPU_PAIRS


def test_tab1_tab3_model_pairs(benchmark):
    def compute():
        return (
            table_pairs(CPU_PAIRS, "Table I"),
            table_pairs(GPU_PAIRS, "Table III"),
            table_model_files(),
        )

    t1, t3, files = run_once(benchmark, compute)
    print()
    print(t1)
    print()
    print(t3)
    print()
    print(files)

    assert len(CPU_PAIRS) == 6
    assert len(GPU_PAIRS) == 7
    # Every pair's draft is the smaller model and file sizes are ordered.
    for pair in ALL_PAIRS.values():
        t = CostModel(pair.target_arch).weights_bytes()
        d = CostModel(pair.draft_arch).weights_bytes()
        assert d < t


def test_tab2_tab4_testbeds(benchmark):
    out = run_once(benchmark, table_testbeds)
    print()
    print(out)
    assert "Gigabit Ethernet" in out and "InfiniBand" in out
