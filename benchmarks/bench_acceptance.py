"""Acceptance-rate calibration against Section V-B's reported rates."""

import pytest

from benchmarks.conftest import run_once
from repro.cluster.testbed import cluster_c
from repro.experiments.common import run_cell
from repro.models.zoo import CPU_PAIRS
from repro.util.tables import format_table


def test_acceptance_calibration(benchmark, bench_scale):
    def compute():
        cluster = cluster_c(8)
        rows = {}
        for key, pair in CPU_PAIRS.items():
            r = run_cell(key, "spec", cluster, bench_scale)
            rows[key] = (pair.acceptance, r.acceptance_rate)
        return rows

    rows = run_once(benchmark, compute)
    print()
    print(format_table(
        ["pair", "paper", "measured"],
        [[k, f"{a:.2%}", f"{m:.2%}"] for k, (a, m) in rows.items()],
        title="Acceptance calibration",
    ))
    for key, (paper, measured) in rows.items():
        assert measured == pytest.approx(paper, abs=0.09), key
    # Ordering between pairs is preserved.
    assert rows["goliath+xwin7b"][1] < rows["dolphin+tinyllama"][1]
