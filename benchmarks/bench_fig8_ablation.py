"""Figure 8: ablation studies on 8 nodes of cluster C."""

from benchmarks.conftest import run_once
from repro.experiments.fig8 import run
from repro.util.tables import format_series


def test_fig8_ablations(benchmark, bench_scale):
    results = run_once(benchmark, lambda: run(bench_scale))
    print()
    for metric, unit in (("speed", "tokens/s"), ("ttft", "s"), ("itl", "s")):
        print(format_series("value", [unit], results[metric],
                            title=f"Figure 8 — {metric}"))
        print()

    speed = {k: v[0] for k, v in results["speed"].items()}
    itl = {k: v[0] for k, v in results["itl"].items()}
    for family in ("Dolphin", "Goliath", "Falcon"):
        full = speed[f"{family}: PipeInfer"]
        no_cancel = speed[f"{family}: No cancellation"]
        no_cont = speed[f"{family}: No cont. spec."]
        # Both ablations cost speed and raise ITL.
        assert no_cancel < full
        assert no_cont < full
        assert itl[f"{family}: No cancellation"] > itl[f"{family}: PipeInfer"]
    # The continuous-speculation ablation is *severe* for Dolphin (paper).
    assert speed["Dolphin: No cont. spec."] < 0.8 * speed["Dolphin: PipeInfer"]
