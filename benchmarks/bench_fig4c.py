"""Figure 4c: Falcon-180B generation speeds (Falcon-7B / Falcon-40B drafts)."""

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig4c(benchmark, bench_scale):
    def compute():
        out = {}
        iters = node_sweep("falcon+7b", ["iter"], "C", NODES, bench_scale)
        out["Iter."] = [r.generation_speed for r in iters["iter"]]
        for key, label in (("falcon+7b", "Falcon-7B"), ("falcon+40b", "Falcon-40B")):
            grid = node_sweep(key, ["spec", "pipe"], "C", NODES, bench_scale)
            out[f"Spec. ({label})"] = [r.generation_speed for r in grid["spec"]]
            out[f"Pipe. ({label})"] = [r.generation_speed for r in grid["pipe"]]
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 4c — Falcon-180B speeds", unit="tokens/s"))

    # The huge 40B draft makes synchronous speculation pay dearly at every
    # node count (paper: "extreme computation requirements of the
    # speculative model"), while PipeInfer hides the draft latency.
    assert series["Spec. (Falcon-40B)"][0] < series["Spec. (Falcon-7B)"][0]
    for i in (1, 2, 3):
        assert series["Pipe. (Falcon-7B)"][i] > series["Spec. (Falcon-7B)"][i]
        assert series["Pipe. (Falcon-40B)"][i] > series["Spec. (Falcon-40B)"][i]
