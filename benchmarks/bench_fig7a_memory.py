"""Figure 7a: memory efficiency (speed per GB, log scale in the paper)."""

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig7a_memory_efficiency(benchmark, bench_scale):
    def compute():
        out = {}
        grid = node_sweep("dolphin+tinyllama", ["iter", "spec", "pipe"], "C",
                          NODES, bench_scale)
        out["Iter. (Dolphin)"] = [r.speed_per_gb() for r in grid["iter"]]
        out["Speculative"] = [r.speed_per_gb() for r in grid["spec"]]
        out["PipeInfer"] = [r.speed_per_gb() for r in grid["pipe"]]
        out["_mem"] = {
            s: [r.mean_node_memory for r in grid[s]] for s in ("iter", "spec", "pipe")
        }
        return out

    series = run_once(benchmark, compute)
    mem = series.pop("_mem")
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 7a — memory efficiency",
                        unit="tokens/s per GB"))

    # PipeInfer achieves the best speed-to-memory ratio of the three.
    for i in range(1, len(NODES)):
        assert series["PipeInfer"][i] > series["Speculative"][i]
        assert series["PipeInfer"][i] > series["Iter. (Dolphin)"][i]
    # Per-node memory shrinks as nodes are added; PipeInfer's equals the
    # speculative baseline's (both hold the draft model).
    assert mem["pipe"][0] > mem["pipe"][-1]
    for a, b in zip(mem["pipe"], mem["spec"]):
        assert abs(a - b) / b < 0.3
    # Iterative stays leaner (no draft model).
    assert mem["iter"][0] < mem["spec"][0]
