"""Figure 4b: Goliath-120B generation speeds (XWin-7B / XWin-13B drafts)."""

from benchmarks.conftest import run_once
from repro.experiments.common import node_sweep
from repro.util.tables import format_series

NODES = (4, 8, 15, 32)


def test_fig4b(benchmark, bench_scale):
    def compute():
        out = {}
        iters = node_sweep("goliath+xwin7b", ["iter"], "C", NODES, bench_scale)
        out["Iter."] = [r.generation_speed for r in iters["iter"]]
        for key, label in (("goliath+xwin7b", "XWin-7B"), ("goliath+xwin13b", "XWin-13B")):
            grid = node_sweep(key, ["spec", "pipe"], "C", NODES, bench_scale)
            out[f"Spec. ({label})"] = [r.generation_speed for r in grid["spec"]]
            out[f"Pipe. ({label})"] = [r.generation_speed for r in grid["pipe"]]
        return out

    series = run_once(benchmark, compute)
    print()
    print(format_series("nodes", list(NODES), series,
                        title="Figure 4b — Goliath-120B speeds", unit="tokens/s"))

    # Low alignment (52%): speculative declines with node count while
    # PipeInfer stays clearly ahead — the paper's resilience claim.
    spec7 = series["Spec. (XWin-7B)"]
    assert spec7[-1] < spec7[0]
    for i, _ in enumerate(NODES[1:], start=1):
        assert series["Pipe. (XWin-7B)"][i] > spec7[i]
    # Better-aligned XWin-13B lifts speculation quality.
    assert series["Pipe. (XWin-13B)"][1] >= series["Pipe. (XWin-7B)"][1] * 0.95
