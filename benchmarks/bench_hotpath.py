#!/usr/bin/env python
"""Hot-path microbenchmark: wall-clock speed of the functional inner loop.

Unlike the ``bench_fig*`` suite (which reports *simulated* time from the
discrete-event kernel), this benchmark times the *host* wall-clock of the
functional simulator — the Python/NumPy hot path that PR 2 vectorizes:
KV-cache metadata ops, attention-visibility masks, and the per-layer
attention kernel.  Three scenarios:

- ``metadata``:  a synthetic mix of cache ops (allocate / seq_cp /
  seq_rm / visibility queries) on a 2048-cell cache, in ops/sec;
- ``single_job``: one PipeInfer generation on a 4-node functional
  pipeline, in generated tokens per wall-second;
- ``serving``: the PR-1 Poisson serving workload (8 requests multiplexed
  through one pipeline), in generated tokens per wall-second.

Results are written to ``BENCH_hotpath.json`` next to the repo root,
together with the recorded pre-PR baseline, so the perf trajectory is
tracked per PR.  Run modes:

    python benchmarks/bench_hotpath.py            # full run, prints speedups
    python benchmarks/bench_hotpath.py --smoke    # tiny sizes for CI
    python benchmarks/bench_hotpath.py --update-baseline   # re-record baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    PipeInferEngine,
    TinyTransformer,
    TransformerConfig,
    Workload,
    cluster_c,
    run_engine,
    run_serving,
)
from repro.models.kv_cache import KVCache  # noqa: E402
from repro.models.transformer import perturbed_copy  # noqa: E402
from repro.spec.draft import DraftParams  # noqa: E402
from repro.workloads import make_prompt, poisson_arrivals  # noqa: E402

#: Pre-PR baseline, measured at the PR-2 parent commit (6460791) on the
#: reference container.  ``--update-baseline`` refreshes these numbers from
#: a checkout of the old code; CI compares informationally only (machines
#: differ), the gating comparison is run on one machine at PR time.
BASELINE = {
    "metadata_ops_per_sec": 7917.7,
    "single_job_tokens_per_sec": 2.454,
    "serving_tokens_per_sec": 10.014,
}

MODEL_CFG = TransformerConfig(
    vocab=128, d_model=32, n_layers=4, n_heads=4, n_kv_heads=2, d_ff=64, seed=7
)

#: Functional-mode engine defaults (the cutoff admits the tiny model's
#: flat confidences; everything else is the library default).
ENGINE_CFG = EngineConfig(
    draft=DraftParams(max_tokens=4, cutoff=0.02),
    cutoff_recovery=0.01,
    cutoff_decay=0.01,
)


def _backend(n_cells: int) -> FunctionalBackend:
    target = TinyTransformer(MODEL_CFG)
    draft = perturbed_copy(target, noise=0.15, seed=9)
    return FunctionalBackend(target, draft, n_cells=n_cells)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def bench_metadata(smoke: bool) -> float:
    """Ops/sec over a synthetic cache-op mix mirroring the engines' stream."""
    n_cells = 512 if smoke else 2048
    rounds = 2 if smoke else 10
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    n_ops = 0
    for _ in range(rounds):
        cache = KVCache(n_cells)
        n_seqs = 8
        # Fill 3/4 of the cache with single-seq cells, round-robin seqs.
        fill = (n_cells * 3) // 4
        for pos in range(fill):
            cache.allocate([(pos, {int(pos) % n_seqs})])
            n_ops += 1
        # Sequence traffic: copies, visibility queries, removals.
        for i in range(fill):
            src = int(rng.integers(0, n_seqs))
            dst = int(rng.integers(0, n_seqs))
            p0 = int(rng.integers(0, fill))
            cache.seq_cp(src, dst, p0, p0 + 16)
            cache.visible_cells(src, p0)
            cache.seq_max_pos(dst)
            cache.has_entry(dst, p0)
            if i % 8 == 0:
                cache.seq_rm(dst, p0, p0 + 8)
            n_ops += 5
    return n_ops / (time.perf_counter() - t0)


def bench_single_job(smoke: bool) -> float:
    """Generated tokens per wall-second: PipeInfer on a 4-node pipeline."""
    n_generate = 12 if smoke else 64
    prompt_len = 16 if smoke else 96
    backend = _backend(n_cells=2048)
    prompt = make_prompt("wikitext", length=prompt_len, vocab=MODEL_CFG.vocab)
    job = GenerationJob(prompt=prompt, n_generate=n_generate)
    t0 = time.perf_counter()
    report = run_engine(PipeInferEngine, backend, cluster_c(4), job, ENGINE_CFG)
    wall = time.perf_counter() - t0
    assert len(report.tokens) == n_generate
    return n_generate / wall


def bench_serving(smoke: bool) -> float:
    """Generated tokens per wall-second under the PR-1 Poisson workload."""
    n_requests = 3 if smoke else 8
    n_generate = 8 if smoke else 24
    prompt_len = 16 if smoke else 64
    kinds = ("wikitext", "code", "explain", "paper", "roleplay")
    backend = _backend(n_cells=4096)
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(kinds[i % len(kinds)], length=prompt_len,
                               vocab=MODEL_CFG.vocab),
            n_generate=n_generate,
        )
        for i in range(n_requests)
    )
    workload = Workload(
        jobs=jobs, arrivals=poisson_arrivals(2.0, n_requests, seed=11)
    )
    t0 = time.perf_counter()
    report = run_serving(PipeInferEngine, backend, cluster_c(4), workload, ENGINE_CFG)
    wall = time.perf_counter() - t0
    total = sum(report.token_counts().values())
    assert total == n_requests * n_generate
    return total / wall


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(smoke: bool) -> dict:
    results = {}
    results["metadata_ops_per_sec"] = bench_metadata(smoke)
    results["single_job_tokens_per_sec"] = bench_single_job(smoke)
    results["serving_tokens_per_sec"] = bench_serving(smoke)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI; skips speedup checks")
    parser.add_argument("--update-baseline", action="store_true",
                        help="print results formatted as the BASELINE dict")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_hotpath.json, "
                             "or BENCH_hotpath_smoke.json under --smoke so "
                             "the committed full-run record is never "
                             "clobbered by a smoke run)")
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_hotpath_smoke.json" if args.smoke else "BENCH_hotpath.json"
        args.out = str(REPO_ROOT / name)

    current = run(args.smoke)

    if args.update_baseline:
        print(json.dumps(current, indent=2))
        return 0

    # Smoke sizes differ from the recorded baseline's: no speedup claims.
    speedup = {}
    if not args.smoke:
        for key, base in BASELINE.items():
            if base and current.get(key):
                speedup[key.replace("_per_sec", "_speedup")] = current[key] / base

    payload = {
        "smoke": args.smoke,
        "baseline": BASELINE,
        "current": current,
        "speedup": speedup,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(k) for k in current)
    for key in current:
        base = BASELINE.get(key)
        line = f"{key:<{width}}  current={current[key]:>12.1f}"
        if base and not args.smoke:
            line += f"  baseline={base:>12.1f}  speedup={current[key] / base:.2f}x"
        print(line)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
