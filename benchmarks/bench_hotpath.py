#!/usr/bin/env python
"""Hot-path microbenchmark: wall-clock speed of the functional inner loop.

Unlike the ``bench_fig*`` suite (which reports *simulated* time from the
discrete-event kernel), this benchmark times the *host* wall-clock of the
functional simulator — the Python/NumPy hot path that PR 2 vectorizes:
KV-cache metadata ops, attention-visibility masks, and the per-layer
attention kernel.  Three scenarios:

- ``metadata``:  a synthetic mix of cache ops (allocate / seq_cp /
  seq_rm / visibility queries) on a 2048-cell cache, in ops/sec;
- ``single_job``: one PipeInfer generation on a 4-node functional
  pipeline, in generated tokens per wall-second;
- ``serving``: a steady-state closed-loop serving workload (8 requests
  queued at t=0, multiplexed through one pipeline), in generated tokens
  per wall-second — the regime where the head's cross-request draft
  batching and burst dispatch (PR 4) have material to work with;
- ``serving_prefix``: a shared-system-prompt serving workload run twice
  — prefix cache off, then on — asserting byte-identical per-request
  outputs and a >= 25% mean-TTFT cut (simulated time, so deterministic
  across hosts), and reporting the cache-on wall throughput plus the
  prefix hit-token count (PR 5's cross-request KV prefix cache);
- ``serving_faulty``: a cloud-edge serving workload under a seeded fault
  plan (WAN loss + jitter + one mid-stream worker crash), asserting the
  faulty run's outputs byte-match the fault-free run and that recovery
  actually fired (retransmits, a restart, re-prefilled tokens), and
  reporting the faulty run's wall throughput.  Tracked with a
  *non-gating* warning — recovery wall cost may drift without failing
  the bench job (the no-fault path stays under the hard gate);
- ``serving_cluster``: a multi-turn conversation stream served by a K=4
  ``EngineCluster`` under three routing policies (random, least-loaded,
  prefix-affinity), asserting byte-identical outputs across policies
  and that prefix-affinity beats random placement on cluster-wide
  prefix hit rate and mean TTFT (simulated time: deterministic), and
  reporting the affinity run's wall throughput as
  ``cluster_tokens_per_sec``;
- ``serving_stream``: an SLO-tagged open-loop workload served through
  the streaming front-end (``stream_serving``), asserting the streamed
  run is byte-identical to the batch path and reporting good tokens
  (within TTFT/ITL SLO) per wall-second as
  ``stream_goodput_tokens_per_sec``, with the deterministic
  ``stream_slo_attainment`` fraction floored under ``--gate``.

Results are written to ``BENCH_hotpath.json`` next to the repo root,
together with the recorded pre-PR baseline, so the perf trajectory is
tracked per PR.  Committed-record protocol (containers share noisy
hosts): re-record with ``--repeat 5`` — the full-run ``current`` section
then keeps the best run (noise is one-sided: neighbors only ever slow a
run down), while ``smoke_reference`` keeps per-metric medians so the CI
regression gate is not trigger-happy.  Run modes:

    python benchmarks/bench_hotpath.py            # full run, prints speedups
    python benchmarks/bench_hotpath.py --smoke    # tiny sizes for CI
    python benchmarks/bench_hotpath.py --update-baseline   # re-record baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import (  # noqa: E402
    ClusterConfig,
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    TinyTransformer,
    TransformerConfig,
    Workload,
    cluster_c,
    get_pair,
    run_cluster,
    run_engine,
    run_serving,
)
from repro.cluster.interconnect import Link, LinkSpec  # noqa: E402
from repro.cluster.kernel import (  # noqa: E402
    Delay,
    ReferenceSimKernel,
    SimKernel,
)
from repro.models.kv_cache import KVCache  # noqa: E402
from repro.models.transformer import perturbed_copy  # noqa: E402
from repro.util.units import Gbps, KiB  # noqa: E402
from repro.spec.draft import DraftParams  # noqa: E402
from repro.workloads import (  # noqa: E402
    MultiTurnTemplate,
    SharedPrefixTemplate,
    cloud_edge_arrivals,
    cloud_edge_cluster,
    cloud_edge_fault_plan,
    cloud_edge_prompts,
    make_prompt,
    multiturn_arrivals,
)

#: Pre-PR baseline, measured at the PR-2 parent commit (6460791) on the
#: reference container.  ``--update-baseline`` refreshes these numbers from
#: a checkout of the old code; CI compares informationally only (machines
#: differ), the gating comparison is run on one machine at PR time.
BASELINE = {
    "metadata_ops_per_sec": 7917.7,
    "single_job_tokens_per_sec": 2.454,
    "serving_tokens_per_sec": 10.014,
}

MODEL_CFG = TransformerConfig(
    vocab=128, d_model=32, n_layers=4, n_heads=4, n_kv_heads=2, d_ff=64, seed=7
)

#: Functional-mode engine defaults (the cutoff admits the tiny model's
#: flat confidences; everything else is the library default).
ENGINE_CFG = EngineConfig(
    draft=DraftParams(max_tokens=4, cutoff=0.02),
    cutoff_recovery=0.01,
    cutoff_decay=0.01,
)


def _backend(n_cells: int) -> FunctionalBackend:
    target = TinyTransformer(MODEL_CFG)
    draft = perturbed_copy(target, noise=0.15, seed=9)
    return FunctionalBackend(target, draft, n_cells=n_cells)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def bench_calibration() -> float:
    """Host-speed probe: a fixed NumPy + Python workload, in ops/sec.

    Containers share noisy hosts, and wall-clock throughput swings with
    neighbor load by 2x or more — far past any regression tolerance.  The
    probe's mix (small matmuls, softmax-style reductions, dict/list
    traffic) mirrors the simulator's hot path, so its slowdown tracks the
    benchmark's: ``check_against`` scales the committed reference by the
    ratio of current to recorded calibration speed, cancelling uniform
    host noise while code regressions still trip the gate.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(32, 32))
    b = rng.normal(size=(32, 32))
    book: dict = {}
    t0 = time.perf_counter()
    n = 0
    while n < 4000:
        c = a @ b
        c = np.exp(c - c.max(axis=1, keepdims=True))
        c /= c.sum(axis=1, keepdims=True)
        book[n % 97] = [float(c[0, 0])] * 4
        n += 1
    return n / (time.perf_counter() - t0)


def bench_kernel_events(smoke: bool):
    """Raw event throughput of the simulation core, new stack vs pre-PR.

    N sender processes broadcast bursts over links to receivers parked on
    futures — the engines' dominant event mix (same-instant FUSED-burst
    arrivals, blocking receives resumed at-now, serialized bulk tensors).
    The identical program runs on both stacks in the same process:

    - **new**: ``SimKernel`` (at-now FIFO + calendar queue) with the
      coalescing ``Link`` (one kernel event drains all same-instant
      arrivals);
    - **reference**: ``ReferenceSimKernel`` (the pre-PR single-heap kernel,
      retained verbatim) with a per-message ``call_at`` link replicating
      the pre-PR delivery discipline.

    Both stacks must produce the same simulated outcome (delivered counts
    and final simulated clock are asserted equal), so the wall-clock ratio
    isolates scheduler + delivery cost.  Because the two sides run
    back-to-back on the same host, the speedup needs no calibration; the
    absolute events/sec is additionally tracked host-calibrated in the CI
    gate like every other metric.

    The receivers consume with each stack's native discipline: the new
    stack drains its whole inbox in one generator step per wakeup (the
    ``Endpoint.recv_many`` batched hand-off — one resume per delivery
    event), while the reference replays the pre-PR per-message recv (one
    at-now kernel resume per message).

    Returns ``(events_per_sec, speedup_vs_reference, coalescing)`` where
    events/sec counts logical deliveries plus process wakeups on the new
    stack, and coalescing is the deterministic messages-per-delivery-event
    ratio of the coalesced link path.
    """
    n_senders = 2 if smoke else 4
    rounds = 150 if smoke else 1500
    burst = 12 if smoke else 16
    spec = LinkSpec("bench", latency=5e-6, bandwidth=Gbps(1))

    class PerMessageLink:
        """Pre-PR ``Link``: one ``call_at`` kernel event per message."""

        def __init__(self, kernel, spec):
            self._kernel = kernel
            self.spec = spec
            self._bulk_free_at = 0.0

        def transmit(self, nbytes, on_delivered, eager_hint=False):
            now = self._kernel.now
            spec = self.spec
            wire = nbytes / spec.bandwidth
            if eager_hint or nbytes <= spec.eager_threshold:
                arrival = now + spec.latency + wire
            else:
                start = max(now, self._bulk_free_at)
                self._bulk_free_at = start + wire
                arrival = self._bulk_free_at + spec.latency
            self._kernel.call_at(arrival, on_delivered)
            return arrival

    def run_stack(kernel, links, batched):
        state = {"delivered": 0, "wakeups": 0}

        def receiver(idx):
            inbox = []
            signal = [None]

            def on_delivered():
                inbox.append(None)
                sig = signal[0]
                if sig is not None:
                    signal[0] = None
                    sig.resolve(None)

            links[idx]._on_delivered = on_delivered
            total = rounds * burst
            got = 0
            while got < total:
                if not inbox:
                    signal[0] = kernel.future(f"rx{idx}")
                    yield signal[0]
                    state["wakeups"] += 1
                if batched:
                    # recv_many(): the coalesced drain parked the whole
                    # same-instant batch before this resume, so one
                    # generator step consumes it all — zero extra yields.
                    n = len(inbox)
                    del inbox[:]
                    got += n
                    state["delivered"] += n
                    continue
                # One recv() per message, like the pre-PR MPI layer: the
                # queue is non-empty so the future resolves immediately
                # and the yield costs exactly one at-now kernel resume.
                ready = kernel.future()
                ready.resolve(None)
                yield ready
                inbox.pop()
                got += 1
                state["delivered"] += 1

        def sender(idx):
            link = links[idx]
            for r in range(rounds):
                for i in range(burst):
                    # Mixed traffic: mostly eager control/draft messages,
                    # every 8th a bulk activation tensor that serializes.
                    nbytes = 64 * KiB if i % 8 == 7 else 1 * KiB
                    link.transmit(nbytes, link._on_delivered)
                yield Delay(1e-4)

        procs = [kernel.spawn(receiver(i), f"rx{i}") for i in range(n_senders)]
        procs.extend(
            kernel.spawn(sender(i), f"tx{i}") for i in range(n_senders)
        )
        t0 = time.perf_counter()
        kernel.run()
        wall = time.perf_counter() - t0
        assert not any(p.alive for p in procs), "kernel bench deadlocked"
        return state["delivered"], state["wakeups"], kernel.now, wall

    new_kernel = SimKernel()
    new_links = [Link(new_kernel, spec) for _ in range(n_senders)]
    delivered, wakeups, now_new, wall_new = run_stack(
        new_kernel, new_links, batched=True
    )

    ref_kernel = ReferenceSimKernel()
    ref_links = [PerMessageLink(ref_kernel, spec) for _ in range(n_senders)]
    delivered_ref, _, now_ref, wall_ref = run_stack(
        ref_kernel, ref_links, batched=False
    )

    assert delivered == delivered_ref == n_senders * rounds * burst
    assert now_new == now_ref, (
        f"stacks diverged in simulated time: {now_new} vs {now_ref}"
    )
    n_delivery_events = sum(l.n_delivery_events for l in new_links)
    coalescing = delivered / n_delivery_events
    events = delivered + wakeups
    return events / wall_new, wall_ref / wall_new, coalescing


def bench_metadata(smoke: bool) -> float:
    """Ops/sec over a synthetic cache-op mix mirroring the engines' stream."""
    n_cells = 512 if smoke else 2048
    rounds = 2 if smoke else 10
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    n_ops = 0
    for _ in range(rounds):
        cache = KVCache(n_cells)
        n_seqs = 8
        # Fill 3/4 of the cache with single-seq cells, round-robin seqs.
        fill = (n_cells * 3) // 4
        for pos in range(fill):
            cache.allocate([(pos, {int(pos) % n_seqs})])
            n_ops += 1
        # Sequence traffic: copies, visibility queries, removals.
        for i in range(fill):
            src = int(rng.integers(0, n_seqs))
            dst = int(rng.integers(0, n_seqs))
            p0 = int(rng.integers(0, fill))
            cache.seq_cp(src, dst, p0, p0 + 16)
            cache.visible_cells(src, p0)
            cache.seq_max_pos(dst)
            cache.has_entry(dst, p0)
            if i % 8 == 0:
                cache.seq_rm(dst, p0, p0 + 8)
            n_ops += 5
    return n_ops / (time.perf_counter() - t0)


def bench_single_job(smoke: bool) -> float:
    """Generated tokens per wall-second: PipeInfer on a 4-node pipeline."""
    n_generate = 12 if smoke else 64
    prompt_len = 16 if smoke else 96
    backend = _backend(n_cells=2048)
    prompt = make_prompt("wikitext", length=prompt_len, vocab=MODEL_CFG.vocab)
    job = GenerationJob(prompt=prompt, n_generate=n_generate)
    t0 = time.perf_counter()
    report = run_engine(PipeInferEngine, backend, cluster_c(4), job, ENGINE_CFG)
    wall = time.perf_counter() - t0
    assert len(report.tokens) == n_generate
    return n_generate / wall


#: Serving-scenario engine config: partitions sized so a steady-state
#: closed-loop request population can hold canonical plus speculative
#: partitions concurrently (the drafting side shares the lookahead budget
#: across requests, so per-request depth tapers as width grows).
SERVING_CFG = ENGINE_CFG.ablated(n_seq_partitions=24)


def bench_serving(smoke: bool):
    """Generated tokens per wall-second under steady serving load.

    The workload is closed-loop (every request queued at t=0): the
    steady-state saturation regime where the head's draft scheduler has
    cross-request material — the regime PR 4 targets.  Returns
    (tokens_per_sec, max_fusion_width, max_draft_batch_width,
    resumes_per_message); the widths are asserted (> 2 fused runs per
    window, > 1 chains per draft pass) so this benchmark — including the
    CI smoke run — always exercises the batched draft plane and the
    burst-widened fusion path.  ``resumes_per_message`` is the kernel's
    process-resume count over delivered messages — deterministic, and
    gated below 0.35 (one resume per delivery *event*, not per message).
    """
    n_requests = 3 if smoke else 8
    n_generate = 8 if smoke else 24
    prompt_len = 16 if smoke else 64
    kinds = ("wikitext", "code", "explain", "paper", "roleplay")
    backend = _backend(n_cells=4096)
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(kinds[i % len(kinds)], length=prompt_len,
                               vocab=MODEL_CFG.vocab),
            n_generate=n_generate,
        )
        for i in range(n_requests)
    )
    workload = Workload(jobs=jobs)
    # Untimed warm-up pass (same protocol as profile_smoke): the timed
    # pass then measures steady state — allocator arenas and ufunc caches
    # sized to this workload — instead of whatever heap shape the
    # previously run benchmark left behind, which costs ~5% and varies.
    run_serving(PipeInferEngine, backend, cluster_c(4), workload, SERVING_CFG)
    backend = _backend(n_cells=4096)
    t0 = time.perf_counter()
    report = run_serving(PipeInferEngine, backend, cluster_c(4), workload,
                         SERVING_CFG)
    wall = time.perf_counter() - t0
    total = sum(report.token_counts().values())
    assert total == n_requests * n_generate
    max_width = max(report.fusion_width, default=0)
    assert max_width > 2, (
        f"serving load failed to widen fusion windows past 2: "
        f"{report.fusion_width}"
    )
    max_draft = max(report.draft_batch_width, default=0)
    assert max_draft > 1, (
        f"serving load produced no cross-request draft batches: "
        f"{report.draft_batch_width}"
    )
    return total / wall, max_width, max_draft, report.resumes_per_message


def bench_serving_prefix(smoke: bool):
    """Shared-prefix serving: the cross-request KV prefix cache's scenario.

    A shared-system-prompt workload (every prompt = one shared prefix
    plus a unique suffix) served closed-loop at ``max_active=2`` so
    completions interleave with admissions — donations from finished
    requests are matchable by queued ones, the cache's steady state.
    Runs the identical workload with the prefix cache off and on
    (oracle backend: prefill time scales with token count, so the
    TTFT effect is visible in *simulated* time and identical on every
    host) and asserts the acceptance bar inline: byte-identical
    per-request outputs and a >= 25% mean-TTFT reduction.  Returns
    ``(tokens_per_sec, hit_tokens, ttft_cut)`` where ``tokens_per_sec``
    is the cache-on run's generated tokens per *wall* second (the
    radix/match/donate machinery is host code on the serving hot path).
    """
    n_requests = 6 if smoke else 12
    n_generate = 8 if smoke else 16
    template = SharedPrefixTemplate(
        shared_len=48 if smoke else 96,
        unique_len=12 if smoke else 24,
        seed=5,
    )
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(4)
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=n_generate)
        for p in template.prompts(n_requests, pair.target_arch.vocab)
    )
    workload = Workload(jobs=jobs, max_active=2)

    def run_once(prefix_on: bool):
        backend = OracleBackend(pair, head_node=cluster.nodes[0])
        cfg = EngineConfig(n_seq_partitions=24, prefix_cache=prefix_on)
        t0 = time.perf_counter()
        report = run_serving(PipeInferEngine, backend, cluster, workload, cfg)
        return report, time.perf_counter() - t0

    off, _ = run_once(False)
    on, wall = run_once(True)
    assert on.outputs() == off.outputs(), (
        "prefix cache changed served tokens — must be a pure metadata win"
    )
    assert on.prefix_hit_tokens > 0, (
        f"shared-prefix workload produced no cache hits: {on.prefix_cache_stats}"
    )
    ttft_cut = 1.0 - on.ttft_mean / off.ttft_mean
    assert ttft_cut >= 0.25, (
        f"prefix cache cut mean TTFT by only {ttft_cut:.1%} "
        f"({off.ttft_mean:.2f}s -> {on.ttft_mean:.2f}s); >= 25% required"
    )
    total = sum(on.token_counts().values())
    return total / wall, on.prefix_hit_tokens, ttft_cut


def bench_serving_faulty(smoke: bool):
    """Chaos serving: cloud-edge pipeline under WAN loss and a worker crash.

    The same request stream runs fault-free and under a seeded fault plan
    (5% loss + jitter on every WAN hop, one edge worker crashing
    mid-stream).  Correctness is asserted inline — byte-identical
    per-request outputs, and the recovery machinery must actually fire
    (retransmits, a worker restart, re-prefilled tokens) — while the
    returned throughput is the *faulty* run's generated tokens per wall
    second: the retransmit timers, health EWMA, and re-prefill path are
    host code whose cost this metric tracks.  Returns
    ``(tokens_per_sec, retransmits, reprefilled_tokens)``.
    """
    n_requests = 3 if smoke else 4
    n_generate = 8 if smoke else 16
    prompt_len = 16 if smoke else 48
    pair = get_pair("dolphin+tinyllama")
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=n_generate)
        for p in cloud_edge_prompts(
            n_requests, pair.target_arch.vocab, length=prompt_len
        )
    )
    workload = Workload(
        jobs=jobs, arrivals=cloud_edge_arrivals(n_requests, seed=3)
    )
    plan = cloud_edge_fault_plan(
        seed=11, n_cloud=2, n_edge=2, loss_rate=0.05,
        crash_rank=2, crash_at=1.0,
    )
    cfg = EngineConfig(n_seq_partitions=24)

    def run_once(fault_plan):
        backend = OracleBackend(pair, head_node=cloud_edge_cluster().nodes[0])
        t0 = time.perf_counter()
        report = run_serving(
            PipeInferEngine, backend, cloud_edge_cluster(2, 2), workload,
            cfg, fault_plan=fault_plan,
        )
        return report, time.perf_counter() - t0

    clean, _ = run_once(None)
    faulty, wall = run_once(plan)
    assert faulty.outputs() == clean.outputs(), (
        "fault recovery changed served tokens — must be transparent"
    )
    s = faulty.stats
    assert s.retransmits > 0, "fault plan produced no retransmits"
    assert s.worker_restarts >= 1, "crash plan produced no restart"
    assert s.reprefilled_tokens > 0, "restart recovery re-prefilled nothing"
    total = sum(faulty.token_counts().values())
    return total / wall, s.retransmits, s.reprefilled_tokens


def bench_serving_cluster(smoke: bool):
    """Multi-replica cluster serving: the router ablation's scenario.

    A multi-turn conversation stream (every session's turn N+1 prompt
    extends turn N) served by a K=4 :class:`repro.serve.EngineCluster`
    under three routing policies — random, least-loaded, and
    prefix-affinity.  Affinity routing sends a session's follow-up turns
    to the replica whose radix tree holds the previous turn's KV, so its
    cluster-wide ``prefix_hit_rate`` must beat random placement (which
    scatters turns across replicas whose caches never saw the prefix)
    and its mean TTFT must drop with it.  Both are simulated-time /
    cache-bookkeeping numbers: deterministic on any host.  Asserted
    inline here; the affinity hit rate is additionally floored in
    ``WIDTH_FLOORS`` so the record tracks it per PR.

    Returns ``(tokens_per_sec, affinity_hit, random_hit, least_hit,
    affinity_ttft, random_ttft)`` where ``tokens_per_sec`` is the
    affinity run's generated tokens per *wall* second — the router,
    lockstep co-simulation, and per-replica feeds are host code on the
    cluster hot path.
    """
    n_sessions = 4 if smoke else 8
    n_turns = 3 if smoke else 4
    n_generate = 8 if smoke else 16
    k = 4
    pair = get_pair("dolphin+tinyllama")
    template = MultiTurnTemplate(n_turns=n_turns, seed=5)
    workload = Workload(
        jobs=tuple(
            GenerationJob(prompt=p, n_generate=n_generate)
            for p in template.prompts(n_sessions, pair.target_arch.vocab)
        ),
        arrivals=multiturn_arrivals(
            n_sessions, n_turns, turn_gap=45.0, session_rate=0.5, seed=9
        ),
        sessions=template.sessions(n_sessions),
    )
    cfg = EngineConfig(n_seq_partitions=24, prefix_cache=True)

    def run_once(routing: str, affinity: str):
        clusters = [cluster_c(4) for _ in range(k)]
        backends = [OracleBackend(pair, head_node=c.nodes[0]) for c in clusters]
        t0 = time.perf_counter()
        report = run_cluster(
            PipeInferEngine, backends, clusters, workload,
            cluster_config=ClusterConfig(
                n_replicas=k, routing=routing, affinity=affinity
            ),
            config=cfg,
        )
        return report, time.perf_counter() - t0

    rand, _ = run_once("random", "none")
    least, _ = run_once("least_loaded", "none")
    aff, wall = run_once("prefix_affinity", "session")
    assert aff.outputs() == rand.outputs() == least.outputs(), (
        "routing policy changed served tokens — placement must be "
        "timing-only"
    )
    assert aff.prefix_hit_rate > rand.prefix_hit_rate, (
        f"prefix-affinity routing must beat random placement on cluster "
        f"hit rate: {aff.prefix_hit_rate:.3f} vs {rand.prefix_hit_rate:.3f}"
    )
    assert aff.ttft_mean < rand.ttft_mean, (
        f"prefix-affinity routing must beat random placement on mean "
        f"TTFT: {aff.ttft_mean:.2f}s vs {rand.ttft_mean:.2f}s"
    )
    total = sum(aff.token_counts().values())
    return (
        total / wall,
        aff.prefix_hit_rate,
        rand.prefix_hit_rate,
        least.prefix_hit_rate,
        aff.ttft_mean,
        rand.ttft_mean,
    )


def bench_serving_stream(smoke: bool):
    """Streaming front-end overhead + goodput (PR 9's token streams).

    Runs an SLO-tagged open-loop workload through ``stream_serving`` —
    the batch serving path with a :class:`repro.api.StreamHub` observing
    every acceptance — and asserts the streamed run is *byte-identical*
    to a plain ``run_serving`` of the same workload (same outputs, same
    goodput: streams observe, they never steer).  Reports the wall-clock
    rate of *good* tokens (delivered within their TTFT/ITL SLO) as
    ``stream_goodput_tokens_per_sec``: the streaming layer's bookkeeping
    (per-token pushes, budget clipping, hub version bumps) sits on the
    verification hot path, so its overhead lands directly in this
    number.  ``stream_slo_attainment`` is the deterministic good-token
    fraction (simulated time, identical on any host) and is floored in
    ``WIDTH_FLOORS`` so an SLO-accounting or scheduler regression fails
    the gate rather than drifting silently.
    """
    from repro.api import stream_serving
    from repro.serve.run import make_workload
    from repro.workloads import poisson_arrivals

    n_requests = 4 if smoke else 8
    n_generate = 8 if smoke else 16
    pair = get_pair("dolphin+tinyllama")
    jobs = [
        GenerationJob(
            prompt=make_prompt(
                "wikitext", length=32 + 8 * i, vocab=pair.target_arch.vocab
            ),
            n_generate=n_generate,
        )
        for i in range(n_requests)
    ]
    workload = make_workload(
        jobs,
        arrivals=poisson_arrivals(0.4, n_requests, seed=7),
        ttft_slos=[60.0] * n_requests,
        itl_slos=[2.5] * n_requests,
    )

    def parts():
        cluster = cluster_c(4)
        return OracleBackend(pair, head_node=cluster.nodes[0]), cluster

    backend, cluster = parts()
    batch = run_serving(PipeInferEngine, backend, cluster, workload)
    backend, cluster = parts()
    t0 = time.perf_counter()
    report, hub = stream_serving(PipeInferEngine, backend, cluster, workload)
    wall = time.perf_counter() - t0
    assert hub.outputs() == batch.outputs() == report.outputs(), (
        "streamed tokens diverged from the batch serving path — streams "
        "must be pure observers"
    )
    assert report.goodput == batch.goodput and (
        report.slo_attainment == batch.slo_attainment
    ), "attaching streams changed SLO accounting"
    good_tokens = sum(r.good_tokens for r in report.requests)
    assert 0.0 < report.slo_attainment <= 1.0
    return good_tokens / wall, report.slo_attainment


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


#: Metrics compared by ``--check-against`` (higher is better).  A tracked
#: metric missing from either side of the comparison is an *error*, never
#: a silent skip — a renamed metric must not dodge the regression gate.
#: ``serving_faulty_tokens_per_sec`` was promoted from a non-gating
#: warning once PR 7's record was committed: recovery wall cost is now
#: held to the same >25% gate as the no-fault path.
TRACKED_METRICS = (
    "kernel_events_per_sec",
    "metadata_ops_per_sec",
    "single_job_tokens_per_sec",
    "serving_tokens_per_sec",
    "serving_prefix_tokens_per_sec",
    "serving_faulty_tokens_per_sec",
    "cluster_tokens_per_sec",
    "stream_goodput_tokens_per_sec",
)

#: Deterministic count metrics compared *without* host-speed scaling
#: (they come from simulated time / cache bookkeeping, identical on any
#: host): missing always errors, and under ``--gate`` a value below the
#: committed record fails — fewer cache hits is a behavior regression,
#: not noise.
TRACKED_COUNTS = ("serving_prefix_hit_tokens",)

#: Relative drop that triggers a regression warning (informational runs).
REGRESSION_TOLERANCE = 0.20

#: Relative drop that fails the run under ``--gate`` (the CI bench job).
GATE_TOLERANCE = 0.25

#: Structural floors the gate enforces on the current results: the
#: serving scenario must exercise multi-run fusion wider than 2 and
#: cross-request draft batches wider than 1 (value must *exceed* floor).
#: Keys are namespaced per scale — smoke thresholds differ where the
#: tiny workload amortizes fixed costs over fewer events (the kernel
#: bench's 150-round smoke run pays its setup over 1/10th the messages,
#: so its honest speedup is lower than the full run's).
WIDTH_FLOORS = {
    "serving_max_fusion_width": 2,
    "smoke_serving_max_fusion_width": 2,
    "serving_max_draft_batch_width": 1,
    "smoke_serving_max_draft_batch_width": 1,
    # The shared-prefix scenario must actually hit the prefix cache.
    "serving_prefix_hit_tokens": 0,
    "smoke_serving_prefix_hit_tokens": 0,
    # The new event stack must beat the retained pre-PR stack on the same
    # host in the same process (no calibration involved), and the
    # coalesced link path must actually batch same-instant arrivals.
    # PR 8's batched inbox hand-off raised the honest full-run speedup
    # floor from 1.2 (PR 6's scheduler-only win) to 3.0.
    "kernel_events_speedup_vs_reference": 3.0,
    "smoke_kernel_events_speedup_vs_reference": 1.4,
    "kernel_event_coalescing": 4,
    "smoke_kernel_event_coalescing": 4,
    # Prefix-affinity routing's cluster-wide hit rate must stay above
    # what random placement measures on the same stream (0.431 full,
    # 0.354 smoke) — deterministic simulated-time bookkeeping, so the
    # floor sits well above random and below the measured affinity
    # rates (0.667 full, 0.583 smoke).
    "cluster_affinity_hit_rate": 0.5,
    "smoke_cluster_affinity_hit_rate": 0.45,
    # The streaming scenario's SLO attainment is deterministic
    # (simulated-time TTFT/ITL against fixed SLO tags); the floors sit
    # just below the measured values (see bench_serving_stream) so an
    # SLO-accounting or admission regression trips the gate.
    # Measured 0.953 full / 0.875 smoke.
    "stream_slo_attainment": 0.9,
    "smoke_stream_slo_attainment": 0.8,
}

#: Deterministic ceilings the gate enforces (value must stay *below*):
#: the batched inbox hand-off plus the flattened resume path must keep
#: process resumes per delivered message under 0.35 in the serving
#: scenario (one resume per delivery event, ~1.0 per message pre-PR-8).
#: The ratio derives from kernel counters over a deterministic simulated
#: run — no host scaling applies.  The smoke scenario's ceiling is
#: looser: per-process spawn and shutdown resumes amortize over ~10x
#: fewer delivered messages (measured 0.41 vs the full run's 0.27).
CEILINGS = {
    "serving_resumes_per_message": 0.35,
    "smoke_serving_resumes_per_message": 0.5,
}


def run(smoke: bool) -> dict:
    results = {}
    results["calibration_ops_per_sec"] = bench_calibration()
    events, kernel_speedup, coalescing = bench_kernel_events(smoke)
    results["kernel_events_per_sec"] = events
    results["kernel_events_speedup_vs_reference"] = kernel_speedup
    results["kernel_event_coalescing"] = coalescing
    results["metadata_ops_per_sec"] = bench_metadata(smoke)
    results["single_job_tokens_per_sec"] = bench_single_job(smoke)
    serving, max_width, max_draft, resumes_per_msg = bench_serving(smoke)
    results["serving_tokens_per_sec"] = serving
    results["serving_max_fusion_width"] = max_width
    results["serving_max_draft_batch_width"] = max_draft
    results["serving_resumes_per_message"] = resumes_per_msg
    prefix, hit_tokens, ttft_cut = bench_serving_prefix(smoke)
    results["serving_prefix_tokens_per_sec"] = prefix
    results["serving_prefix_hit_tokens"] = hit_tokens
    results["serving_prefix_ttft_cut"] = ttft_cut
    faulty, retx, reprefilled = bench_serving_faulty(smoke)
    results["serving_faulty_tokens_per_sec"] = faulty
    results["serving_faulty_retransmits"] = retx
    results["serving_faulty_reprefilled_tokens"] = reprefilled
    (cluster, aff_hit, rand_hit, least_hit,
     aff_ttft, rand_ttft) = bench_serving_cluster(smoke)
    results["cluster_tokens_per_sec"] = cluster
    results["cluster_affinity_hit_rate"] = aff_hit
    results["cluster_random_hit_rate"] = rand_hit
    results["cluster_least_loaded_hit_rate"] = least_hit
    results["cluster_affinity_ttft_mean"] = aff_ttft
    results["cluster_random_ttft_mean"] = rand_ttft
    goodput, attainment = bench_serving_stream(smoke)
    results["stream_goodput_tokens_per_sec"] = goodput
    results["stream_slo_attainment"] = attainment
    return results


def run_repeated(smoke: bool, repeat: int) -> dict:
    """``repeat`` samples reduced per the committed-record protocol.

    Full runs keep the per-metric best: noisy-neighbor interference only
    ever slows a run down, so for every rate/speedup the fastest sample
    is the closest to the machine's true speed — and each metric is its
    own back-to-back measurement, so taking the max per metric (rather
    than one whole "best" sample) stops one bench's noise from polluting
    another's record.  Deterministic counts (widths, coalescing, resume
    ratio, hit tokens) are identical across samples, so max is a no-op
    for them.  Smoke runs keep per-metric medians — the reference the CI
    warning compares against should be a typical run, not a lucky one.
    """
    samples = [run(smoke) for _ in range(repeat)]
    if len(samples) == 1:
        return samples[0]
    if not smoke:
        return {key: max(s[key] for s in samples) for key in samples[0]}
    import statistics

    return {
        key: (max(s[key] for s in samples) if key in WIDTH_FLOORS
              else statistics.median(s[key] for s in samples))
        for key in samples[0]
    }


def namespaced(results: dict, smoke: bool) -> dict:
    """Prefix smoke metrics with ``smoke_`` so a smoke number and a
    full-run number can never collide under one key.

    Smoke and full runs use different workload sizes, so their absolute
    values are incomparable; namespacing at record time means a
    ``--check-against`` lookup across scales finds *no* key at all and
    fails loudly (missing tracked metric) instead of quietly comparing
    apples to oranges.
    """
    if not smoke:
        return results
    return {f"smoke_{key}": value for key, value in results.items()}


def _print_profile_regressions(record_path: str) -> None:
    """Function-level triage for a metric regression.

    Profiles the serving smoke workload fresh, compares it against the
    committed ``profile_smoke.json`` next to the bench record, and prints
    the five functions whose share of cumulative time grew the most —
    pointing at *where* the regression lives instead of just that one
    exists.
    """
    committed = Path(record_path).resolve().parent / "profile_smoke.json"
    if not committed.exists():
        print("bench-smoke: no committed profile_smoke.json next to the "
              "record; skipping function-level triage")
        return
    try:
        import profile_smoke

        entries = profile_smoke.profile_entries(smoke=True)
    except Exception as exc:  # profiling must never mask the real failure
        print(f"bench-smoke: function-level triage unavailable ({exc!r})")
        return
    base = {
        e["func"]: e
        for e in json.loads(committed.read_text()).get("entries", [])
    }
    deltas = []
    for entry in entries:
        recorded = base.get(entry["func"])
        if recorded is None:
            continue
        deltas.append((entry["pct"] - recorded["pct"], entry, recorded))
    if not deltas:
        print("bench-smoke: committed profile shares no functions with the "
              "current one; skipping function-level triage")
        return
    deltas.sort(key=lambda d: d[0], reverse=True)
    print("top regressed functions (% of cumulative serving-smoke time, "
          "recorded -> current):")
    for delta, entry, recorded in deltas[:5]:
        print(f"  {entry['func']}: {recorded['pct']:.1f}% -> "
              f"{entry['pct']:.1f}% ({delta:+.1f} pts)")


def _write_step_summary(rows) -> None:
    """Append the delta table to the GitHub step summary, when present."""
    import os

    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### bench smoke deltas",
        "",
        "| metric | recorded | host-adjusted | current | ratio | status |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for key, base, adjusted, cur, ratio, status in rows:
        base_s = f"{base:.1f}" if base is not None else "—"
        adj_s = f"{adjusted:.1f}" if adjusted is not None else "—"
        cur_s = f"{cur:.1f}" if cur is not None else "—"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "—"
        lines.append(
            f"| `{key}` | {base_s} | {adj_s} | {cur_s} | {ratio_s} | {status} |"
        )
    with open(path, "a") as fh:
        fh.write("\n".join(lines) + "\n")


def check_against(current: dict, path: str, smoke: bool, gate: bool = False) -> int:
    """Compare against a committed record; gate or warn on regression.

    Smoke runs compare against the committed record's ``smoke_reference``
    section (same tiny sizes, ``smoke_``-prefixed keys); full runs
    compare against its ``current``.  Without ``--gate`` a >20% drop
    emits a GitHub-Actions ``::warning::`` annotation; under ``--gate``
    (the CI bench job) a >25% drop on any tracked metric is an
    ``::error`` that fails the run, and the structural floors (fusion /
    draft-batch widths, kernel speedup) and ceilings (resumes per
    delivered message) are enforced too.

    A tracked metric missing from the committed record *or* from the
    current results always fails — comparing only metrics present in both
    would let a renamed metric silently dodge the gate.  Because keys are
    namespaced per scale, pointing a smoke run at a full-run section (or
    vice versa) is exactly such a hard failure, never a cross-scale
    comparison.  When any tracked metric regresses, the committed
    ``profile_smoke.json`` is compared against a fresh profile and the
    top regressed functions are printed for triage, and the full delta
    table goes to the GitHub step summary when running in Actions.
    """
    doc = json.loads(Path(path).read_text())
    section = "smoke_reference" if smoke else "current"
    pfx = "smoke_" if smoke else ""
    ref = doc.get(section)
    tol = GATE_TOLERANCE if gate else REGRESSION_TOLERANCE
    sev = "error" if gate else "warning"
    if not ref:
        print(f"::error::bench-smoke: no {section!r} section in {path}; "
              "nothing to compare against")
        return 1
    # Host-speed normalization: scale the committed reference by the
    # calibration ratio so a uniformly slow (or fast) machine moves the
    # bar with it; only a *relative* slowdown of the simulator is a
    # regression.  Falls back to raw comparison for old records.
    cal_key = pfx + "calibration_ops_per_sec"
    scale = 1.0
    if ref.get(cal_key) and current.get(cal_key):
        scale = current[cal_key] / ref[cal_key]
        print(f"host calibration: {scale:.2f}x of the recorded reference host")
    n_bad = 0
    n_missing = 0
    n_compared = 0
    regressed = False
    summary_rows = []
    for name in TRACKED_METRICS:
        key = pfx + name
        base, cur = ref.get(key), current.get(key)
        if not base or not cur:
            n_bad += 1
            n_missing += 1
            summary_rows.append((key, base, None, cur, None, "missing ❌"))
            print(f"::error::bench-smoke: tracked metric {key} missing from "
                  f"{'the committed record' if not base else 'current results'}"
                  " — a renamed metric cannot dodge the regression gate")
            continue
        n_compared += 1
        adjusted = base * scale
        ratio = cur / adjusted
        if cur < (1.0 - tol) * adjusted:
            n_bad += 1
            regressed = True
            summary_rows.append((key, base, adjusted, cur, ratio, "regressed ❌"))
            print(f"::{sev}::bench-smoke: {key} regressed to {cur:.1f} "
                  f"from host-adjusted reference {adjusted:.1f} "
                  f"({ratio:.2f}x, tolerance {1 - tol:.2f}x)")
        else:
            summary_rows.append((key, base, adjusted, cur, ratio, "ok ✅"))
    for name in TRACKED_COUNTS:
        key = pfx + name
        base, cur = ref.get(key), current.get(key)
        if base is None or cur is None:
            n_bad += 1
            n_missing += 1
            summary_rows.append((key, base, None, cur, None, "missing ❌"))
            print(f"::error::bench-smoke: tracked count {key} missing from "
                  f"{'the committed record' if base is None else 'current results'}"
                  " — a renamed metric cannot dodge the regression gate")
            continue
        n_compared += 1
        # Deterministic counts: no host scaling, no tolerance.
        ratio = cur / base if base else None
        if cur < base:
            n_bad += 1
            regressed = True
            summary_rows.append((key, base, base, cur, ratio, "dropped ❌"))
            print(f"::{sev}::bench-smoke: {key} dropped to {cur} from the "
                  f"committed {base} — a behavior regression, not host noise")
        else:
            summary_rows.append((key, base, base, cur, ratio, "ok ✅"))
    if gate:
        # Floors/ceilings are keyed per scale: apply only the entries
        # whose namespace matches this run.
        for key, floor in WIDTH_FLOORS.items():
            if key.startswith("smoke_") != smoke:
                continue
            cur = current.get(key)
            if cur is None or cur <= floor:
                n_bad += 1
                print(f"::error::bench-smoke: {key}={cur} must exceed {floor} "
                      "under the serving workload")
        for key, ceiling in CEILINGS.items():
            if key.startswith("smoke_") != smoke:
                continue
            cur = current.get(key)
            if cur is None or cur >= ceiling:
                n_bad += 1
                print(f"::error::bench-smoke: {key}={cur} must stay below "
                      f"{ceiling} — the batched inbox hand-off must hold one "
                      "resume per delivery event, not per message")
    _write_step_summary(summary_rows)
    if regressed:
        _print_profile_regressions(path)
    if not n_bad:
        print(f"check-against {path}: all {n_compared} tracked "
              "metrics within tolerance"
              + (" and structural floors/ceilings met" if gate else ""))
        return 0
    # Missing tracked metrics fail even informational runs; plain
    # regressions fail only under --gate.
    return 1 if gate or n_missing else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI; skips speedup checks")
    parser.add_argument("--update-baseline", action="store_true",
                        help="print results formatted as the BASELINE dict")
    parser.add_argument("--check-against", default=None, metavar="JSON",
                        help="compare results against a committed record "
                             "(e.g. BENCH_hotpath.json): ::warning:: lines on "
                             ">20%% regression, or hard failures under --gate")
    parser.add_argument("--gate", action="store_true",
                        help="gating mode for --check-against: fail (exit 1) "
                             "on >25%% regression of any tracked metric, on a "
                             "missing tracked metric, or on unmet serving "
                             "width floors (fusion > 2, draft batch > 1)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="samples per scenario: full runs keep the best, "
                             "smoke runs the per-metric median (use 5 when "
                             "re-recording the committed JSON)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_hotpath.json, "
                             "or BENCH_hotpath_smoke.json under --smoke so "
                             "the committed full-run record is never "
                             "clobbered by a smoke run)")
    args = parser.parse_args(argv)
    if args.out is None:
        name = "BENCH_hotpath_smoke.json" if args.smoke else "BENCH_hotpath.json"
        args.out = str(REPO_ROOT / name)

    current = namespaced(run_repeated(args.smoke, max(args.repeat, 1)),
                         args.smoke)

    if args.update_baseline:
        print(json.dumps(current, indent=2))
        return 0

    # Smoke sizes differ from the recorded baseline's: no speedup claims.
    speedup = {}
    if not args.smoke:
        for key, base in BASELINE.items():
            if base and current.get(key):
                speedup[key.replace("_per_sec", "_speedup")] = current[key] / base

    payload = {
        "smoke": args.smoke,
        "baseline": BASELINE,
        "current": current,
        "speedup": speedup,
    }
    if not args.smoke:
        # Record the smoke-scale numbers too (namespaced ``smoke_*``):
        # the CI bench-smoke job compares its like-for-like run against
        # this section and can never read a full-run key from it.
        payload["smoke_reference"] = namespaced(
            run_repeated(smoke=True, repeat=max(args.repeat, 1)), smoke=True
        )

    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(k) for k in current)
    for key in current:
        base = BASELINE.get(key)
        line = f"{key:<{width}}  current={current[key]:>12.1f}"
        if base and not args.smoke:
            line += f"  baseline={base:>12.1f}  speedup={current[key] / base:.2f}x"
        print(line)
    print(f"wrote {args.out}")
    if args.check_against:
        return check_against(current, args.check_against, args.smoke,
                             gate=args.gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
