"""Figure 10: prompt-to-prompt variance (Senku 70B + TinyLlama, 4 GPUs)."""

from benchmarks.conftest import run_once
from repro.experiments.fig10 import FIG10_PROMPTS, run, variance_ratio
from repro.util.tables import format_series
from repro.workloads.prompts import PROMPT_CLASSES


def test_fig10_prompt_variance(benchmark, bench_scale):
    series = run_once(benchmark, lambda: run(bench_scale))
    labels = [PROMPT_CLASSES[k].description for k in FIG10_PROMPTS]
    print()
    print(format_series("prompt", labels, series,
                        title="Figure 10 — prompt variance", unit="tokens/s"))
    spread = variance_ratio(series)
    print({k: f"{v:.2%}" for k, v in spread.items()})

    # Both strategies track the task-induced alignment shifts; the paper's
    # stronger claim (PipeInfer markedly flatter than the erratic
    # baseline) reproduces only partially here because our prompt classes
    # enter solely through the acceptance rate — see EXPERIMENTS.md.
    assert spread["PipeInfer"] < spread["Speculative"] * 1.35
    # PipeInfer stays within striking distance on every prompt class and
    # wins on the best-aligned one at this shallow 4-node pipeline.
    for p, s in zip(series["PipeInfer"], series["Speculative"]):
        assert p > s * 0.75
    # Ordering across prompts follows alignment for both strategies.
    assert series["PipeInfer"][3] == max(series["PipeInfer"])
    assert series["Speculative"][2] == min(series["Speculative"])
