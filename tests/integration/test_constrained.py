"""Constrained-hardware behaviour (paper Figure 7 and Section V-B)."""


from repro import (
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    cluster_a,
    cluster_b,
    cluster_c,
    gpu_testbed,
    get_pair,
    run_engine,
)

JOB = GenerationJob(prompt=tuple(range(100, 228)), n_generate=64)


def be_for(pair, cluster):
    return OracleBackend(pair, head_node=cluster.nodes[0])


class TestSlowInterconnect:
    def test_gige_slower_than_infiniband(self):
        pair = get_pair("dolphin+tinyllama")
        # Same node counts; cluster A also has slower CPUs, so compare the
        # communication-sensitive strategy on identical node types by
        # swapping only the link: use cluster C subset vs a GigE clone.
        from repro.cluster.interconnect import GIGABIT_ETHERNET
        from repro.cluster.topology import Cluster

        fast = cluster_c(8)
        slow = Cluster("C-gige", fast.nodes, GIGABIT_ETHERNET)
        r_fast = run_engine(SpeculativeEngine, be_for(pair, fast), fast, JOB)
        r_slow = run_engine(SpeculativeEngine, be_for(pair, slow), slow, JOB)
        assert r_slow.generation_speed < r_fast.generation_speed

    def test_pipeinfer_more_tolerant_of_slow_links(self):
        """Section I: improvement over speculative inference increases on
        Gigabit Ethernet."""
        pair = get_pair("dolphin+tinyllama")
        from repro.cluster.interconnect import GIGABIT_ETHERNET
        from repro.cluster.topology import Cluster

        fast = cluster_c(8)
        slow = Cluster("C-gige", fast.nodes, GIGABIT_ETHERNET)

        def ratio(cluster):
            rp = run_engine(PipeInferEngine, be_for(pair, cluster), cluster, JOB)
            rs = run_engine(SpeculativeEngine, be_for(pair, cluster), cluster, JOB)
            return rp.generation_speed / rs.generation_speed

        assert ratio(slow) > ratio(fast)


class TestClusterAB:
    def test_cluster_a_runs_all_strategies(self):
        pair = get_pair("dolphin+tinyllama")
        cluster = cluster_a(8)
        for engine in (IterativeEngine, SpeculativeEngine, PipeInferEngine):
            r = run_engine(engine, be_for(pair, cluster), cluster, JOB)
            assert len(r.tokens) == JOB.n_generate

    def test_cluster_a_slower_than_c(self):
        pair = get_pair("dolphin+tinyllama")
        a, c = cluster_a(8), cluster_c(8)
        ra = run_engine(PipeInferEngine, be_for(pair, a), a, JOB)
        rc = run_engine(PipeInferEngine, be_for(pair, c), c, JOB)
        assert ra.generation_speed < rc.generation_speed

    def test_heterogeneous_b_13_nodes(self):
        """The 13-node heterogeneous pipeline works; the slow Optiplexes
        receive smaller layer shares."""
        pair = get_pair("dolphin+tinyllama")
        cluster = cluster_b(13)
        r = run_engine(PipeInferEngine, be_for(pair, cluster), cluster, JOB)
        assert len(r.tokens) == JOB.n_generate

    def test_pipeinfer_ttft_can_beat_iterative_on_slow_clusters(self):
        """Figure 7b: the speculation node shortens the target pipeline, so
        PipeInfer's TTFT is at or below iterative's."""
        pair = get_pair("dolphin+tinyllama")
        cluster = cluster_a(8)
        rp = run_engine(PipeInferEngine, be_for(pair, cluster), cluster, JOB)
        ri = run_engine(IterativeEngine, be_for(pair, cluster), cluster, JOB)
        assert rp.ttft <= ri.ttft * 1.02


class TestGPUTestbed:
    def test_gpu_cluster_runs(self):
        pair = get_pair("senku+tinyllama")
        cluster = gpu_testbed()
        rp = run_engine(PipeInferEngine, be_for(pair, cluster), cluster, JOB)
        rs = run_engine(SpeculativeEngine, be_for(pair, cluster), cluster, JOB)
        assert len(rp.tokens) == JOB.n_generate
        assert rp.generation_speed > 0 and rs.generation_speed > 0

    def test_gpu_much_faster_than_cpu(self):
        pair = get_pair("dolphin+tinyllama")
        gpu = gpu_testbed()
        cpu = cluster_a(4)
        rg = run_engine(PipeInferEngine, be_for(pair, gpu), gpu, JOB)
        rc = run_engine(PipeInferEngine, be_for(pair, cpu), cpu, JOB)
        assert rg.generation_speed > 2 * rc.generation_speed
