"""Multi-replica cluster serving: identity, affinity, and backpressure.

The acceptance bar for the cluster layer:

- a cluster of one is *byte-identical* to direct ``run_serving`` — same
  tokens, same report numbers — because ``run_serving`` is literally a
  K=1 replica now;
- routed outputs never depend on placement: every routing policy yields
  the same per-request tokens (replicas multiplex timing, never output);
- session affinity pins all turns of a session to one replica, routing
  is deterministic for a fixed seed, and backpressure spillover never
  drops a request.
"""

import pytest

from repro import (
    ClusterConfig,
    EngineConfig,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    Workload,
    cluster_c,
    get_pair,
    run_cluster,
    run_serving,
)
from repro.cluster.kernel import StuckSimulationError
from repro.serve import EngineCluster
from repro.workloads import (
    MultiTurnTemplate,
    closed_loop_arrivals,
    multiturn_arrivals,
)

N_REPLICAS = 3


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


def make_parts(pair, k):
    """K distinct (backend, cluster) bundles plus one spare for baselines."""
    clusters = [cluster_c(4) for _ in range(k)]
    backends = [
        OracleBackend(pair, head_node=c.nodes[0]) for c in clusters
    ]
    return backends, clusters


@pytest.fixture(scope="module")
def multiturn_workload(pair):
    tmpl = MultiTurnTemplate(n_turns=3, seed=5)
    n_sessions = 4
    prompts = tmpl.prompts(n_sessions, pair.target_arch.vocab)
    return Workload(
        jobs=tuple(GenerationJob(prompt=p, n_generate=12) for p in prompts),
        arrivals=multiturn_arrivals(
            n_sessions, 3, turn_gap=40.0, session_rate=0.5, seed=9
        ),
        sessions=tmpl.sessions(n_sessions),
    )


@pytest.fixture(scope="module")
def baseline_report(pair, multiturn_workload):
    backends, clusters = make_parts(pair, 1)
    return run_serving(
        PipeInferEngine,
        backends[0],
        clusters[0],
        multiturn_workload,
        config=EngineConfig(prefix_cache=True),
    )


class TestClusterOfOneIdentity:
    @pytest.fixture(scope="class")
    def k1_report(self, pair, multiturn_workload):
        backends, clusters = make_parts(pair, 1)
        return run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            multiturn_workload,
            cluster_config=ClusterConfig(n_replicas=1),
            config=EngineConfig(prefix_cache=True),
        )

    def test_tokens_byte_identical(self, baseline_report, k1_report):
        assert k1_report.outputs() == baseline_report.outputs()

    def test_report_numbers_identical(self, baseline_report, k1_report):
        merged = k1_report.merged
        for f in (
            "makespan", "throughput", "utilization",
            "ttft_p50", "ttft_p95", "ttft_p99",
            "itl_p50", "itl_p95", "itl_p99",
            "queue_wait_p50", "queue_wait_p95", "queue_wait_p99",
            "ttft_mean", "ttft_mean_hit", "ttft_mean_miss",
            "prefix_hit_tokens", "prefix_hit_rate",
            "n_resumes", "n_delivered",
        ):
            assert getattr(merged, f) == getattr(baseline_report, f), f

    def test_histograms_and_cache_stats_identical(
        self, baseline_report, k1_report
    ):
        assert k1_report.merged.fusion_width == baseline_report.fusion_width
        assert (
            k1_report.merged.draft_batch_width
            == baseline_report.draft_batch_width
        )
        assert (
            k1_report.merged.prefix_cache_stats
            == baseline_report.prefix_cache_stats
        )

    def test_per_replica_breakdown_present(self, k1_report):
        assert k1_report.n_replicas == 1
        assert len(k1_report.per_replica) == 1
        assert k1_report.per_replica[0] is not None
        assert k1_report.routed == [k1_report.merged.n_requests]


class TestRoutedOutputInvariance:
    @pytest.mark.parametrize(
        "routing,affinity",
        [
            ("random", "none"),
            ("round_robin", "none"),
            ("prompt_hash", "session"),
            ("least_loaded", "none"),
            ("prefix_affinity", "session"),
        ],
    )
    def test_policy_does_not_change_tokens(
        self, pair, multiturn_workload, baseline_report, routing, affinity
    ):
        backends, clusters = make_parts(pair, N_REPLICAS)
        report = run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            multiturn_workload,
            cluster_config=ClusterConfig(
                n_replicas=N_REPLICAS, routing=routing, affinity=affinity,
                queue_cap=8,
            ),
            config=EngineConfig(prefix_cache=True),
        )
        assert report.outputs() == baseline_report.outputs()
        assert sum(report.routed) == baseline_report.n_requests


class TestSessionAffinity:
    @pytest.fixture(scope="class")
    def affinity_report(self, pair, multiturn_workload):
        backends, clusters = make_parts(pair, N_REPLICAS)
        return run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            multiturn_workload,
            cluster_config=ClusterConfig(
                n_replicas=N_REPLICAS,
                routing="prefix_affinity",
                affinity="session",
            ),
            config=EngineConfig(prefix_cache=True),
        )

    def test_sessions_pinned_to_one_replica(
        self, multiturn_workload, affinity_report
    ):
        sessions = multiturn_workload.sessions
        by_session = {}
        for req_id, replica in affinity_report.assignments.items():
            by_session.setdefault(sessions[req_id], set()).add(replica)
        assert by_session  # tagged traffic reached the router
        for session, replicas in by_session.items():
            assert len(replicas) == 1, f"session {session} split: {replicas}"

    def test_affinity_hits_counted(self, multiturn_workload, affinity_report):
        n_sessions = len(set(multiturn_workload.sessions))
        n_requests = len(multiturn_workload.jobs)
        # Every turn after a session's first lands on the pin.
        assert affinity_report.session_affinity_hits == n_requests - n_sessions


class TestDeterminism:
    def test_same_seed_same_assignments(self, pair, multiturn_workload):
        def run_once():
            backends, clusters = make_parts(pair, N_REPLICAS)
            return run_cluster(
                PipeInferEngine,
                backends,
                clusters,
                multiturn_workload,
                cluster_config=ClusterConfig(
                    n_replicas=N_REPLICAS, routing="random", affinity="none",
                    seed=11,
                ),
                config=EngineConfig(prefix_cache=True),
            )

        a, b = run_once(), run_once()
        assert a.assignments == b.assignments
        assert a.outputs() == b.outputs()
        assert a.merged.ttft_mean == b.merged.ttft_mean


class TestBackpressure:
    def test_spillover_never_drops_requests(self, pair):
        # A burst at t=0 against a cap of 1 forces spills on a static
        # policy (prompt_hash sends everything to one replica).
        prompt = tuple(range(40, 72))
        jobs = tuple(
            GenerationJob(prompt=prompt, n_generate=8) for _ in range(6)
        )
        wl = Workload(jobs=jobs, arrivals=closed_loop_arrivals(len(jobs)))
        backends, clusters = make_parts(pair, N_REPLICAS)
        report = run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            wl,
            cluster_config=ClusterConfig(
                n_replicas=N_REPLICAS,
                routing="prompt_hash",
                affinity="none",
                queue_cap=1,
            ),
            config=EngineConfig(),
        )
        assert report.merged.n_requests == len(jobs)
        assert all(r.n_tokens == 8 for r in report.merged.requests)
        assert report.spills > 0
        assert sum(report.routed) == len(jobs)

    def test_migration_drains_deep_queue(self, pair):
        # Identical prompts hash to one replica; the deep queue is
        # rebalanced at later arrival sync points and counted.
        prompt = tuple(range(80, 112))
        jobs = tuple(
            GenerationJob(prompt=prompt, n_generate=8) for _ in range(6)
        )
        arrivals = tuple(0.5 * i for i in range(6))
        wl = Workload(jobs=jobs, arrivals=arrivals)
        backends, clusters = make_parts(pair, N_REPLICAS)
        report = run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            wl,
            cluster_config=ClusterConfig(
                n_replicas=N_REPLICAS,
                routing="prompt_hash",
                affinity="none",
                queue_cap=1,
                migration=True,
            ),
            config=EngineConfig(),
        )
        assert report.merged.n_requests == len(jobs)
        assert all(r.n_tokens == 8 for r in report.merged.requests)
        assert report.migrations >= 0  # counted on the report
        assert sum(report.routed) == len(jobs)


class TestSparseReplicaRegression:
    def test_single_request_replica_completes(self, pair):
        """Regression: a replica serving one lone request must not hang.

        The head's draft round could finish with no proposals exactly
        while the round's logits were being delivered; parking for the
        next arrival notification then slept forever because the
        delivery had already fired.  Sparse per-replica queues (the
        normal cluster regime) hit this constantly.
        """
        tmpl = MultiTurnTemplate(n_turns=3, seed=5)
        prompts = tmpl.prompts(4, pair.target_arch.vocab)
        # prompts[10] is a known-stuck instance before the fix.
        wl = Workload(
            jobs=(GenerationJob(prompt=prompts[10], n_generate=16),)
        )
        backends, clusters = make_parts(pair, 1)
        try:
            report = run_serving(
                PipeInferEngine, backends[0], clusters[0], wl,
                config=EngineConfig(prefix_cache=True),
            )
        except StuckSimulationError:  # pragma: no cover - the regression
            pytest.fail("lone-request serving deadlocked")
        assert report.token_counts() == {0: 16}


class TestThroughputScaling:
    def test_cluster_beats_single_replica(self, pair):
        jobs = tuple(
            GenerationJob(
                prompt=tuple(range(100 + i, 132 + i)), n_generate=12
            )
            for i in range(9)
        )
        wl = Workload(jobs=jobs, arrivals=closed_loop_arrivals(len(jobs)))
        cfg = EngineConfig()
        backends, clusters = make_parts(pair, 1)
        one = run_serving(PipeInferEngine, backends[0], clusters[0], wl, config=cfg)
        backends, clusters = make_parts(pair, N_REPLICAS)
        many = run_cluster(
            PipeInferEngine,
            backends,
            clusters,
            wl,
            cluster_config=ClusterConfig(
                n_replicas=N_REPLICAS, routing="round_robin", affinity="none"
            ),
            config=cfg,
        )
        assert many.outputs() == one.outputs()
        # Replicas overlap in simulated time: real scaling, not a sum.
        assert many.throughput > 1.5 * one.throughput


class TestEngineClusterSurface:
    def test_serve_populates_replica_list(self, pair, multiturn_workload):
        clusters = [cluster_c(4) for _ in range(2)]
        backends = [OracleBackend(pair, head_node=c.nodes[0]) for c in clusters]
        ec = EngineCluster(
            PipeInferEngine,
            backends,
            clusters,
            cluster_config=ClusterConfig(n_replicas=2, routing="round_robin", affinity="none"),
            config=EngineConfig(prefix_cache=True),
        )
        report = ec.serve(multiturn_workload)
        assert report.n_replicas == 2
        assert sum(report.routed) == len(multiturn_workload.jobs)
        assert [rep is not None for rep in ec.replicas] == [True, True]
