"""The paper's correctness claim (Section IV-E / V-B):

    "We verified that the output of PipeInfer was consistent with the
    output from standard speculative inference, pipeline-parallel
    iterative inference, and single-node inference ... zero deviation."

All four strategies run the *real* tiny transformer through the full
distributed machinery (simulated MPI, transactions, KV multibuffering,
cancellation) and must emit byte-identical greedy output, across draft
alignments from perfect to adversarial and several pipeline depths.
"""

import pytest

from repro import (
    FunctionalBackend,
    GenerationJob,
    IterativeEngine,
    PipeInferEngine,
    SingleNodeEngine,
    SpeculativeEngine,
    cluster_c,
    run_engine,
)
from repro.models.transformer import perturbed_copy
from tests.conftest import PROMPT


@pytest.fixture(scope="module", params=[0.0, 0.15, 0.5])
def noise(request):
    return request.param


@pytest.fixture(scope="module")
def draft_for(tiny_target, noise):
    return perturbed_copy(tiny_target, noise=noise, seed=9)


@pytest.fixture(scope="module")
def ground_truth(tiny_target, draft_for, functional_config_module):
    backend = FunctionalBackend(tiny_target, draft_for, n_cells=512)
    job = GenerationJob(prompt=PROMPT, n_generate=32)
    report = run_engine(
        SingleNodeEngine, backend, cluster_c(1), job, functional_config_module
    )
    return report.tokens


@pytest.fixture(scope="module")
def functional_config_module():
    from repro import EngineConfig
    from repro.spec.draft import DraftParams

    return EngineConfig(
        draft=DraftParams(max_tokens=4, cutoff=0.02),
        cutoff_recovery=0.01,
        cutoff_decay=0.01,
    )


@pytest.mark.parametrize("n_nodes", [2, 3, 4])
@pytest.mark.parametrize(
    "engine", [IterativeEngine, SpeculativeEngine, PipeInferEngine]
)
def test_identical_output(
    tiny_target, draft_for, ground_truth, functional_config_module, engine, n_nodes
):
    backend = FunctionalBackend(tiny_target, draft_for, n_cells=512)
    job = GenerationJob(prompt=PROMPT, n_generate=32)
    report = run_engine(engine, backend, cluster_c(n_nodes), job, functional_config_module)
    assert report.tokens == ground_truth


def test_pipeinfer_equivalence_with_branching_baseline(
    tiny_target, draft_for, ground_truth, functional_config_module
):
    """Tree-branching speculative baseline also preserves output."""
    from repro import EngineConfig
    from repro.spec.draft import DraftParams

    cfg = EngineConfig(
        draft=DraftParams(max_tokens=5, cutoff=0.005, branch_width=2, branch_margin=0.9)
    )
    backend = FunctionalBackend(tiny_target, draft_for, n_cells=512)
    job = GenerationJob(prompt=PROMPT, n_generate=32)
    report = run_engine(SpeculativeEngine, backend, cluster_c(3), job, cfg)
    assert report.tokens == ground_truth


def test_deterministic_across_repetitions(tiny_target, draft_for, functional_config_module):
    backend = FunctionalBackend(tiny_target, draft_for, n_cells=512)
    job = GenerationJob(prompt=PROMPT, n_generate=16)
    a = run_engine(PipeInferEngine, backend, cluster_c(3), job, functional_config_module)
    b = run_engine(PipeInferEngine, backend, cluster_c(3), job, functional_config_module)
    assert a.tokens == b.tokens
    assert a.generation_speed == b.generation_speed
