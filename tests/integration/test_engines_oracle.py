"""Engines over the oracle backend (performance mode).

The oracle target is deterministic under greedy decoding, so every
strategy must produce the same token stream here too — this exercises the
same engine logic as the functional tests but at cluster scale with
analytic costs.
"""

import pytest

from repro import (
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    cluster_a,
    cluster_c,
    get_pair,
    run_engine,
)

JOB = GenerationJob(prompt=tuple(range(100, 164)), n_generate=64)


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


def backend_for(pair, cluster):
    return OracleBackend(pair, head_node=cluster.nodes[0])


class TestTokenConsistency:
    def test_all_strategies_same_tokens(self, pair):
        cluster = cluster_c(4)
        be = backend_for(pair, cluster)
        tokens = {}
        for engine in (IterativeEngine, SpeculativeEngine, PipeInferEngine):
            tokens[engine.name] = run_engine(engine, be, cluster, JOB).tokens
        assert tokens["iterative"] == tokens["speculative"] == tokens["pipeinfer"]

    def test_same_tokens_across_cluster_sizes(self, pair):
        outs = []
        for n in (2, 4, 8):
            cluster = cluster_c(n)
            outs.append(
                run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, JOB).tokens
            )
        assert outs[0] == outs[1] == outs[2]

    def test_tokens_in_vocab(self, pair):
        cluster = cluster_c(4)
        r = run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, JOB)
        assert len(r.tokens) == JOB.n_generate
        assert all(0 <= t < pair.target_arch.vocab for t in r.tokens)


class TestCalibration:
    @pytest.mark.parametrize("key", ["dolphin+tinyllama", "goliath+xwin7b", "falcon+7b"])
    def test_measured_acceptance_near_paper_rate(self, key):
        """Section V-B acceptance rates reproduce within tolerance."""
        pair = get_pair(key)
        cluster = cluster_c(8)
        be = backend_for(pair, cluster)
        job = GenerationJob(prompt=tuple(range(100, 228)), n_generate=192)
        r = run_engine(SpeculativeEngine, be, cluster, job)
        assert r.acceptance_rate == pytest.approx(pair.acceptance, abs=0.08)

    def test_acceptance_ordering_preserved(self):
        """Better-aligned pairs measure higher acceptance."""
        cluster = cluster_c(8)
        rates = {}
        for key in ("goliath+xwin7b", "dolphin+orca2", "dolphin+tinyllama"):
            pair = get_pair(key)
            r = run_engine(
                PipeInferEngine, backend_for(pair, cluster), cluster,
                GenerationJob(prompt=tuple(range(100, 228)), n_generate=128),
            )
            rates[key] = r.acceptance_rate
        assert rates["goliath+xwin7b"] < rates["dolphin+orca2"] < rates["dolphin+tinyllama"]


class TestReports:
    def test_report_fields_populated(self, pair):
        cluster = cluster_c(4)
        r = run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, JOB)
        assert r.generation_speed > 0
        assert 0 < r.ttft < 10
        assert 0 < r.itl < 10
        assert r.mean_node_memory > 1e9
        assert r.stats.dispatched > 0
        assert 0 < r.utilization <= 1

    def test_memory_iterative_below_speculative(self, pair):
        """Iterative holds no draft model (paper's memory analysis)."""
        cluster = cluster_c(4)
        be = backend_for(pair, cluster)
        ri = run_engine(IterativeEngine, be, cluster, JOB)
        rs = run_engine(SpeculativeEngine, be, cluster, JOB)
        rp = run_engine(PipeInferEngine, be, cluster, JOB)
        assert ri.max_node_memory < rs.max_node_memory
        assert rs.max_node_memory == pytest.approx(rp.max_node_memory, rel=0.25)

    def test_per_node_memory_shrinks_with_nodes(self, pair):
        mems = []
        for n in (4, 8, 16):
            cluster = cluster_c(n)
            r = run_engine(IterativeEngine, backend_for(pair, cluster), cluster, JOB)
            mems.append(r.mean_node_memory)
        assert mems[0] > mems[1] > mems[2]


class TestEdgeCases:
    def test_pipeinfer_rejects_single_node(self, pair):
        from repro.cluster.kernel import SimKernel
        from repro.comm.mpi_sim import Network
        from repro.metrics.collectors import MetricsCollector
        from repro.engines.base import EngineConfig

        cluster = cluster_c(1)
        kernel = SimKernel()
        net = Network(kernel, cluster)
        with pytest.raises(ValueError):
            PipeInferEngine(
                backend_for(pair, cluster), net, EngineConfig(), MetricsCollector()
            )

    def test_two_node_pipeinfer_works(self, pair):
        cluster = cluster_c(2)
        r = run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, JOB)
        assert len(r.tokens) == JOB.n_generate

    def test_short_generation(self, pair):
        cluster = cluster_c(4)
        job = GenerationJob(prompt=(1, 2, 3, 4), n_generate=2)
        r = run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, job)
        assert len(r.tokens) == 2

    def test_heterogeneous_cluster_b(self, pair):
        cluster = cluster_a(4)
        r = run_engine(PipeInferEngine, backend_for(pair, cluster), cluster, JOB)
        assert len(r.tokens) == JOB.n_generate
