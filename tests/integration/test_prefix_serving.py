"""Integration: the prefix cache's serving-level win (oracle backend).

The acceptance bar from the benchmark's side, in-suite: on a 50%-shared
workload the cache must deliver *strictly lower mean TTFT* than the same
workload served cache-off — with byte-identical per-request tokens and
hit/TTFT-split metrics populated on the :class:`ServingReport`.  Oracle
mode's prefill time scales with token count (unlike the functional
backend's fixed stage constants), so the TTFT effect shows in simulated
time and is deterministic across hosts.
"""

import pytest

from repro import (
    EngineConfig,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    Workload,
    cluster_c,
    get_pair,
    run_serving,
)
from repro.workloads import SharedPrefixTemplate

N_REQUESTS = 8


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


@pytest.fixture(scope="module")
def cluster():
    return cluster_c(6)


def make_jobs(pair, share_fraction):
    template = SharedPrefixTemplate(
        shared_len=96, unique_len=24, share_fraction=share_fraction, seed=11
    )
    return tuple(
        GenerationJob(prompt=p, n_generate=16)
        for p in template.prompts(N_REQUESTS, pair.target_arch.vocab)
    )


def run(pair, cluster, jobs, prefix_cache):
    backend = OracleBackend(pair, head_node=cluster.nodes[0])
    cfg = EngineConfig(n_seq_partitions=24, prefix_cache=prefix_cache)
    return run_serving(
        PipeInferEngine, backend, cluster,
        Workload(jobs=jobs, max_active=2), cfg,
    )


@pytest.fixture(scope="module")
def half_shared(pair, cluster):
    jobs = make_jobs(pair, share_fraction=0.5)
    off = run(pair, cluster, jobs, prefix_cache=False)
    on = run(pair, cluster, jobs, prefix_cache=True)
    return off, on


class TestHalfSharedWorkload:
    def test_outputs_byte_identical(self, half_shared):
        off, on = half_shared
        assert on.outputs() == off.outputs()

    def test_mean_ttft_strictly_lower(self, half_shared):
        off, on = half_shared
        assert on.ttft_mean < off.ttft_mean
        assert on.ttft_p50 <= off.ttft_p50

    def test_hit_metrics_populated(self, half_shared):
        _, on = half_shared
        assert on.prefix_hit_tokens > 0
        assert 0 < on.prefix_hit_rate < 1
        assert on.ttft_mean_hit > 0
        assert on.ttft_mean_miss > 0
        stats = on.prefix_cache_stats
        assert stats["requests_hit"] > 0
        assert stats["donated_nodes"] > 0
        assert stats["hit_tokens"] == on.prefix_hit_tokens

    def test_per_request_cached_tokens_only_on_sharers(self, half_shared):
        _, on = half_shared
        template = SharedPrefixTemplate(
            shared_len=96, unique_len=24, share_fraction=0.5, seed=11
        )
        for r in on.requests:
            if r.cached_tokens > 0:
                assert template.is_shared(r.req_id)

    def test_cache_off_reports_stay_clean(self, half_shared):
        off, _ = half_shared
        assert off.prefix_hit_tokens == 0
        assert off.prefix_cache_stats == {}
        assert all(r.cached_tokens == 0 for r in off.requests)


class TestFullyShared:
    def test_fully_shared_beats_half_shared_hit_rate(self, pair, cluster,
                                                     half_shared):
        _, half = half_shared
        jobs = make_jobs(pair, share_fraction=1.0)
        on = run(pair, cluster, jobs, prefix_cache=True)
        off = run(pair, cluster, jobs, prefix_cache=False)
        assert on.outputs() == off.outputs()
        assert on.prefix_hit_rate > half.prefix_hit_rate
        # The benchmark's acceptance bar at full sharing: >= 25% mean-TTFT cut.
        assert on.ttft_mean < 0.75 * off.ttft_mean
