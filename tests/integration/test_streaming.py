"""Streaming front-end: byte-identity, sessions, async clients, SLOs.

The acceptance bar for the streaming layer:

- ``stream_serving`` is *field-identical* to ``run_serving`` — streams
  are pure observers, never simulation inputs — and every request's
  streamed token sequence equals its report tokens;
- stream events carry the sim instants verification accepted the tokens
  (first event at prefill end, timestamps monotone, close never before
  the last delivery);
- a :class:`ServingSession` that submits the whole workload and drains
  without cancelling reproduces the batch outputs token for token;
- :class:`AsyncFrontend` clients stream exactly their single-job tokens,
  and an early disconnect cancels the request mid-flight;
- SLO tags flow arrival -> scheduler -> report: goodput equals
  throughput without SLOs and drops below it under impossible ones.
"""

import asyncio
import dataclasses
import math

import pytest

from repro import (
    ClusterConfig,
    EngineConfig,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    cluster_c,
    get_pair,
    run_engine,
    run_serving,
)
from repro.api import AsyncFrontend, ServingSession, stream_serving
from repro.serve import EngineCluster, make_workload
from repro.serve.cluster import Router
from repro.serve.scheduler import Request
from repro.workloads import make_prompt, poisson_arrivals

N_REQUESTS = 6


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


def _jobs(pair, n=N_REQUESTS, n_generate=12):
    vocab = pair.target_arch.vocab
    return [
        GenerationJob(
            prompt=make_prompt("wikitext", length=24 + 4 * i, vocab=vocab),
            n_generate=n_generate,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def slo_workload(pair):
    """Mixed traffic: priorities and (loose) SLO tags on some requests."""
    jobs = _jobs(pair)
    return make_workload(
        jobs,
        arrivals=poisson_arrivals(0.5, len(jobs), seed=3),
        priorities=[0, 2, 0, 1, 0, 0],
        ttft_slos=[None, 50.0, None, 80.0, None, None],
        itl_slos=[None, 5.0, None, None, 2.0, None],
    )


def _parts(pair, n_nodes=4):
    cluster = cluster_c(n_nodes)
    return OracleBackend(pair, head_node=cluster.nodes[0]), cluster


@pytest.fixture(scope="module")
def batch_report(pair, slo_workload):
    backend, cluster = _parts(pair)
    return run_serving(PipeInferEngine, backend, cluster, slo_workload)


@pytest.fixture(scope="module")
def streamed(pair, slo_workload):
    backend, cluster = _parts(pair)
    return stream_serving(PipeInferEngine, backend, cluster, slo_workload)


class TestStreamServingIdentity:
    def test_report_field_identical(self, batch_report, streamed):
        report, _hub = streamed
        for f in dataclasses.fields(type(batch_report)):
            assert getattr(report, f.name) == getattr(batch_report, f.name), (
                f"field {f.name} diverged under streaming"
            )

    def test_streamed_tokens_equal_report(self, batch_report, streamed):
        _report, hub = streamed
        assert hub.outputs() == batch_report.outputs()

    def test_all_streams_finished(self, streamed):
        _report, hub = streamed
        assert len(hub.streams) == N_REQUESTS
        for stream in hub.streams.values():
            assert stream.finished and not stream.cancelled
            assert stream.closed_at is not None

    def test_event_times_monotone_and_bounded(self, streamed):
        report, hub = streamed
        for req in report.requests:
            stream = hub.streams[req.req_id]
            times = [t for t, _ in stream.events]
            assert all(a <= b for a, b in zip(times, times[1:]))
            # First token streams at the prefill-end instant the report
            # records; the stream never closes before its last delivery.
            assert times[0] == req.prefill_end
            assert stream.closed_at >= times[-1]
            assert stream.closed_at <= report.makespan + req.arrival + 1e-9

    def test_slo_tags_surface_on_report(self, streamed, slo_workload):
        report, _hub = streamed
        by_id = {r.req_id: r for r in report.requests}
        for i in range(N_REQUESTS):
            assert by_id[i].priority == slo_workload.priorities[i]
            assert by_id[i].ttft_slo == slo_workload.ttft_slos[i]
            assert by_id[i].itl_slo == slo_workload.itl_slos[i]


def _engine_cluster(pair, k=1, config=None, **cluster_kw):
    clusters = [cluster_c(4) for _ in range(k)]
    backends = [OracleBackend(pair, head_node=c.nodes[0]) for c in clusters]
    return EngineCluster(
        PipeInferEngine,
        backends,
        clusters,
        cluster_config=ClusterConfig(n_replicas=k, **cluster_kw),
        config=config,
    )


def _session(pair, k=1, max_active=None, config=None, **cluster_kw):
    return ServingSession(
        _engine_cluster(pair, k=k, config=config, **cluster_kw),
        max_active=max_active,
    )


class TestServingSession:
    def test_no_disconnect_session_matches_batch(self, pair, slo_workload):
        sess = _session(pair)
        for req in slo_workload.requests():
            sess.submit(
                req.job,
                arrival=req.arrival,
                priority=req.priority,
                ttft_slo=req.ttft_slo,
                itl_slo=req.itl_slo,
            )
        report = sess.report()
        backend, cluster = _parts(pair)
        ref = run_serving(PipeInferEngine, backend, cluster, slo_workload)
        assert sess.outputs() == ref.outputs()
        assert report.outputs() == ref.outputs()
        assert report.merged.throughput == pytest.approx(ref.throughput)
        assert report.merged.goodput == pytest.approx(ref.goodput)

    def test_incremental_step_streams_tokens(self, pair):
        sess = _session(pair)
        job = _jobs(pair, n=1)[0]
        stream = sess.submit(job)
        # Drive purely by stream events: each wait yields at least one
        # fresh token until the budget closes the stream.
        seen = []
        while not stream.closed:
            got = sess.advance_until(stream)
            assert got, "simulation drained with the stream still open"
            seen = stream.tokens
        assert len(seen) == job.n_generate
        report = sess.report()
        assert report.outputs()[0] == seen

    def test_advance_until_time(self, pair):
        sess = _session(pair)
        sess.submit(_jobs(pair, n=1)[0], arrival=0.0)
        assert sess.advance_until(5.0)
        assert sess.now() >= 5.0
        sess.drain()

    def test_submit_clamps_past_arrivals(self, pair):
        sess = _session(pair)
        jobs = _jobs(pair, n=2)
        sess.submit(jobs[0], arrival=4.0)
        late = sess.submit(jobs[1], arrival=1.0)  # already in the past
        assert sess.now() >= 4.0
        sess.drain()
        assert late.finished

    def test_submit_after_drain_rejected(self, pair):
        sess = _session(pair)
        sess.submit(_jobs(pair, n=1)[0])
        sess.drain()
        with pytest.raises(RuntimeError):
            sess.submit(_jobs(pair, n=1)[0])


class TestAsyncFrontend:
    def test_concurrent_clients_stream_exact_tokens(self, pair):
        jobs = _jobs(pair, n=3, n_generate=12)

        async def scenario():
            fe = AsyncFrontend(_engine_cluster(pair))

            async def client(job):
                return [tok async for tok in fe.stream(job)]

            outs = await asyncio.gather(*(client(j) for j in jobs))
            return fe, outs

        fe, outs = asyncio.run(scenario())
        report = fe.report()
        assert [len(o) for o in outs] == [12, 12, 12]
        assert report.merged.n_cancelled == 0
        # Each client's stream equals its solo run: the frontend
        # multiplexes timing, never output.
        for job, out in zip(jobs, outs):
            backend, cluster = _parts(pair)
            solo = run_engine(PipeInferEngine, backend, cluster, job)
            assert out == solo.tokens

    def test_disconnect_cancels_mid_flight(self, pair):
        jobs = _jobs(pair, n=2, n_generate=16)

        async def scenario():
            fe = AsyncFrontend(_engine_cluster(pair))

            async def patient(job):
                return [tok async for tok in fe.stream(job)]

            async def dropper(job):
                got = []
                async for tok in fe.stream(job):
                    got.append(tok)
                    if len(got) == 3:
                        break  # client disconnect
                return got

            outs = await asyncio.gather(patient(jobs[0]), dropper(jobs[1]))
            return fe, outs

        fe, (full, dropped) = asyncio.run(scenario())
        report = fe.report()
        assert len(full) == 16
        assert len(dropped) == 3
        assert report.merged.n_cancelled == 1
        by_id = {r.req_id: r for r in report.merged.requests}
        assert by_id[1].cancelled
        # The survivor still matches its solo tokens.
        backend, cluster = _parts(pair)
        solo = run_engine(PipeInferEngine, backend, cluster, jobs[0])
        assert full == solo.tokens


class TestGoodput:
    def test_no_slo_goodput_equals_throughput(self, pair):
        jobs = _jobs(pair, n=3)
        wl = make_workload(jobs, arrivals=[0.0, 0.5, 1.0])
        backend, cluster = _parts(pair)
        report = run_serving(PipeInferEngine, backend, cluster, wl)
        assert report.slo_attainment == 1.0
        assert report.slo_attainment_p99 == 1.0
        assert report.goodput == pytest.approx(report.throughput)

    def test_impossible_slo_drops_goodput(self, pair):
        jobs = _jobs(pair, n=3)
        wl = make_workload(
            jobs,
            arrivals=[0.0, 0.5, 1.0],
            ttft_slos=[1e-9] * 3,
            itl_slos=[1e-9] * 3,
        )
        backend, cluster = _parts(pair)
        report = run_serving(PipeInferEngine, backend, cluster, wl)
        assert report.slo_attainment < 1.0
        assert report.goodput < report.throughput
        assert report.slo_attainment_p50 < 1.0
        assert report.slo_attainment_p99 <= report.slo_attainment_p50
        # SLO tags only annotate: tokens are unchanged.
        ref = run_serving(
            PipeInferEngine, *_parts(pair), make_workload(jobs, [0.0, 0.5, 1.0])
        )
        assert report.outputs() == ref.outputs()

    def test_priority_admission_order(self, pair):
        jobs = _jobs(pair, n=3)
        wl = make_workload(
            jobs,
            arrivals=[0.0, 0.0, 0.0],
            max_active=1,
            priorities=[0, 0, 5],
        )
        backend, cluster = _parts(pair)
        report = run_serving(PipeInferEngine, backend, cluster, wl)
        by_id = {r.req_id: r for r in report.requests}
        # The priority-5 request is admitted first; the tied pair keeps
        # FCFS submission order.
        assert by_id[2].admitted_at < by_id[0].admitted_at
        assert by_id[0].admitted_at < by_id[1].admitted_at
        # Priority reorders *admission*, never output.
        flat = make_workload(jobs, arrivals=[0.0, 0.0, 0.0], max_active=1)
        ref = run_serving(PipeInferEngine, *_parts(pair), flat)
        assert report.outputs() == ref.outputs()


class _StubReplica:
    def __init__(self, depth):
        self.depth = depth


class TestDeadlineAwareSpill:
    def _req(self, ttft_slo):
        return Request(
            req_id=0,
            job=GenerationJob(prompt=(1, 2, 3, 4), n_generate=4),
            arrival=0.0,
            ttft_slo=ttft_slo,
        )

    def test_spill_prefers_replica_meeting_deadline(self):
        cfg = ClusterConfig(
            n_replicas=3, queue_cap=2, deadline_service_est=10.0
        )
        router = Router(cfg)
        # Choice 0 is at the cap; replica 1 is lighter but still too deep
        # for the 25 s deadline at 10 s/request; replica 2 fits.
        replicas = [_StubReplica(2), _StubReplica(4), _StubReplica(2)]
        # Deadline-blind spill goes least-loaded (0 or 2 -> lowest id).
        assert router._backpressure(self._req(None), 0, replicas) == 0
        # With a deadline, only replicas whose backlog fits qualify.
        got = router._backpressure(self._req(25.0), 0, replicas)
        assert got in (0, 2)
        assert replicas[got].depth * 10.0 <= 25.0

    def test_spill_falls_back_when_no_replica_fits(self):
        cfg = ClusterConfig(
            n_replicas=2, queue_cap=1, deadline_service_est=10.0
        )
        router = Router(cfg)
        replicas = [_StubReplica(5), _StubReplica(3)]
        # No replica can make a 1 s deadline: plain least-loaded, no drop.
        assert router._backpressure(self._req(1.0), 0, replicas) == 1

    def test_under_cap_keeps_choice(self):
        cfg = ClusterConfig(
            n_replicas=2, queue_cap=8, deadline_service_est=10.0
        )
        router = Router(cfg)
        replicas = [_StubReplica(2), _StubReplica(0)]
        assert router._backpressure(self._req(5.0), 0, replicas) == 0

    def test_deadline_service_est_validated(self):
        with pytest.raises(ValueError):
            ClusterConfig(deadline_service_est=0.0)
        with pytest.raises(ValueError):
            ClusterConfig(deadline_service_est=-1.0)


class TestWorkloadSLOValidation:
    def test_length_mismatch_rejected(self, pair):
        jobs = _jobs(pair, n=2)
        with pytest.raises(ValueError):
            make_workload(jobs, arrivals=[0.0, 1.0], priorities=[1])
        with pytest.raises(ValueError):
            make_workload(jobs, arrivals=[0.0, 1.0], ttft_slos=[1.0])

    def test_nonpositive_slo_rejected(self, pair):
        jobs = _jobs(pair, n=1)
        with pytest.raises(ValueError):
            make_workload(jobs, arrivals=[0.0], ttft_slos=[0.0])
        with pytest.raises(ValueError):
            make_workload(jobs, arrivals=[0.0], itl_slos=[-1.0])

    def test_goodput_is_finite(self, batch_report):
        assert math.isfinite(batch_report.goodput)
        assert 0.0 <= batch_report.slo_attainment <= 1.0
