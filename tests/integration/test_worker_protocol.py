"""Worker-process protocol behaviour, driven by a hand-written head."""


from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.testbed import cluster_c
from repro.comm.message import Tag
from repro.comm.mpi_sim import Network
from repro.comm.payloads import (
    Activations,
    CacheOp,
    CacheOpKind,
    CancelMsg,
    DecodeMeta,
    ShutdownMsg,
    TokenSlot,
)
from repro.comm.transactions import TransactionType, send_transaction
from repro.engines.backend import OracleBackend
from repro.engines.worker import pipeline_worker
from repro.metrics.collectors import MetricsCollector
from repro.models.zoo import get_pair


def setup_worker(n_nodes=2):
    kernel = SimKernel()
    cluster = cluster_c(n_nodes)
    net = Network(kernel, cluster)
    backend = OracleBackend(get_pair("dolphin+tinyllama"), head_node=cluster.nodes[0])
    metrics = MetricsCollector()
    ws = backend.make_worker_state(1, (0, backend.n_target_layers), True, True)
    proc = kernel.spawn(
        pipeline_worker(
            net=net, rank=1, upstream=0, downstream=None, head_rank=0,
            backend=backend, ws=ws, node=cluster.nodes[1], metrics=metrics,
        ),
        name="worker-1",
    )
    return kernel, net, backend, metrics, ws, proc


def decode_pieces(backend, run_id, tokens, start, seq, is_spec, chain_tokens):
    slots = [
        TokenSlot(t, start + i, (seq,), want_logits=True)
        for i, t in enumerate(tokens)
    ]
    chain = backend.new_chain(chain_tokens)
    states = backend.slot_states(chain, start, len(tokens))
    meta = DecodeMeta(run_id, slots, is_spec, oracle_states=states)
    meta.nbytes = backend.meta_nbytes(len(tokens))
    act = Activations(run_id, 4.0 * len(tokens), None)
    return [(meta, meta.nbytes), (act, act.nbytes)]


def test_worker_returns_logits_then_shuts_down():
    kernel, net, backend, metrics, ws, proc = setup_worker()
    got = []

    def head():
        ep = net.endpoint(0)
        chain_tokens = [1, 2, 3]
        send_transaction(ep, 1, TransactionType.DECODE,
                         decode_pieces(backend, 7, [3], 2, 0, False, chain_tokens))
        msg = yield from ep.recv(1, Tag.LOGITS)
        got.append(msg.payload)
        send_transaction(ep, 1, TransactionType.SHUTDOWN, [(ShutdownMsg(), 8.0)],
                         eager=True)

    h = kernel.spawn(head(), name="head")
    run_to_completion(kernel, [proc, h])
    assert got[0].run_id == 7 and not got[0].cancelled
    assert len(got[0].logits) == 1
    # The worker's metadata cache recorded the decoded cell.
    assert ws.cache.has_entry(0, 2)


def test_cancel_before_decode_skips_speculative_run():
    kernel, net, backend, metrics, ws, proc = setup_worker()
    got = []

    def head():
        ep = net.endpoint(0)
        from repro.cluster.kernel import Delay

        ep.send(CancelMsg(9), 1, Tag.CANCEL, nbytes=16.0, eager=True)
        yield Delay(0.01)  # let the cancel land first
        # The chain includes the drafted tokens, as on the real head.
        send_transaction(ep, 1, TransactionType.DECODE,
                         decode_pieces(backend, 9, [5, 6], 3, 2, True, [1, 2, 3, 5, 6]))
        msg = yield from ep.recv(1, Tag.LOGITS)
        got.append(msg.payload)
        send_transaction(ep, 1, TransactionType.SHUTDOWN, [(ShutdownMsg(), 8.0)],
                         eager=True)

    h = kernel.spawn(head(), name="head")
    run_to_completion(kernel, [proc, h])
    assert got[0].cancelled
    assert metrics.stats.worker_layer_evals_skipped > 0
    # Skipped runs write no cells.
    assert not ws.cache.has_entry(2, 3)


def test_cancel_never_skips_canonical_run():
    """Non-speculative runs evaluate fully even when cancelled (IV-D3)."""
    kernel, net, backend, metrics, ws, proc = setup_worker()
    got = []

    def head():
        ep = net.endpoint(0)
        from repro.cluster.kernel import Delay

        ep.send(CancelMsg(4), 1, Tag.CANCEL, nbytes=16.0, eager=True)
        yield Delay(0.01)
        send_transaction(ep, 1, TransactionType.DECODE,
                         decode_pieces(backend, 4, [3], 2, 0, False, [1, 2, 3]))
        msg = yield from ep.recv(1, Tag.LOGITS)
        got.append(msg.payload)
        send_transaction(ep, 1, TransactionType.SHUTDOWN, [(ShutdownMsg(), 8.0)],
                         eager=True)

    h = kernel.spawn(head(), name="head")
    run_to_completion(kernel, [proc, h])
    assert not got[0].cancelled  # evaluated in full
    assert ws.cache.has_entry(0, 2)


def test_cache_op_transaction_applied():
    kernel, net, backend, metrics, ws, proc = setup_worker()

    def head():
        ep = net.endpoint(0)
        send_transaction(ep, 1, TransactionType.DECODE,
                         decode_pieces(backend, 1, [3], 2, 0, False, [1, 2, 3]))
        ops = [CacheOp(CacheOpKind.SEQ_CP, 0, 5, 0, 10)]
        send_transaction(ep, 1, TransactionType.CACHE_OP,
                         [(ops, 32.0)], eager=True)
        yield from ep.recv(1, Tag.LOGITS)
        send_transaction(ep, 1, TransactionType.SHUTDOWN, [(ShutdownMsg(), 8.0)],
                         eager=True)

    h = kernel.spawn(head(), name="head")
    run_to_completion(kernel, [proc, h])
    assert ws.cache.has_entry(5, 2)  # copied from seq 0 into seq 5
