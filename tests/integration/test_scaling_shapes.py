"""The evaluation's qualitative shapes (paper Figures 4-6).

Absolute numbers are cost-model dependent; these tests pin the *shape*
claims: who wins, how strategies scale with node count, and the latency
relationships.
"""

import pytest

from repro import (
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    cluster_c,
    get_pair,
    run_engine,
)

JOB = GenerationJob(prompt=tuple(range(100, 228)), n_generate=96)


@pytest.fixture(scope="module")
def sweep():
    """Run the three strategies over 4/8/16 nodes once for the module."""
    pair = get_pair("dolphin+tinyllama")
    out = {}
    for n in (4, 8, 16):
        cluster = cluster_c(n)
        be = OracleBackend(pair, head_node=cluster.nodes[0])
        out[n] = {
            "iter": run_engine(IterativeEngine, be, cluster, JOB),
            "spec": run_engine(SpeculativeEngine, be, cluster, JOB),
            "pipe": run_engine(PipeInferEngine, be, cluster, JOB),
        }
    return out


class TestGenerationSpeed:
    def test_pipeinfer_beats_speculative_at_depth(self, sweep):
        """Figure 4a: PipeInfer exceeds speculative inference at 8+ nodes."""
        for n in (8, 16):
            assert sweep[n]["pipe"].generation_speed > sweep[n]["spec"].generation_speed

    def test_speculative_beats_iterative(self, sweep):
        for n in (4, 8, 16):
            assert sweep[n]["spec"].generation_speed > sweep[n]["iter"].generation_speed

    def test_iterative_roughly_flat(self, sweep):
        """Adding nodes neither helps nor badly hurts iterative decoding."""
        speeds = [sweep[n]["iter"].generation_speed for n in (4, 8, 16)]
        assert max(speeds) / min(speeds) < 1.35

    def test_speculative_does_not_scale_up(self, sweep):
        """The sync baseline gains nothing from more nodes (paper: flat to
        declining as pipelined drafting costs grow)."""
        assert sweep[16]["spec"].generation_speed <= sweep[4]["spec"].generation_speed * 1.05

    def test_pipeinfer_gains_from_depth(self, sweep):
        """Continuous speculation fills deeper pipelines (4 -> 8 nodes)."""
        assert sweep[8]["pipe"].generation_speed > 1.1 * sweep[4]["pipe"].generation_speed

    def test_improvement_factor_in_paper_band(self, sweep):
        """Paper reports 1.5-2.15x over speculative inference; allow a
        generous band around it at depth."""
        ratio = sweep[16]["pipe"].generation_speed / sweep[16]["spec"].generation_speed
        assert 1.2 < ratio < 3.0


class TestTTFT:
    def test_pipeinfer_near_parity_with_iterative(self, sweep):
        """Figure 5: asynchronous speculation reaches TTFT parity."""
        for n in (4, 8, 16):
            assert sweep[n]["pipe"].ttft <= 1.10 * sweep[n]["iter"].ttft

    def test_speculative_ttft_elevated(self, sweep):
        """The sync baseline waits for the speculative tree first."""
        for n in (4, 8, 16):
            assert sweep[n]["spec"].ttft > 1.5 * sweep[n]["iter"].ttft

    def test_speculative_ttft_grows_with_nodes(self, sweep):
        assert sweep[16]["spec"].ttft > sweep[4]["spec"].ttft


class TestITL:
    def test_itl_tracks_inverse_speed(self, sweep):
        """Figure 6: ITL follows generation speed ('verifying the
        correctness of our results')."""
        for n in (4, 8, 16):
            for s in ("iter", "spec", "pipe"):
                r = sweep[n][s]
                assert r.itl == pytest.approx(1.0 / r.generation_speed, rel=0.15)

    def test_pipeinfer_lowest_itl(self, sweep):
        assert sweep[8]["pipe"].itl < sweep[8]["spec"].itl < sweep[8]["iter"].itl


class TestUtilization:
    def test_pipeinfer_utilization_exceeds_speculative(self, sweep):
        """Section I: system utilization roughly doubles."""
        assert (
            sweep[8]["pipe"].utilization > 1.3 * sweep[8]["spec"].utilization
        )
