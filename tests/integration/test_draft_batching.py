"""Cross-request draft batching and burst dispatch: engine-level invariants.

The draft scheduler and transaction bursts must be pure scheduling
optimizations: served outputs are token-identical with batching disabled
(``max_draft_batch=1``) and with burst dispatch disabled
(``burst_dispatch=False``); logits return in dispatch order (the FIFO
discipline the serving head relies on); and under steady serving load the
scheduler must actually batch (draft width > 1) and widen the workers'
fusion windows past the historical cap of 2.
"""


from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    PipeInferEngine,
    Workload,
    cluster_c,
    run_engine,
)
from repro.engines.backend import OracleBackend
from repro.models.zoo import get_pair
from repro.serve.run import run_serving
from repro.spec.draft import DraftParams
from repro.workloads import make_prompt
from tests.conftest import PROMPT


def functional_cfg(**overrides) -> EngineConfig:
    base = {
        "draft": DraftParams(max_tokens=4, cutoff=0.02),
        "cutoff_recovery": 0.01,
        "cutoff_decay": 0.01,
        "n_seq_partitions": 24,
    }
    base.update(overrides)
    return EngineConfig(**base)


def steady_workload(n_requests=6, n_generate=16, vocab=128):
    """Closed-loop (all requests queued at t=0): the steady-state serving
    regime where cross-request draft batching has material to work with."""
    kinds = ("wikitext", "code", "explain", "paper", "roleplay")
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(kinds[i % len(kinds)], length=24, vocab=vocab),
            n_generate=n_generate,
        )
        for i in range(n_requests)
    )
    return Workload(jobs=jobs)


class TestDraftBatchEquivalence:
    def test_serving_outputs_invariant_under_draft_batching(
        self, tiny_target, tiny_draft
    ):
        """max_draft_batch=1 (sequential drafting) and unbounded batching
        must serve token-identical outputs for every request."""
        workload = steady_workload()
        reports = {}
        for cap in (1, 8):
            backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
            reports[cap] = run_serving(
                PipeInferEngine, backend, cluster_c(4), workload,
                functional_cfg(max_draft_batch=cap),
            )
        assert reports[8].outputs() == reports[1].outputs()
        assert all(w == 1 for w in reports[1].draft_batch_width)
        assert max(reports[8].draft_batch_width) > 1

    def test_serving_outputs_invariant_under_burst_dispatch(
        self, tiny_target, tiny_draft
    ):
        workload = steady_workload()
        reports = {}
        for burst in (False, True):
            backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
            reports[burst] = run_serving(
                PipeInferEngine, backend, cluster_c(4), workload,
                functional_cfg(burst_dispatch=burst),
            )
        assert reports[True].outputs() == reports[False].outputs()

    def test_single_job_invariant_under_burst_dispatch(self, functional_backend):
        job = GenerationJob(prompt=PROMPT, n_generate=24)
        tokens = {}
        for burst in (False, True):
            report = run_engine(
                PipeInferEngine, functional_backend, cluster_c(4), job,
                functional_cfg(burst_dispatch=burst),
            )
            tokens[burst] = report.tokens
        assert tokens[True] == tokens[False]

    def test_oracle_serving_invariant_under_draft_batching(self):
        """The default (sequential) propose_multi drives oracle serving
        through the same scheduler; outputs must not depend on the cap."""
        cluster = cluster_c(3)
        pair = get_pair("dolphin+tinyllama")
        workload = steady_workload(vocab=pair.target_arch.vocab, n_generate=12)
        outputs = {}
        for cap in (1, 8):
            backend = OracleBackend(pair, head_node=cluster.nodes[0])
            report = run_serving(
                PipeInferEngine, backend, cluster, workload,
                EngineConfig(max_draft_batch=cap),
            )
            outputs[cap] = report.outputs()
        assert outputs[8] == outputs[1]


class TestDraftBatchWidths:
    def test_steady_load_batches_and_widens_fusion(self, tiny_target, tiny_draft):
        backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
        report = run_serving(
            PipeInferEngine, backend, cluster_c(4), steady_workload(),
            functional_cfg(),
        )
        assert max(report.draft_batch_width) > 1, (
            f"no batched draft passes under steady load: "
            f"{report.draft_batch_width}"
        )
        assert max(report.fusion_width) > 2, (
            f"burst dispatch failed to widen fusion windows past 2: "
            f"{report.fusion_width}"
        )
        # Every dispatched run still completes exactly once.
        assert report.stats.completed == report.stats.dispatched

    def test_mid_stream_completion_releases_draft_plane(
        self, tiny_target, tiny_draft
    ):
        """Requests finishing mid-stream (mid-batch cancellation at the
        scheduler level) release their plane binding; the remaining
        requests keep drafting and serve their full budgets."""
        backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
        kinds = ("wikitext", "code", "explain")
        jobs = tuple(
            GenerationJob(
                prompt=make_prompt(kinds[i % len(kinds)], length=24, vocab=128),
                n_generate=4 + 12 * i,  # staggered completions
            )
            for i in range(4)
        )
        report = run_serving(
            PipeInferEngine, backend, cluster_c(4), Workload(jobs=jobs),
            functional_cfg(),
        )
        assert report.token_counts() == {i: 4 + 12 * i for i in range(4)}
        plane = backend._draft_plane
        assert plane is not None and not plane.tokens, (
            "finished requests must release their draft-plane sequences"
        )

    def test_dispatch_order_matches_logits_order(self, tiny_target, tiny_draft):
        """Burst-dispatched runs complete in dispatch order: the serving
        head would desync (and raise) otherwise, so a clean full-budget
        run is itself the assertion; double-check via run accounting."""
        backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
        report = run_serving(
            PipeInferEngine, backend, cluster_c(4), steady_workload(),
            functional_cfg(max_fused_runs=3),  # bursts span several FUSED chunks
        )
        assert report.stats.completed == report.stats.dispatched
        assert all(r.n_tokens == 16 for r in report.requests)
