"""Batched-inbox equivalence suite: the hand-off is pure mechanism.

PR 8's batched inbox hand-off coalesces a link's same-instant delivery
batch into one enqueue plus one resume per parked receiver, instead of
one kernel event and one resume per message.  That must be a pure
*mechanical* change: with ``EngineConfig.batched_inbox`` on or off, a
serving run must produce byte-identical tokens per request AND consume
every message in the identical order (same ``(rank, src, tag, seq)``
sequence, captured via ``Network.trace``).

The fault-plane variant is the risky path: retransmit watchdogs and ack
returns interleave with data deliveries, and loss + jitter break up the
same-instant batches the coalesced link would otherwise form.  The
equivalence must hold there too, including with a mid-stream crash.
"""

import pytest

from repro import (
    EngineConfig,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    Workload,
    get_pair,
    run_serving,
)
from repro.workloads import (
    cloud_edge_arrivals,
    cloud_edge_cluster,
    cloud_edge_fault_plan,
    cloud_edge_prompts,
)

N_CLOUD, N_EDGE = 2, 2
N_REQ = 4


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


@pytest.fixture(scope="module")
def workload(pair):
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=12)
        for p in cloud_edge_prompts(N_REQ, pair.target_arch.vocab, length=32)
    )
    return Workload(jobs=jobs, arrivals=cloud_edge_arrivals(N_REQ, seed=13))


def serve_traced(pair, workload, batched, plan=None):
    """One serving run with the consumption-order trace armed."""
    backend = OracleBackend(pair, head_node=cloud_edge_cluster().nodes[0])
    cfg = EngineConfig(n_seq_partitions=24, batched_inbox=batched)
    trace = []
    report = run_serving(
        PipeInferEngine,
        backend,
        cloud_edge_cluster(N_CLOUD, N_EDGE),
        workload,
        cfg,
        fault_plan=plan,
        trace=trace,
    )
    return report, trace


def test_knob_defaults_on():
    assert EngineConfig().batched_inbox is True


def test_fault_free_equivalence(pair, workload):
    """Tokens and consumption order identical with the hand-off on vs off."""
    on, trace_on = serve_traced(pair, workload, batched=True)
    off, trace_off = serve_traced(pair, workload, batched=False)
    assert on.outputs() == off.outputs(), (
        "batched inbox changed served tokens — must be a pure mechanism"
    )
    assert trace_on == trace_off, (
        "batched inbox changed message consumption order: first divergence "
        f"at index {next(i for i, (a, b) in enumerate(zip(trace_on, trace_off)) if a != b) if trace_on != trace_off else '?'}"
    )
    assert len(trace_on) > 0, "trace captured nothing — the suite is vacuous"


@pytest.mark.parametrize("seed", [11, 29])
def test_equivalence_under_loss_and_jitter(pair, workload, seed):
    """The risky path: retransmit/ack interleaving under WAN loss + jitter."""
    plan = cloud_edge_fault_plan(
        seed=seed, n_cloud=N_CLOUD, n_edge=N_EDGE, loss_rate=0.05
    )
    on, trace_on = serve_traced(pair, workload, batched=True, plan=plan)
    off, trace_off = serve_traced(pair, workload, batched=False, plan=plan)
    assert on.outputs() == off.outputs()
    assert trace_on == trace_off
    # The plan must actually have exercised the recovery machinery, or
    # this proves nothing about the ack/retransmit interleaving.
    assert on.stats.retransmits > 0, "fault plan produced no retransmits"
    assert on.stats.retransmits == off.stats.retransmits


def test_equivalence_under_crash_recovery(pair, workload):
    """Loss + jitter + a mid-stream worker crash: the full fault plane."""
    plan = cloud_edge_fault_plan(
        seed=7, n_cloud=N_CLOUD, n_edge=N_EDGE, loss_rate=0.05,
        crash_rank=2, crash_at=1.0,
    )
    on, trace_on = serve_traced(pair, workload, batched=True, plan=plan)
    off, trace_off = serve_traced(pair, workload, batched=False, plan=plan)
    assert on.outputs() == off.outputs()
    assert trace_on == trace_off
    assert on.stats.worker_restarts >= 1, "crash plan produced no restart"
