"""Feature ablations (paper Figure 8) and cancellation behaviour."""

import pytest

from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    cluster_c,
    get_pair,
    run_engine,
)
from repro.models.transformer import perturbed_copy
from repro.spec.draft import DraftParams
from tests.conftest import PROMPT

JOB = GenerationJob(prompt=tuple(range(100, 228)), n_generate=96)


@pytest.fixture(scope="module")
def ablation_runs():
    """Full PipeInfer vs the two Figure-8 ablations on 8 nodes."""
    pair = get_pair("dolphin+tinyllama")
    cluster = cluster_c(8)
    be = OracleBackend(pair, head_node=cluster.nodes[0])
    full = run_engine(PipeInferEngine, be, cluster, JOB)
    no_cancel = run_engine(
        PipeInferEngine, be, cluster, JOB,
        EngineConfig().ablated(enable_cancellation=False),
    )
    no_continuous = run_engine(
        PipeInferEngine, be, cluster, JOB,
        EngineConfig().ablated(enable_continuous=False, microbatch_size=8),
    )
    return full, no_cancel, no_continuous


class TestFigure8Shapes:
    def test_cancellation_ablation_slower(self, ablation_runs):
        full, no_cancel, _ = ablation_runs
        assert no_cancel.generation_speed < full.generation_speed

    def test_continuous_ablation_severely_slower(self, ablation_runs):
        """'Removing continuous speculation ... caused severe performance
        degradation for the Dolphin and Goliath models.'"""
        full, _, no_continuous = ablation_runs
        assert no_continuous.generation_speed < 0.8 * full.generation_speed

    def test_itl_degrades_with_ablations(self, ablation_runs):
        full, no_cancel, no_continuous = ablation_runs
        assert no_cancel.itl > full.itl
        assert no_continuous.itl > full.itl

    def test_no_cancel_sends_no_signals(self, ablation_runs):
        _, no_cancel, _ = ablation_runs
        assert no_cancel.stats.cancel_signals_sent == 0
        assert no_cancel.stats.worker_layer_evals_skipped == 0

    def test_full_flushes_work(self, ablation_runs):
        full, _, _ = ablation_runs
        assert full.stats.cancel_signals_sent > 0
        assert full.stats.worker_layer_evals_skipped > 0

    def test_no_continuous_dispatches_fewer_spec_runs(self, ablation_runs):
        """Async-only mode keeps at most one (larger) speculative run in
        flight, so far fewer speculative runs are dispatched than under
        continuous micro-batching."""
        full, _, no_continuous = ablation_runs
        assert no_continuous.stats.speculative < 0.6 * full.stats.speculative
        # At most one spec run per canonical cycle: invalidations can only
        # come from canonical-run divergence, never chained predecessors.
        assert no_continuous.stats.cancelled_invalid <= no_continuous.stats.speculative


class TestCancellationCorrectness:
    def test_output_identical_with_and_without_cancellation(self, tiny_target):
        """Cancellation is a pure optimization: the token stream must not
        change (Section IV-E)."""
        draft = perturbed_copy(tiny_target, noise=0.3, seed=9)
        job = GenerationJob(prompt=PROMPT, n_generate=32)
        base_cfg = EngineConfig(
            draft=DraftParams(max_tokens=4, cutoff=0.02),
            cutoff_recovery=0.01, cutoff_decay=0.01,
        )
        outs = []
        for flag in (True, False):
            be = FunctionalBackend(tiny_target, draft, n_cells=512)
            r = run_engine(
                PipeInferEngine, be, cluster_c(3), job,
                base_cfg.ablated(enable_cancellation=flag),
            )
            outs.append(r.tokens)
        assert outs[0] == outs[1]

    def test_cancellation_skips_worker_evals(self):
        pair = get_pair("goliath+xwin7b")  # low alignment: many cancels
        cluster = cluster_c(8)
        be = OracleBackend(pair, head_node=cluster.nodes[0])
        r = run_engine(PipeInferEngine, be, cluster, JOB)
        assert r.stats.cancelled_invalid > 0
        assert r.stats.worker_layer_evals_skipped > 0

    def test_low_alignment_benefits_more_from_cancellation(self):
        """Section I: 'greater speedups ... for poorly aligned models
        thanks to early inference cancellation.'"""

        def gain(key):
            pair = get_pair(key)
            cluster = cluster_c(8)
            be = OracleBackend(pair, head_node=cluster.nodes[0])
            with_c = run_engine(PipeInferEngine, be, cluster, JOB)
            without = run_engine(
                PipeInferEngine, be, cluster, JOB,
                EngineConfig().ablated(enable_cancellation=False),
            )
            return with_c.generation_speed / without.generation_speed

        assert gain("goliath+xwin7b") >= gain("dolphin+tinyllama") - 0.02


class TestMicrobatchAblation:
    def test_microbatch_sizes_run(self):
        """Micro-batch sizes 1-4 (IV-B1) all work; speed stays in a sane
        band (the paper's preferred sizes)."""
        pair = get_pair("dolphin+tinyllama")
        cluster = cluster_c(8)
        be = OracleBackend(pair, head_node=cluster.nodes[0])
        speeds = {}
        for mb in (1, 2, 4):
            r = run_engine(
                PipeInferEngine, be, cluster, JOB,
                EngineConfig().ablated(microbatch_size=mb),
            )
            speeds[mb] = r.generation_speed
        assert all(s > 0 for s in speeds.values())
        assert speeds[4] >= speeds[1] * 0.8
