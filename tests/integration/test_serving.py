"""Multi-request serving: correctness and throughput.

The acceptance bar for the serving layer:

- every request served concurrently produces *exactly* the tokens its
  single-job run produces (the scheduler multiplexes timing, never
  output);
- concurrency beats sequential one-at-a-time execution on the same
  cluster (speculation bubbles of one request are filled by another's
  runs);
- the aggregate :class:`ServingReport` exposes TTFT/ITL/queue-wait
  percentiles and per-request token counts.
"""

import math

import pytest

from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    IterativeEngine,
    OracleBackend,
    PipeInferEngine,
    SpeculativeEngine,
    Workload,
    cluster_c,
    get_pair,
    run_engine,
    run_serving,
)
from repro.models.transformer import perturbed_copy
from repro.workloads import closed_loop_arrivals, make_prompt, poisson_arrivals
from tests.conftest import PROMPT

N_REQUESTS = 8


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


@pytest.fixture(scope="module")
def cluster():
    return cluster_c(6)


@pytest.fixture(scope="module")
def oracle_backend(pair, cluster):
    return OracleBackend(pair, head_node=cluster.nodes[0])


@pytest.fixture(scope="module")
def jobs(pair):
    kinds = ("wikitext", "code", "explain", "paper", "roleplay", "story",
             "wikitext", "code")
    return tuple(
        GenerationJob(
            prompt=make_prompt(k, length=24 + 4 * i, vocab=pair.target_arch.vocab),
            n_generate=24,
        )
        for i, k in enumerate(kinds[:N_REQUESTS])
    )


@pytest.fixture(scope="module")
def serving_report(oracle_backend, cluster, jobs):
    workload = Workload(
        jobs=jobs, arrivals=poisson_arrivals(rate=2.0, n=len(jobs), seed=3)
    )
    return run_serving(PipeInferEngine, oracle_backend, cluster, workload)


class TestConcurrentCorrectness:
    def test_eight_concurrent_requests_complete(self, serving_report):
        assert serving_report.n_requests == N_REQUESTS
        assert all(r.n_tokens == 24 for r in serving_report.requests)

    def test_outputs_match_single_job_token_for_token(
        self, serving_report, oracle_backend, cluster, jobs
    ):
        served = serving_report.outputs()
        for i, job in enumerate(jobs):
            single = run_engine(PipeInferEngine, oracle_backend, cluster, job)
            assert served[i] == single.tokens, f"request {i} diverged"

    def test_requests_actually_overlap(self, serving_report):
        """At least two requests must have been in flight simultaneously."""
        spans = [
            (r.admitted_at, r.finish_time) for r in serving_report.requests
        ]
        overlaps = sum(
            1
            for i, (a0, a1) in enumerate(spans)
            for b0, b1 in spans[i + 1:]
            if a0 < b1 and b0 < a1
        )
        assert overlaps > 0


class TestThroughput:
    def test_concurrency_beats_sequential(self, oracle_backend, cluster, jobs):
        closed = closed_loop_arrivals(len(jobs))
        sequential = run_serving(
            PipeInferEngine, oracle_backend, cluster,
            Workload(jobs=jobs, arrivals=closed, max_active=1),
        )
        concurrent = run_serving(
            PipeInferEngine, oracle_backend, cluster,
            Workload(jobs=jobs, arrivals=closed),
        )
        # Same outputs either way; better aggregate throughput concurrent.
        assert concurrent.outputs() == sequential.outputs()
        assert concurrent.throughput > sequential.throughput
        assert concurrent.makespan < sequential.makespan


class TestServingReport:
    def test_percentile_fields(self, serving_report):
        r = serving_report
        assert 0 <= r.ttft_p50 <= r.ttft_p95 <= r.ttft_p99
        assert 0 <= r.itl_p50 <= r.itl_p95 <= r.itl_p99
        assert 0 <= r.queue_wait_p50 <= r.queue_wait_p95 <= r.queue_wait_p99
        assert all(map(math.isfinite, (r.ttft_p99, r.itl_p99, r.queue_wait_p99)))

    def test_token_counts_and_throughput(self, serving_report):
        counts = serving_report.token_counts()
        assert counts == {i: 24 for i in range(N_REQUESTS)}
        assert serving_report.throughput > 0
        assert serving_report.makespan > 0

    def test_request_timelines_ordered(self, serving_report):
        for r in serving_report.requests:
            assert r.arrival <= r.admitted_at <= r.prefill_end <= r.finish_time
            assert r.queue_wait >= 0
            assert r.ttft >= 0


class TestSequentialBaselines:
    @pytest.mark.parametrize("engine", [SpeculativeEngine, IterativeEngine])
    def test_baseline_serving_matches_single_job(
        self, engine, oracle_backend, cluster, jobs
    ):
        workload = Workload(jobs=jobs[:3])
        report = run_serving(engine, oracle_backend, cluster, workload)
        for i, job in enumerate(jobs[:3]):
            single = run_engine(engine, oracle_backend, cluster, job)
            assert report.outputs()[i] == single.tokens

    def test_run_engine_accepts_workload(self, oracle_backend, cluster, jobs):
        """The backward-compatible entry point dispatches on input type."""
        report = run_engine(
            PipeInferEngine, oracle_backend, cluster, Workload(jobs=jobs[:2])
        )
        assert report.n_requests == 2


class TestFunctionalServing:
    """Real tiny-transformer math: KV partitioning across requests."""

    def test_outputs_match_single_job(self, tiny_target):
        from repro.spec.draft import DraftParams

        draft = perturbed_copy(tiny_target, noise=0.15, seed=9)
        cfg = EngineConfig(
            draft=DraftParams(max_tokens=4, cutoff=0.02),
            cutoff_recovery=0.01,
            cutoff_decay=0.01,
        )
        jobs = tuple(
            GenerationJob(prompt=tuple(p + i for p in PROMPT), n_generate=12)
            for i in range(3)
        )
        backend = FunctionalBackend(tiny_target, draft, n_cells=2048)
        report = run_serving(
            PipeInferEngine, backend, cluster_c(3), Workload(jobs=jobs), cfg
        )
        for i, job in enumerate(jobs):
            single = run_engine(
                PipeInferEngine,
                FunctionalBackend(tiny_target, draft, n_cells=2048),
                cluster_c(3),
                job,
                cfg,
            )
            assert report.outputs()[i] == single.tokens, f"request {i} diverged"

    def test_bounded_cache_throttles_admission(self, tiny_target):
        """A workload exceeding the KV cell budget queues instead of
        overflowing the fixed-capacity functional cache mid-flight."""
        from repro.spec.draft import DraftParams

        draft = perturbed_copy(tiny_target, noise=0.15, seed=9)
        cfg = EngineConfig(
            draft=DraftParams(max_tokens=4, cutoff=0.02),
            cutoff_recovery=0.01,
            cutoff_decay=0.01,
            n_seq_partitions=12,
        )
        jobs = tuple(
            GenerationJob(prompt=tuple(p + i for p in PROMPT), n_generate=20)
            for i in range(8)
        )
        # 8 concurrent requests would need ~400 cells; 128 forces queueing.
        backend = FunctionalBackend(tiny_target, draft, n_cells=128)
        report = run_serving(
            PipeInferEngine, backend, cluster_c(3), Workload(jobs=jobs), cfg
        )
        assert report.token_counts() == {i: 20 for i in range(8)}
        waited = [r for r in report.requests if r.queue_wait > 0]
        assert waited, "cell budget should have delayed some admissions"
