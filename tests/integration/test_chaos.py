"""Chaos suite: seeded faults must never change what gets served.

The acceptance bar for the fault plane, asserted across multiple plan
seeds:

- under WAN loss + jitter + a mid-stream worker crash, every request
  still completes and every request's tokens are identical to the
  fault-free run (recovery is transparent, not approximate);
- the recovery machinery demonstrably fired: retransmissions, a worker
  restart, and re-prefilled tokens all appear in the ServingReport;
- an *empty* fault plan is byte-identical to running with no fault plane
  at all (the differential guarantee: the injector costs nothing when
  idle, and installing nothing changes nothing);
- a faulty run replays byte-identically from the same plan seed (the
  determinism contract extends to faults).
"""

import pytest

from repro import (
    EngineConfig,
    FaultPlan,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    Workload,
    cluster_c,
    get_pair,
    run_serving,
)
from repro.faults import LinkFault, StragglerSpec
from repro.workloads import (
    SharedPrefixTemplate,
    cloud_edge_arrivals,
    cloud_edge_cluster,
    cloud_edge_fault_plan,
    cloud_edge_prompts,
)

N_CLOUD, N_EDGE = 2, 2
N_REQ = 4


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


@pytest.fixture(scope="module")
def workload(pair):
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=16)
        for p in cloud_edge_prompts(N_REQ, pair.target_arch.vocab, length=32)
    )
    return Workload(jobs=jobs, arrivals=cloud_edge_arrivals(N_REQ, seed=21))


def serve(pair, workload, plan=None, cfg=None):
    backend = OracleBackend(pair, head_node=cloud_edge_cluster().nodes[0])
    return run_serving(
        PipeInferEngine,
        backend,
        cloud_edge_cluster(N_CLOUD, N_EDGE),
        workload,
        cfg,
        fault_plan=plan,
    )


@pytest.fixture(scope="module")
def baseline(pair, workload):
    """The fault-free run every chaos variant must reproduce exactly."""
    return serve(pair, workload)


def crash_plan(seed):
    """Loss + jitter on every WAN hop, one edge worker dying mid-stream."""
    return cloud_edge_fault_plan(
        seed=seed,
        n_cloud=N_CLOUD,
        n_edge=N_EDGE,
        loss_rate=0.05,
        crash_rank=N_CLOUD,  # first edge stage
        crash_at=1.0,
    )


@pytest.mark.parametrize("seed", (1, 2, 3))
def test_loss_jitter_crash_transparent_across_seeds(pair, workload, baseline, seed):
    rep = serve(pair, workload, crash_plan(seed))
    assert rep.outputs() == baseline.outputs(), "faults changed served tokens"
    assert rep.token_counts() == baseline.token_counts()  # all completed
    s = rep.stats
    assert s.retransmits > 0, "5% WAN loss should have forced retransmits"
    assert s.worker_restarts >= 1
    assert s.reprefilled_tokens > 0, "restart must rebuild KV by re-prefill"


def test_empty_plan_is_byte_identical_to_no_injector(pair, workload, baseline):
    rep = serve(pair, workload, FaultPlan())
    assert rep.outputs() == baseline.outputs()
    assert rep.makespan == baseline.makespan  # simulated time, exact
    assert [r.ttft for r in rep.requests] == [r.ttft for r in baseline.requests]
    assert [r.finish_time for r in rep.requests] == [
        r.finish_time for r in baseline.requests
    ]
    s = rep.stats
    assert (s.retransmits, s.timeouts, s.worker_restarts) == (0, 0, 0)
    assert (s.reprefilled_tokens, s.degraded_windows) == (0, 0)


def test_faulty_run_replays_byte_identically(pair, workload):
    a = serve(pair, workload, crash_plan(seed=2))
    b = serve(pair, workload, crash_plan(seed=2))
    assert a.outputs() == b.outputs()
    assert a.makespan == b.makespan
    assert (a.stats.retransmits, a.stats.reprefilled_tokens) == (
        b.stats.retransmits,
        b.stats.reprefilled_tokens,
    )


def test_straggler_window_degrades_and_recovers(pair, workload, baseline):
    """A straggling stage slows the run and gates speculation (degraded
    windows are counted), but tokens never change."""
    plan = FaultPlan(
        stragglers=(StragglerSpec(rank=1, factor=4.0, start=0.5, end=40.0),)
    )
    rep = serve(pair, workload, plan)
    assert rep.outputs() == baseline.outputs()
    assert rep.stats.degraded_windows >= 1
    assert rep.makespan > baseline.makespan  # the slowdown is real


def test_warm_recovery_through_prefix_cache(pair):
    """Crash recovery with the prefix cache on: shared-prefix requests may
    re-materialize cached prompt KV instead of cold re-prefilling, and the
    served tokens still match the fault-free cache-on run."""
    template = SharedPrefixTemplate(
        shared_len=48, unique_len=12, share_fraction=1.0, seed=5
    )
    jobs = tuple(
        GenerationJob(prompt=p, n_generate=12)
        for p in template.prompts(6, pair.target_arch.vocab)
    )
    workload = Workload(jobs=jobs, max_active=2)
    cfg = EngineConfig(n_seq_partitions=24, prefix_cache=True)
    clean = serve(pair, workload, cfg=cfg)
    plan = cloud_edge_fault_plan(
        seed=4, n_cloud=N_CLOUD, n_edge=N_EDGE, loss_rate=0.02,
        crash_rank=N_CLOUD + 1, crash_at=5.0,
    )
    faulty = serve(pair, workload, plan, cfg=cfg)
    assert faulty.outputs() == clean.outputs()
    assert faulty.stats.worker_restarts == 1
    assert faulty.stats.reprefilled_tokens > 0
    assert faulty.prefix_cache_stats.get("hit_tokens", 0) > 0


def test_functional_backend_under_loss(tiny_target, tiny_draft):
    """Real tiny-transformer math over a lossy link: retransmission is
    invisible to the numerics — served tokens match the clean run."""
    from repro import FunctionalBackend
    from repro.spec.draft import DraftParams

    cfg = EngineConfig(
        draft=DraftParams(max_tokens=4, cutoff=0.02),
        cutoff_recovery=0.01,
        cutoff_decay=0.01,
    )
    jobs = tuple(
        GenerationJob(prompt=tuple(5 + p + i for p in range(8)), n_generate=10)
        for i in range(3)
    )
    workload = Workload(jobs=jobs)

    def run(plan):
        backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=2048)
        return run_serving(
            PipeInferEngine, backend, cluster_c(3), workload, cfg,
            fault_plan=plan,
        )

    clean = run(None)
    plan = FaultPlan(
        seed=9,
        link_faults=(
            LinkFault(1, 2, loss_rate=0.1),
            LinkFault(2, 0, loss_rate=0.1),
        ),
        rto=0.05,
    )
    faulty = run(plan)
    assert faulty.outputs() == clean.outputs()
    assert faulty.stats.retransmits > 0
