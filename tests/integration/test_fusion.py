"""Fused multi-run stage execution: engine-level invariants.

The fusion window must be a pure scheduling optimization: engine token
outputs are byte-identical with fusion disabled (``max_fused_runs=1``),
forwarded record order is preserved, and cancellation keeps working when
it lands mid-window.  Under serving load the window must actually fuse
(width > 1), otherwise the batching headroom is untested.
"""


from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    PipeInferEngine,
    Workload,
    cluster_c,
    run_engine,
)
from repro.cluster.kernel import Delay, SimKernel, run_to_completion
from repro.comm.message import Tag
from repro.comm.mpi_sim import Network
from repro.comm.payloads import CancelMsg, ShutdownMsg
from repro.comm.transactions import TransactionType, send_transaction
from repro.engines.backend import OracleBackend
from repro.engines.worker import pipeline_worker
from repro.metrics.collectors import MetricsCollector
from repro.models.zoo import get_pair
from repro.serve.run import run_serving
from repro.spec.draft import DraftParams
from repro.workloads import make_prompt, poisson_arrivals
from tests.conftest import PROMPT
from tests.integration.test_worker_protocol import decode_pieces


def functional_cfg(**overrides) -> EngineConfig:
    base = {
        "draft": DraftParams(max_tokens=4, cutoff=0.02),
        "cutoff_recovery": 0.01,
        "cutoff_decay": 0.01,
    }
    base.update(overrides)
    return EngineConfig(**base)


def serving_workload(n_requests=6, n_generate=16):
    kinds = ("wikitext", "code", "explain", "paper", "roleplay")
    jobs = tuple(
        GenerationJob(
            prompt=make_prompt(kinds[i % len(kinds)], length=24, vocab=128),
            n_generate=n_generate,
        )
        for i in range(n_requests)
    )
    return Workload(jobs=jobs, arrivals=poisson_arrivals(3.0, n_requests, seed=5))


class TestFusionEquivalence:
    def test_single_job_tokens_invariant_under_fusion(self, functional_backend):
        job = GenerationJob(prompt=PROMPT, n_generate=24)
        fused = run_engine(
            PipeInferEngine, functional_backend, cluster_c(4), job,
            functional_cfg(max_fused_runs=8),
        )
        unfused = run_engine(
            PipeInferEngine, functional_backend, cluster_c(4), job,
            functional_cfg(max_fused_runs=1),
        )
        assert fused.tokens == unfused.tokens
        assert all(w == 1 for w in unfused.fusion_width)

    def test_serving_outputs_invariant_under_fusion(self, tiny_target, tiny_draft):
        workload = serving_workload()
        reports = {}
        for cap in (1, 8):
            backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
            reports[cap] = run_serving(
                PipeInferEngine, backend, cluster_c(4), workload,
                functional_cfg(max_fused_runs=cap),
            )
        assert reports[8].outputs() == reports[1].outputs()
        assert all(w == 1 for w in reports[1].fusion_width)

    def test_serving_load_actually_fuses(self, tiny_target, tiny_draft):
        backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=4096)
        report = run_serving(
            PipeInferEngine, backend, cluster_c(4), serving_workload(),
            functional_cfg(),
        )
        assert max(report.fusion_width) > 1, (
            f"no multi-run windows under serving load: {report.fusion_width}"
        )
        assert report.stats.fused_batches > 0
        assert report.stats.fused_runs >= 2 * report.stats.fused_batches
        # Fused or not, every dispatched run completes exactly once.
        assert report.stats.completed == report.stats.dispatched


class SlowStageBackend(OracleBackend):
    """Oracle backend with long, fixed compute chunks: a fused window
    spans 0.2 simulated seconds, so control messages sent on receipt of
    the previous window's logits are guaranteed to land mid-window."""

    def stage_chunks(self, node, layer_range, n_tokens):
        return [0.05] * 4


class TestMidFusionCancellation:
    def test_cancel_landing_mid_window_skips_only_that_run(self):
        """Two speculative runs fuse into one window; a cancel for the
        second arrives while the window is being evaluated.  The cancelled
        run must drop out of the computation but keep its slot: logits
        records still come back for both runs, in dispatch order."""
        kernel = SimKernel()
        cluster = cluster_c(2)
        net = Network(kernel, cluster)
        backend = SlowStageBackend(
            get_pair("dolphin+tinyllama"), head_node=cluster.nodes[0]
        )
        metrics = MetricsCollector()
        ws = backend.make_worker_state(1, (0, backend.n_target_layers), True, True)
        proc = kernel.spawn(
            pipeline_worker(
                net=net, rank=1, upstream=0, downstream=None, head_rank=0,
                backend=backend, ws=ws, node=cluster.nodes[1], metrics=metrics,
            ),
            name="worker-1",
        )
        got = []
        chain = [1, 2, 3, 5, 6, 7, 8]

        def head():
            ep = net.endpoint(0)
            # A leading run occupies the worker (its window spans 0.2s of
            # simulated time) while runs 2 and 3 land in its mailbox, so
            # they are drained into one fused window together.
            send_transaction(ep, 1, TransactionType.DECODE,
                             decode_pieces(backend, 1, [3], 2, 0, False, chain))
            yield Delay(0.01)
            send_transaction(ep, 1, TransactionType.DECODE,
                             decode_pieces(backend, 2, [5, 6], 3, 2, True, chain))
            send_transaction(ep, 1, TransactionType.DECODE,
                             decode_pieces(backend, 3, [7, 8], 5, 3, True, chain))
            # Window 2 runs over roughly [0.21, 0.41]; a cancel sent at
            # 0.30 lands between its compute chunks.
            yield Delay(0.29)
            ep.send(CancelMsg(3), 1, Tag.CANCEL, nbytes=16.0, eager=True)
            for _ in range(3):
                msg = yield from ep.recv(1, Tag.LOGITS)
                got.append(msg.payload)
            send_transaction(ep, 1, TransactionType.SHUTDOWN,
                             [(ShutdownMsg(), 8.0)], eager=True)

        h = kernel.spawn(head(), name="head")
        run_to_completion(kernel, [proc, h])
        assert [p.run_id for p in got] == [1, 2, 3]
        assert not got[0].cancelled and not got[1].cancelled
        assert got[2].cancelled
        assert got[2].logits == []
        assert metrics.stats.worker_layer_evals_skipped > 0
        # Runs 2 and 3 were evaluated as one fused window.
        hist = metrics.fusion_width.get(1, {})
        assert hist.get(2, 0) >= 1, f"expected a width-2 window, got {hist}"
        # The cancelled run wrote no cells; the surviving fused run did.
        assert ws.cache.has_entry(2, 3)
        assert not ws.cache.has_entry(3, 5)


class TestLiveCellAdmission:
    def test_outputs_and_safety_with_live_admission(self, tiny_target, tiny_draft):
        """The live-cells policy (oracle-admission satellite) must change
        only *when* requests are admitted — outputs stay identical and the
        bounded cache never overflows (overflow would raise KVCacheError
        and deadlock the simulation)."""
        kinds = ("wikitext", "code", "explain", "paper", "roleplay")
        jobs = tuple(
            GenerationJob(prompt=make_prompt(kinds[i % len(kinds)], length=24,
                                             vocab=128), n_generate=12)
            for i in range(6)
        )
        workload = Workload(jobs=jobs)  # closed loop: admission must queue
        reports = {}
        for live in (False, True):
            backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=120)
            reports[live] = run_serving(
                PipeInferEngine, backend, cluster_c(3), workload,
                functional_cfg(admission_live_cells=live,
                               n_seq_partitions=16, lookahead_cap=8),
            )
        assert reports[True].outputs() == reports[False].outputs()
        assert sum(r.queue_wait for r in reports[False].requests) > 0, (
            "workload never queued: test is vacuous"
        )

    def test_live_admission_admits_earlier(self, tiny_target, tiny_draft):
        """With one active request, the static policy cannot admit a
        second until the first *releases* (its committed demand never
        shrinks); the live policy admits as soon as real occupancy plus
        the remaining worst-case growth leaves room."""
        jobs = tuple(
            GenerationJob(prompt=make_prompt("wikitext", length=24, vocab=128),
                          n_generate=16)
            for _ in range(2)
        )
        # demand = 24 + 16 + 8 + 4 = 52 cells each: the static policy
        # cannot commit both (104 > 110 is false... the cap is chosen so
        # 2*demand exceeds it but the real concurrent peak fits).
        workload = Workload(jobs=jobs)
        admitted = {}
        for live in (False, True):
            backend = FunctionalBackend(tiny_target, tiny_draft, n_cells=100)
            report = run_serving(
                PipeInferEngine, backend, cluster_c(3), workload,
                functional_cfg(admission_live_cells=live,
                               n_seq_partitions=16, lookahead_cap=8),
            )
            admitted[live] = report.requests[1].admitted_at
            assert all(r.n_tokens == 16 for r in report.requests)
        assert admitted[True] < admitted[False], (
            f"live admission should admit request 1 earlier: {admitted}"
        )

    def test_oracle_mode_bounded_admission(self):
        """An oracle backend with a cell budget throttles admission through
        the same CellBudget machinery and still completes every request."""
        cluster = cluster_c(3)
        pair = get_pair("dolphin+tinyllama")
        backend = OracleBackend(pair, head_node=cluster.nodes[0], n_cells=300)
        jobs = tuple(
            GenerationJob(prompt=make_prompt("wikitext", length=48,
                                             vocab=pair.target_arch.vocab),
                          n_generate=32)
            for _ in range(6)
        )
        report = run_serving(
            PipeInferEngine, backend, cluster, Workload(jobs=jobs),
            EngineConfig(admission_live_cells=True),
        )
        assert report.token_counts() == {i: 32 for i in range(6)}
        assert sum(r.queue_wait for r in report.requests) > 0
