"""Mid-flight cancellation: KV hygiene, corner cases, fault overlap.

The acceptance bar for the cancellation plane:

- a cancel at any phase (queued, mid-prefill, mid-draft-round) closes
  the stream, frees the request's canonical KV, and never wedges the
  simulation — every run here ends in a clean drain, which raises
  :class:`StuckSimulationError` with diagnostics if any process hangs;
- a cancel storm returns every worker KV shard to its empty baseline
  (live-cell count zero after drain, prefix cache off);
- cancelling a prefix-cache-pinned request releases its pins so the
  tree's reference counts stay balanced;
- cancellation under an active fault plan composes with recovery
  (retransmits, stragglers) instead of deadlocking against it;
- surviving requests stream exactly their solo-run tokens.
"""

import pytest

from repro import (
    ClusterConfig,
    EngineConfig,
    FaultPlan,
    GenerationJob,
    OracleBackend,
    PipeInferEngine,
    StragglerSpec,
    cluster_c,
    get_pair,
    run_engine,
)
from repro.api import ServingSession
from repro.serve import EngineCluster
from repro.workloads import make_prompt

N_GENERATE = 16


@pytest.fixture(scope="module")
def pair():
    return get_pair("dolphin+tinyllama")


def _job(pair, i=0, n_generate=N_GENERATE):
    return GenerationJob(
        prompt=make_prompt("wikitext", length=24 + 4 * i,
                           vocab=pair.target_arch.vocab),
        n_generate=n_generate,
    )


def _session(pair, config=None, max_active=None, fault_plans=None):
    clusters = [cluster_c(4)]
    backends = [OracleBackend(pair, head_node=clusters[0].nodes[0])]
    cluster = EngineCluster(
        PipeInferEngine,
        backends,
        clusters,
        cluster_config=ClusterConfig(n_replicas=1),
        config=config,
        fault_plans=fault_plans,
    )
    return ServingSession(cluster, max_active=max_active)


def _live_cells(sess):
    return max(
        rep.engine.worker_cells_used() for rep in sess.cluster.replicas
    )


class TestCancelPhases:
    def test_cancel_mid_prefill(self, pair):
        sess = _session(pair)
        stream = sess.submit(_job(pair))
        # One step admits the request at t=0; its prefill compute is
        # still in flight when the disconnect lands.
        sess.step()
        assert stream.n_tokens == 0
        sess.cancel(stream)
        report = sess.report()  # clean drain or StuckSimulationError
        assert stream.cancelled and not stream.finished
        assert stream.tokens == []
        rec = report.merged.requests[0]
        assert rec.cancelled and rec.n_tokens == 0
        assert report.merged.n_cancelled == 1
        assert _live_cells(sess) == 0

    def test_cancel_mid_draft_round(self, pair):
        sess = _session(pair)
        stream = sess.submit(_job(pair))
        while stream.n_tokens < 2:
            assert sess.advance_until(stream)
        at_cancel = stream.n_tokens
        sess.cancel(stream)
        report = sess.report()
        assert stream.cancelled
        # The stream froze at (or within one already-accepted batch of)
        # the disconnect instant, well short of the budget.
        assert at_cancel <= stream.n_tokens < N_GENERATE
        rec = report.merged.requests[0]
        assert rec.cancelled and rec.tokens == stream.tokens
        assert _live_cells(sess) == 0

    def test_cancel_queued_request(self, pair):
        sess = _session(pair, max_active=1)
        first = sess.submit(_job(pair, 0))
        queued = sess.submit(_job(pair, 1))
        sess.step()  # admit the first; the second waits on max_active=1
        sess.cancel(queued)
        report = sess.report()
        assert queued.cancelled and queued.tokens == []
        assert first.finished and len(first.tokens) == N_GENERATE
        by_id = {r.req_id: r for r in report.merged.requests}
        assert by_id[1].cancelled and by_id[1].n_tokens == 0
        assert not by_id[0].cancelled

    def test_cancel_is_idempotent_and_ignores_unknown(self, pair):
        sess = _session(pair)
        stream = sess.submit(_job(pair))
        sess.cancel(stream)
        sess.cancel(stream)  # second disconnect: no-op
        sess.cancel(999)  # unknown id: ignored cluster-wide
        report = sess.report()
        assert report.merged.n_cancelled == 1

    def test_cancel_after_finish_is_noop(self, pair):
        sess = _session(pair)
        stream = sess.submit(_job(pair))
        assert sess.advance_until(lambda: stream.finished)
        sess.cancel(stream)
        report = sess.report()
        assert stream.finished and not stream.cancelled
        assert report.merged.n_cancelled == 0


class TestCancelStormKVBaseline:
    def test_storm_returns_pool_to_baseline(self, pair):
        # Prefix cache off: after a full drain no retained sequences may
        # remain, so every canonical partition a cancel released shows up
        # as live cells going back to zero.
        sess = _session(pair, config=EngineConfig(prefix_cache=False))
        streams = [
            sess.submit(_job(pair, i), arrival=0.3 * i) for i in range(6)
        ]
        # Let traffic build, then disconnect every client at different
        # phases: some mid-prefill, some mid-decode, some still queued.
        sess.advance_until(1.0)
        for stream in streams[::2]:
            sess.cancel(stream)
        sess.advance_until(2.0)
        for stream in streams[1::2]:
            sess.cancel(stream)
        report = sess.report()
        assert report.merged.n_cancelled == 6
        assert all(s.cancelled for s in streams)
        assert _live_cells(sess) == 0

    def test_survivors_unaffected_by_neighbor_cancels(self, pair):
        sess = _session(pair)
        victim = sess.submit(_job(pair, 0))
        survivor = sess.submit(_job(pair, 1))
        while victim.n_tokens < 1:
            assert sess.advance_until(victim)
        sess.cancel(victim)
        sess.report()
        assert survivor.finished
        solo_cluster = cluster_c(4)
        solo = run_engine(
            PipeInferEngine,
            OracleBackend(pair, head_node=solo_cluster.nodes[0]),
            solo_cluster,
            _job(pair, 1),
        )
        assert survivor.tokens == solo.tokens


class TestCancelWithPrefixCache:
    def test_cancel_releases_prefix_pins(self, pair):
        sess = _session(pair, config=EngineConfig(prefix_cache=True))
        job = _job(pair, 0)
        warm = sess.submit(job)
        assert sess.advance_until(lambda: warm.finished)
        # The stream closes at acceptance time; the finalize event that
        # donates the prompt into the tree runs just after it.
        sess.advance_until(sess.now() + 5.0)
        # Same prompt again: admission pins the donated prefix; the
        # disconnect must release the pin on the way out.
        again = sess.submit(GenerationJob(prompt=job.prompt, n_generate=12))
        while again.n_tokens < 1:
            assert sess.advance_until(again)
        sess.cancel(again)
        report = sess.report()
        assert again.cancelled
        cache = sess.cluster.replicas[0].engine.prefix_cache
        assert cache is not None
        assert cache._active == {}, "cancelled request left a pinned match"
        assert report.merged.prefix_cache_stats["requests_hit"] >= 1

    def test_cancelled_verified_prefix_is_donated(self, pair):
        # A mid-decode cancel donates the verified prefix (prompt +
        # accepted tokens) so a follow-up with the same head hits.
        sess = _session(pair, config=EngineConfig(prefix_cache=True))
        stream = sess.submit(_job(pair, 0))
        while stream.n_tokens < 4:
            assert sess.advance_until(stream)
        sess.cancel(stream)
        report = sess.report()
        stats = report.merged.prefix_cache_stats
        assert stats["donated_tokens"] > len(_job(pair, 0).prompt)


class TestCancelUnderFaults:
    def test_cancel_composes_with_straggler_recovery(self, pair):
        plan = FaultPlan(
            stragglers=(StragglerSpec(rank=1, factor=4.0, start=0.0, end=30.0),)
        )
        sess = _session(pair, fault_plans=[plan])
        victim = sess.submit(_job(pair, 0))
        survivor = sess.submit(_job(pair, 1))
        while victim.n_tokens < 1:
            assert sess.advance_until(victim)
        sess.cancel(victim)
        # A wedged process would abort the drain with
        # StuckSimulationError diagnostics; a clean report is the proof.
        report = sess.report()
        assert victim.cancelled
        assert survivor.finished and len(survivor.tokens) == N_GENERATE
        assert report.merged.n_cancelled == 1
        assert _live_cells(sess) == 0
