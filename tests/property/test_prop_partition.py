"""Layer-partitioning properties."""

from hypothesis import given, strategies as st

from repro.pipeline.partition import split_layers


@st.composite
def partition_inputs(draw):
    n_ranks = draw(st.integers(1, 12))
    n_layers = draw(st.integers(n_ranks, 160))
    weights = draw(
        st.lists(
            st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n_ranks,
            max_size=n_ranks,
        )
    )
    return n_layers, weights


@given(partition_inputs())
def test_exact_cover(inp):
    n_layers, weights = inp
    ranges = split_layers(n_layers, weights)
    flat = [l for lo, hi in ranges for l in range(lo, hi)]
    assert flat == list(range(n_layers))


@given(partition_inputs())
def test_every_rank_nonempty(inp):
    n_layers, weights = inp
    for lo, hi in split_layers(n_layers, weights):
        assert hi > lo


@given(partition_inputs())
def test_contiguous_and_ordered(inp):
    n_layers, weights = inp
    ranges = split_layers(n_layers, weights)
    assert ranges[0][0] == 0
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 == b0
    assert ranges[-1][1] == n_layers


@given(st.integers(2, 10), st.integers(20, 100))
def test_dominant_weight_gets_most_layers(n_ranks, n_layers):
    weights = [1.0] * n_ranks
    weights[0] = 1000.0
    ranges = split_layers(n_layers, weights)
    sizes = [hi - lo for lo, hi in ranges]
    assert sizes[0] == max(sizes)
    # Dominated ranks retain their one-layer floor.
    assert all(s >= 1 for s in sizes)
