"""Differential property suite: prefix cache ON == OFF, token for token.

The prefix cache is a scheduling/metadata optimization on the paper's
IV-C transaction plane — it must never change *what* is generated.  The
suite serves shared-prefix workloads through the functional backend
(real attention math over the materialized cells) twice, cache off and
on, and asserts byte-identical per-request outputs under:

- plain shared-system-prompt traffic (hits on a warm tree);
- mid-stream eviction (a tiny ``prefix_cache_cells`` budget forcing LRU
  leaf eviction while requests are in flight);
- speculation over a matched prefix (drafting/verification defaults on,
  so speculative partitions copy materialized cells);
- donate-then-rematch round trips (multi-turn prompts extending one
  radix path turn by turn);
- randomized workloads mixing shared groups, unique prompts, and
  arrival staggering.
"""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    PipeInferEngine,
    TinyTransformer,
    Workload,
    cluster_c,
    run_serving,
)
from repro.models.transformer import perturbed_copy
from repro.spec.draft import DraftParams
from repro.workloads import MultiTurnTemplate, SharedPrefixTemplate
from tests.conftest import TINY_CFG

VOCAB = TINY_CFG.vocab


@pytest.fixture(scope="module")
def models():
    target = TinyTransformer(TINY_CFG)
    return target, perturbed_copy(target, noise=0.15, seed=9)


def serve(models, jobs, prefix_cache, max_active=2, n_cells=2048, **cfg_kw):
    target, draft = models
    backend = FunctionalBackend(target, draft, n_cells=n_cells)
    cfg = EngineConfig(
        draft=DraftParams(max_tokens=4, cutoff=0.02),
        cutoff_recovery=0.01,
        cutoff_decay=0.01,
        n_seq_partitions=24,
        prefix_cache=prefix_cache,
        **cfg_kw,
    )
    workload = Workload(jobs=tuple(jobs), max_active=max_active)
    return run_serving(PipeInferEngine, backend, cluster_c(3), workload, cfg)


def assert_on_equals_off(models, jobs, **cfg_kw):
    off = serve(models, jobs, prefix_cache=False, **cfg_kw)
    on = serve(models, jobs, prefix_cache=True, **cfg_kw)
    assert on.outputs() == off.outputs()
    return on


class TestOnEqualsOff:
    def test_shared_prefix_with_hits(self, models):
        template = SharedPrefixTemplate(
            shared_len=24, unique_len=6, seed=3
        )
        jobs = [
            GenerationJob(prompt=p, n_generate=10)
            for p in template.prompts(6, VOCAB)
        ]
        on = assert_on_equals_off(models, jobs, min_match_tokens=8)
        assert on.prefix_hit_tokens > 0
        assert on.prefix_cache_stats["donated_nodes"] >= 1
        assert on.prefix_hit_rate > 0
        assert on.ttft_mean_hit > 0  # the hit population exists

    def test_speculation_over_matched_prefix(self, models):
        """Deep speculation defaults: speculative partitions copy context
        that includes materialized (cache-hit) cells."""
        template = SharedPrefixTemplate(shared_len=24, unique_len=6, seed=4)
        jobs = [
            GenerationJob(prompt=p, n_generate=16)
            for p in template.prompts(5, VOCAB)
        ]
        on = assert_on_equals_off(
            models, jobs, min_match_tokens=8, lookahead_cap=16
        )
        assert on.prefix_hit_tokens > 0
        assert on.stats.speculative > 0  # speculation actually ran

    def test_mid_stream_eviction(self, models):
        """A 40-cell retained budget forces LRU eviction between (and
        during) requests; outputs must not move."""
        template = SharedPrefixTemplate(
            shared_len=24, unique_len=6, n_groups=3, seed=5
        )
        jobs = [
            GenerationJob(prompt=p, n_generate=8)
            for p in template.prompts(9, VOCAB)
        ]
        on = assert_on_equals_off(
            models, jobs, min_match_tokens=8, prefix_cache_cells=40
        )
        assert on.prefix_cache_stats["evictions"] >= 1

    def test_donate_then_rematch_multiturn(self, models):
        """Multi-turn sessions: each turn extends the previous turn's
        prompt, so the tree grows one path per session and later turns
        re-match what earlier turns donated."""
        template = MultiTurnTemplate(
            system_len=16, turn_len=10, n_turns=3, seed=6
        )
        jobs = [
            GenerationJob(prompt=p, n_generate=8)
            for p in template.prompts(2, VOCAB)
        ]
        on = assert_on_equals_off(models, jobs, min_match_tokens=8)
        stats = on.prefix_cache_stats
        assert stats["requests_hit"] >= 3
        assert stats["donated_nodes"] >= 3  # extensions donated per turn

    def test_bounded_worker_cache_with_retained_cells(self, models):
        """Small worker cell capacity: admission must account retained
        cells (CellBudget.retained) and reclaim them under pressure
        instead of overflowing the fixed functional cache."""
        template = SharedPrefixTemplate(shared_len=24, unique_len=6, seed=7)
        jobs = [
            GenerationJob(prompt=p, n_generate=8)
            for p in template.prompts(6, VOCAB)
        ]
        on = assert_on_equals_off(
            models, jobs, min_match_tokens=8, n_cells=160, max_active=None
        )
        assert on.prefix_hit_tokens >= 0  # completed without overflow

    def test_live_cells_admission_policy(self, models):
        template = SharedPrefixTemplate(shared_len=24, unique_len=6, seed=8)
        jobs = [
            GenerationJob(prompt=p, n_generate=8)
            for p in template.prompts(6, VOCAB)
        ]
        on = assert_on_equals_off(
            models, jobs, min_match_tokens=8, n_cells=256,
            admission_live_cells=True, max_active=2,
        )
        assert on.prefix_hit_tokens > 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads(self, models, seed):
        """Randomized mix: shared groups, unique prompts, varying lengths
        and budgets — cache on must always reproduce cache off."""
        rng = np.random.default_rng(seed)
        template = SharedPrefixTemplate(
            shared_len=int(rng.integers(16, 32)),
            unique_len=int(rng.integers(4, 10)),
            n_groups=int(rng.integers(1, 3)),
            share_fraction=float(rng.uniform(0.4, 1.0)),
            seed=seed,
        )
        n = int(rng.integers(4, 8))
        jobs = [
            GenerationJob(prompt=p, n_generate=int(rng.integers(6, 12)))
            for p in template.prompts(n, VOCAB)
        ]
        assert_on_equals_off(
            models, jobs,
            min_match_tokens=int(rng.integers(6, 12)),
            prefix_cache_cells=int(rng.integers(48, 512)),
            max_active=int(rng.integers(1, 4)),
        )


class TestRequestReportFields:
    def test_cached_tokens_on_reports(self, models):
        template = SharedPrefixTemplate(shared_len=24, unique_len=6, seed=9)
        jobs = [
            GenerationJob(prompt=p, n_generate=6)
            for p in template.prompts(4, VOCAB)
        ]
        on = serve(models, jobs, prefix_cache=True, min_match_tokens=8)
        hit = [r for r in on.requests if r.cached_tokens > 0]
        assert hit, "warm tree should have produced at least one hit"
        for r in on.requests:
            assert 0 <= r.cached_tokens < r.prompt_tokens
        assert on.prefix_hit_tokens == sum(r.cached_tokens for r in on.requests)


class TestOversizedLoneRequest:
    def test_oversized_request_with_warm_match_still_admits(self, models):
        """Regression: a request whose worst-case demand exceeds worker
        capacity pins its own prefix match, so ``budget.retained`` can
        never reach zero — the lone-request escape hatch must still
        admit it (surfacing any overflow like a single job would)
        instead of idling forever."""
        shared = tuple(range(20, 60))  # 40-token shared prefix
        jobs = [
            # Fits capacity: donates the prefix.
            GenerationJob(prompt=shared, n_generate=4),
            # Worst case 40 + 8 + 16 + 4 = 68 > 64 cells: oversized.
            GenerationJob(prompt=shared, n_generate=8),
        ]
        target, draft = models
        backend = FunctionalBackend(target, draft, n_cells=64)
        cfg = EngineConfig(
            draft=DraftParams(max_tokens=4, cutoff=0.02),
            cutoff_recovery=0.01,
            cutoff_decay=0.01,
            n_seq_partitions=12,
            prefix_cache=True,
            min_match_tokens=8,
        )
        # Arrival far past request 0's completion: the tree is warm and
        # request 1 runs alone.
        workload = Workload(jobs=tuple(jobs), arrivals=(0.0, 10.0))
        report = run_serving(
            PipeInferEngine, backend, cluster_c(3), workload, cfg
        )
        assert report.token_counts() == {0: 4, 1: 8}
        assert report.requests[1].cached_tokens > 0


class TestSecondHitPromotion:
    """`prefix_promote_on_second_hit` defers donations, never tokens."""

    def _shared_jobs(self):
        template = SharedPrefixTemplate(shared_len=24, unique_len=6, seed=11)
        return [
            GenerationJob(prompt=p, n_generate=10)
            for p in template.prompts(6, VOCAB)
        ]

    def test_promotion_on_equals_off(self, models):
        jobs = self._shared_jobs()
        off = serve(models, jobs, prefix_cache=True, min_match_tokens=8)
        on = serve(
            models, jobs, prefix_cache=True, min_match_tokens=8,
            prefix_promote_on_second_hit=True,
        )
        base = serve(models, jobs, prefix_cache=False)
        assert on.outputs() == off.outputs() == base.outputs()
        on_stats, off_stats = on.prefix_cache_stats, off.prefix_cache_stats
        assert on_stats["deferred_donations"] >= 1
        assert on_stats["donated_nodes"] <= off_stats["donated_nodes"]
        assert on_stats["donated_tokens"] <= off_stats["donated_tokens"]

    def test_shared_head_promotes_on_second_offer(self, models):
        jobs = self._shared_jobs()
        on = serve(
            models, jobs, prefix_cache=True, max_active=1,
            min_match_tokens=8, prefix_promote_on_second_hit=True,
        )
        stats = on.prefix_cache_stats
        # The first completion only seeds the shadow trie; the second
        # promotes exactly the twice-offered 24-token head — the unique
        # tails never enter the tree.
        assert stats["donated_nodes"] == 1
        assert stats["donated_tokens"] == 24
        assert stats["requests_hit"] >= 3

    def test_unique_traffic_keeps_tree_empty(self, models):
        jobs = [
            GenerationJob(
                prompt=tuple(
                    16 + (i * 997 + j * 31) % (VOCAB - 16) for j in range(24)
                ),
                n_generate=8,
            )
            for i in range(4)
        ]
        on = serve(
            models, jobs, prefix_cache=True, min_match_tokens=8,
            prefix_promote_on_second_hit=True,
        )
        off = serve(models, jobs, prefix_cache=False)
        assert on.outputs() == off.outputs()
        stats = on.prefix_cache_stats
        assert stats["donated_nodes"] == 0
        assert stats["deferred_donations"] == len(jobs)
