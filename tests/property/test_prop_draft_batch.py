"""Differential property test: batched draft proposals == sequential.

The draft scheduler's contract mirrors the fusion window's: evaluating
several chains' one-token draft decodes as one cross-chain batch
(:meth:`~repro.engines.backend.Backend.propose_multi`) must be
observationally identical to proposing for each chain alone, in order:

- identical proposed tokens per chain, confidences within float
  re-association noise (<= 1e-10: the only divergence is the shared cell
  compaction of the draft plane's attention kernel);
- identical per-chain draft-plane KV metadata afterwards (cached token
  lists, per-sequence positions);
- correct incremental behaviour across interleaved appends,
  reconciliation trims, and mid-batch chain release (a request cancelled
  between rounds), with the remaining chains unaffected.

Chains are driven both by hand-built scenarios and a seeded random walk
mimicking the serving head's draft rounds.
"""

import numpy as np
import pytest

from repro.engines.backend import FunctionalBackend
from repro.models.transformer import TinyTransformer, perturbed_copy
from tests.conftest import TINY_CFG

CONF_ATOL = 1e-10


def make_backend():
    target = TinyTransformer(TINY_CFG)
    draft = perturbed_copy(target, noise=0.15, seed=9)
    return FunctionalBackend(target, draft, n_cells=64)


def plane_snapshot(backend):
    """Per-sequence metadata of the shared draft plane."""
    plane = backend._plane()
    return {
        seq: (list(toks), plane.cache.seq_positions(seq))
        for seq, toks in sorted(plane.tokens.items())
    }


def assert_proposals_match(batched, sequential):
    assert [t for t, _ in batched] == [t for t, _ in sequential]
    np.testing.assert_allclose(
        [c for _, c in batched], [c for _, c in sequential],
        atol=CONF_ATOL, rtol=0,
    )


class TestBatchedEqualsSequential:
    def test_fresh_chains(self):
        prefixes = [[3, 1, 4], [1, 5, 9, 2], [6, 5], [3, 1, 4]]
        be_batch, be_seq = make_backend(), make_backend()
        chains_b = [be_batch.new_chain(p) for p in prefixes]
        chains_s = [be_seq.new_chain(p) for p in prefixes]
        batched = be_batch.propose_multi(chains_b)
        sequential = [be_seq.propose(c) for c in chains_s]
        assert_proposals_match(batched, sequential)
        assert plane_snapshot(be_batch) == plane_snapshot(be_seq)

    def test_full_recompute_reference(self):
        """The plane's incremental decode matches an uncached forward."""
        be = make_backend()
        prefixes = [[3, 1, 4], [1, 5, 9, 2, 6], [7, 7, 7]]
        chains = [be.new_chain(p) for p in prefixes]
        batched = be.propose_multi(chains)
        for prefix, (token, conf) in zip(prefixes, batched):
            logits = be._draft_logits(prefix)
            from repro.models.sampler import softmax_probs

            probs = softmax_probs(logits)
            assert token == int(np.argmax(probs))
            assert conf == pytest.approx(float(probs[token]), abs=1e-9)

    def test_incremental_rounds_with_appends(self):
        """Lockstep rounds: every chain appends its proposal and re-proposes."""
        prefixes = [[2, 4, 6], [1, 3, 5, 7], [8, 8]]
        be_batch, be_seq = make_backend(), make_backend()
        chains_b = [be_batch.new_chain(p) for p in prefixes]
        chains_s = [be_seq.new_chain(p) for p in prefixes]
        for _ in range(4):
            batched = be_batch.propose_multi(chains_b)
            sequential = [be_seq.propose(c) for c in chains_s]
            assert_proposals_match(batched, sequential)
            for chain, (tok, _) in zip(chains_b, batched):
                chain.append(tok)
            for chain, (tok, _) in zip(chains_s, sequential):
                chain.append(tok)
        assert plane_snapshot(be_batch) == plane_snapshot(be_seq)

    def test_reconcile_trims_stale_suffix(self):
        """A diverged chain re-decodes only past the common prefix."""
        be_batch, be_seq = make_backend(), make_backend()
        chains_b = [be_batch.new_chain([5, 6, 7]), be_batch.new_chain([9, 9])]
        chains_s = [be_seq.new_chain([5, 6, 7]), be_seq.new_chain([9, 9])]
        be_batch.propose_multi(chains_b)
        for c in chains_s:
            be_seq.propose(c)
        # Simulate verification rejecting drafted suffixes: reconcile the
        # first chain onto a different continuation.
        for cs in (chains_b, chains_s):
            cs[0].append(11)
            cs[0].append(12)
            cs[0].reconcile([5, 6, 7, 20])
        batched = be_batch.propose_multi(chains_b)
        sequential = [be_seq.propose(c) for c in chains_s]
        assert_proposals_match(batched, sequential)
        assert plane_snapshot(be_batch) == plane_snapshot(be_seq)

    def test_mid_batch_release_leaves_others_intact(self):
        """Releasing one chain (request cancelled/finished between rounds)
        frees its plane state and never perturbs the survivors."""
        prefixes = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        be_batch, be_seq = make_backend(), make_backend()
        chains_b = [be_batch.new_chain(p) for p in prefixes]
        chains_s = [be_seq.new_chain(p) for p in prefixes]
        assert_proposals_match(
            be_batch.propose_multi(chains_b),
            [be_seq.propose(c) for c in chains_s],
        )
        released = chains_b.pop(1)
        be_batch.release_chain(released)
        be_seq.release_chain(chains_s.pop(1))
        assert released.draft_seq is None
        batched = be_batch.propose_multi(chains_b)
        sequential = [be_seq.propose(c) for c in chains_s]
        assert_proposals_match(batched, sequential)
        assert plane_snapshot(be_batch) == plane_snapshot(be_seq)

    def test_released_seq_id_is_reused(self):
        be = make_backend()
        a, b = be.new_chain([1, 2]), be.new_chain([3, 4])
        be.propose_multi([a, b])
        freed = a.draft_seq
        be.release_chain(a)
        c = be.new_chain([5, 6])
        be.propose_multi([b, c])
        assert c.draft_seq == freed

    @pytest.mark.parametrize("seed", range(8))
    def test_random_round_walk(self, seed):
        """Serving-shaped random walk: rounds of propose_multi over a
        changing population — appends, reconciles, releases, arrivals."""
        rng = np.random.default_rng(seed)
        be_batch, be_seq = make_backend(), make_backend()
        chains_b, chains_s = [], []
        next_tok = 0

        def new_prefix():
            n = int(rng.integers(2, 6))
            return [int(t) for t in rng.integers(0, TINY_CFG.vocab, n)]

        for _ in range(3):
            p = new_prefix()
            chains_b.append(be_batch.new_chain(list(p)))
            chains_s.append(be_seq.new_chain(list(p)))
        for _ in range(10):
            action = rng.random()
            if action < 0.15 and len(chains_b) > 1:
                i = int(rng.integers(0, len(chains_b)))
                be_batch.release_chain(chains_b.pop(i))
                be_seq.release_chain(chains_s.pop(i))
            elif action < 0.3:
                p = new_prefix()
                chains_b.append(be_batch.new_chain(list(p)))
                chains_s.append(be_seq.new_chain(list(p)))
            elif action < 0.45:
                i = int(rng.integers(0, len(chains_b)))
                keep = max(1, len(chains_b[i].tokens) - int(rng.integers(1, 3)))
                truth = chains_b[i].tokens[:keep] + [int(rng.integers(0, TINY_CFG.vocab))]
                chains_b[i].reconcile(list(truth))
                chains_s[i].reconcile(list(truth))
            batched = be_batch.propose_multi(chains_b)
            sequential = [be_seq.propose(c) for c in chains_s]
            assert_proposals_match(batched, sequential)
            for cb, cs, (tok, _) in zip(chains_b, chains_s, batched):
                if rng.random() < 0.7:
                    cb.append(tok)
                    cs.append(tok)
            next_tok += 1
        assert plane_snapshot(be_batch) == plane_snapshot(be_seq)

    def test_batched_top1_kernel_matches_per_row_softmax(self):
        """The fused top-1+confidence kernel == a full softmax per row.

        ``propose_multi`` replaced its per-chain ``softmax_probs`` loop
        with one :func:`repro.models.sampler.batched_top1` pass over the
        round's logits; tokens must be identical and confidences within
        1e-10 of the per-row reference for arbitrary logit matrices.
        """
        from repro.models.sampler import batched_top1, softmax_probs

        rng = np.random.default_rng(3)
        for shape in [(1, 7), (5, 128), (16, 33), (8, 1)]:
            logits = rng.normal(scale=6.0, size=shape)
            # Mix in extreme rows: near-ties and large dynamic range.
            logits[0] = np.round(logits[0], 1)
            tokens, confs = batched_top1(logits)
            for row, tok, conf in zip(logits, tokens, confs):
                probs = softmax_probs(row)
                assert int(tok) == int(np.argmax(probs))
                assert abs(float(conf) - float(probs[int(tok)])) <= CONF_ATOL

    def test_propose_single_routes_through_batched_kernel(self):
        """propose() and propose_multi([chain]) are the same code path —
        identical results bit for bit."""
        be_a, be_b = make_backend(), make_backend()
        ca, cb = be_a.new_chain([4, 2, 9]), be_b.new_chain([4, 2, 9])
        assert be_a.propose(ca) == be_b.propose_multi([cb])[0]

    def test_plane_grows_past_initial_capacity(self):
        """Long chains force the shared cache to grow in place; proposals
        stay identical to a sequential backend with an ample plane."""
        from repro.engines.backend import _DraftPlane

        be_batch, be_seq = make_backend(), make_backend()
        be_batch._draft_plane = _DraftPlane(be_batch.draft, n_cells=16)
        long_prefix = [int(x) % TINY_CFG.vocab for x in range(90)]
        chains_b = [be_batch.new_chain(list(long_prefix)),
                    be_batch.new_chain(list(reversed(long_prefix)))]
        chains_s = [be_seq.new_chain(list(long_prefix)),
                    be_seq.new_chain(list(reversed(long_prefix)))]
        batched = be_batch.propose_multi(chains_b)
        sequential = [be_seq.propose(c) for c in chains_s]
        assert_proposals_match(batched, sequential)
        assert be_batch._draft_plane.cache.n_cells >= 180
        assert be_batch._draft_plane.cache.grow(8) >= 180  # never shrinks
