"""IntervalSet vs a plain set-of-integers model."""

from hypothesis import given, strategies as st

from repro.models.range_cache import IntervalSet

ranges = st.tuples(st.integers(0, 60), st.integers(0, 60)).map(
    lambda t: (min(t), max(t))
)
ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), ranges), min_size=0, max_size=30
)


def apply_model(operations):
    model: set[int] = set()
    ival = IntervalSet()
    for op, (lo, hi) in operations:
        if op == "add":
            model |= set(range(lo, hi))
            ival.add(lo, hi)
        else:
            model -= set(range(lo, hi))
            ival.remove(lo, hi)
    return model, ival


@given(ops)
def test_positions_match_set_model(operations):
    model, ival = apply_model(operations)
    assert set(ival.positions()) == model
    assert len(ival) == len(model)


@given(ops)
def test_intervals_are_disjoint_sorted_nonempty(operations):
    _, ival = apply_model(operations)
    ivals = ival.intervals()
    for lo, hi in ivals:
        assert lo < hi
    for (a0, a1), (b0, b1) in zip(ivals, ivals[1:]):
        assert a1 < b0  # disjoint with a gap (touching would have merged)


@given(ops, ranges)
def test_clip_matches_set_intersection(operations, clip_range):
    model, ival = apply_model(operations)
    lo, hi = clip_range
    clipped = ival.clip(lo, hi)
    assert set(clipped.positions()) == model & set(range(lo, hi))


@given(ops)
def test_max_value(operations):
    model, ival = apply_model(operations)
    assert ival.max_value() == (max(model) if model else -1)


@given(ops, st.integers(0, 60))
def test_contains(operations, probe):
    model, ival = apply_model(operations)
    assert (probe in ival) == (probe in model)
