"""MPI ordering properties under randomized traffic."""

from hypothesis import given, settings, strategies as st

from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.testbed import cluster_a
from repro.comm.message import ANY_SOURCE, ANY_TAG
from repro.comm.mpi_sim import Network

# Random message plans: (tag, nbytes).  Mixed sizes force both link lanes.
messages = st.lists(
    st.tuples(st.integers(1, 3), st.sampled_from([8.0, 100.0, 2e5, 5e6])),
    min_size=1,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(messages)
def test_per_tag_fifo_order(plan):
    """For every (src, dst, tag) stream, receive order equals send order,
    regardless of lane races between streams."""
    k = SimKernel()
    net = Network(k, cluster_a(2))
    received: list[tuple[int, int]] = []

    def sender():
        ep = net.endpoint(0)
        for i, (tag, nbytes) in enumerate(plan):
            ep.send(i, 1, tag, nbytes=nbytes)
        yield from ()

    def receiver():
        ep = net.endpoint(1)
        for _ in plan:
            msg = yield from ep.recv(ANY_SOURCE, ANY_TAG)
            received.append((msg.tag, msg.payload))

    procs = [k.spawn(sender()), k.spawn(receiver())]
    run_to_completion(k, procs)

    assert len(received) == len(plan)
    for tag in {t for t, _ in plan}:
        sent_ids = [i for i, (t, _) in enumerate(plan) if t == tag]
        recv_ids = [i for t, i in received if t == tag]
        assert recv_ids == sent_ids


@settings(max_examples=40, deadline=None)
@given(messages)
def test_no_message_lost_or_duplicated(plan):
    k = SimKernel()
    net = Network(k, cluster_a(2))
    got = []

    def sender():
        ep = net.endpoint(0)
        for i, (tag, nbytes) in enumerate(plan):
            ep.send(i, 1, tag, nbytes=nbytes)
        yield from ()

    def receiver():
        ep = net.endpoint(1)
        for _ in plan:
            msg = yield from ep.recv()
            got.append(msg.payload)

    procs = [k.spawn(sender()), k.spawn(receiver())]
    run_to_completion(k, procs)
    assert sorted(got) == list(range(len(plan)))


@settings(max_examples=40, deadline=None)
@given(messages)
def test_delivery_times_not_before_latency(plan):
    k = SimKernel()
    net = Network(k, cluster_a(2))
    latency = net.cluster.link_spec.latency
    stamps = []

    def sender():
        ep = net.endpoint(0)
        for i, (tag, nbytes) in enumerate(plan):
            ep.send(i, 1, tag, nbytes=nbytes)
        yield from ()

    def receiver():
        ep = net.endpoint(1)
        for _ in plan:
            msg = yield from ep.recv()
            stamps.append(msg.delivered_at - msg.sent_at)

    procs = [k.spawn(sender()), k.spawn(receiver())]
    run_to_completion(k, procs)
    assert all(dt >= latency for dt in stamps)
