"""Three-way differential test: vectorized KVCache == reference == ranges.

The vectorized membership-matrix :class:`KVCache` must be observably
indistinguishable from the retained pure-Python reference implementation
(:class:`ReferenceKVCache` — the original per-cell-set code) for *any*
op sequence, including per-op return values, allocation order, and full
per-cell metadata state.  :class:`RangeKVCache` (interval metadata, no
cell identity) must agree on every sequence-level observable.

This is the executable proof that the PR-2 metadata-plane rewrite changed
representation, not semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.models.kv_cache import KVCache
from repro.models.kv_cache_ref import ReferenceKVCache
from repro.models.range_cache import RangeKVCache

N_SEQS = 6
MAX_POS = 30

SEQS = st.integers(0, N_SEQS - 1)
POS = st.integers(0, MAX_POS)
SEQ_SETS = st.sets(SEQS, min_size=1, max_size=3)


def pos_range():
    return st.tuples(POS, POS).map(lambda t: (min(t), max(t)))


op_strategy = st.one_of(
    st.tuples(st.just("alloc"), POS, SEQ_SETS),
    st.tuples(st.just("cp"), SEQS, SEQS, pos_range()),
    st.tuples(st.just("rm"), SEQS, pos_range()),
    st.tuples(st.just("keep"), SEQS),
    st.tuples(st.just("bcast"), SEQS, pos_range(), st.sets(SEQS, max_size=3)),
)


def assert_same_state(vec: KVCache, ref: ReferenceKVCache, rng: RangeKVCache):
    """Full metadata equality (cell-level for vec/ref, seq-level for all)."""
    assert vec.n_used == ref.n_used
    assert list(vec.pos) == list(ref.pos)
    for cell in range(vec.n_cells):
        assert vec.seqs[cell] == ref.seqs[cell], f"cell {cell} diverged"
    for seq in range(N_SEQS):
        assert vec.seq_positions(seq) == ref.seq_positions(seq)
        assert vec.seq_positions(seq) == rng.seq_positions(seq)
        assert vec.seq_cells(seq) == ref.seq_cells(seq)
        assert vec.seq_max_pos(seq) == ref.seq_max_pos(seq) == rng.seq_max_pos(seq)
        for pos in range(MAX_POS + 1):
            assert vec.has_entry(seq, pos) == ref.has_entry(seq, pos)
            assert vec.has_entry(seq, pos) == rng.has_entry(seq, pos)
            assert list(vec.visible_cells(seq, pos)) == list(ref.visible_cells(seq, pos))
            assert list(vec.visible_cells(seq, pos, inclusive=False)) == list(
                ref.visible_cells(seq, pos, inclusive=False)
            )


@settings(max_examples=150, deadline=None)
@given(st.lists(op_strategy, max_size=30))
def test_three_way_equivalence(operations):
    vec = KVCache(n_cells=256)
    ref = ReferenceKVCache(n_cells=256)
    rng = RangeKVCache()
    for op in operations:
        if op[0] == "alloc":
            _, pos, seq_ids = op
            # The engines never double-write a (seq, pos) entry; keep the
            # modeled stream within that invariant (interval metadata
            # cannot represent duplicate cells at one position).
            if any(vec.has_entry(s, pos) for s in seq_ids):
                continue
            got_vec = vec.allocate([(pos, set(seq_ids))])
            got_ref = ref.allocate([(pos, set(seq_ids))])
            assert got_vec == got_ref  # identical allocation order
            for s in seq_ids:
                rng.add_tokens(s, [pos])
        elif op[0] == "cp":
            _, src, dst, (p0, p1) = op
            n_vec = vec.seq_cp(src, dst, p0, p1)
            assert n_vec == ref.seq_cp(src, dst, p0, p1)
            # RangeKVCache counts every clipped source position, even ones
            # the destination already holds — state must agree, the return
            # value is not comparable.
            rng.seq_cp(src, dst, p0, p1)
        elif op[0] == "rm":
            _, seq, (p0, p1) = op
            n_vec = vec.seq_rm(seq, p0, p1)
            assert n_vec == ref.seq_rm(seq, p0, p1)
            assert n_vec == rng.seq_rm(seq, p0, p1)
        elif op[0] == "keep":
            _, seq = op
            assert vec.seq_keep(seq) == ref.seq_keep(seq)
            rng.seq_keep(seq)  # return counts positions, not cells
        else:
            _, src, (p0, p1), targets = op
            n_vec = vec.seq_broadcast(src, p0, p1, sorted(targets))
            assert n_vec == ref.seq_broadcast(src, p0, p1, sorted(targets))
            rng.seq_broadcast(src, p0, p1, sorted(targets))
    assert_same_state(vec, ref, rng)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(POS, SEQ_SETS), min_size=1, max_size=20))
def test_allocation_reuses_cells_in_reference_order(entries):
    """Interleaved allocate/free keeps vec and ref cell-for-cell aligned."""
    vec = KVCache(n_cells=64)
    ref = ReferenceKVCache(n_cells=64)
    for i, (pos, seq_ids) in enumerate(entries):
        assert vec.allocate([(pos, seq_ids)]) == ref.allocate([(pos, seq_ids)])
        if i % 3 == 2:  # periodically free a band and force heap reuse
            lo = max(0, pos - 4)
            for s in list(seq_ids):
                assert vec.seq_rm(s, lo, pos + 1) == ref.seq_rm(s, lo, pos + 1)
    assert list(vec.pos) == list(ref.pos)
    assert vec.n_used == ref.n_used
