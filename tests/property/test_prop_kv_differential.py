"""Differential test: RangeKVCache == KVCache == ReferenceKVCache metadata.

The cluster simulation executes the engines' cache-op streams against
interval metadata while the functional level uses per-cell metadata; the
implementations must agree on every observable for any op sequence —
otherwise the performance experiments would be timing a different protocol
than the one proven correct.  The op alphabet covers every primitive the
multibuffer *and* the prefix-cache plane emit: fresh writes, ranged
``seq_cp``/``seq_rm``, and multi-target ``seq_broadcast`` (the prefix
cache's admission-sweep fan-out, one command materializing a shared
cached span into several requests' partitions).
"""

from hypothesis import given, settings, strategies as st

from repro.models.kv_cache import KVCache
from repro.models.kv_cache_ref import ReferenceKVCache
from repro.models.range_cache import RangeKVCache

SEQS = st.integers(0, 4)
POS = st.integers(0, 30)


def pos_range():
    return st.tuples(POS, POS).map(lambda t: (min(t), max(t)))


op_strategy = st.one_of(
    st.tuples(st.just("add"), SEQS, POS),
    st.tuples(st.just("cp"), SEQS, SEQS, pos_range()),
    st.tuples(st.just("rm"), SEQS, pos_range()),
    st.tuples(
        st.just("bcast"), SEQS, pos_range(),
        st.lists(SEQS, min_size=1, max_size=3, unique=True),
    ),
)


@settings(max_examples=200)
@given(st.lists(op_strategy, max_size=40))
def test_metadata_equivalence(operations):
    cell = KVCache(n_cells=512)
    ref = ReferenceKVCache(n_cells=512)
    rng = RangeKVCache()
    for op in operations:
        if op[0] == "add":
            _, seq, pos = op
            # Both caches reject double-writes at the engine level; model a
            # fresh write only when the (seq, pos) cell does not exist.
            if cell.has_entry(seq, pos):
                continue
            cell.allocate([(pos, {seq})])
            ref.allocate([(pos, {seq})])
            rng.add_tokens(seq, [pos])
        elif op[0] == "cp":
            _, src, dst, (p0, p1) = op
            n = cell.seq_cp(src, dst, p0, p1)
            assert n == ref.seq_cp(src, dst, p0, p1)
            rng.seq_cp(src, dst, p0, p1)
        elif op[0] == "rm":
            _, seq, (p0, p1) = op
            n = cell.seq_rm(seq, p0, p1)
            assert n == ref.seq_rm(seq, p0, p1)
            rng.seq_rm(seq, p0, p1)
        else:
            _, src, (p0, p1), targets = op
            n = cell.seq_broadcast(src, p0, p1, targets)
            assert n == ref.seq_broadcast(src, p0, p1, targets)
            rng.seq_broadcast(src, p0, p1, targets)
    for seq in range(5):
        assert cell.seq_positions(seq) == rng.seq_positions(seq), (
            f"sequence {seq} diverged"
        )
        assert cell.seq_positions(seq) == ref.seq_positions(seq), (
            f"sequence {seq} diverged from the reference"
        )
        assert cell.seq_max_pos(seq) == rng.seq_max_pos(seq) == ref.seq_max_pos(seq)
        for pos in range(31):
            assert (
                cell.has_entry(seq, pos)
                == rng.has_entry(seq, pos)
                == ref.has_entry(seq, pos)
            )
