"""Differential property test: fused multi-run execution == sequential.

The fusion window's contract is that evaluating a window of decode runs
(with cache-op batches interleaved between them) as one fused cross-run
batch is observationally identical to evaluating each transaction in
order, one at a time:

- identical per-run activations (<= 1e-10, in practice ~1e-14: the only
  divergence is float re-association from the shared cell compaction);
- identical KV metadata afterwards (allocation order, membership, frees);
- identical output record order, including under mid-fusion cancellation
  (a skipped run keeps its slot and produces no cells).

Windows are built both from hand-written hazard scenarios (same-sequence
chained runs, freed-cell reuse forcing a group split) and from a seeded
random generator mimicking the engines' dispatch pattern.
"""

import numpy as np
import pytest

from repro.comm.payloads import CacheOp, CacheOpKind, DecodeMeta, TokenSlot
from repro.engines.backend import FunctionalBackend, StageRun, apply_cache_op
from repro.models.transformer import TinyTransformer, perturbed_copy
from tests.conftest import TINY_CFG

SEQ_END = 1 << 40
ATOL = 1e-10

PROMPT = [3, 1, 4, 1, 5, 9]


def make_backend(n_cells=64):
    target = TinyTransformer(TINY_CFG)
    draft = perturbed_copy(target, noise=0.15, seed=9)
    return FunctionalBackend(target, draft, n_cells=n_cells)


def prefill_state(backend):
    """A worker state whose canonical sequence holds the prompt."""
    ws = backend.make_worker_state(1, (0, backend.n_target_layers), True, True)
    slots = [TokenSlot(t, i, (0,), True) for i, t in enumerate(PROMPT)]
    backend.compute_stage(ws, DecodeMeta(0, slots, False), None)
    return ws


def run_decode(run_id, tokens, start, seq, skip=False):
    slots = [TokenSlot(t, start + i, (seq,), True) for i, t in enumerate(tokens)]
    return StageRun(DecodeMeta(run_id, slots, True), None, skip=skip)


def clone_window(window):
    """Fresh StageRun objects (outputs/skips must not leak across runs)."""
    out = []
    for item in window:
        if isinstance(item, StageRun):
            out.append(StageRun(item.meta, item.hidden, skip=item.skip))
        else:
            out.append(list(item))
    return out


def run_sequential(backend, ws, window):
    """Reference semantics: every transaction applied strictly in order."""
    outs = []
    for item in window:
        if isinstance(item, StageRun):
            outs.append(
                None if item.skip
                else backend.compute_stage(ws, item.meta, item.hidden)
            )
        else:
            for op in item:
                apply_cache_op(ws.cache, op)
    return outs


def metadata_snapshot(cache, n_seqs=12):
    return {
        "used": cache.n_used,
        "seqs": {s: cache.seq_positions(s) for s in range(n_seqs)},
    }


def assert_equivalent(window):
    backend = make_backend()
    ws_fused = prefill_state(backend)
    ws_seq = prefill_state(backend)
    fused = backend.compute_stage_multi(ws_fused, clone_window(window))
    seq = run_sequential(backend, ws_seq, clone_window(window))
    runs = [it for it in window if isinstance(it, StageRun)]
    assert len(fused) == len(seq) == len(runs)
    for i, (f, s) in enumerate(zip(fused, seq)):
        if s is None:
            assert f is None, f"run {i}: fused produced output for a skipped run"
        else:
            assert f is not None, f"run {i}: fused dropped a live run"
            np.testing.assert_allclose(f, s, atol=ATOL, rtol=0)
    assert metadata_snapshot(ws_fused.cache) == metadata_snapshot(ws_seq.cache)


def cp(src, dst, p0, p1):
    return CacheOp(CacheOpKind.SEQ_CP, src, dst, p0, p1)


def rm(seq, p0=0, p1=SEQ_END):
    return CacheOp(CacheOpKind.SEQ_RM, seq, seq, p0, p1)


class TestHandBuiltWindows:
    def test_disjoint_spec_runs_with_context_ops(self):
        """The serving-mode shape: ops + decode per run, distinct seqs."""
        tip = len(PROMPT)
        assert_equivalent([
            [cp(0, 1, 0, tip)],
            run_decode(1, [7, 8], tip, 1),
            [cp(0, 2, 0, tip)],
            run_decode(2, [9], tip, 2),
            [cp(0, 3, 0, tip)],
            run_decode(3, [2, 6, 5], tip, 3),
        ])

    def test_same_sequence_chained_runs(self):
        """Two canonical runs of one request in one window: the second
        attends over the cell the first writes *within the window*."""
        tip = len(PROMPT)
        assert_equivalent([
            run_decode(1, [7], tip, 0),
            run_decode(2, [8], tip + 1, 0),
            run_decode(3, [2], tip + 2, 0),
        ])

    def test_skip_run_keeps_slot_and_writes_nothing(self):
        tip = len(PROMPT)
        assert_equivalent([
            [cp(0, 1, 0, tip)],
            run_decode(1, [7, 8], tip, 1, skip=True),
            [cp(0, 2, 0, tip)],
            run_decode(2, [9], tip, 2),
        ])

    def test_freed_cell_reuse_splits_the_batch(self):
        """A mid-window seq_rm frees cells a later run's allocation reuses:
        the earlier run must read the old K/V, the later run the new."""
        tip = len(PROMPT)
        window = [
            [cp(0, 1, 0, tip)],
            run_decode(1, [7, 8], tip, 1),
            [rm(1)],                      # frees run 1's fresh cells
            [cp(0, 2, 0, tip)],
            run_decode(2, [9, 2], tip, 2),  # reuses the freed indices
        ]
        # Confirm the hazard is real: run 2 must reuse freed cell indices.
        backend = make_backend()
        ws = prefill_state(backend)
        backend.compute_stage_multi(ws, clone_window(window))
        assert_equivalent(window)

    def test_interleaved_acceptance_and_release(self):
        """Acceptance copy into canonical + partition release mid-window."""
        tip = len(PROMPT)
        assert_equivalent([
            [cp(0, 1, 0, tip)],
            run_decode(1, [7, 8], tip, 1),
            [cp(1, 0, tip, tip + 1), rm(1)],
            run_decode(2, [7], tip, 0),
            [cp(0, 2, 0, tip + 1)],
            run_decode(3, [4], tip + 1, 2),
        ])


class TestRandomWindows:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_dispatch_pattern(self, seed):
        """Engine-shaped random windows: spec dispatches with context
        copies, canonical chains, occasional skips and releases."""
        rng = np.random.default_rng(seed)
        tip = len(PROMPT)
        window = []
        canonical_next = tip
        next_seq = 1
        for _ in range(int(rng.integers(2, 7))):
            kind = rng.random()
            if kind < 0.5:  # speculative dispatch: context ops + decode
                seq = next_seq
                next_seq += 1
                window.append([cp(0, seq, 0, canonical_next)])
                n = int(rng.integers(1, 4))
                toks = [int(t) for t in rng.integers(0, TINY_CFG.vocab, n)]
                window.append(
                    run_decode(seq + 100, toks, canonical_next, seq,
                               skip=bool(rng.random() < 0.2))
                )
            elif kind < 0.8:  # canonical chain step
                tok = int(rng.integers(0, TINY_CFG.vocab))
                window.append(run_decode(canonical_next + 500, [tok],
                                         canonical_next, 0))
                canonical_next += 1
            elif next_seq > 1:  # release a previously used partition
                window.append([rm(int(rng.integers(1, next_seq)))])
        if not any(isinstance(it, StageRun) for it in window):
            window.append(run_decode(999, [1], canonical_next, 0))
        assert_equivalent(window)
