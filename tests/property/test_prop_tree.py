"""Tree-attention equivalence over random trees."""

import numpy as np
from hypothesis import given, strategies as st

from repro.spec.tree import SpecTree
from repro.spec.tree_attention import (
    assign_tree_seqs,
    mask_from_seqs,
    tree_attention_mask,
)


@st.composite
def random_trees(draw):
    """Random trees built by attaching each node to -1 or an earlier node."""
    n = draw(st.integers(1, 10))
    tree = SpecTree(base_pos=draw(st.integers(0, 20)))
    for i in range(n):
        parent = draw(st.integers(-1, i - 1)) if i > 0 else -1
        tree.add(token=draw(st.integers(0, 50)), confidence=0.5, parent=parent)
    return tree


@given(random_trees())
def test_mask_equivalence(tree):
    """Sequence-id metadata induces exactly the ancestor mask."""
    leaves = tree.leaves()
    seqs = assign_tree_seqs(tree, list(range(1, len(leaves) + 1)))
    assert np.array_equal(mask_from_seqs(tree, seqs), tree_attention_mask(tree))


@given(random_trees())
def test_mask_is_reflexive_and_causal(tree):
    m = tree_attention_mask(tree)
    n = len(tree)
    assert all(m[i, i] for i in range(n))
    for i in range(n):
        for j in range(n):
            if m[i, j]:
                assert tree.nodes[j].pos <= tree.nodes[i].pos


@given(random_trees())
def test_sibling_branches_mutually_exclusive(tree):
    """No two different leaves' strict branch suffixes see each other."""
    m = tree_attention_mask(tree)
    for a in tree.leaves():
        for b in tree.leaves():
            if a != b and b not in tree.ancestors(a):
                assert not m[a, b]


@given(random_trees())
def test_every_node_on_some_branch(tree):
    seqs = assign_tree_seqs(tree, list(range(1, len(tree.leaves()) + 1)))
    assert all(s for s in seqs)


@given(random_trees())
def test_path_tokens_consistent(tree):
    for leaf in tree.leaves():
        path = tree.path_to(leaf)
        assert path[-1] == leaf
        # Depth-consecutive positions along the path.
        positions = [tree.nodes[i].pos for i in path]
        assert positions == list(range(tree.base_pos + 1, tree.base_pos + 1 + len(path)))
