"""Oracle statistical properties."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.models.oracle import DraftOracle, OracleLM, make_aligned_pair
from repro.models.sampler import softmax_probs
from repro.spec.verify import stochastic_verify_step


@settings(max_examples=20, deadline=None)
@given(st.floats(0.05, 0.95), st.integers(0, 1000))
def test_acceptance_rate_converges(alpha, seed):
    target = OracleLM(seed=seed)
    draft = DraftOracle(target, acceptance=alpha, seed=seed + 1)
    n = 3000
    agree = sum(
        draft.next_token([seed, i]) == target.next_token([seed, i]) for i in range(n)
    )
    assert abs(agree / n - alpha) < 0.05


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 500))
def test_state_advance_associativity(seed):
    """Incremental state equals batch state for any split point."""
    o = OracleLM(seed=seed)
    tokens = [seed % 97, 3, 14, 15, 92, 65]
    for split in range(len(tokens) + 1):
        s = o.init_state(tokens[:split])
        for t in tokens[split:]:
            s = o.advance(s, t)
        assert s == o.init_state(tokens)


@settings(max_examples=15, deadline=None)
@given(st.floats(0.2, 0.9))
def test_calibrated_pair_hits_measured_rate(measured):
    cutoff = 0.30
    target, draft = make_aligned_pair(measured, seed=7, cutoff=cutoff)
    passed = agreed = 0
    for i in range(6000):
        state = target.init_state([i])
        if draft.confidence_from_state(state) >= cutoff:
            passed += 1
            agreed += int(
                draft.next_token_from_state(state) == target.next_token_from_state(state)
            )
    assert passed > 0
    assert abs(agreed / passed - measured) < 0.05


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100))
def test_stochastic_verify_preserves_target_distribution(seed):
    """The rejection-sampling rule emits tokens distributed per the target,
    for random target/draft distributions — SpecInfer's guarantee."""
    rng = np.random.default_rng(seed)
    target_logits = rng.normal(size=4)
    draft_logits = rng.normal(size=4)
    p = softmax_probs(target_logits)
    q = softmax_probs(draft_logits)
    counts = np.zeros(4)
    n = 8000
    for _ in range(n):
        d = int(rng.choice(4, p=q))
        _, tok = stochastic_verify_step(target_logits, draft_logits, d, rng)
        counts[tok] += 1
    assert np.allclose(counts / n, p, atol=0.03)
