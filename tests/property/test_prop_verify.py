"""Verification-walk invariants over randomized runs."""

from hypothesis import given, strategies as st

from repro.models.oracle import OracleLogits
from repro.spec.verify import verify_chain

VOCAB = 16


@st.composite
def chain_cases(draw):
    """A consistent (accepted_len, run, logits) instance.

    The run's tokens at positions below the tip must match the accepted
    stream's implied tokens, so we build the accepted stream first and
    carve the run out of it plus drafted continuations.
    """
    accepted = draw(st.lists(st.integers(0, VOCAB - 1), min_size=2, max_size=12))
    overlap = draw(st.integers(1, len(accepted) - 1))  # run starts at tip-overlap+1
    start = len(accepted) - overlap
    n_drafts = draw(st.integers(0, 5))
    drafts = draw(st.lists(st.integers(0, VOCAB - 1), min_size=n_drafts, max_size=n_drafts))
    run_tokens = accepted[start:] + drafts
    # Target predictions for each run position (arbitrary).
    predictions = draw(
        st.lists(st.integers(0, VOCAB - 1), min_size=len(run_tokens), max_size=len(run_tokens))
    )
    logits = [OracleLogits(p, 0.9) for p in predictions]
    return accepted, start, run_tokens, logits, predictions


@given(chain_cases())
def test_walk_always_productive(case):
    accepted, start, run_tokens, logits, _ = case
    out = verify_chain(len(accepted), start, run_tokens, logits)
    # A run overlapping the tip always yields at least one new token.
    assert len(out.new_tokens) >= 1


@given(chain_cases())
def test_new_tokens_are_predictions(case):
    accepted, start, run_tokens, logits, predictions = case
    out = verify_chain(len(accepted), start, run_tokens, logits)
    tip = len(accepted) - 1
    for i, tok in enumerate(out.new_tokens):
        assert tok == predictions[tip - start + i]


@given(chain_cases())
def test_accepted_count_bounded_by_drafts(case):
    accepted, start, run_tokens, logits, _ = case
    out = verify_chain(len(accepted), start, run_tokens, logits)
    n_unverified = start + len(run_tokens) - len(accepted)
    assert 0 <= out.n_draft_accepted <= max(n_unverified, 0)
    assert out.n_draft_checked - out.n_draft_accepted in (0, 1)


@given(chain_cases())
def test_divergence_iff_rejection(case):
    accepted, start, run_tokens, logits, _ = case
    out = verify_chain(len(accepted), start, run_tokens, logits)
    k = len(run_tokens)
    tip = len(accepted) - 1
    if out.diverged:
        # The token after the last accepted prediction mismatched.
        idx = tip - start + len(out.new_tokens)
        assert run_tokens[idx] != out.new_tokens[-1]
    else:
        # Walk ran off the end of the run.
        assert tip + len(out.new_tokens) >= start + k


@given(chain_cases())
def test_walk_is_deterministic(case):
    accepted, start, run_tokens, logits, _ = case
    a = verify_chain(len(accepted), start, run_tokens, logits)
    b = verify_chain(len(accepted), start, run_tokens, logits)
    assert a.new_tokens == b.new_tokens and a.diverged == b.diverged
