"""Shared fixtures: tiny functional models, clusters, default jobs."""

from __future__ import annotations

import pytest

from repro import (
    EngineConfig,
    FunctionalBackend,
    GenerationJob,
    TinyTransformer,
    TransformerConfig,
)
from repro.models.transformer import perturbed_copy
from repro.spec.draft import DraftParams

TINY_CFG = TransformerConfig(
    vocab=128, d_model=32, n_layers=4, n_heads=4, n_kv_heads=2, d_ff=64, seed=7
)

PROMPT = (1, 5, 9, 13, 17, 21, 25, 29)


@pytest.fixture(scope="session")
def tiny_target() -> TinyTransformer:
    return TinyTransformer(TINY_CFG)


@pytest.fixture(scope="session")
def tiny_draft(tiny_target) -> TinyTransformer:
    """A moderately aligned draft (some rejections, some acceptance)."""
    return perturbed_copy(tiny_target, noise=0.15, seed=9)


@pytest.fixture()
def functional_backend(tiny_target, tiny_draft) -> FunctionalBackend:
    return FunctionalBackend(tiny_target, tiny_draft, n_cells=512)


@pytest.fixture()
def functional_config() -> EngineConfig:
    """Engine config whose cutoff admits the tiny model's flat confidences."""
    return EngineConfig(
        draft=DraftParams(max_tokens=4, cutoff=0.02),
        cutoff_recovery=0.01,
        cutoff_decay=0.01,
    )


@pytest.fixture()
def small_job() -> GenerationJob:
    return GenerationJob(prompt=PROMPT, n_generate=24)
