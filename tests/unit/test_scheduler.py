"""RequestScheduler admission discipline and Workload validation."""

import pytest

from repro import GenerationJob, Workload
from repro.serve import RequestScheduler


def make_jobs(n):
    return tuple(GenerationJob(prompt=(1, 2, 3), n_generate=4) for _ in range(n))


class TestWorkload:
    def test_requires_jobs(self):
        with pytest.raises(ValueError):
            Workload(jobs=())

    def test_arrival_length_must_match(self):
        with pytest.raises(ValueError):
            Workload(jobs=make_jobs(3), arrivals=(0.0, 1.0))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Workload(jobs=make_jobs(2), arrivals=(0.0, -1.0))

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            Workload(jobs=make_jobs(2), max_active=0)

    def test_default_arrivals_are_zero(self):
        reqs = Workload(jobs=make_jobs(3)).requests()
        assert [r.arrival for r in reqs] == [0.0, 0.0, 0.0]
        assert [r.req_id for r in reqs] == [0, 1, 2]

    def test_requests_sorted_by_arrival_then_id(self):
        reqs = Workload(jobs=make_jobs(3), arrivals=(2.0, 0.5, 0.5)).requests()
        assert [r.req_id for r in reqs] == [1, 2, 0]


class TestScheduler:
    def test_fcfs_pop_order(self):
        sched = RequestScheduler(
            Workload(jobs=make_jobs(3), arrivals=(1.0, 0.0, 2.0))
        )
        assert sched.next_arrival() == 0.0
        assert sched.pop_ready(0.0).req_id == 1
        # Request 0 has not arrived yet at t=0.5.
        assert sched.pop_ready(0.5) is None
        assert sched.pop_ready(1.5).req_id == 0
        assert sched.pop_ready(5.0).req_id == 2
        assert not sched.has_pending()
        assert sched.next_arrival() is None

    def test_completion_bookkeeping(self):
        sched = RequestScheduler(Workload(jobs=make_jobs(2)))
        sched.pop_ready(0.0)
        sched.pop_ready(0.0)
        assert not sched.all_done()
        sched.on_completed(0, 3.0)
        sched.on_completed(1, 4.0)
        assert sched.all_done()
        assert sched.completed_at == {0: 3.0, 1: 4.0}
        with pytest.raises(ValueError):
            sched.on_completed(0, 5.0)

    def test_concurrency_cap(self):
        sched = RequestScheduler(Workload(jobs=make_jobs(4), max_active=2))
        assert sched.may_admit(0)
        assert sched.may_admit(1)
        assert not sched.may_admit(2)

    def test_uncapped(self):
        sched = RequestScheduler(Workload(jobs=make_jobs(2)))
        assert sched.may_admit(10_000)


class TestWorstCaseCellDemand:
    def test_demand_formula(self):
        from repro import EngineConfig, GenerationJob
        from repro.serve.scheduler import worst_case_cell_demand

        cfg = EngineConfig(lookahead_cap=16, microbatch_size=4)
        job = GenerationJob(prompt=tuple(range(1, 9)), n_generate=24)
        assert worst_case_cell_demand(job, cfg) == 8 + 24 + 16 + 4


class TestPriorityAdmission:
    def _sched(self, arrivals, priorities):
        return RequestScheduler(
            Workload(
                jobs=make_jobs(len(arrivals)),
                arrivals=arrivals,
                priorities=priorities,
            )
        )

    def test_highest_priority_pops_first(self):
        sched = self._sched((0.0, 0.0, 0.0), (0, 3, 1))
        assert sched.pop_ready(0.0).req_id == 1
        assert sched.pop_ready(0.0).req_id == 2
        assert sched.pop_ready(0.0).req_id == 0

    def test_ties_keep_fcfs_order(self):
        sched = self._sched((0.0, 0.0, 0.0), (2, 2, 2))
        assert [sched.pop_ready(0.0).req_id for _ in range(3)] == [0, 1, 2]

    def test_unarrived_priority_cannot_jump(self):
        # The priority-9 request lands at t=5; before then the low
        # priorities are served, after then it preempts the queue.
        sched = self._sched((0.0, 0.0, 5.0), (0, 1, 9))
        assert sched.pop_ready(0.0).req_id == 1
        assert sched.pop_ready(6.0).req_id == 2
        assert sched.pop_ready(6.0).req_id == 0

    def test_peek_matches_pop(self):
        sched = self._sched((0.0, 0.0), (1, 4))
        peeked = sched.peek_ready(0.0)
        assert peeked is sched.pop_ready(0.0)
        assert peeked.req_id == 1


class TestCancelQueued:
    def test_cancel_removes_and_counts_toward_done(self):
        sched = RequestScheduler(Workload(jobs=make_jobs(2)))
        gone = sched.cancel_queued(1)
        assert gone is not None and gone.req_id == 1
        assert sched.pop_ready(0.0).req_id == 0
        assert sched.pop_ready(0.0) is None
        assert not sched.all_done()
        sched.on_completed(0, 1.0)
        assert sched.all_done()

    def test_cancel_unknown_or_admitted_returns_none(self):
        sched = RequestScheduler(Workload(jobs=make_jobs(1)))
        assert sched.cancel_queued(7) is None
        sched.pop_ready(0.0)
        # Already admitted: no longer queued, the head owns it now.
        assert sched.cancel_queued(0) is None
