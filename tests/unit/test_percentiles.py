"""Percentile helpers match numpy's linear-interpolation definition."""

import numpy as np
import pytest

from repro.metrics import p50, p95, p99, percentile


def test_single_value():
    assert percentile([3.0], 0) == 3.0
    assert percentile([3.0], 50) == 3.0
    assert percentile([3.0], 100) == 3.0


def test_median_even_sample():
    assert p50([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)


def test_extremes():
    vals = [5.0, 1.0, 3.0]
    assert percentile(vals, 0) == 1.0
    assert percentile(vals, 100) == 5.0


@pytest.mark.parametrize("p", [0, 10, 25, 50, 75, 90, 95, 99, 100])
def test_matches_numpy(p):
    rng = np.random.default_rng(7)
    vals = list(rng.uniform(0, 100, size=37))
    assert percentile(vals, p) == pytest.approx(float(np.percentile(vals, p)))


def test_does_not_mutate_input():
    vals = [3.0, 1.0, 2.0]
    percentile(vals, 50)
    assert vals == [3.0, 1.0, 2.0]


def test_p95_p99_ordering():
    vals = list(range(1, 101))
    assert p50(vals) <= p95(vals) <= p99(vals)
    assert p99(vals) == pytest.approx(99.01)


def test_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], -1)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
