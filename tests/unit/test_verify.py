"""SpecInfer verification walks."""

import numpy as np
import pytest

from repro.models.oracle import OracleLogits
from repro.spec.tree import chain_tree, SpecTree
from repro.spec.verify import (
    stochastic_verify_step,
    verify_chain,
    verify_tree,
)


def L(token):
    """Oracle logits whose argmax is ``token``."""
    return OracleLogits(top_token=token, top_prob=0.9)


class TestChainWalk:
    def test_full_acceptance_with_bonus(self):
        # Accepted through pos 5 (len 6); the run's first input token (at
        # pos 5) is the already-accepted tip, the rest are drafts.
        out = verify_chain(
            accepted_len=6,
            run_start_pos=5,
            run_tokens=[10, 11, 12],
            logits=[L(11), L(12), L(99)],
        )
        assert out.new_tokens == [11, 12, 99]
        assert out.n_draft_accepted == 2
        assert not out.diverged
        assert out.n_draft_checked == 2

    def test_divergence_stops_walk(self):
        out = verify_chain(6, 5, [10, 11, 12], [L(42), L(7), L(8)])
        # Prediction at pos 6 is 42, run's token there is 11 -> reject.
        assert out.new_tokens == [42]
        assert out.diverged
        assert out.n_draft_accepted == 0
        assert out.n_draft_checked == 1

    def test_mid_chain_divergence(self):
        out = verify_chain(6, 5, [10, 11, 12, 13], [L(11), L(12), L(77), L(1)])
        assert out.new_tokens == [11, 12, 77]
        assert out.n_draft_accepted == 2
        assert out.diverged

    def test_canonical_single_token(self):
        """A canonical run: one already-accepted token, one prediction."""
        out = verify_chain(6, 5, [10], [L(33)])
        assert out.new_tokens == [33]
        assert out.n_draft_accepted == 0
        assert not out.diverged

    def test_superfluous_run_yields_nothing(self):
        # Run entirely behind the tip: accepted through pos 9, run at 5..6.
        out = verify_chain(10, 5, [1, 2], [L(2), L(3)])
        assert out.new_tokens == []

    def test_overlap_consumes_only_new_positions(self):
        # Accepted through pos 6 (len 7); run covers 5..8.
        out = verify_chain(7, 5, [1, 2, 3, 4], [L(2), L(3), L(4), L(50)])
        # Walk starts at pos 6, confirming tokens at 7, 8 and the bonus.
        assert out.new_tokens == [3, 4, 50]
        assert out.n_draft_accepted == 2

    def test_run_beyond_tip_rejected(self):
        with pytest.raises(ValueError):
            verify_chain(5, 7, [1], [L(2)])

    def test_logits_count_mismatch(self):
        with pytest.raises(ValueError):
            verify_chain(5, 5, [1, 2], [L(1)])

    def test_dense_logits_work(self):
        dense = np.zeros(16)
        dense[9] = 5.0
        out = verify_chain(4, 3, [4], [dense])
        assert out.new_tokens == [9]


class TestTreeWalk:
    def test_descends_matching_branch(self):
        t = SpecTree(0)
        a = t.add(1, 0.9)
        b = t.add(2, 0.9)
        c = t.add(3, 0.9, parent=b)
        logits = [L(99), L(3), L(55)]
        out = verify_tree(L(2), t, logits)
        # tip predicts 2 -> matches b; b's logits predict 3 -> matches c;
        # c is a leaf -> bonus from c's logits.
        assert out.new_tokens == [2, 3, 55]
        assert out.n_draft_accepted == 2
        assert out.matched_nodes == [b, c]
        assert not out.diverged

    def test_no_match_is_correction(self):
        t = chain_tree(0, [5], [0.9])
        out = verify_tree(L(7), t, [L(1)])
        assert out.new_tokens == [7]
        assert out.diverged
        assert out.matched_nodes == []

    def test_empty_tree_is_plain_sample(self):
        t = SpecTree(0)
        out = verify_tree(L(4), t, [])
        assert out.new_tokens == [4]
        assert not out.diverged  # nothing was proposed, nothing rejected

    def test_logits_alignment_checked(self):
        t = chain_tree(0, [5], [0.9])
        with pytest.raises(ValueError):
            verify_tree(L(5), t, [])

    def test_checked_counts(self):
        t = chain_tree(0, [5, 6], [0.9, 0.9])
        out = verify_tree(L(5), t, [L(9), L(1)])
        assert out.n_draft_accepted == 1
        assert out.n_draft_checked == 2  # 5 accepted, 6 examined-and-rejected


class TestStochasticStep:
    def test_identical_distributions_always_accept(self):
        rng = np.random.default_rng(0)
        logits = np.array([1.0, 2.0, 0.5])
        for _ in range(50):
            ok, tok = stochastic_verify_step(logits, logits, 1, rng)
            assert ok and tok == 1

    def test_marginal_matches_target(self):
        """Accepted-or-resampled output is distributed per the target —
        SpecInfer's losslessness guarantee."""
        rng = np.random.default_rng(1)
        target = np.log(np.array([0.6, 0.3, 0.1]))
        draft = np.log(np.array([0.2, 0.5, 0.3]))
        counts = np.zeros(3)
        n = 12000
        for _ in range(n):
            d = rng.choice(3, p=[0.2, 0.5, 0.3])
            _, tok = stochastic_verify_step(target, draft, int(d), rng)
            counts[tok] += 1
        freq = counts / n
        assert np.allclose(freq, [0.6, 0.3, 0.1], atol=0.02)

    def test_zero_draft_prob_token(self):
        rng = np.random.default_rng(2)
        target = np.array([0.0, 0.0])
        draft = np.array([100.0, -100.0])
        ok, tok = stochastic_verify_step(target, draft, 1, rng)
        # Ratio p/q huge: drafted token always accepted.
        assert ok and tok == 1
