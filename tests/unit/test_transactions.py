"""PipeInfer's ordered transaction framing (paper Fig. 2)."""

from repro.cluster.kernel import SimKernel, run_to_completion
from repro.cluster.testbed import cluster_a
from repro.comm.message import Tag
from repro.comm.mpi_sim import Network
from repro.comm.transactions import (
    TransactionType,
    recv_piece,
    recv_start,
    send_transaction,
)


def test_transactions_processed_in_start_order():
    """Two transactions of different types execute in the order sent, even
    though their payload tags differ and arrival order may interleave."""
    k = SimKernel()
    net = Network(k, cluster_a(2))
    log = []

    def sender():
        ep = net.endpoint(0)
        send_transaction(ep, 1, TransactionType.DECODE, [("meta", 16), ("acts", 4e6)])
        send_transaction(ep, 1, TransactionType.CACHE_OP, [(["op1"], 32)], eager=True)
        send_transaction(ep, 1, TransactionType.DECODE, [("meta2", 16), ("acts2", 8)])
        yield from ()

    def receiver():
        ep = net.endpoint(1)
        for _ in range(3):
            ttype = yield from recv_start(ep, 0)
            if ttype == TransactionType.DECODE:
                meta = yield from recv_piece(ep, 0, ttype)
                acts = yield from recv_piece(ep, 0, ttype)
                log.append(("decode", meta, acts))
            else:
                ops = yield from recv_piece(ep, 0, ttype)
                log.append(("cache", ops[0]))

    procs = [k.spawn(sender()), k.spawn(receiver())]
    run_to_completion(k, procs)
    assert [entry[0] for entry in log] == ["decode", "cache", "decode"]
    assert log[0][1] == "meta" and log[0][2] == "acts"
    assert log[1][1] == "op1"
    assert log[2][1] == "meta2" and log[2][2] == "acts2"


def test_transaction_pieces_stay_with_their_start():
    """Pieces of back-to-back same-type transactions never mix: tag order
    is per-(src, dst, tag) FIFO and the handler pulls exactly its pieces."""
    k = SimKernel()
    net = Network(k, cluster_a(2))
    seen = []

    def sender():
        ep = net.endpoint(0)
        for i in range(4):
            send_transaction(ep, 1, TransactionType.DECODE, [(f"m{i}", 16), (f"a{i}", 16)])
        yield from ()

    def receiver():
        ep = net.endpoint(1)
        for _ in range(4):
            yield from recv_start(ep, 0)
            m = yield from recv_piece(ep, 0, TransactionType.DECODE)
            a = yield from recv_piece(ep, 0, TransactionType.DECODE)
            seen.append((m, a))

    procs = [k.spawn(sender()), k.spawn(receiver())]
    run_to_completion(k, procs)
    assert seen == [("m0", "a0"), ("m1", "a1"), ("m2", "a2"), ("m3", "a3")]


def test_transaction_type_values_are_tags():
    assert int(TransactionType.DECODE) == Tag.DECODE
    assert int(TransactionType.CACHE_OP) == Tag.CACHE_OP
    assert int(TransactionType.SHUTDOWN) == Tag.CONTROL
