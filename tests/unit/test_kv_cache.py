"""llama.cpp-style KV cache: metadata, sequence ops, visibility."""

import numpy as np
import pytest

from repro.models.kv_cache import KVCache, KVCacheError


@pytest.fixture()
def cache():
    return KVCache(n_cells=16)


class TestAllocation:
    def test_allocate_sets_metadata(self, cache):
        cells = cache.allocate([(0, {0}), (1, {0})])
        assert len(cells) == 2
        assert cache.pos[cells[0]] == 0
        assert cache.seqs[cells[1]] == {0}
        assert cache.n_used == 2

    def test_overflow(self):
        c = KVCache(2)
        c.allocate([(0, {0}), (1, {0})])
        with pytest.raises(KVCacheError):
            c.allocate([(2, {0})])

    def test_empty_seq_set_rejected(self, cache):
        with pytest.raises(KVCacheError):
            cache.allocate([(0, set())])

    def test_negative_position_rejected(self, cache):
        with pytest.raises(KVCacheError):
            cache.allocate([(-1, {0})])

    def test_negative_seq_id_rejected(self, cache):
        # A negative id must not wrap to a high membership-matrix column.
        with pytest.raises(KVCacheError):
            cache.allocate([(0, {-1, 3})])

    def test_multi_seq_cell(self, cache):
        (cell,) = cache.allocate([(5, {0, 2, 3})])
        assert cache.seqs[cell] == {0, 2, 3}


class TestSequenceOps:
    def test_seq_cp_shares_cells(self, cache):
        cache.allocate([(i, {0}) for i in range(4)])
        n = cache.seq_cp(0, 1, 1, 3)
        assert n == 2
        assert cache.seq_positions(1) == [1, 2]
        # Metadata copy: no new cells.
        assert cache.n_used == 4

    def test_seq_cp_self_noop(self, cache):
        cache.allocate([(0, {0})])
        assert cache.seq_cp(0, 0, 0, 10) == 0

    def test_seq_rm_frees_orphans(self, cache):
        cache.allocate([(0, {1}), (1, {1})])
        cache.seq_rm(1, 0, 2)
        assert cache.n_used == 0

    def test_seq_rm_keeps_shared_cells(self, cache):
        cache.allocate([(0, {0, 1})])
        cache.seq_rm(1, 0, 1)
        assert cache.n_used == 1
        assert cache.seq_positions(0) == [0]
        assert cache.seq_positions(1) == []

    def test_seq_keep(self, cache):
        cache.allocate([(0, {0}), (1, {1}), (2, {0, 1})])
        cache.seq_keep(0)
        assert cache.seq_positions(0) == [0, 2]
        assert cache.seq_positions(1) == []
        assert cache.n_used == 2

    def test_seq_broadcast(self, cache):
        cache.allocate([(0, {5})])
        cache.seq_broadcast(5, 0, 1, targets=[0, 1, 2])
        for s in (0, 1, 2, 5):
            assert cache.has_entry(s, 0)

    def test_invalid_range(self, cache):
        with pytest.raises(KVCacheError):
            cache.seq_rm(0, 5, 3)
        with pytest.raises(KVCacheError):
            cache.seq_cp(0, 1, -1, 3)


class TestQueries:
    def test_seq_max_pos(self, cache):
        cache.allocate([(3, {0}), (7, {0}), (5, {1})])
        assert cache.seq_max_pos(0) == 7
        assert cache.seq_max_pos(1) == 5
        assert cache.seq_max_pos(9) == -1

    def test_visible_cells_causal(self, cache):
        cells = cache.allocate([(0, {0}), (1, {0}), (2, {0}), (1, {1})])
        vis = cache.visible_cells(0, 1)
        assert set(vis) == {cells[0], cells[1]}  # inclusive of own position
        vis_strict = cache.visible_cells(0, 1, inclusive=False)
        assert set(vis_strict) == {cells[0]}

    def test_visible_cells_respects_sequences(self, cache):
        cells = cache.allocate([(0, {0}), (0, {1})])
        assert set(cache.visible_cells(0, 5)) == {cells[0]}
        assert set(cache.visible_cells(1, 5)) == {cells[1]}

    def test_has_entry(self, cache):
        cache.allocate([(4, {2})])
        assert cache.has_entry(2, 4)
        assert not cache.has_entry(2, 5)
        assert not cache.has_entry(3, 4)

    def test_seq_cells_sorted_by_position(self, cache):
        cache.allocate([(5, {0}), (2, {0}), (9, {0})])
        positions = [int(cache.pos[c]) for c in cache.seq_cells(0)]
        assert positions == [2, 5, 9]


class TestBatchedQueries:
    def test_visible_matrix_matches_per_token_queries(self, cache):
        cache.allocate([(0, {0}), (1, {0}), (2, {0}), (1, {1}), (2, {1})])
        seqs = [0, 1, 0, 1]
        positions = [2, 1, 0, 5]
        mat = cache.visible_matrix(seqs, positions)
        assert mat.shape == (4, cache.n_cells)
        for i, (s, p) in enumerate(zip(seqs, positions)):
            assert list(np.flatnonzero(mat[i])) == list(cache.visible_cells(s, p))

    def test_visible_matrix_strict(self, cache):
        cache.allocate([(0, {0}), (1, {0})])
        mat = cache.visible_matrix([0], [1], inclusive=False)
        assert list(np.flatnonzero(mat[0])) == list(
            cache.visible_cells(0, 1, inclusive=False)
        )

    def test_visible_matrix_unknown_seq_is_empty(self, cache):
        cache.allocate([(0, {0})])
        mat = cache.visible_matrix([999], [10])
        assert not mat.any()

    def test_counters_track_alloc_and_free(self, cache):
        assert cache.n_free == 16 and cache.n_used == 0
        cache.allocate([(i, {0}) for i in range(5)])
        assert cache.n_used == 5 and cache.n_free == 11
        cache.seq_rm(0, 0, 3)
        assert cache.n_used == 2 and cache.n_free == 14

    def test_freed_cells_reused_lowest_first(self, cache):
        cells = cache.allocate([(i, {0}) for i in range(6)])
        cache.seq_rm(0, 1, 3)  # frees cells[1], cells[2]
        again = cache.allocate([(10, {1}), (11, {1}), (12, {1})])
        # Lowest free indices first: the two freed cells, then the next
        # never-used cell — the reference scan order.
        assert again == [cells[1], cells[2], 6]

    def test_seqs_view_reflects_ops(self, cache):
        (cell,) = cache.allocate([(0, {1, 3})])
        assert cache.seqs[cell] == {1, 3}
        cache.seq_rm(3, 0, 1)
        assert cache.seqs[cell] == {1}
        assert len(cache.seqs) == cache.n_cells


class TestTensorBacked:
    def test_write_and_read(self):
        c = KVCache(8, n_layers=2, kv_dim=4)
        cells = c.allocate([(0, {0}), (1, {0})])
        k = np.ones((2, 4))
        v = 2 * np.ones((2, 4))
        c.write(1, cells, k, v)
        assert np.all(c.k[1, cells] == 1)
        assert np.all(c.v[1, cells] == 2)

    def test_metadata_only_rejects_write(self):
        c = KVCache(8)
        cells = c.allocate([(0, {0})])
        with pytest.raises(KVCacheError):
            c.write(0, cells, np.zeros((1, 4)), np.zeros((1, 4)))

    def test_tensor_backed_needs_kv_dim(self):
        with pytest.raises(ValueError):
            KVCache(8, n_layers=2, kv_dim=0)

    def test_reallocation_reuses_freed_cells(self):
        c = KVCache(2)
        cells = c.allocate([(0, {1}), (1, {1})])
        c.seq_rm(1, 0, 2)
        again = c.allocate([(5, {2}), (6, {2})])
        assert set(again) == set(cells)


class TestGrow:
    def test_grow_preserves_metadata_and_tensors(self):
        c = KVCache(4, n_layers=2, kv_dim=3)
        cells = c.allocate([(0, {0}), (1, {0}), (2, {1})])
        c.write(0, cells, np.arange(9.0).reshape(3, 3), np.ones((3, 3)))
        assert c.grow(10) == 10
        assert c.n_cells == 10
        assert c.seq_positions(0) == [0, 1]
        assert c.seq_positions(1) == [2]
        assert np.all(c.k[0, cells] == np.arange(9.0).reshape(3, 3))
        assert np.all(c.v[0, cells] == 1)
        # The new cells are free and allocatable.
        more = c.allocate([(p, {2}) for p in range(7)])
        assert len(more) == 7
        assert c.n_used == 10

    def test_grow_is_monotonic(self):
        c = KVCache(8)
        assert c.grow(4) == 8  # never shrinks
        assert c.grow(8) == 8
        assert c.n_cells == 8

    def test_grow_allocation_order_lowest_first(self):
        c = KVCache(2)
        c.allocate([(0, {0}), (1, {0})])
        c.seq_rm(0, 0, 1)  # frees cell 0
        c.grow(5)
        got = c.allocate([(5, {1}), (6, {1})])
        assert got == [0, 2]  # freed low cell first, then the first new one

    def test_grow_visibility_unchanged(self):
        c = KVCache(3)
        c.allocate([(0, {0}), (1, {0}), (2, {0})])
        before = c.visible_cells(0, 2).tolist()
        c.grow(12)
        assert c.visible_cells(0, 2).tolist() == before
        assert c.high_water == 3
