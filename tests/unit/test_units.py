"""Unit conversions and table rendering."""

from repro.util.tables import format_series, format_table
from repro.util.units import GB, GiB, Gbps, KiB, MB, Mbps, ms, us


def test_byte_units():
    assert GB == 1e9
    assert MB == 1e6
    assert GiB == 1024**3
    assert KiB == 1024


def test_time_units():
    assert us == 1e-6
    assert ms == 1e-3


def test_bandwidth_conversions():
    assert Gbps(1) == 125e6
    assert Gbps(100) == 12.5e9
    assert Mbps(8) == 1e6


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "-+-" in lines[1]


def test_format_table_title():
    out = format_table(["x"], [[1]], title="T")
    assert out.startswith("T\n")


def test_format_series_layout():
    out = format_series(
        "nodes", [4, 8], {"Iter.": [1.0, 1.1], "Pipe.": [3.0, 4.0]}, unit="tokens/s"
    )
    assert "Iter." in out and "Pipe." in out
    assert "(values in tokens/s)" in out
    # one row per series plus header and separator
    assert len(out.splitlines()) == 5
