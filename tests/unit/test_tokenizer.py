"""Toy tokenizer round-trips."""

import pytest

from repro.models.tokenizer import ToyTokenizer


def test_deterministic_encoding():
    t = ToyTokenizer()
    assert t.encode("hello world") == t.encode("hello world")


def test_roundtrip_after_encode():
    t = ToyTokenizer()
    ids = t.encode("the quick brown fox", add_bos=False)
    assert t.decode(ids) == "the quick brown fox"


def test_bos_prepended():
    t = ToyTokenizer()
    assert t.encode("x")[0] == t.bos


def test_punctuation_split():
    t = ToyTokenizer()
    ids = t.encode("a,b", add_bos=False)
    assert len(ids) == 3


def test_ids_within_vocab():
    t = ToyTokenizer(vocab=1000)
    for tid in t.encode("some words to hash around the vocabulary"):
        assert 0 <= tid < 1000


def test_unknown_id_renders_placeholder():
    t = ToyTokenizer()
    assert t.decode([999999]) == "<999999>"


def test_same_word_same_id():
    t = ToyTokenizer()
    ids = t.encode("dog cat dog", add_bos=False)
    assert ids[0] == ids[2] != ids[1]


def test_vocab_must_exceed_reserved():
    with pytest.raises(ValueError):
        ToyTokenizer(vocab=10, reserved=16)
